"""E7 — Theorem 7: the fully dynamic secondary index.

* updates (change/append): amortized O(lg n lg lg n / b) I/Os;
* range queries: O(z lg(n/z)/B + lg n lg lg n) I/Os;
* convergence: answers equal a fresh static build at every point.
"""

import math
import random

import pytest

from repro.bench import cold_query, output_bits_bound, ratio, standard_string
from repro.core import DynamicSecondaryIndex

SIGMA = 64
N = 1 << 12


@pytest.fixture(scope="module")
def built():
    x = standard_string("uniform", N, SIGMA, seed=31)
    return list(x), DynamicSecondaryIndex(x, SIGMA, mem_blocks=8)


def test_e7_update_cost(built, report, benchmark):
    x, idx = built
    rng = random.Random(32)
    rows = []
    for kind in ("change", "append"):
        ops = 600
        idx.stats.reset()
        for _ in range(ops):
            if kind == "change":
                i = rng.randrange(len(x))
                ch = rng.randrange(SIGMA)
                idx.change(i, ch)
                x[i] = ch
            else:
                ch = rng.randrange(SIGMA)
                idx.append(ch)
                x.append(ch)
        per_op = idx.stats.total / ops
        lg = math.log2(idx.n)
        b = idx.disk.block_bits / lg
        bound = lg * math.log2(max(2, lg)) / b + 2  # + O(1) string R/W
        rows.append([kind, ops, f"{per_op:.2f}", f"{bound:.2f}", ratio(per_op, bound)])
    report.table(
        "E7a  Theorem 7 update cost (amortized block I/Os per op)",
        ["operation", "ops", "I/O per op", "lg n lg lg n / b + 2", "ratio"],
        rows,
        note="each update is 2 buffered ops on each of lg lg n level indexes "
        "plus the O(1) base-string read/write.",
    )

    def timed_change():
        i = rng.randrange(len(x))
        ch = rng.randrange(SIGMA)
        idx.change(i, ch)
        x[i] = ch  # keep the shadow string in sync for the later tests

    benchmark(timed_change)


def test_e7_query_cost(built, report, benchmark):
    x, idx = built
    rows = []
    B = idx.disk.block_bits
    for lo, hi in [(4, 4), (0, 7), (0, 31), (3, 50)]:
        io = cold_query(idx, lo, hi)
        lg = math.log2(idx.n)
        bound = output_bits_bound(idx.n, io["z"]) / B + 2 * lg * math.log2(max(2, lg))
        rows.append(
            [f"[{lo},{hi}]", io["z"], io["reads"], f"{bound:.1f}",
             ratio(io["reads"], bound)]
        )
    report.table(
        "E7b  Theorem 7 query I/O: O(z lg(n/z)/B + lg n lg lg n)",
        ["range", "z", "block reads", "bound", "ratio"],
        rows,
    )
    benchmark(lambda: idx.range_query(0, 31))


def test_e7_equivalence_to_fresh_build(built, report, benchmark):
    from repro.core import PaghRaoIndex

    x, idx = built
    fresh = PaghRaoIndex(x, SIGMA)
    rng = random.Random(33)
    agreements = 0
    checks = 12
    for _ in range(checks):
        lo = rng.randrange(SIGMA)
        hi = rng.randrange(lo, SIGMA)
        if (
            idx.range_query(lo, hi).positions()
            == fresh.range_query(lo, hi).positions()
        ):
            agreements += 1
    report.table(
        "E7c  dynamic answers vs fresh static build after the E7a history",
        ["checks", "agreements", "rebuilds so far"],
        [[checks, agreements, idx.rebuilds]],
    )
    assert agreements == checks
    benchmark(lambda: idx.count_range(0, SIGMA - 1))
