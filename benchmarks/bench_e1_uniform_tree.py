"""E1 — Theorem 1 and the §1.2 lower-bound example.

Claims reproduced:
* Theorem 1 space: ``O(n lg^2 sigma)`` bits.
* Theorem 1 query: ``O(T/B + lg sigma)`` I/Os.
* §1.2: answering a length-l range by reading per-character compressed
  bitmaps costs a factor ``lg(sigma) / lg(sigma/l)`` more bits than the
  output's compressed size — the gap the tree removes.
"""

import math

import pytest

from repro.baselines import CompressedBitmapIndex
from repro.bench import cold_query, output_bits_bound, ratio
from repro.core import UniformTreeIndex
from repro.model.distributions import sequential

N = 1 << 13
SIGMAS = [64, 256, 1024]


@pytest.fixture(scope="module")
def indexes():
    built = {}
    for sigma in SIGMAS:
        x = sequential(N, sigma)
        built[sigma] = (x, UniformTreeIndex(x, sigma), CompressedBitmapIndex(x, sigma))
    return built


def test_e1_space_scaling(indexes, report, benchmark):
    rows = []
    for sigma in SIGMAS:
        _, tree, flat = indexes[sigma]
        bound = N * math.log2(sigma) ** 2
        rows.append(
            [
                sigma,
                tree.space().total_bits,
                f"{bound:,.0f}",
                ratio(tree.space().total_bits, bound),
                flat.space().total_bits,
            ]
        )
    report.table(
        "E1a  Theorem 1 space: O(n lg^2 sigma) bits   (n = %d, sequential)" % N,
        ["sigma", "tree bits", "n*lg^2(sigma)", "ratio", "flat bitmap bits"],
        rows,
        note="ratio must stay O(1) as sigma grows; the flat bitmap index "
        "stays near n*lg(sigma) but pays at query time (E1c).",
    )
    sigma = SIGMAS[-1]
    _, tree, _ = indexes[sigma]
    benchmark(lambda: tree.range_query(5, 12))


def test_e1_query_io_vs_range_length(indexes, report, benchmark):
    sigma = 256
    x, tree, _ = indexes[sigma]
    rows = []
    B = tree.disk.block_bits
    for length in [1, 4, 16, 64, 128, 255]:
        io = cold_query(tree, 0, length - 1)
        bound = output_bits_bound(N, io["z"]) / B + math.log2(sigma)
        rows.append([length, io["z"], io["reads"], f"{bound:.1f}", ratio(io["reads"], bound)])
    report.table(
        "E1b  Theorem 1 query I/O: O(T/B + lg sigma)   (n=%d, sigma=%d)" % (N, sigma),
        ["range len", "z", "block reads", "T/B + lg sigma", "ratio"],
        rows,
        note="the ratio column staying O(1) across lengths is the theorem.",
    )
    benchmark(lambda: tree.range_query(0, 63))


def test_e1_bitmap_scan_overhead(indexes, report, benchmark):
    # §1.2's example: uniform string, range length l; scanning the
    # per-character bitmaps reads Omega(lg sigma / lg(sigma/l)) x optimal.
    sigma = 1024
    x, tree, flat = indexes[sigma]
    rows = []
    for length in [16, 64, 256, 512, 1008]:
        tree_io = cold_query(tree, 0, length - 1)
        flat_io = cold_query(flat, 0, length - 1)
        out_bits = output_bits_bound(N, tree_io["z"])
        predicted = math.log2(sigma) / max(math.log2(sigma / length), 0.2)
        rows.append(
            [
                length,
                tree_io["z"],
                flat_io["bits_read"],
                tree_io["bits_read"],
                f"{flat_io['bits_read'] / max(tree_io['bits_read'], 1):.1f}x",
                f"{predicted:.1f}x",
            ]
        )
    report.table(
        "E1c  §1.2 example: per-character scan vs tree (bits read), sigma=%d" % sigma,
        ["range len", "z", "scan bits", "tree bits", "measured gap", "Ω(lgσ/lg(σ/l))"],
        rows,
        note="the measured gap should grow with l and track the predicted factor.",
    )
    benchmark(lambda: flat.range_query(0, 255))
