"""E9 — RID intersection for multi-dimensional queries (§1, §3).

The paper's motivating application: conjunctive range queries answered
by intersecting per-dimension secondary indexes — "find all married men
of age 33" — and its approximate variant where a row matching only k of
d conditions survives all filters with probability <= eps^(d-k).
"""

import random

import pytest

from repro.bench import ratio
from repro.queries import Table, approximate_factory

ROWS = 4000


@pytest.fixture(scope="module")
def people():
    rng = random.Random(40)
    columns = {
        "age": [rng.randrange(18, 82) for _ in range(ROWS)],
        "sex": [rng.choice(["f", "m"]) for _ in range(ROWS)],
        "status": [
            rng.choice(["divorced", "married", "single", "widowed"])
            for _ in range(ROWS)
        ],
        "income": [rng.randrange(0, 200) * 1000 for _ in range(ROWS)],
    }
    exact = Table(columns)
    approx = Table(columns, factory=approximate_factory(seed=5))
    return columns, exact, approx


CONDITIONS = {
    "d=2": {"age": (33, 33), "sex": ("m", "m")},
    "d=3": {"age": (33, 33), "sex": ("m", "m"), "status": ("married", "married")},
    "d=4": {
        "age": (33, 33),
        "sex": ("m", "m"),
        "status": ("married", "married"),
        "income": (50_000, 120_000),
    },
}


def test_e9_exact_intersection(people, report, benchmark):
    columns, exact, _ = people
    rows = []
    for label, conds in CONDITIONS.items():
        got = exact.select(conds)
        brute = [
            rid
            for rid in range(ROWS)
            if all(lo <= columns[c][rid] <= hi for c, (lo, hi) in conds.items())
        ]
        rows.append([label, len(conds), len(got), got == brute])
    report.table(
        "E9a  exact RID intersection ('married men of age 33', %d rows)" % ROWS,
        ["query", "dims", "matches", "equals brute force"],
        rows,
    )
    benchmark(lambda: exact.select(CONDITIONS["d=3"]))


def test_e9_approximate_filtering(people, report, benchmark):
    columns, exact, approx = people
    eps = 1 / 16
    rows = []
    for label, conds in CONDITIONS.items():
        truth = set(exact.select(conds))
        candidates = approx.select_approximate(conds, eps=eps, verify=False)
        verified = approx.select_approximate(conds, eps=eps, verify=True)
        false_cands = len(candidates) - len(truth & set(candidates))
        rows.append(
            [
                label,
                len(truth),
                len(candidates),
                false_cands,
                sorted(verified) == sorted(truth),
            ]
        )
    report.table(
        "E9b  approximate filters (eps=1/16): candidates vs truth",
        ["query", "true matches", "candidates", "false candidates",
         "verified == truth"],
        rows,
        note="more dimensions multiply each false candidate's survival "
        "probability by eps; verification against the table recovers "
        "the exact answer (§1.1).",
    )
    benchmark(lambda: approx.select_approximate(CONDITIONS["d=3"], eps=eps))


def test_e9_filtering_rate_vs_dimensions(people, report, benchmark):
    # Survival of non-matching rows ~ eps^(d-k): measure rows matching
    # exactly k of d conditions that survive all d filters.
    columns, exact, approx = people
    eps = 1 / 8
    conds = CONDITIONS["d=3"]
    names = list(conds)
    match_count = {}
    for rid in range(ROWS):
        k = sum(
            1 for c in names if conds[c][0] <= columns[c][rid] <= conds[c][1]
        )
        match_count[rid] = k
    candidates = set(approx.select_approximate(conds, eps=eps, verify=False))
    rows = []
    for k in (0, 1, 2, 3):
        pool = [rid for rid, kk in match_count.items() if kk == k]
        if not pool:
            continue
        survived = sum(1 for rid in pool if rid in candidates)
        expected = eps ** (3 - k)
        rows.append(
            [k, len(pool), survived, f"{survived / len(pool):.4f}",
             f"{expected:.4f}"]
        )
    report.table(
        "E9c  survival rate of rows matching k of d=3 conditions (eps=1/8)",
        ["k matched", "rows", "survived", "measured rate", "eps^(d-k)"],
        rows,
        note="§1.1: 'the probability that it will be reported by all d "
        "approximate range queries is at most eps^(d-k)'.",
    )
    benchmark(
        lambda: approx.select_approximate(conds, eps=eps, verify=False)
    )
