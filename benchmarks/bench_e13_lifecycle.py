"""E13 — shard lifecycle: split cost, latency recovery, streaming gather.

Three claims.  (a) Under sustained appends the auto lifecycle keeps
every shard at or below ``target_shard_rows`` — the fleet of splits is
timed against the same append stream with the lifecycle off, so the
recorded overhead is the honest price of staying balanced.  (b) The
balance buys the advisor back its per-shard verdicts and recovers
query latency: a cluster whose last shard absorbed all growth is
measured against the rebalanced one on the identical data, and the
explicit ``rebalance()`` that converts the former into the latter is
timed (the "split cost" a deployment would pay online).  (c) The
generator-based k-way gather bounds memory: on a low-selectivity
conjunctive select the peak buffered RID count must stay within the
two-dimension block bound (2 x max shard rows) however large the
answer — asserted, not just recorded.
"""

import pytest

from repro.bench import best_of, standard_string
from repro.bench.workloads import random_ranges
from repro.cluster import ClusterEngine

N = 1 << 12
SIGMA = 32
TARGET = 512
NUM_QUERIES = 16


@pytest.fixture(scope="module")
def append_stream():
    return standard_string("zipf", N, SIGMA, seed=61, theta=1.2)


@pytest.fixture(scope="module")
def query_batch():
    return random_ranges(SIGMA, NUM_QUERIES, seed=62)


def run_queries(cluster, query_batch):
    return [
        cluster.query("c", lo, hi).cardinality for lo, hi in query_batch
    ]


def test_e13a_autosplit_keeps_shards_bounded(
    append_stream, query_batch, report, benchmark
):
    base = standard_string("zipf", N, SIGMA, seed=60, theta=1.2)

    def grow(lifecycle: bool) -> ClusterEngine:
        cluster = ClusterEngine(
            target_shard_rows=TARGET,
            auto_split=lifecycle,
            drift_window=None,
        )
        cluster.add_column("c", base, SIGMA, dynamism="semidynamic")
        for ch in append_stream:
            cluster.append("c", ch)
        return cluster

    managed_s, managed = best_of(lambda: grow(True), repeats=1)
    frozen_s, frozen = best_of(lambda: grow(False), repeats=1)
    # Exactness: the lifecycle is invisible to answers.
    reference = run_queries(frozen, query_batch)
    assert run_queries(managed, query_batch) == reference
    # The balance claim: no shard above target, splits actually fired.
    assert managed.splits
    assert max(managed.shard_lengths("c")) <= TARGET
    assert max(frozen.shard_lengths("c")) > TARGET  # the control bloated
    managed_q, _ = best_of(lambda: run_queries(managed, query_batch), 3)
    frozen_q, _ = best_of(lambda: run_queries(frozen, query_batch), 3)
    report.table(
        f"E13a  auto-split under {N} appends onto n={N} "
        f"(target_shard_rows={TARGET})",
        ["lifecycle", "appends+splits", "final shards", "max shard rows",
         "splits", f"{NUM_QUERIES}-query batch"],
        [
            ["on", f"{managed_s:.4f}s", managed.num_shards,
             max(managed.shard_lengths("c")), len(managed.splits),
             f"{managed_q:.4f}s"],
            ["off (control)", f"{frozen_s:.4f}s", frozen.num_shards,
             max(frozen.shard_lengths("c")), 0, f"{frozen_q:.4f}s"],
        ],
        note="identical answers asserted; the lifecycle column's extra "
        "append time is the total split cost of staying balanced.",
    )
    benchmark(lambda: run_queries(managed, query_batch))


def test_e13b_rebalance_recovers_maintenance_pause(
    query_batch, report, benchmark
):
    # One fat shard (every append landed there) vs the same data
    # rebalanced.  The explicit rebalance is the timed "split cost";
    # the recovery shows up in the *online maintenance pause* — the
    # in-place rebuild any migration/freeze/split of the worst shard
    # must eat, which scales with that shard's rows.  (Total query
    # bits are answer-bound either way — §1.1's point — so the batch
    # wall-clock is recorded for honesty, not claimed as a win on the
    # serial in-process substrate.)
    from repro.engine import get_spec

    base = standard_string("uniform", N // 4, SIGMA, seed=63)
    growth = standard_string("zipf", N, SIGMA, seed=64, theta=1.3)
    cluster = ClusterEngine(num_shards=4, drift_window=None)
    cluster.add_column("c", base, SIGMA, dynamism="semidynamic")
    for ch in growth:
        cluster.append("c", ch)
    spec = get_spec("appendable")

    def worst_rebuild_pause() -> tuple[int, float]:
        lengths = cluster.shard_lengths("c")
        fattest = max(range(len(lengths)), key=lengths.__getitem__)
        codes = [
            c
            for c in cluster.shard_column("c", fattest).codes
            if c is not None
        ]
        seconds, _ = best_of(lambda: spec.build(codes, SIGMA), repeats=3)
        return lengths[fattest], seconds

    fat_rows, fat_pause = worst_rebuild_pause()
    assert fat_rows > TARGET  # lopsided by design
    before_counts = run_queries(cluster, query_batch)
    before_q, _ = best_of(lambda: run_queries(cluster, query_batch), 3)
    split_s, ops = best_of(
        lambda: cluster.rebalance(target_shard_rows=TARGET), repeats=1
    )
    assert ops > 0 and max(cluster.shard_lengths("c")) <= TARGET
    assert run_queries(cluster, query_batch) == before_counts
    after_q, _ = best_of(lambda: run_queries(cluster, query_batch), 3)
    balanced_rows, balanced_pause = worst_rebuild_pause()
    assert balanced_pause < fat_pause  # the pause really recovered
    report.table(
        f"E13b  rebalance of one fat shard ({N // 4}+{N} rows, 4 shards "
        f"-> target {TARGET})",
        ["phase", "shards", "max shard rows", "worst rebuild pause",
         "query batch", "split cost"],
        [
            ["before", 4, fat_rows, f"{fat_pause * 1e3:.2f}ms",
             f"{before_q:.4f}s", "-"],
            ["after rebalance", cluster.num_shards, balanced_rows,
             f"{balanced_pause * 1e3:.2f}ms", f"{after_q:.4f}s",
             f"{split_s:.4f}s ({ops} ops)"],
        ],
        note="answers asserted identical across the reshape; the split "
        "cost is paid once, the bounded rebuild pause (what an online "
        "migration or the next split stalls for) recurs on every "
        "maintenance action.  Query totals are answer-bound either "
        "way; under a parallel executor the scatter makespan follows "
        "the max-shard bound instead.",
    )
    benchmark(lambda: run_queries(cluster, query_batch))


def test_e13c_streaming_gather_bounds_memory(report, benchmark):
    a = standard_string("uniform", N, 8, seed=65)
    b = standard_string("uniform", N, 8, seed=66)
    cluster = ClusterEngine(num_shards=16, drift_window=None)
    cluster.add_column("a", a, 8)
    cluster.add_column("b", b, 8)
    conditions = {"a": (0, 6), "b": (0, 6)}  # low selectivity: huge answer

    def streamed():
        cluster.gather_stats.reset()
        count = 0
        for _ in cluster.select_iter(conditions):
            count += 1
        return count, cluster.gather_stats.peak_rids

    seconds, (answer, peak) = best_of(streamed, repeats=3)
    max_shard = max(cluster.shard_lengths("a"))
    bound = 2 * max_shard  # one shard buffer per dimension
    assert answer > N // 2  # the answer really is huge
    assert peak <= bound, f"peak {peak} RIDs exceeds block bound {bound}"
    assert cluster.select(conditions) == [
        i for i in range(N) if a[i] <= 6 and b[i] <= 6
    ]
    report.table(
        f"E13c  streaming k-way gather: 2-dim select over {N} rows x "
        "16 shards",
        ["answer RIDs", "peak buffered RIDs", "block bound (2 x max "
         "shard)", "full answer", "seconds"],
        [[answer, peak, bound, f"{answer / peak:.0f}x peak", f"{seconds:.4f}"]],
        note="peak <= bound asserted: the gather materializes one "
        "shard's answer per dimension at a time, never the merged "
        "per-dimension streams.",
    )
    benchmark(lambda: sum(1 for _ in cluster.select_iter(conditions)))
