"""E8 — "Beyond B-trees and bitmap indexes": the full structure matrix.

The paper's framing (§1.3): B-trees and bitmap indexes are the two
extremes of secondary indexing, and every earlier scheme trades space
against query time; Theorem 2 is simultaneously at both optima (up to
constants).  This experiment builds every structure on the same strings
and reports space and query cost across a selectivity sweep — the
"who wins where" table of the reproduction.
"""

import pytest

from repro.baselines import (
    BinnedBitmapIndex,
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    IntervalEncodedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    UncompressedBitmapIndex,
    WahBitmapIndex,
)
from repro.bench import (
    cold_query,
    output_bits_bound,
    prefix_range_for_selectivity,
    standard_string,
)
from repro.core import PaghRaoIndex
from repro.model.entropy import entropy_bits

N = 1 << 13
SIGMA = 128

STRUCTURES = [
    ("PaghRao (Thm 2)", PaghRaoIndex, {}),
    ("B-tree", BTreeSecondaryIndex, {}),
    ("bitmap gamma-RLE", CompressedBitmapIndex, {}),
    ("bitmap plain", UncompressedBitmapIndex, {}),
    ("binned w=8", BinnedBitmapIndex, {"bin_width": 8}),
    ("multires w=4", MultiResolutionBitmapIndex, {"bin_width": 4}),
    ("range-encoded", RangeEncodedBitmapIndex, {}),
    ("interval-encoded", IntervalEncodedBitmapIndex, {}),
    ("WAH bitmap", WahBitmapIndex, {}),
]


@pytest.fixture(scope="module")
def matrix():
    x = standard_string("sequential", N, SIGMA)
    return x, [(name, cls(x, SIGMA, **kw)) for name, cls, kw in STRUCTURES]


def test_e8_space_table(matrix, report, benchmark):
    x, built = matrix
    base = entropy_bits(x) + N
    rows = []
    for name, idx in built:
        s = idx.space()
        rows.append(
            [name, s.payload_bits, s.directory_bits,
             f"{s.total_bits / base:.2f}x"]
        )
    report.table(
        "E8a  space of every structure  (n=%d, sigma=%d, sequential; "
        "baseline nH0+n = %d bits)" % (N, SIGMA, int(base)),
        ["structure", "payload bits", "directory bits", "vs nH0+n"],
        rows,
        note="expected shape: Thm2 ~ O(1)x; gamma bitmap ~ lg sigma/H0 x; "
        "plain/range/interval ~ sigma-ish x; B-tree ~ lg n x.",
    )
    benchmark(lambda: built[0][1].count_range(0, SIGMA - 1))


def test_e8_query_io_selectivity_sweep(matrix, report, benchmark):
    x, built = matrix
    sels = [1 / 1024, 1 / 128, 1 / 16, 1 / 4, 1 / 2]
    headers = ["structure"] + [f"sel 1/{round(1/s)}" for s in sels]
    rows = []
    for name, idx in built:
        row = [name]
        for sel in sels:
            lo, hi = prefix_range_for_selectivity(x, SIGMA, sel)
            io = cold_query(idx, lo, hi)
            row.append(io["reads"])
        rows.append(row)
    bound_row = ["(output bound z*lg(n/z)/B)"]
    for sel in sels:
        lo, hi = prefix_range_for_selectivity(x, SIGMA, sel)
        z = len([1 for ch in x if lo <= ch <= hi])
        bound_row.append(f"{output_bits_bound(N, z) / 1024:.1f}")
    rows.append(bound_row)
    report.table(
        "E8b  query block reads across selectivity (cold cache)",
        headers,
        rows,
        note="the paper's claim: Thm 2 tracks the bottom row within a "
        "constant at every selectivity; each baseline blows up somewhere "
        "(B-tree at high sel, bitmap scan at wide ranges, binned on edges).",
    )
    benchmark(lambda: built[0][1].range_query(0, 15))


def test_e8_crossover_btree_vs_bitmap_vs_ours(matrix, report, benchmark):
    # The title claim in one table: where each extreme wins, and that
    # Thm 2 never loses by more than a constant.
    x, built = matrix
    ours = dict(built)["PaghRao (Thm 2)"]
    btree = dict(built)["B-tree"]
    bitmap = dict(built)["bitmap gamma-RLE"]
    rows = []
    for sel in [1 / 4096, 1 / 256, 1 / 64, 1 / 8, 1 / 2]:
        lo, hi = prefix_range_for_selectivity(x, SIGMA, sel)
        io_ours = cold_query(ours, lo, hi)
        io_btree = cold_query(btree, lo, hi)
        io_bitmap = cold_query(bitmap, lo, hi)
        winner = min(
            [("ours", io_ours["reads"]), ("btree", io_btree["reads"]),
             ("bitmap", io_bitmap["reads"])],
            key=lambda t: t[1],
        )[0]
        rows.append(
            [f"1/{round(1/sel)}", io_ours["z"], io_btree["reads"],
             io_bitmap["reads"], io_ours["reads"], winner]
        )
    report.table(
        "E8c  the two extremes vs Theorem 2 (block reads)",
        ["selectivity", "z", "B-tree", "bitmap scan", "Thm 2", "winner"],
        rows,
        note="B-tree wins tiny answers (pure descent), bitmap wins single "
        "characters; Thm 2 stays within a small constant of the best "
        "everywhere — the 'no trade-off' headline.",
    )
    benchmark(lambda: ours.range_query(0, 63))
