"""E19 — serving front-end QPS: coalescing, admission, replicas.

Three claims, each against a serial oracle so throughput never buys
wrong answers.

(a) **Single-flight coalescing** lifts closed-loop QPS >= 1.5x on a
Zipf-skewed query mix once concurrency rises: duplicate in-flight
plans collapse onto one scatter.  The shared result cache is
deliberately nulled out so the measured effect is coalescing's alone
— with caching on, both sides would be answering from memory.

(b) **Admission control** bounds tail latency under overload: with
requests arriving at ~2x the serving capacity, a shed-enabled front
end keeps admitted-request p99 within 3x the uncontended p99, while
a no-admission run (same arrivals) lets the queue grow without bound
and blows far past it.

(c) **Hot-shard replicas** absorb scatter reads after cache drops:
the replica consult serves from RAM copies with answers identical to
the primary's.

Every test folds its numbers into one consolidated
``benchmarks/results/BENCH_E19.json`` (QPS, p50/p99, coalesce rate)
on top of the standard per-module report.
"""

import asyncio
import gc
import json
import os
import random
import time

from repro.cluster import (
    CacheStore,
    ClusterEngine,
    InMemorySharedCache,
)
from repro.errors import Overloaded
from repro.iomodel.cache import LRUBlockCache
from repro.obs import MetricsRegistry
from repro.query import Range
from repro.serve import FrontEnd, ReplicaSet

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CONSOLIDATED = os.path.join(RESULTS_DIR, "BENCH_E19.json")

N = 40_000
SIGMA = 64
SHARDS = 6
REQUIRED_COALESCE_SPEEDUP = 1.5
P99_BOUND = 3.0


class _NullStore(CacheStore):
    """No result caching: every repeat is real work (see module doc)."""

    def get(self, key):
        return None

    def put(self, key, positions):
        pass

    def __len__(self):
        return 0


def _merge_consolidated(section: str, payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(CONSOLIDATED):
        with open(CONSOLIDATED) as f:
            data = json.load(f)
    data[section] = payload
    with open(CONSOLIDATED, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _make_cluster(rows=N, io_latency_s=0.0, store=None, sigma=SIGMA,
                  cache_size=128):
    # At 40k rows the per-request cost is real plan evaluation (a few
    # ms), not a disk-block-cache artifact — tiny columns go fully
    # resident after one touch and would make every repeat free.
    random.seed(190)
    codes = [random.randrange(sigma) for _ in range(rows)]
    cluster = ClusterEngine(
        num_shards=SHARDS,
        io_latency_s=io_latency_s,
        cache_size=cache_size,
        shared_cache=(
            InMemorySharedCache(store=store) if store is not None else None
        ),
        drift_window=None,
    )
    cluster.add_column("v", codes, sigma)
    return cluster, codes


def _zipf_picks(rng, universe, count, theta=1.2):
    weights = [1.0 / (rank + 1) ** theta for rank in range(universe)]
    return rng.choices(range(universe), weights=weights, k=count)


def test_e19a_coalescing_qps(report):
    # cache_size=0 switches off the per-shard fold LRU (and the null
    # store the shared result cache), so a repeated predicate is real
    # work every time — the measured speedup is coalescing's alone.
    cluster, _ = _make_cluster(store=_NullStore(), cache_size=0)
    preds = [
        Range("v", lo, min(SIGMA - 1, lo + 5)) for lo in range(0, 48)
    ]
    oracle = [cluster.count(p) for p in preds]
    rng = random.Random(191)
    ladder = [4, 16, 32]
    per_client = 8
    # One workload per ladder level, shared by both coalesce modes —
    # an rng drawn inside the mode loop would hand the two modes
    # different Zipf mixes and bias the comparison.
    workloads = {
        clients: [
            _zipf_picks(rng, len(preds), per_client)
            for _ in range(clients)
        ]
        for clients in ladder
    }
    rows = []
    qps = {}

    for coalesce in (True, False):
        for clients in ladder:
            picks = workloads[clients]
            metrics = MetricsRegistry()
            fe = FrontEnd(
                cluster,
                coalesce=coalesce,
                max_inflight=4096,
                metrics=metrics,
            )
            latencies = []

            async def client(sequence):
                for index in sequence:
                    t0 = time.perf_counter()
                    value = await fe.count(preds[index])
                    latencies.append(time.perf_counter() - t0)
                    assert value == oracle[index], "QPS bought a wrong answer"

            async def main():
                t0 = time.perf_counter()
                await asyncio.gather(*[client(s) for s in picks])
                elapsed = time.perf_counter() - t0
                await fe.close()
                return elapsed

            elapsed = asyncio.run(main())
            total = clients * per_client
            rate = total / elapsed
            coalesce_rate = fe.coalesced / total
            qps[(coalesce, clients)] = rate
            rows.append(
                [
                    "on" if coalesce else "off",
                    clients,
                    total,
                    f"{rate:.0f}",
                    f"{_percentile(latencies, 0.50) * 1e3:.2f}",
                    f"{_percentile(latencies, 0.99) * 1e3:.2f}",
                    f"{coalesce_rate:.2f}",
                ]
            )

    top = ladder[-1]
    speedup = qps[(True, top)] / qps[(False, top)]
    assert speedup >= REQUIRED_COALESCE_SPEEDUP, (
        f"coalescing-on QPS only {speedup:.2f}x coalescing-off at "
        f"{top} clients (need >= {REQUIRED_COALESCE_SPEEDUP}x)"
    )
    report.table(
        f"E19a  single-flight coalescing: closed-loop Zipf mix, "
        f"{SHARDS} shards, null shared cache",
        [
            "coalesce", "clients", "requests", "qps",
            "p50 ms", "p99 ms", "coalesce rate",
        ],
        rows,
        note=(
            f"at {top} clients coalescing-on serves "
            f"{speedup:.2f}x the QPS of coalescing-off"
        ),
    )
    _merge_consolidated(
        "coalescing",
        {
            "ladder": ladder,
            "qps_on": {str(c): qps[(True, c)] for c in ladder},
            "qps_off": {str(c): qps[(False, c)] for c in ladder},
            "speedup_at_top": speedup,
            "rows": rows,
        },
    )
    cluster.close()


def test_e19b_admission_bounds_p99(report):
    # The disk-latency model sleeps per block miss *releasing the GIL*
    # — which is what lets offered load actually exceed capacity: a
    # pure-compute service would starve the event loop and throttle
    # arrivals to capacity on its own.  Service times must also be
    # *history-independent*, or the workload itself biases the
    # verdict: with a warm block cache, a query's cost depends on
    # which ranges ran before it — and since shed requests never
    # execute, the shed run's admitted queries land on colder regions
    # than the no-admission run's contiguous stream ever does.
    # Zeroing every shard's block cache (the disk model's documented
    # mem_blocks=0 mode: every access is a transfer) makes each
    # query pay its full block cost every time — one flat service
    # time from the first baseline sample to the last overload
    # arrival, whatever got shed in between.  cache_size=0 switches
    # off the per-shard fold LRU too, so even a repeated range (the
    # retry loop below replays the same workload) is real work.
    cluster, _ = _make_cluster(
        io_latency_s=0.0002, store=_NullStore(), cache_size=0
    )
    for shard in cluster.shards:
        shard.column("v").index.disk.cache = LRUBlockCache(0)
    preds = [
        Range("v", lo, lo + width)
        for width in (7, 8, 9, 10)
        for lo in range(0, 50)
    ]

    def measure_baseline():
        # Uncontended: sequential requests, no queueing anywhere.  One
        # warmup request spawns the pool threads before timing starts.
        gc.collect()
        fe = FrontEnd(cluster, coalesce=False)
        base = []

        async def baseline():
            await fe.count(preds[0])
            for pred in preds[1:17]:
                t0 = time.perf_counter()
                await fe.count(pred)
                base.append(time.perf_counter() - t0)
            await fe.close()

        asyncio.run(baseline())
        return base

    def offered_run(max_inflight, service, warm, batch):
        # One untimed warmup spawns the fresh front end's pool threads
        # and a gc.collect clears the previous phase's debt, so the
        # timed samples see steady state only.
        gc.collect()
        front = FrontEnd(
            cluster, coalesce=False, max_inflight=max_inflight
        )
        admitted_latencies = []
        shed = 0

        async def one(pred):
            nonlocal shed
            t0 = time.perf_counter()
            try:
                await front.count(pred)
            except Overloaded:
                shed += 1
                return
            admitted_latencies.append(time.perf_counter() - t0)

        async def main():
            await front.count(warm)
            # Open loop at ~2x capacity: one serialized engine serves
            # one request per `service`, arrivals land every service/2.
            tasks = []
            for pred in batch:
                tasks.append(asyncio.ensure_future(one(pred)))
                await asyncio.sleep(service / 2)
            await asyncio.gather(*tasks)
            await front.close()

        asyncio.run(main())
        return admitted_latencies, shed

    # Timing benches retry on scheduler noise (the best_of philosophy
    # in repro.bench.harness: noise only ever *adds* time).  A single
    # OS stall freezes every in-flight request at once, so no sample
    # size can absorb it — a contaminated attempt is discarded and
    # the whole measurement re-run, up to three times.
    for attempt in range(3):
        base = measure_baseline()
        base_p99 = _percentile(base, 0.99)
        service = sum(base) / len(base)
        # ~120 arrivals admit 60+, enough that p99 is no longer the
        # max of the sample.
        shed_latencies, shed_count = offered_run(
            max_inflight=2, service=service,
            warm=preds[17], batch=preds[18:138],
        )
        noadm_latencies, noadm_shed = offered_run(
            max_inflight=100_000, service=service,
            warm=preds[138], batch=preds[139:199],
        )
        shed_p99 = _percentile(shed_latencies, 0.99)
        noadm_p99 = _percentile(noadm_latencies, 0.99)
        if (
            shed_count > 0
            and noadm_shed == 0
            and shed_p99 <= P99_BOUND * base_p99
            and noadm_p99 > P99_BOUND * base_p99
        ):
            break

    assert shed_count > 0, "2x offered load never tripped admission"
    assert noadm_shed == 0
    assert shed_p99 <= P99_BOUND * base_p99, (
        f"admitted p99 {shed_p99 * 1e3:.1f}ms exceeds "
        f"{P99_BOUND}x uncontended p99 {base_p99 * 1e3:.1f}ms"
    )
    assert noadm_p99 > P99_BOUND * base_p99, (
        "the no-admission run should have blown the tail bound "
        f"(p99 {noadm_p99 * 1e3:.1f}ms vs base {base_p99 * 1e3:.1f}ms)"
    )
    report.table(
        "E19b  admission control under 2x offered load "
        f"({SHARDS} shards, service ~{service * 1e3:.1f}ms)",
        ["front end", "admitted", "shed", "p50 ms", "p99 ms", "p99/base"],
        [
            [
                "max_inflight=2",
                len(shed_latencies),
                shed_count,
                f"{_percentile(shed_latencies, 0.5) * 1e3:.2f}",
                f"{shed_p99 * 1e3:.2f}",
                f"{shed_p99 / base_p99:.2f}",
            ],
            [
                "unbounded",
                len(noadm_latencies),
                noadm_shed,
                f"{_percentile(noadm_latencies, 0.5) * 1e3:.2f}",
                f"{noadm_p99 * 1e3:.2f}",
                f"{noadm_p99 / base_p99:.2f}",
            ],
        ],
        note=(
            f"uncontended p99 {base_p99 * 1e3:.2f}ms; the bound is "
            f"{P99_BOUND}x"
        ),
    )
    _merge_consolidated(
        "admission",
        {
            "base_p99_s": base_p99,
            "shed": {
                "p99_s": shed_p99,
                "admitted": len(shed_latencies),
                "shed": shed_count,
            },
            "no_admission": {
                "p99_s": noadm_p99,
                "admitted": len(noadm_latencies),
            },
            "bound": P99_BOUND,
            "attempts": attempt + 1,
        },
    )
    cluster.close()


def test_e19c_replica_offload(report):
    cluster, codes = _make_cluster(rows=600, io_latency_s=0.0004)
    replicas = ReplicaSet(capacity=SHARDS)
    cluster.attach_replicas(replicas)
    pred = Range("v", 3, 12)
    oracle = cluster.select(pred)
    for _ in range(4):
        cluster.drop_caches()
        assert cluster.select(pred) == oracle
    stats = replicas.stats()
    assert stats.hits > 0, "cache drops never reached the replicas"
    report.table(
        "E19c  hot-shard replicas: scatter reads after cache drops",
        ["replicas", "hits", "stale", "absent", "builds"],
        [
            [
                f"{stats.capacity} resident",
                stats.hits,
                stats.stale,
                stats.absent,
                stats.builds,
            ]
        ],
        note="answers identical to the primary's on every pass",
    )
    _merge_consolidated(
        "replicas",
        {
            "capacity": stats.capacity,
            "hits": stats.hits,
            "stale": stats.stale,
            "absent": stats.absent,
        },
    )
    cluster.close()
