"""E11 — the engine: advisor picks vs fixed backends, and the cache.

The engine's claim is twofold.  First, the advisor's per-column choice
should land at (or near) the backend a fixed-choice caller would only
find by building *every* structure: we build the full static matrix on
four characteristic workloads and rank the advisor's pick by measured
cost (space + query I/O, the cost model's own currency).  Second,
repeated queries served from the LRU result cache must be measurably
faster than cold queries against the underlying structure.
"""

import time

import pytest

from repro.bench import cold_query, prefix_range_for_selectivity, standard_string
from repro.engine import (
    Advisor,
    CostModel,
    QueryEngine,
    WorkloadStats,
    specs,
)
from repro.model.entropy import h0

N = 1 << 12

WORKLOADS = [
    ("low-card uniform", "uniform", 4, {}),
    ("zipf skew", "zipf", 64, {"theta": 1.2}),
    ("runs-heavy markov", "markov_runs", 32, {"stay": 0.97}),
    ("high-entropy uniform", "uniform", 256, {}),
]

SELS = [1 / 64, 1 / 4]
QUERIES_PER_BUILD = 64.0


@pytest.fixture(scope="module")
def workloads():
    return [
        (name, standard_string(kind, N, sigma, seed=21, **kw), sigma)
        for name, kind, sigma, kw in WORKLOADS
    ]


def measured_cost(x, sigma, idx):
    """Space + weighted query bits: the cost model's currency, measured."""
    space = idx.space().total_bits
    query_bits = 0.0
    for sel in SELS:
        lo, hi = prefix_range_for_selectivity(x, sigma, sel)
        idx.disk.flush_cache()
        with idx.stats.measure() as m:
            idx.range_query(lo, hi)
        query_bits += m.bits_read / len(SELS)
    return space + QUERIES_PER_BUILD * query_bits


@pytest.fixture(scope="module")
def measured_matrix(workloads):
    """Measured cost of every static exact backend on every workload,
    built once and shared by E11a (ranking) and E11e (calibration)."""
    fixed = specs(dynamism="static", exact=True)
    matrix = {}
    for name, x, sigma in workloads:
        for spec in fixed:
            idx = spec.build(x, sigma)
            matrix[(name, spec.name)] = measured_cost(x, sigma, idx)
    return fixed, matrix


def test_e11a_advisor_rank_in_fixed_matrix(
    workloads, measured_matrix, report, benchmark
):
    fixed, matrix = measured_matrix
    rows = []
    for name, x, sigma in workloads:
        stats = WorkloadStats.measure(x, sigma)
        pick = Advisor().pick(stats)
        costs = {spec.name: matrix[(name, spec.name)] for spec in fixed}
        ranked = sorted(costs, key=costs.get)
        best, worst = ranked[0], ranked[-1]
        rank = ranked.index(pick.name) + 1
        rows.append(
            [
                name,
                f"{h0(x):.2f}",
                pick.name,
                f"{rank}/{len(ranked)}",
                best,
                f"{costs[pick.name] / costs[best]:.2f}x",
                f"{costs[worst] / costs[pick.name]:.1f}x",
            ]
        )
        # The advisor must always land in the better half of the
        # matrix, never at the bottom.
        assert rank <= len(ranked) // 2, (
            f"advisor picked {pick.name} ranked {rank} on {name}"
        )
    report.table(
        "E11a  advisor pick vs the measured fixed-backend matrix "
        f"(n={N}, space + {QUERIES_PER_BUILD:.0f} queries)",
        ["workload", "H0", "advisor pick", "rank", "measured best",
         "vs best", "worst vs pick"],
        rows,
        note="rank = advisor's position among all static exact backends "
        "by measured cost; 'vs best' is the advisor's regret.",
    )
    benchmark(lambda: Advisor().pick(WorkloadStats.measure(workloads[0][1], 4)))


def test_e11b_advisor_families_match_theory(workloads, report, benchmark):
    # The *analytic* advisor documents the paper's taxonomy; the
    # calibrated default (CostModel()) re-weighs these verdicts by
    # measurement and may disagree — both are recorded.
    analytic = Advisor(CostModel(calibration=None))
    rows = []
    for name, x, sigma in workloads:
        stats = WorkloadStats.measure(x, sigma)
        pick = analytic.pick(stats)
        default_pick = Advisor().pick(stats)
        rows.append(
            [name, sigma, f"{stats.h0:.2f}", pick.name, pick.family,
             default_pick.name]
        )
    report.table(
        "E11b  who the advisor chooses where",
        ["workload", "sigma", "H0", "backend", "family",
         "calibrated default pick"],
        rows,
        note="the paper's §1.3 message: bitmap variants at low "
        "cardinality, the entropy-bounded Thm-2 structure at high "
        "entropy (with sigma << n); the last column is the checked-in "
        "calibrated model's (possibly re-ranked) verdict.",
    )
    by_name = {row[0]: row[4] for row in rows}
    assert by_name["low-card uniform"] == "bitmap"
    assert by_name["high-entropy uniform"] == "pagh-rao"
    benchmark(lambda: Advisor().rank(WorkloadStats.measure(workloads[0][1], 4)))


def test_e11c_cache_hot_vs_cold(workloads, report, benchmark):
    _, x, sigma = workloads[-1]
    engine = QueryEngine(cache_size=256)
    engine.add_column("c", x, sigma)
    ranges = [
        prefix_range_for_selectivity(x, sigma, sel)
        for sel in [1 / 128, 1 / 32, 1 / 8, 1 / 2]
    ]
    index = engine.columns["c"].index

    def run_cold():
        total = 0
        for lo, hi in ranges:
            index.disk.flush_cache()
            total += index.range_query(lo, hi).cardinality
        return total

    def run_hot():
        total = 0
        for lo, hi in ranges:
            total += engine.query("c", lo, hi).cardinality
        return total

    run_hot()  # warm the result cache
    t0 = time.perf_counter()
    for _ in range(20):
        cold_total = run_cold()
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(20):
        hot_total = run_hot()
    hot_s = time.perf_counter() - t0

    assert hot_total == cold_total
    assert hot_s < cold_s / 2, (
        f"cached queries not measurably faster: hot={hot_s:.4f}s "
        f"cold={cold_s:.4f}s"
    )
    report.table(
        "E11c  LRU result cache: hot vs cold (20 rounds x 4 ranges)",
        ["mode", "seconds", "speedup", "cache hit rate"],
        [
            ["cold (flushed disk cache)", f"{cold_s:.4f}", "1.0x", "-"],
            [
                "hot (engine LRU)",
                f"{hot_s:.4f}",
                f"{cold_s / max(hot_s, 1e-9):.0f}x",
                f"{engine.cache.hit_rate:.0%}",
            ],
        ],
        note="identical answers; the engine serves repeats from the "
        "result cache and invalidates on the update paths (E11d).",
    )
    benchmark(run_hot)


def test_e11e_calibration_table_fits_family_weights(
    workloads, measured_matrix, report, benchmark
):
    """Record estimated vs measured cost per backend — the calibration
    table ``CostModel.from_reports`` fits per-family weights from —
    then prove the round-trip on this very report."""
    fixed, matrix = measured_matrix
    # The estimated column must be the *analytic* model's: the fitted
    # weights correct the raw estimators (fitting against the already
    # calibrated default would double-apply the correction).
    model = CostModel(queries_per_build=QUERIES_PER_BUILD, calibration=None)
    stats_by_workload = {
        name: [
            WorkloadStats.measure(x, sigma, expected_selectivity=sel)
            for sel in SELS
        ]
        for name, x, sigma in workloads
    }
    rows = []
    for spec in fixed:
        est = measured = 0.0
        for name, x, sigma in workloads:
            stats_per_sel = stats_by_workload[name]
            est += sum(model.score(spec, s) for s in stats_per_sel) / len(SELS)
            measured += matrix[(name, spec.name)]
        rows.append([spec.name, spec.family, est, measured])
    report.table(
        "E11e  calibration: estimated vs measured cost "
        f"(summed over {len(workloads)} workloads)",
        ["backend", "family", "est_bits", "measured_bits"],
        rows,
        note="CostModel.from_reports() fits family weights as "
        "measured/estimated ratios from exactly this table.",
    )
    # Round-trip: save what we have so far and fit weights from it.
    report.save()
    path = report.json_path(report.out_dir, report.name)
    calibrated = CostModel.from_reports([path])
    families = {spec.family for spec in fixed}
    for family in families:
        weight = calibrated.family_weight(family)
        assert 0.0 < weight < float("inf")
        assert weight != 1.0  # a measured ratio, not the neutral default
    # Emit the compact feedback artifact: the per-family weights JSON
    # that CostModel.load_calibrated() (and through it Table /
    # ShardedTable via cost_model=) loads back in — the workflow
    # documented in src/repro/engine/README.md.
    import json
    import os

    weights_path = os.path.join(report.out_dir, "e11_family_weights.json")
    with open(weights_path, "w") as f:
        json.dump(
            {
                "family_weights": dict(calibrated.family_weights),
                "source": report.name,
            },
            f,
            indent=2,
        )
    loaded = CostModel.load_calibrated(weights_path)
    assert loaded.family_weights == calibrated.family_weights
    # ...and the report-JSON fallback parses to the same weights.
    assert (
        CostModel.load_calibrated(path).family_weights
        == calibrated.family_weights
    )
    # The calibrated model must not degrade the advisor's verdict: its
    # pick still lands in the better half of the measured matrix.
    for name, x, sigma in workloads:
        stats = WorkloadStats.measure(x, sigma)
        pick = Advisor(loaded).pick(stats)
        costs = {spec.name: matrix[(name, spec.name)] for spec in fixed}
        ranked = sorted(costs, key=costs.get)
        assert ranked.index(pick.name) + 1 <= len(ranked) // 2, (
            f"calibrated advisor picked {pick.name} on {name}"
        )
    # End to end: tables accept the loaded model and still serve.
    from repro.queries import Table

    table = Table({"v": [3, 1, 4, 1, 5, 9, 2, 6]}, cost_model=loaded)
    assert table.select({"v": (1, 4)}) == [0, 1, 2, 3, 6]
    benchmark(lambda: CostModel.load_calibrated(weights_path))


def test_e11d_invalidation_keeps_answers_exact(workloads, report, benchmark):
    engine = QueryEngine(cache_size=64)
    x = standard_string("uniform", 1 << 10, 16, seed=22)
    engine.add_column("d", list(x), 16, dynamism="fully_dynamic")
    model = list(x)
    stale = 0
    checks = 0
    for step in range(200):
        lo, hi = step % 8, step % 8 + 8
        want = [i for i, c in enumerate(model) if lo <= c <= hi]
        # Twice per step: the second answer is a cache hit that must
        # reflect every update applied so far.
        for _ in range(2):
            got = engine.query("d", lo, hi).positions()
            checks += 1
            if got != want:
                stale += 1
        if step % 3 == 0:
            pos, ch = (step * 7) % len(model), (step * 5) % 16
            engine.change("d", pos, ch)
            model[pos] = ch
        else:
            engine.append("d", step % 16)
            model.append(step % 16)
    assert stale == 0
    report.table(
        "E11d  cache correctness under 200 interleaved update/query steps",
        ["checks", "stale answers", "cache hits", "cache misses"],
        [[checks, stale, engine.cache.hits, engine.cache.misses]],
        note="every query checked against a plain-Python model while "
        "appends and changes invalidate the column's cache entries.",
    )
    benchmark(lambda: engine.query("d", 0, 15).cardinality)
