"""E20 — durable persistence: cold restore, WAL replay, checkpoint pause.

Three claims, each measured against the live cluster the durable
directory was written from, so durability never buys wrong answers.

(a) **Cold restore beats rebuild >= 3x**: restoring a 16-shard
cluster from its checkpoint (mmap'd snapshot sections + WAL tail
replay) is at least 3x faster than rebuilding the same cluster from
the raw code sequences, and the restored cluster — under the serial
executor *and* a resident process executor — answers a probe battery
identically to the cluster that wrote the checkpoint.  The gap is
structural: a rebuild re-derives every index (the paper's
construction cost), a restore pages the already-built bytes in on
demand.

(b) **WAL replay throughput**: acknowledged mutations journaled
after the checkpoint replay through the public API at a reported
records/second — the recovery-time budget a deployment sizes its
checkpoint cadence against.

(c) **Checkpoint pause**: a checkpoint runs under the serve lock, so
concurrent queries observe a pause, not a torn cut — measured as the
worst query latency while a checkpoint lands vs the uncontended p99.

Numbers fold into ``benchmarks/results/BENCH_E20.json`` on top of the
standard per-module report.
"""

import json
import os
import random
import shutil
import threading
import time

from repro.cluster import ClusterEngine, ProcessExecutor
from repro.persist import checkpoint_cluster, init_persistence, restore_cluster
from repro.query import Range

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CONSOLIDATED = os.path.join(RESULTS_DIR, "BENCH_E20.json")

N = 60_000
SIGMA = 64
SHARDS = 16
TAIL_MUTATIONS = 400
REQUIRED_RESTORE_SPEEDUP = 3.0


def _merge_consolidated(section: str, payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(CONSOLIDATED):
        with open(CONSOLIDATED) as f:
            data = json.load(f)
    data[section] = payload
    with open(CONSOLIDATED, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _codes(seed=200):
    rng = random.Random(seed)
    return [rng.randrange(SIGMA) for _ in range(N)]


def _build(codes, executor=None):
    cluster = ClusterEngine(
        num_shards=SHARDS, executor=executor, drift_window=None
    )
    cluster.add_column("v", codes, SIGMA, dynamism="semidynamic")
    return cluster


def _probes():
    rng = random.Random(201)
    out = [(0, SIGMA - 1), (0, 3), (SIGMA - 8, SIGMA - 1)]
    out += [
        (lo, min(SIGMA - 1, lo + rng.randrange(1, 12)))
        for lo in rng.sample(range(SIGMA - 12), 12)
    ]
    return out


def _answers(cluster, probes):
    return [
        (cluster.count(Range("v", lo, hi)),
         cluster.query("v", lo, hi).positions()[:64])
        for lo, hi in probes
    ]


def test_e20a_cold_restore_vs_rebuild(report, tmp_path):
    codes = _codes()
    probes = _probes()

    t0 = time.perf_counter()
    cluster = _build(codes)
    build_s = time.perf_counter() - t0

    directory = str(tmp_path / "dur")
    t0 = time.perf_counter()
    init_persistence(cluster, directory)
    checkpoint_s = time.perf_counter() - t0

    # A journaled tail: the restore has real replay work to do.
    rng = random.Random(202)
    for _ in range(TAIL_MUTATIONS):
        cluster.append("v", rng.randrange(SIGMA))
    expected = _answers(cluster, probes)
    wal_records = cluster.wal.last_seq
    cluster.close()

    t0 = time.perf_counter()
    restored = restore_cluster(directory)
    restore_s = time.perf_counter() - t0
    assert _answers(restored, probes) == expected, (
        "serial restore diverged from the cluster that wrote the log"
    )
    restored.close()

    # The honest rival: rebuild every index from the raw codes (plus
    # replaying the same tail through the public API).
    t0 = time.perf_counter()
    rebuilt = _build(codes)
    rng = random.Random(202)
    for _ in range(TAIL_MUTATIONS):
        rebuilt.append("v", rng.randrange(SIGMA))
    rebuild_s = time.perf_counter() - t0
    assert _answers(rebuilt, probes) == expected
    rebuilt.close()

    speedup = rebuild_s / restore_s
    with ProcessExecutor(max_workers=4) as pool:
        t0 = time.perf_counter()
        resident = restore_cluster(directory, executor=pool)
        resident_restore_s = time.perf_counter() - t0
        assert _answers(resident, probes) == expected, (
            "resident restore diverged from the cluster that wrote "
            "the log"
        )
        resident.close()

    assert speedup >= REQUIRED_RESTORE_SPEEDUP, (
        f"cold restore only {speedup:.2f}x faster than rebuild "
        f"(need >= {REQUIRED_RESTORE_SPEEDUP}x)"
    )
    snap_bytes = sum(
        os.path.getsize(os.path.join(root, name))
        for root, _dirs, names in os.walk(directory)
        for name in names
    )
    report.table(
        f"E20a  cold restore vs rebuild: {N} rows, {SHARDS} shards, "
        f"{wal_records} WAL records",
        ["path", "seconds", "notes"],
        [
            ["initial build", build_s, "indexes from raw codes"],
            ["checkpoint", checkpoint_s, "snapshots + CURRENT flip"],
            ["rebuild + tail", rebuild_s, "the crash-recovery rival"],
            ["cold restore (serial)", restore_s,
             f"mmap + replay {TAIL_MUTATIONS} records"],
            ["cold restore (resident)", resident_restore_s,
             "workers rehydrate from the same snapshots"],
        ],
        note=(
            f"restore is {speedup:.1f}x faster than rebuild "
            f"(assert >= {REQUIRED_RESTORE_SPEEDUP}x); durable dir "
            f"holds {snap_bytes / 1e6:.1f} MB; answers identical on "
            f"both executors"
        ),
    )
    _merge_consolidated(
        "cold_restore",
        {
            "rows": N,
            "shards": SHARDS,
            "build_s": build_s,
            "checkpoint_s": checkpoint_s,
            "rebuild_s": rebuild_s,
            "restore_serial_s": restore_s,
            "restore_resident_s": resident_restore_s,
            "speedup_vs_rebuild": speedup,
            "durable_bytes": snap_bytes,
        },
    )


def test_e20b_wal_replay_throughput(report, tmp_path):
    rng = random.Random(203)
    cluster = ClusterEngine(num_shards=4, drift_window=None)
    cluster.add_column(
        "v", [rng.randrange(SIGMA) for _ in range(8_000)],
        SIGMA, dynamism="fully_dynamic", backend="deletable",
    )
    directory = str(tmp_path / "dur")
    init_persistence(cluster, directory)
    deleted = set()
    records = 3_000
    t0 = time.perf_counter()
    for i in range(records):
        op = rng.randrange(10)
        if op < 7:
            cluster.append("v", rng.randrange(SIGMA))
        elif op < 9:
            pos = rng.randrange(cluster.total_rows("v"))
            if pos not in deleted:
                cluster.change("v", pos, rng.randrange(SIGMA))
        else:
            pos = rng.randrange(cluster.total_rows("v"))
            if pos not in deleted:
                cluster.delete("v", pos)
                deleted.add(pos)
    journal_s = time.perf_counter() - t0
    journaled = cluster.wal.last_seq
    expected = cluster.count(Range("v", 0, SIGMA // 2))
    cluster.close()

    t0 = time.perf_counter()
    restored = restore_cluster(directory)
    replay_s = time.perf_counter() - t0
    assert restored.count(Range("v", 0, SIGMA // 2)) == expected
    restored.close()
    replay_rate = journaled / replay_s

    report.table(
        f"E20b  WAL replay: {journaled} records "
        "(append/change/delete mix)",
        ["phase", "seconds", "records/s"],
        [
            ["journal (live, acked)", journal_s, journaled / journal_s],
            ["replay (cold restore)", replay_s, replay_rate],
        ],
        note=(
            "replay re-derives auto lifecycle through the public "
            "API; checkpoint cadence bounds this recovery debt"
        ),
    )
    _merge_consolidated(
        "wal_replay",
        {
            "records": journaled,
            "journal_s": journal_s,
            "replay_s": replay_s,
            "replay_records_per_s": replay_rate,
        },
    )


def test_e20c_checkpoint_pause_vs_serving(report, tmp_path):
    codes = _codes(seed=204)
    cluster = _build(codes)
    directory = str(tmp_path / "dur")
    init_persistence(cluster, directory)
    probes = _probes()

    def one_query(i):
        lo, hi = probes[i % len(probes)]
        t0 = time.perf_counter()
        cluster.count(Range("v", lo, hi))
        return time.perf_counter() - t0

    # Uncontended baseline.
    base = sorted(one_query(i) for i in range(60))
    base_p99 = base[int(0.99 * (len(base) - 1))]

    # Serve while a checkpoint lands mid-stream.
    latencies = []
    stop = threading.Event()

    def serve():
        i = 0
        while not stop.is_set():
            latencies.append(one_query(i))
            i += 1

    thread = threading.Thread(target=serve)
    thread.start()
    time.sleep(0.05)
    t0 = time.perf_counter()
    info = checkpoint_cluster(cluster, directory)
    pause_s = time.perf_counter() - t0
    time.sleep(0.05)
    stop.set()
    thread.join()
    cluster.close()
    shutil.rmtree(directory)

    worst = max(latencies)
    report.table(
        "E20c  checkpoint pause under load",
        ["metric", "seconds"],
        [
            ["uncontended query p99", base_p99],
            ["checkpoint wall (serve-locked)", pause_s],
            ["checkpoint internal", info.seconds],
            ["worst concurrent query", worst],
        ],
        note=(
            "a concurrent query waits at most ~one checkpoint for "
            "the serve lock; reads are consistent, never torn"
        ),
    )
    _merge_consolidated(
        "checkpoint_pause",
        {
            "base_p99_s": base_p99,
            "checkpoint_s": pause_s,
            "worst_concurrent_query_s": worst,
        },
    )
