"""E18 — kernel layer and worker transport: the raw-speed ledger.

Two claims.  (a) The fast kernels decode WAH at >= 3x the
pure-Python reference on *index-realistic* bitmaps — per-value
bitmaps at density ~1/sigma, which is literally what every range
query decodes — measured as bits-decoded-per-second with identical
output asserted first.  (b) The shared-memory transport moves bulk
request payloads off the pipe: for a resident build and a coalesced
delta batch the pipe carries only a control message a few hundred
bytes long, with the payload riding a flat shared-memory segment.
Query replies deliberately stay pickled lists — pickle encodes small
ints in ~3 bytes where an ``int64`` blob spends 8, so the list *is*
the compact wire form, and that is asserted here too.  Both halves
of the ledger are what the latency-off E14a fix is made of.
"""

import pickle
from array import array

import pytest

from repro.bench import best_of, standard_string
from repro.bits import kernels
from repro.bits.wah import WahBitmap
from repro.cluster.executor import _pack_codes_flat, _pack_delta_batch

N = 1 << 15
SIGMA = 32
REQUIRED_DECODE_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def value_bitmaps():
    """One WAH bitmap per value of a zipf column: density ~1/sigma."""
    data = standard_string("zipf", N, SIGMA, seed=181, theta=1.1)
    by_value = {v: [] for v in range(SIGMA)}
    for pos, v in enumerate(data):
        by_value[v].append(pos)
    return [
        WahBitmap.from_positions(positions, N)
        for positions in by_value.values()
        if positions
    ]


def test_e18a_wah_decode_rate(value_bitmaps, report, benchmark):
    words = [bm.words for bm in value_bitmaps]

    def decode_fast():
        return [kernels.wah_decode(w, N) for w in words]

    def decode_reference():
        return [list(bm.iter_positions()) for bm in value_bitmaps]

    assert decode_fast() == decode_reference()  # exact-output first
    fast_s, _ = best_of(decode_fast, repeats=5)
    ref_s, _ = best_of(decode_reference, repeats=5)
    total_bits = N * len(words)
    fast_rate = total_bits / max(fast_s, 1e-9)
    ref_rate = total_bits / max(ref_s, 1e-9)
    speedup = ref_s / max(fast_s, 1e-9)
    assert speedup >= REQUIRED_DECODE_SPEEDUP, (
        f"fast WAH decode {speedup:.2f}x the reference "
        f"(need >= {REQUIRED_DECODE_SPEEDUP}x on per-value bitmaps)"
    )
    report.table(
        f"E18a  WAH decode rate: {len(words)} per-value bitmaps, "
        f"universe {N} bits each (zipf column, sigma={SIGMA})",
        ["kernel", "seconds", "bits decoded / s", "speedup"],
        [
            ["python (reference)", f"{ref_s:.4f}", f"{ref_rate:,.0f}", "1.00x"],
            ["fast", f"{fast_s:.4f}", f"{fast_rate:,.0f}", f"{speedup:.2f}x"],
        ],
        note=f"identical decoded positions asserted before timing; "
        f">= {REQUIRED_DECODE_SPEEDUP}x asserted.  Per-value bitmaps "
        "(density ~1/sigma) are what the index actually decodes on "
        "every range query.",
    )
    benchmark(decode_fast)


def test_e18b_transport_bytes_per_op(report, benchmark):
    """Pipe bytes vs shared-memory bytes for each bulk wire form."""
    codes = [(7 * i) % SIGMA for i in range(4096)]
    build_payload = (
        16, 0.0,
        [("c", codes, SIGMA, "fully_dynamic", 0.1, True, False,
          "fully-dynamic")],
    )
    deltas = [("append", "c", i % SIGMA) for i in range(64)]
    positions = list(range(0, N, 7))

    rows = []
    # Build: the old wire form pickles every code onto the pipe; the
    # new one ships a name-and-counts control message plus one flat
    # int64 segment.
    old_build = len(pickle.dumps(("build", 1, build_payload)))
    packed_codes, _metas = _pack_codes_flat(build_payload[2])
    meta_message = (
        "build_shm", 1, "psm_x" * 3, 16, 0.0,
        [("c", len(codes), SIGMA, "fully_dynamic", 0.1, True, False,
          "fully-dynamic")],
    )
    rows.append([
        "build (4096 codes)", f"{old_build:,}",
        f"{len(pickle.dumps(meta_message)):,}",
        f"{len(packed_codes) * packed_codes.itemsize:,}",
    ])
    # Delta batch: 64 coalesced appends.
    old_batch = len(pickle.dumps(("delta_batch", 1, deltas)))
    names, packed = _pack_delta_batch(deltas)
    batch_message = ("delta_batch_shm", 1, "psm_x" * 3, len(deltas), names)
    rows.append([
        "delta batch (64)", f"{old_batch:,}",
        f"{len(pickle.dumps(batch_message)):,}",
        f"{len(packed) * packed.itemsize:,}",
    ])
    # Query reply: the list-of-int pickle is *kept* — pickle packs
    # ints below 2**16 in ~3 bytes, so an int64 blob of the same
    # positions is larger on the wire, not smaller.
    list_reply = len(pickle.dumps(positions))
    blob_reply = len(pickle.dumps(array("q", positions)))
    rows.append([
        f"query reply ({len(positions)} RIDs)", f"{list_reply:,}",
        f"{list_reply:,} (int64 blob would be {blob_reply:,})", "0",
    ])
    assert len(pickle.dumps(meta_message)) < old_build // 50
    assert len(pickle.dumps(batch_message)) < old_batch // 2
    assert list_reply < blob_reply  # the kept form is the compact one
    report.table(
        "E18b  wire bytes per bulk operation: pickled-pipe (old) vs "
        "control message + shared-memory segment (new)",
        ["operation", "old pipe bytes", "new pipe bytes", "shm bytes"],
        rows,
        note="asserted: the build control message is > 50x smaller "
        "than the pickled build, the batch control message is > 2x "
        "smaller than the pickled batch, and the pickled-list reply "
        "beats an int64 blob of the same positions (why replies stay "
        "on the pipe).  Segment bytes move as flat int64 buffer "
        "copies, never through pickle.",
    )
    benchmark(lambda: _pack_delta_batch(deltas))
