"""E5 — Theorem 5: buffered appends in amortized O(lg n / b) I/Os.

Sweeps the block size ``B`` (hence ``b = B / lg n``): the buffered
append cost must fall as ~1/b while the direct (Theorem 4) cost stays
flat, and queries still return exact answers at the Theorem-5 bound
``O(z lg(n/z)/B + lg n)``.
"""

import math

import pytest

from repro.bench import cold_query, output_bits_bound, ratio, standard_string
from repro.core import AppendableIndex, BufferedAppendableIndex

SIGMA = 64
N0 = 1 << 12


def _cost(cls, block_bits, appends, mem_blocks=4):
    x = standard_string("uniform", N0, SIGMA, seed=18)
    idx = cls(
        x,
        SIGMA,
        rebuild_factor=8.0,
        block_bits=block_bits,
        mem_blocks=mem_blocks,
    )
    extra = standard_string("uniform", appends, SIGMA, seed=19)
    idx.stats.reset()
    for ch in extra:
        idx.append(ch)
    return idx.stats.total / appends


def test_e5_append_cost_vs_block_size(report, benchmark):
    rows = []
    appends = 1500
    for block_bits in [512, 1024, 2048, 4096]:
        b = block_bits / math.log2(N0)
        direct = _cost(AppendableIndex, block_bits, appends)
        buffered = _cost(BufferedAppendableIndex, block_bits, appends)
        bound = math.log2(N0) / b
        rows.append(
            [
                block_bits,
                f"{b:.0f}",
                f"{direct:.3f}",
                f"{buffered:.3f}",
                f"{bound:.3f}",
                ratio(buffered, bound),
            ]
        )
    report.table(
        "E5a  append cost vs B: Theorem 5 ~ lg(n)/b, Theorem 4 ~ lg lg n",
        ["B bits", "b (words)", "direct I/O per op", "buffered I/O per op",
         "lg n / b", "buffered/bound"],
        rows,
        note="buffered cost must drop as b grows; direct cost is B-insensitive.",
    )
    idx = BufferedAppendableIndex(
        standard_string("uniform", 1024, SIGMA, seed=20), SIGMA
    )
    benchmark(lambda: idx.append(5))


def test_e5_query_cost_with_pending_ops(report, benchmark):
    x = standard_string("uniform", N0, SIGMA, seed=21)
    idx = BufferedAppendableIndex(x, SIGMA, rebuild_factor=8.0)
    extra = standard_string("uniform", 800, SIGMA, seed=22)
    for ch in extra:
        idx.append(ch)
    assert idx.pending_ops > 0
    rows = []
    B = idx.disk.block_bits
    for lo, hi in [(4, 4), (0, 15), (5, 36)]:
        io = cold_query(idx, lo, hi)
        bound = output_bits_bound(idx.n, io["z"]) / B + 3 * math.log2(idx.n)
        rows.append(
            [f"[{lo},{hi}]", io["z"], io["reads"], f"{bound:.1f}",
             ratio(io["reads"], bound), idx.pending_ops]
        )
    report.table(
        "E5b  Theorem 5 query I/O with ops still buffered: O(z lg(n/z)/B + lg n)",
        ["range", "z", "block reads", "bound", "ratio", "pending ops"],
        rows,
        note="queries read O(lg n) buffers on top of the bitmap cost and "
        "remain exact while ops are in flight.",
    )
    benchmark(lambda: idx.range_query(0, 15))


def test_e5_space_tradeoff(report, benchmark):
    # Theorem 5's space term: one B-bit buffer per node.
    x = standard_string("uniform", N0, SIGMA, seed=23)
    direct = AppendableIndex(x, SIGMA)
    buffered = BufferedAppendableIndex(x, SIGMA)
    rows = [
        ["Theorem 4", direct.space().payload_bits, direct.space().directory_bits],
        ["Theorem 5", buffered.space().payload_bits, buffered.space().directory_bits],
    ]
    report.table(
        "E5c  the space cost of buffering (sigma lg n * B extra bits)",
        ["structure", "payload bits", "directory+buffer bits"],
        rows,
    )
    benchmark(lambda: buffered.count_range(0, SIGMA - 1))
