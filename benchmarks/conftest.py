"""Fixtures shared by the experiment benchmarks."""

import os

import pytest

from repro.bench.harness import Report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="module")
def report(request):
    """A per-module report persisted under benchmarks/results/."""
    name = os.path.splitext(os.path.basename(request.module.__file__))[0]
    rep = Report(name, RESULTS_DIR)
    yield rep
    rep.save()
