"""E16 — aggregate pushdown: answers, not row-id lists.

Four claims.  (a) The acceptance claim: ``count`` over a wide
positive disjunction reads *strictly fewer* index bits than
materialize-then-``len`` — the counting fold watches the union's
cardinality and stops fetching legs the moment it saturates the
universe, a short-circuit the select path cannot take (it only
recognizes complemented-empty as full).  (b) ``exists`` reads fewer
bits still: it stops at the first non-empty disjunct.  (c) At cluster
scale the fold ships *counts* across the worker pipes: the
coordinator gathers zero positions and the reply payload is bytes,
not megabytes — measured against coordinator-side
materialize-then-count over the same predicates.  (d) Cost-ordered
``And`` evaluation (the advisor's predicted bits ordering legs)
fetches a cheap empty leg first and skips the expensive one, reading
fewer bits than the canonical leaf-table order.
"""

import pickle

import pytest

from repro.bench import standard_string
from repro.cluster import ClusterEngine, ProcessExecutor
from repro.engine import QueryEngine
from repro.query import And, Not, Or, Range, compile_pred, evaluate_fetch

N = 1 << 12
SIGMA = 64
THETA = 1.3


@pytest.fixture(scope="module")
def data():
    # Column "c"'s codes live in {0..3} U {8..11}, so its two legs in
    # the wide disjunction below cover every row; column "d" (codes
    # {20..27}) supplies non-empty legs that become redundant once the
    # union saturates.  Same-column legs would constant-fold in
    # normalization — cross-column legs survive to execution.
    base = standard_string("zipf", N, 8, seed=161, theta=THETA)
    other = standard_string("zipf", N, 8, seed=162, theta=THETA)
    return (
        [c if c < 4 else c + 4 for c in base],
        [c + 20 for c in other],
    )


def fresh_engine(data):
    c, d = data
    engine = QueryEngine(cache_size=512)
    engine.add_column("c", c, SIGMA)
    engine.add_column("d", d, SIGMA)
    return engine


def go_cold(engine):
    engine.cache.invalidate()
    for column in engine.columns.values():
        column.index.disk.flush_cache()


def bits_of(engine, fn):
    columns = list(engine.columns.values())
    before = [col.index.stats.snapshot() for col in columns]
    result = fn()
    read = sum(
        (col.index.stats.snapshot() - b).bits_read
        for col, b in zip(columns, before)
    )
    return result, read


WIDE_OR = Or(
    Range("c", 0, 3),
    Range("c", 8, 11),
    Range("d", 20, 22),  # gap at 23 keeps the legs from merging
    Range("d", 24, 27),
)


def test_e16a_count_beats_materialize_then_len(data, report, benchmark):
    """The acceptance criterion: count-from-bitmap reads strictly
    fewer index bits than materializing the RIDs and counting them."""
    count_engine = fresh_engine(data)
    go_cold(count_engine)
    got, count_bits = bits_of(
        count_engine, lambda: count_engine.count(WIDE_OR)
    )

    select_engine = fresh_engine(data)
    go_cold(select_engine)
    rids, select_bits = bits_of(
        select_engine, lambda: select_engine.select(WIDE_OR)
    )
    assert got == len(rids) == N
    assert count_bits < select_bits, (
        f"count read {count_bits} bits, materialize-then-len "
        f"{select_bits} — saturation must cut the tail legs"
    )
    report.table(
        "E16a  count(wide Or) vs materialize-then-len "
        f"(n={N}, sigma={SIGMA}, 4 legs, the first 2 carry all rows)",
        ["path", "bits read", "answer"],
        [
            ["count (cardinality fold)", count_bits, got],
            ["select + len", select_bits, len(rids)],
            [
                "advantage",
                f"{select_bits / max(count_bits, 1):.1f}x fewer",
                "-",
            ],
        ],
        note="the counting fold tracks the union's *length* and stops "
        "fetching disjuncts once it saturates the universe; the "
        "select path must fetch every leg to build the list.",
    )
    benchmark(lambda: count_engine.count(WIDE_OR))


def test_e16b_exists_stops_at_first_evidence(data, report, benchmark):
    pred = Or(Range("c", 0, 3), Range("c", 8, 11))  # both legs non-empty
    exists_engine = fresh_engine(data)
    go_cold(exists_engine)
    found, exists_bits = bits_of(
        exists_engine, lambda: exists_engine.exists(pred)
    )
    assert found

    count_engine = fresh_engine(data)
    go_cold(count_engine)
    total, count_bits = bits_of(
        count_engine, lambda: count_engine.count(pred)
    )
    assert total == N
    assert exists_bits < count_bits, (
        f"exists read {exists_bits} bits, count {count_bits} — the "
        "first non-empty disjunct must settle it"
    )
    report.table(
        "E16b  exists vs count over a two-leg disjunction",
        ["verb", "bits read"],
        [
            ["exists (first evidence)", exists_bits],
            ["count (full fold)", count_bits],
        ],
        note="exists recurses Or disjuncts cheapest-first and returns "
        "at the first non-empty fold; count must combine every leg "
        "(modulo saturation).",
    )
    benchmark(lambda: exists_engine.exists(pred))


def test_e16c_pushdown_ships_counts_not_rids(data, report):
    """The cluster acceptance claim: aggregates under a worker-resident
    executor return oracle answers while zero positions cross the
    pipes — only fold ops run, and the reply payloads are integers."""
    preds = [
        Or(Range("c", 0, 3), Range("c", 16, 19)),
        Not(Range("c", 0, 1)),
        And(Range("c", 0, 10), Or(Range("c", 2, 3), Range("c", 8, 9))),
    ]
    rows = []
    with ProcessExecutor(max_workers=2) as pool:
        cluster = ClusterEngine(num_shards=4, executor=pool)
        cluster.add_column("c", data[0], SIGMA)
        try:
            for i, pred in enumerate(preds):
                oracle = [
                    rid for rid in range(N)
                    if rid in set(cluster.select(pred))
                ]
                pool.op_counts.clear()
                rids_before = cluster.gather_rids
                got = cluster.count(pred)
                assert got == len(oracle)
                fold_ops = pool.op_counts.get("fold", 0)
                assert pool.op_counts.get("query", 0) == 0
                assert cluster.gather_rids == rids_before, (
                    "the fold path must gather zero positions"
                )
                # Payload economics: what each path sends back per
                # shard, estimated with pickle (the pipes' codec).
                count_bytes = len(pickle.dumps(got))
                rid_bytes = len(pickle.dumps(oracle))
                rows.append(
                    [i, got, fold_ops, count_bytes, rid_bytes]
                )
        finally:
            cluster.close()
    report.table(
        "E16c  aggregate pushdown over worker pipes "
        f"(n={N}, 4 shards, 2 workers)",
        ["#", "count", "fold ops", "count reply B", "rid list B"],
        rows,
        note="counts come back as integers (plus an I/O snapshot); "
        "the coordinator-side alternative ships the full global "
        "row-id list across the pipe before it can call len().",
    )


def test_e16d_cost_ordered_and_skips_expensive_leg(data, report, benchmark):
    # Leaf table order is c's wide leg first, then d's point leg.  The
    # point leg sits in the result cache (a prior query paid for it),
    # so its predicted cost is zero: cost ordering probes it first,
    # finds it empty, and never touches the wide uncached leg.  Both
    # engines get the identical warm cache — only the leg order
    # differs.
    pred = And(Range("c", 0, 40), Range("d", 60, 60))
    plan = compile_pred(pred, lambda _name: SIGMA)

    def warmed_engine():
        engine = fresh_engine(data)
        engine.select(Range("d", 60, 60))  # cache the point leg
        for column in engine.columns.values():
            column.index.disk.flush_cache()
        return engine

    canonical_engine = warmed_engine()
    want, canonical_bits = bits_of(
        canonical_engine,
        lambda: evaluate_fetch(
            plan, canonical_engine.query, N
        ).positions(),
    )
    assert want == []

    ordered_engine = warmed_engine()
    costs = ordered_engine._leaf_costs(plan)
    assert costs[1] == 0.0, "the cached point leg must predict free"
    got, ordered_bits = bits_of(
        ordered_engine,
        lambda: evaluate_fetch(
            plan, ordered_engine.query, N, leaf_costs=costs
        ).positions(),
    )
    assert got == want
    assert ordered_bits < canonical_bits, (
        f"cost-ordered And read {ordered_bits} bits, canonical order "
        f"{canonical_bits} — the cheap empty leg must run first"
    )
    report.table(
        "E16d  And leg ordering: predicted cost vs leaf-table order",
        ["order", "bits read"],
        [
            ["leaf-table (wide leg first)", canonical_bits],
            ["cost-ordered (cached empty leg first)", ordered_bits],
            [
                "advantage",
                f"{canonical_bits / max(ordered_bits, 1):.1f}x fewer",
            ],
        ],
        note="order_children sorts And legs by predicted uncached "
        "bits (cached legs predict zero); an empty cheap leg "
        "short-circuits the conjunction before the expensive leg "
        "is ever fetched.",
    )
    benchmark(lambda: ordered_engine.select(pred))
