"""E6 — Theorem 6: the buffered compressed bitmap index.

* point query: O(T/B + lg n) I/Os — sweep T by key density;
* updates: amortized O(lg n / b) I/Os — sweep B;
* space: O(nH0)-style (blocks within a constant of the gap payload).
"""

import math
import random

import pytest

from repro.bench import ratio
from repro.core import BufferedBitmapIndex
from repro.iomodel import Disk

UNIVERSE = 1 << 17


def _build(num_keys, per_key, block_bits=1024, seed=0):
    rng = random.Random(seed)
    disk = Disk(block_bits=block_bits, mem_blocks=4)
    initial = [
        sorted(rng.sample(range(UNIVERSE), per_key)) for _ in range(num_keys)
    ]
    return disk, BufferedBitmapIndex(disk, num_keys, initial)


def test_e6_point_query_io_vs_T(report, benchmark):
    rows = []
    for per_key in [50, 400, 3200]:
        disk, idx = _build(8, per_key, seed=24)
        disk.flush_cache()
        with disk.stats.measure() as m:
            out = idx.point_query(3)
        T_over_B = len(idx._chains[3])  # chain blocks = ceil(T/B)
        bound = T_over_B + math.log2(UNIVERSE)
        rows.append(
            [per_key, len(out), T_over_B, m.reads, f"{bound:.1f}",
             ratio(m.reads, bound)]
        )
    report.table(
        "E6a  Theorem 6 point query: O(T/B + lg n) I/Os",
        ["positions/key", "|answer|", "chain blocks (T/B)", "block reads",
         "bound", "ratio"],
        rows,
    )
    disk, idx = _build(8, 400, seed=25)
    benchmark(lambda: idx.point_query(0))


def test_e6_update_cost_vs_block_size(report, benchmark):
    rows = []
    ops = 1500
    for block_bits in [512, 1024, 2048, 4096]:
        disk, idx = _build(8, 400, block_bits=block_bits, seed=26)
        rng = random.Random(27)
        disk.stats.reset()
        for _ in range(ops):
            if rng.random() < 0.7:
                idx.insert(rng.randrange(8), rng.randrange(UNIVERSE))
            else:
                idx.delete(rng.randrange(8), rng.randrange(UNIVERSE))
        per_op = disk.stats.total / ops
        b = block_bits / math.log2(UNIVERSE)
        bound = math.log2(UNIVERSE) / b
        rows.append(
            [block_bits, f"{b:.0f}", f"{per_op:.3f}", f"{bound:.3f}",
             ratio(per_op, bound)]
        )
    report.table(
        "E6b  Theorem 6 updates: amortized O(lg n / b) I/Os per op",
        ["B bits", "b (words)", "I/O per op", "lg n / b", "ratio"],
        rows,
        note="cost must fall roughly linearly in b.",
    )
    disk, idx = _build(4, 100, seed=28)
    benchmark(lambda: idx.insert(1, random.randrange(UNIVERSE)))


def test_e6_space(report, benchmark):
    rows = []
    for per_key in [100, 1000, 4000]:
        disk, idx = _build(8, per_key, seed=29)
        blocks_bits = idx._total_blocks() * disk.block_bits
        rows.append(
            [per_key, idx.payload_bits, blocks_bits,
             ratio(blocks_bits, idx.payload_bits), idx.size_bits]
        )
    report.table(
        "E6c  Theorem 6 space: allocated blocks vs gap payload (O(nH0))",
        ["positions/key", "gap payload bits", "block bits",
         "block/payload", "total incl. buffers"],
        rows,
        note="block/payload <= ~2 is §4.2's re-blocking bound.",
    )
    disk, idx = _build(4, 100, seed=30)
    benchmark(lambda: idx.cardinality(2))
