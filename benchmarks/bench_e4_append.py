"""E4 — Theorem 4: appends in amortized O(lg lg n) I/Os.

Measures the amortized block transfers per append across string sizes
(the bound grows only doubly-logarithmically) and confirms queries
after appends retain the Theorem 2 shape.
"""

import math

import pytest

from repro.bench import cold_query, output_bits_bound, ratio, standard_string
from repro.core import AppendableIndex

SIGMA = 64


def _amortized_append_io(n0: int, appends: int, mem_blocks: int = 4) -> float:
    x = standard_string("uniform", n0, SIGMA, seed=11)
    idx = AppendableIndex(
        x, SIGMA, rebuild_factor=2.0, mem_blocks=mem_blocks
    )
    extra = standard_string("uniform", appends, SIGMA, seed=12)
    idx.stats.reset()
    for ch in extra:
        idx.append(ch)
    return idx.stats.total / appends


def test_e4_append_cost_vs_n(report, benchmark):
    rows = []
    for n0 in [1 << 10, 1 << 12, 1 << 14]:
        per_op = _amortized_append_io(n0, appends=n0 // 2)
        bound = math.log2(math.log2(n0)) + 2  # lg lg n + materialized-leaf slack
        rows.append(
            [n0, f"{per_op:.2f}", f"{bound:.2f}", ratio(per_op, bound)]
        )
    report.table(
        "E4a  Theorem 4 append cost (amortized block I/Os per append)",
        ["n at build", "I/Os per append", "lg lg n + 2", "ratio"],
        rows,
        note="includes rebuild charges (doubling policy); ratio must stay "
        "O(1) as n grows 16x.",
    )
    idx = AppendableIndex(standard_string("uniform", 2048, SIGMA, seed=13), SIGMA)
    benchmark(lambda: idx.append(3))


def test_e4_queries_after_appends_keep_theorem2_shape(report, benchmark):
    n0 = 1 << 12
    x = standard_string("uniform", n0, SIGMA, seed=14)
    idx = AppendableIndex(x, SIGMA, rebuild_factor=4.0)
    extra = standard_string("uniform", n0 // 2, SIGMA, seed=15)
    for ch in extra:
        idx.append(ch)
    rows = []
    B = idx.disk.block_bits
    for lo, hi in [(3, 3), (0, 7), (0, 31), (10, 40)]:
        io = cold_query(idx, lo, hi)
        bound = output_bits_bound(idx.n, io["z"]) / B + 2 * math.log2(idx.n)
        rows.append(
            [f"[{lo},{hi}]", io["z"], io["reads"], f"{bound:.1f}",
             ratio(io["reads"], bound)]
        )
    report.table(
        "E4b  query I/O after 50% growth by appends",
        ["range", "z", "block reads", "bound", "ratio"],
        rows,
        note="chained blocks waste O(1) I/O per bitmap (DESIGN.md sub. 2); "
        "the bound uses lg n slack accordingly.",
    )
    benchmark(lambda: idx.range_query(0, 31))


def test_e4_space_preserved(report, benchmark):
    # After appends + rebuild, space returns to the Theorem 2 budget.
    from repro.model.entropy import entropy_bits

    n0 = 1 << 12
    x = standard_string("zipf", n0, SIGMA, seed=16, theta=1.0)
    idx = AppendableIndex(x, SIGMA, rebuild_factor=2.0)
    extra = standard_string("zipf", n0 + 10, SIGMA, seed=17, theta=1.0)
    for ch in extra:
        idx.append(ch)  # forces one rebuild
    assert idx.rebuilds >= 1
    final_x = x + extra
    bound = entropy_bits(final_x) + len(final_x)
    rows = [
        [idx.n, idx.rebuilds, idx.space().payload_bits, f"{bound:,.0f}",
         ratio(idx.space().payload_bits, bound)]
    ]
    report.table(
        "E4c  space after growth (payload vs nH0 + n)",
        ["n now", "rebuilds", "payload bits", "nH0+n", "ratio"],
        rows,
        note="block chains round bitmaps up to whole blocks; the ratio "
        "includes that overhead and must stay O(1).",
    )
    benchmark(lambda: idx.count_range(0, SIGMA - 1))
