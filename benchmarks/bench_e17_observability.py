"""E17 — observability: free when off, full story when on.

Three claims.  (a) The acceptance claim: with the tracer disabled (and
no metrics registry or slow-query log attached) the engine's cached
leaf-query hot path — the E11c loop — runs within 3% of a completely
uninstrumented engine: the fast path costs exactly a handful of
attribute checks.  (b) The slow-query log captures what it should and
only that: with a zero threshold every query lands in the bounded
ring carrying its full trace and lazily built plan report; with an
unreachable threshold nothing does, and the report builder never
runs.  (c) At cluster scale under a process executor, one aggregate
query yields a single stitched trace — coordinator spans plus
worker-built spans shipped back on the existing reply tuples — whose
per-span ``bits_read`` tags sum to exactly the cluster's
``scatter_io`` accounting.
"""

import time

import pytest

from repro.bench import prefix_range_for_selectivity, standard_string
from repro.cluster import ClusterEngine, ProcessExecutor
from repro.engine import QueryEngine
from repro.obs import MetricsRegistry, SlowQueryLog, Tracer
from repro.query import And, Range

N = 1 << 12
SIGMA = 64
THETA = 1.3


@pytest.fixture(scope="module")
def data():
    return standard_string("zipf", N, SIGMA, seed=171, theta=THETA)


def fresh_engine(data, **obs):
    engine = QueryEngine(cache_size=256, **obs)
    engine.add_column("c", data, SIGMA)
    return engine


def hot_ranges(data):
    return [
        prefix_range_for_selectivity(data, SIGMA, sel)
        for sel in [1 / 128, 1 / 32, 1 / 8, 1 / 2]
    ]


def test_e17a_disabled_observability_is_free(data, report, benchmark):
    """The acceptance criterion: tracer attached but disabled costs
    the cached-query hot path less than 3%."""
    ranges = hot_ranges(data)

    def hot_loop(engine):
        total = 0
        for _ in range(50):
            for lo, hi in ranges:
                total += engine.query("c", lo, hi).cardinality
        return total

    # The guard's true cost is a few attribute checks — far below the
    # ±2-3% per-engine-instance jitter that heap/cache placement luck
    # puts on a ~100µs loop.  So: several independently built engine
    # pairs (placement luck averages out), interleaved best-of-k per
    # pair with alternating order (scheduler and frequency-ramp
    # effects cancel), and the floors summed across pairs.
    plain_s = disabled_s = 0.0
    for pair_seed in range(6):
        plain = fresh_engine(data)
        disabled = fresh_engine(data, tracer=Tracer(enabled=False))
        assert hot_loop(plain) == hot_loop(disabled)  # warm both
        best_plain = best_disabled = float("inf")
        for i in range(8):
            order = (
                (plain, disabled) if i % 2 == 0 else (disabled, plain)
            )
            for engine in order:
                t0 = time.perf_counter()
                hot_loop(engine)
                elapsed = time.perf_counter() - t0
                if engine is plain:
                    best_plain = min(best_plain, elapsed)
                else:
                    best_disabled = min(best_disabled, elapsed)
        plain_s += best_plain
        disabled_s += best_disabled

    overhead = disabled_s / plain_s - 1.0
    assert overhead < 0.03, (
        f"disabled observability costs {overhead:.1%} on the cached "
        "hot path — the fast-path guard must keep it under 3%"
    )
    report.table(
        f"E17a  disabled-observability overhead (n={N}, sigma={SIGMA}, "
        "200 cached queries/loop, 6 engine pairs, best of 8 each, "
        "alternating order)",
        ["engine", "summed loop seconds", "overhead"],
        [
            ["uninstrumented", f"{plain_s:.6f}", "-"],
            ["tracer attached, disabled", f"{disabled_s:.6f}",
             f"{overhead:+.2%}"],
        ],
        note="the serving fast path guards on observer attributes "
        "before touching any instrumentation, so a disabled tracer "
        "costs a few attribute checks per query.",
    )
    benchmark(lambda: hot_loop(disabled))


def test_e17b_slow_query_log_captures_offenders(data, report, benchmark):
    log = SlowQueryLog(threshold_s=0.0, capacity=8)
    engine = fresh_engine(
        data,
        tracer=Tracer(),
        metrics=MetricsRegistry(),
        slow_log=log,
    )
    pred = And(Range("c", 0, 7), Range("c", 2, 30))
    for _ in range(12):
        engine.select(pred)
    records = log.records()
    assert len(records) == log.capacity == 8  # bounded ring, newest last
    newest = records[-1]
    assert newest.op == "select"
    assert newest.trace is not None
    assert newest.trace["root"]["name"] == "select"
    assert newest.report is not None  # lazily built plan report

    # An unreachable threshold records nothing and never builds a
    # report: fast queries pay one float comparison.
    quiet = SlowQueryLog(threshold_s=3600.0)
    fast = fresh_engine(data, slow_log=quiet)
    for _ in range(12):
        fast.select(pred)
    assert len(quiet) == 0

    hist = engine.metrics.histogram("query.latency_s")
    report.table(
        "E17b  slow-query log (threshold 0 vs unreachable, 12 selects)",
        ["log", "threshold (s)", "captured", "capacity"],
        [
            ["catch-everything", "0", len(records), log.capacity],
            ["unreachable", "3600", len(quiet), quiet.capacity],
        ],
        note="each captured record embeds the full span tree and the "
        f"lazily built plan report; engine saw {hist.count} observed "
        "query latencies.",
    )
    benchmark(lambda: engine.select(pred))


def test_e17c_stitched_trace_accounts_every_bit(data, report, benchmark):
    tracer = Tracer()
    with ProcessExecutor(max_workers=2) as pool:
        cluster = ClusterEngine(
            num_shards=4, executor=pool, tracer=tracer
        )
        cluster.add_column("c", data, SIGMA)
        try:
            before = cluster.scatter_io.snapshot()
            count = cluster.count(Range("c", 2, 30))
            delta = cluster.scatter_io.snapshot() - before
            trace = tracer.last()
            folds = trace.find("worker_fold")
            span_bits = sum(s.tags["bits_read"] for s in folds)
            assert count > 0 and folds
            assert all(
                s.tags["trace_id"] == trace.trace_id for s in folds
            )
            assert span_bits == delta.bits_read, (
                f"worker spans account {span_bits} bits, scatter_io "
                f"says {delta.bits_read} — the stitched trace must "
                "agree with the existing accounting exactly"
            )
            report.table(
                f"E17c  stitched trace vs scatter_io (n={N}, 4 shards, "
                "worker-resident fold)",
                ["source", "bits read", "spans"],
                [
                    ["worker_fold span tags", span_bits, len(folds)],
                    ["scatter_io snapshot", delta.bits_read, "-"],
                ],
                note="worker spans are built inside the resident "
                "processes, shipped back on the existing reply "
                "tuples, and grafted under the coordinator's scatter "
                "span — one tree, same bits.",
            )
            benchmark(lambda: cluster.count(Range("c", 2, 30)))
        finally:
            cluster.close()
