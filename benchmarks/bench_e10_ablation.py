"""E10 — ablations of the design choices DESIGN.md calls out.

* materialized-level spacing: exponential (the paper's trick) vs all
  levels (the "naive upper bound" of §2.2);
* branching parameter c;
* block size B (the lg_b n descent term);
* payload codec: gamma run-length vs WAH (reference [18]).
"""

import pytest

from repro.baselines import CompressedBitmapIndex, WahBitmapIndex
from repro.bench import cold_query, prefix_range_for_selectivity, standard_string
from repro.core import PaghRaoIndex

N = 1 << 13
SIGMA = 128


@pytest.fixture(scope="module")
def x():
    return standard_string("zipf", N, SIGMA, seed=50, theta=1.0)


def test_e10_materialization_ablation(x, report, benchmark):
    exp = PaghRaoIndex(x, SIGMA, materialization="exponential")
    full = PaghRaoIndex(x, SIGMA, materialization="all")
    rows = []
    for name, idx in (("exponential (paper)", exp), ("all levels", full)):
        lo, hi = prefix_range_for_selectivity(x, SIGMA, 1 / 16)
        io = cold_query(idx, lo, hi)
        rows.append(
            [name, idx.space().payload_bits, io["reads"], io["bits_read"]]
        )
    report.table(
        "E10a  materialized levels: exponential vs all (space/query trade)",
        ["scheme", "payload bits", "reads @ sel 1/16", "bits read"],
        rows,
        note="§2.2: materializing only levels 1,2,4,... cuts space by "
        "~the height factor while queries stay within a constant "
        "(they read the frontier, at most 2x the missing bitmap).",
    )
    benchmark(lambda: exp.range_query(0, 7))


def test_e10_branching_parameter(x, report, benchmark):
    rows = []
    for c in (5, 8, 16, 32):
        idx = PaghRaoIndex(x, SIGMA, branching=c)
        lo, hi = prefix_range_for_selectivity(x, SIGMA, 1 / 16)
        io = cold_query(idx, lo, hi)
        rows.append(
            [c, idx.tree.height, idx.space().payload_bits,
             idx.space().directory_bits, io["reads"]]
        )
    report.table(
        "E10b  branching parameter c (paper requires c > 4)",
        ["c", "tree height", "payload bits", "directory bits",
         "reads @ sel 1/16"],
        rows,
        note="larger c flattens the tree (shorter descent, fewer levels "
        "to materialize) at slightly coarser canonical covers.",
    )
    benchmark(lambda: PaghRaoIndex(x[:1024], SIGMA, branching=8))


def test_e10_block_size(x, report, benchmark):
    rows = []
    for block_bits in (256, 1024, 4096):
        idx = PaghRaoIndex(x, SIGMA, block_bits=block_bits)
        lo, hi = prefix_range_for_selectivity(x, SIGMA, 1 / 64)
        io = cold_query(idx, lo, hi)
        rows.append([block_bits, io["reads"], io["bits_read"]])
    report.table(
        "E10c  block size B: reads fall as ~1/B, bits read stay flat",
        ["B bits", "reads @ sel 1/64", "bits read"],
        rows,
    )
    idx = PaghRaoIndex(x, SIGMA)
    benchmark(lambda: idx.range_query(0, 3))


def test_e10_codec_comparison(x, report, benchmark):
    gamma = CompressedBitmapIndex(x, SIGMA)
    wah = WahBitmapIndex(x, SIGMA)
    rows = [
        ["gamma run-length (paper §1.2)", gamma.space().payload_bits, "1.00x"],
        [
            "WAH word-aligned [18]",
            wah.space().payload_bits,
            f"{wah.space().payload_bits / gamma.space().payload_bits:.2f}x",
        ],
    ]
    report.table(
        "E10d  payload codec: gamma RLE vs WAH on the same bitmaps",
        ["codec", "payload bits", "vs gamma"],
        rows,
        note="§1.2: practical schemes trade worst-case compression for "
        "decode speed; the measured gap is that trade.",
    )
    benchmark(lambda: wah.range_query(0, 3))
