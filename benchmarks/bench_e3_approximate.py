"""E3 — Theorem 3: approximate queries.

Claims reproduced:
* bits read ``O(z lg(1/eps))`` instead of ``O(z lg(n/z))``;
* measured false-positive rate <= eps;
* space overhead of the hashed sets is a constant factor (§3: dominated
  by the space for the exact sets).
"""

import pytest

from repro.bench import cold_query, ratio, standard_string
from repro.core import ApproximatePaghRaoIndex, ApproximateResult, PaghRaoIndex

N = 1 << 13
SIGMA = 512

EPSILONS = [1 / 4, 1 / 8, 1 / 16, 1 / 64]

# With n = 2^13 the hash ladder has k = 3 levels (ranges 4, 16, 256), so
# the hashed path engages when z/eps < 256.  Plant rare characters
# (codes 504..511, three occurrences each) to get such z at every eps.
RARE_LO, RARE_HI = 504, 505  # queried rare range: z = 6


@pytest.fixture(scope="module")
def built():
    x = standard_string("uniform", N, SIGMA - 8, seed=10)  # codes 0..503
    rng = __import__("random").Random(99)
    for code in range(504, 512):
        for pos in rng.sample(range(N), 3):
            x[pos] = code
    return x, ApproximatePaghRaoIndex(x, SIGMA, seed=1), PaghRaoIndex(x, SIGMA)


def _approx_cold(idx, lo, hi, eps):
    idx.disk.flush_cache()
    with idx.stats.measure() as m:
        r = idx.approx_range_query(lo, hi, eps)
    return r, m.reads, m.bits_read


def test_e3_bits_read_vs_eps(built, report, benchmark):
    x, approx, exact = built
    lo, hi = RARE_LO, RARE_HI
    exact_io = cold_query(exact, lo, hi)
    rows = []
    for eps in EPSILONS:
        r, reads, bits = _approx_cold(approx, lo, hi, eps)
        engaged = isinstance(r, ApproximateResult)
        z = exact_io["z"]
        bound = z * max(1.0, -__import__("math").log2(eps))
        rows.append(
            [
                f"1/{round(1 / eps)}",
                engaged,
                r.level_j if engaged else "-",
                bits,
                f"{bound:,.0f}",
                exact_io["bits_read"],
            ]
        )
    report.table(
        "E3a  Theorem 3 bits read vs eps   (n=%d, sigma=%d, z=%d)"
        % (N, SIGMA, exact_io["z"]),
        ["eps", "hashed path", "level j", "bits read", "z lg(1/eps)", "exact bits"],
        rows,
        note="hashed reads must undercut the exact query and grow with lg(1/eps); "
        "large z/eps falls back to the exact path by design.  Both columns "
        "include the same directory/descent bits, so differences are payload.",
    )
    benchmark(lambda: approx.approx_range_query(lo, hi, 1 / 8))


def test_e3_false_positive_rate(built, report, benchmark):
    x, _, _ = built
    lo, hi = RARE_LO, RARE_HI + 1  # z = 9
    truth = {i for i, ch in enumerate(x) if lo <= ch <= hi}
    probes = [i for i in range(0, N, 7) if i not in truth][:400]
    rows = []
    for eps in EPSILONS:
        fp = trials = 0
        engaged = 0
        for seed in range(10):
            idx = ApproximatePaghRaoIndex(x, SIGMA, seed=seed)
            r = idx.approx_range_query(lo, hi, eps)
            if not isinstance(r, ApproximateResult):
                continue
            engaged += 1
            trials += len(probes)
            fp += sum(1 for i in probes if r.might_contain(i))
        rate = fp / trials if trials else float("nan")
        rows.append(
            [f"1/{round(1 / eps)}", engaged, f"{rate:.4f}", f"{eps:.4f}",
             "OK" if trials == 0 or rate <= eps * 1.5 else "HIGH"]
        )
    report.table(
        "E3b  measured false-positive rate vs eps  (10 hash seeds)",
        ["eps", "runs engaged", "measured FPP", "bound eps", "verdict"],
        rows,
        note="universality gives Pr[fp] <= z/2^(2^j) <= eps; sampling noise ~1.5x.",
    )
    idx = ApproximatePaghRaoIndex(x, SIGMA, seed=0)
    benchmark(lambda: idx.approx_range_query(lo, hi, 1 / 8))


def test_e3_space_overhead(built, report, benchmark):
    x, approx, exact = built
    rows = [
        ["exact only", exact.space().payload_bits, 1.0],
        [
            "with hashed sets (k=%d)" % approx.k,
            approx.space().payload_bits,
            ratio(approx.space().payload_bits, exact.space().payload_bits),
        ],
    ]
    report.table(
        "E3c  space overhead of the hashed sets",
        ["structure", "payload bits", "vs exact"],
        rows,
        note="§3: hashed sets add O(lg C(n,|I|)) per node -> constant factor.",
    )
    benchmark(lambda: exact.range_query(7, 7))


def test_e3_candidate_generation(built, report, benchmark):
    # Preimage generation without I/O: candidates per true match ~ 1/eps.
    x, approx, _ = built
    rows = []
    for eps in [1 / 4, 1 / 16]:
        r = approx.approx_range_query(RARE_LO, RARE_HI, eps)
        if not isinstance(r, ApproximateResult):
            continue
        cands = len(r.positions())
        rows.append(
            [f"1/{round(1 / eps)}", r.exact_cardinality, cands,
             f"{cands / max(1, r.exact_cardinality):.2f}"]
        )
    report.table(
        "E3d  candidate-set inflation (preimage size / true answer)",
        ["eps", "true z", "candidates", "inflation"],
        rows,
        note="candidates ~ z + eps*(n - z); the d-dimensional application "
        "shrinks survivors by eps per extra dimension (E9).",
    )
    benchmark(lambda: approx.approx_range_query(RARE_LO, RARE_HI, 1 / 16))
