"""E12 — the cluster: scatter-gather scaling, shared cache, migration.

Three claims to pin down.  (a) Sharding is *exact*: whatever the shard
count and executor, scatter-gather ``select`` returns byte-identical
RID sets, and the wall-clock is recorded for 1/4/16 shards under the
serial and threaded executors.  With the simulated block device doing
pure in-process CPU work the GIL bounds the threaded speedup — the
recorded ratio is the honest number for this substrate; the same code
path overlaps real latencies on backends that release the GIL.
(b) The shared result cache serves a hot query batch *without touching
any shard index*: the per-shard block-transfer counters must not move.
(c) Online migration re-fits shards to their data: a cold append
column frozen to static gets re-advised per shard, and a column whose
halves differ statistically lands on different backends per shard.
"""

import pytest

from repro.bench import best_of, standard_string
from repro.bench.workloads import random_ranges
from repro.cluster import (
    ClusterEngine,
    InMemorySharedCache,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.engine import CostModel

N = 1 << 12
SIGMA = 32
NUM_QUERIES = 24

SHARD_COUNTS = [1, 4, 16]


@pytest.fixture(scope="module")
def columns():
    return {
        "a": standard_string("zipf", N, SIGMA, seed=31, theta=1.2),
        "b": standard_string("uniform", N, SIGMA, seed=32),
    }


@pytest.fixture(scope="module")
def query_batch():
    ranges_a = random_ranges(SIGMA, NUM_QUERIES, seed=33)
    ranges_b = random_ranges(SIGMA, NUM_QUERIES, seed=34)
    return list(zip(ranges_a, ranges_b))


def build_cluster(columns, num_shards, executor, shared_capacity, cache_size):
    cluster = ClusterEngine(
        num_shards=num_shards,
        executor=executor,
        shared_cache=InMemorySharedCache(shared_capacity),
        cache_size=cache_size,
    )
    for name, codes in columns.items():
        cluster.add_column(name, codes, SIGMA)
    return cluster


def run_batch(cluster, query_batch):
    out = []
    for (a_lo, a_hi), (b_lo, b_hi) in query_batch:
        out.append(
            cluster.select({"a": (a_lo, a_hi), "b": (b_lo, b_hi)})
        )
    return out


def shard_index_reads(cluster):
    """Total bits read from any shard's index so far.

    ``bits_read`` is charged on *every* index access, resident block
    or not — the strictest available "did anything touch an index"
    counter (block transfers can legitimately be zero once an index
    sits in its disk's internal-memory cache).
    """
    total = 0
    for name in cluster.columns:
        for shard_id in range(cluster.num_shards):
            total += cluster.shard_column(name, shard_id).index.stats.bits_read
    return total


def test_e12a_scatter_gather_scaling(columns, query_batch, report, benchmark):
    # Caches off at both tiers: this measures the scatter-gather path
    # itself, not result reuse (E12b prices the cache).
    reference = None
    baseline_s = None
    rows = []
    pool = ThreadedExecutor(8)
    for num_shards in SHARD_COUNTS:
        for label, executor in [("serial", SerialExecutor()), ("threaded", pool)]:
            cluster = build_cluster(
                columns, num_shards, executor,
                shared_capacity=0, cache_size=0,
            )
            seconds, results = best_of(
                lambda: run_batch(cluster, query_batch), repeats=3
            )
            if reference is None:
                reference = results
                baseline_s = seconds
            # Exactness before speed: every configuration returns the
            # identical global RID sets.
            assert results == reference
            rows.append(
                [
                    num_shards,
                    label,
                    " | ".join(sorted(set(cluster.backends("a")))),
                    f"{seconds:.4f}",
                    f"{baseline_s / seconds:.2f}x",
                ]
            )
    pool.close()
    report.table(
        f"E12a  scatter-gather select: {NUM_QUERIES} conjunctive queries, "
        f"n={N}, caches off",
        ["shards", "executor", "backends(a)", "seconds", "speedup vs 1/serial"],
        rows,
        note="identical RID sets asserted across all configurations; "
        "select now streams its gather serially (the executor "
        "parallelizes query()'s scatter), so the threaded rows "
        "measure the same path — kept for the exactness assertion.",
    )
    cluster = build_cluster(
        columns, 4, SerialExecutor(), shared_capacity=0, cache_size=0
    )
    benchmark(lambda: run_batch(cluster, query_batch))


def test_e12b_shared_cache_hot_vs_cold(columns, query_batch, report, benchmark):
    # Per-shard engine caches off: every hit below comes from the
    # shared tier, the one that survives process boundaries.
    cluster = build_cluster(
        columns, 8, SerialExecutor(), shared_capacity=4096, cache_size=0
    )
    cold_s, cold_results = best_of(
        lambda: run_batch(cluster, query_batch), repeats=1
    )
    reads_after_cold = shard_index_reads(cluster)
    hot_s, hot_results = best_of(
        lambda: run_batch(cluster, query_batch), repeats=3
    )
    reads_after_hot = shard_index_reads(cluster)
    assert hot_results == cold_results
    assert reads_after_cold > 0  # the cold pass really did index work
    # The acceptance claim: a hot batch is served entirely from the
    # shared cache — not one bit read from any shard's index.
    assert reads_after_hot == reads_after_cold, (
        f"hot batch touched shard indexes: {reads_after_cold} -> "
        f"{reads_after_hot} bits read"
    )
    report.table(
        f"E12b  shared result cache: {NUM_QUERIES} conjunctive queries "
        "x 8 shards (per-shard engine caches disabled)",
        ["mode", "seconds", "speedup", "shard index bits read",
         "shared hit rate"],
        [
            ["cold (first batch)", f"{cold_s:.4f}", "1.0x",
             reads_after_cold, "-"],
            ["hot (same batch again)", f"{hot_s:.4f}",
             f"{cold_s / max(hot_s, 1e-9):.0f}x",
             reads_after_hot - reads_after_cold,
             f"{cluster.shared_cache.hit_rate:.0%}"],
        ],
        note="0 extra bits read on the hot pass: every per-shard "
        "answer came from the versioned shared cache.",
    )
    benchmark(lambda: run_batch(cluster, query_batch))


def test_e12c_online_backend_migration(columns, report, benchmark):
    # A split-personality column: low-cardinality first half,
    # high-entropy second half -> per-shard advisor verdicts differ.
    low = standard_string("uniform", N // 2, 4, seed=35)
    high = [4 + v for v in standard_string("uniform", N // 2, 200, seed=36)]
    # Analytic economics: this experiment documents the raw
    # estimators' per-shard disagreement, independent of the
    # checked-in calibrated default.
    split = ClusterEngine(
        num_shards=2, cost_model=CostModel(calibration=None)
    )
    split.add_column("split", low + high, 204)
    split_backends = split.backends("split")
    assert len(set(split_backends)) > 1, (
        "shards with different statistics should land on different "
        f"backends, got {split_backends}"
    )

    # An append-heavy log column that went cold: freezing it re-opens
    # the static pool and every shard is rebuilt online.
    log = ClusterEngine(num_shards=4, drift_window=None)
    codes = standard_string("zipf", N, 8, seed=37, theta=1.3)
    log.add_column("log", codes, 8, dynamism="semidynamic")
    before = log.backends("log")
    model = list(codes)
    for i in range(64):
        log.append("log", i % 8)
        model.append(i % 8)
    want = [i for i, c in enumerate(model) if 1 <= c <= 3]
    assert log.query("log", 1, 3).positions() == want
    seconds, migrations = best_of(
        lambda: log.migrate("log", dynamism="static"), repeats=1
    )
    after = log.backends("log")
    assert all(m.changed for m in migrations)
    assert log.query("log", 1, 3).positions() == want  # still exact
    rows = [
        ["split column", "shard stats differ",
         " | ".join(split_backends), "-"],
        ["log column (before)", "semidynamic, append-heavy",
         " | ".join(before), "-"],
        ["log column (after)", "migrate(dynamism='static')",
         " | ".join(after), f"{seconds:.4f}s"],
    ]
    report.table(
        "E12c  online backend migration",
        ["scenario", "trigger", "per-shard backends", "rebuild time"],
        rows,
        note="answers asserted identical before and after migration; "
        "migration rebuilds in place behind the serving engine.",
    )
    benchmark(lambda: log.query("log", 1, 3).cardinality)
