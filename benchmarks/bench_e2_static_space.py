"""E2a — Theorem 2 space: ``O(n H0 + n + sigma lg^2 n)`` bits.

The payload must track the 0th-order entropy of the string across
skews, not ``n lg sigma``; the additive directory term is reported
separately, as the theorem states it.
"""

import math

import pytest

from repro.bench import ratio, standard_string
from repro.core import PaghRaoIndex
from repro.model.entropy import entropy_bits, h0

N = 1 << 13
SIGMA = 128

WORKLOADS = [
    ("zipf", {"theta": 0.0}),
    ("zipf", {"theta": 0.5}),
    ("zipf", {"theta": 1.0}),
    ("zipf", {"theta": 1.5}),
    ("zipf", {"theta": 2.0}),
    ("heavy_hitter", {"fraction": 0.6}),
    ("clustered", {}),
    ("markov_runs", {"stay": 0.9}),
]


@pytest.fixture(scope="module")
def built():
    out = []
    for kind, kwargs in WORKLOADS:
        x = standard_string(kind, N, SIGMA, seed=7, **kwargs)
        out.append((kind, kwargs, x, PaghRaoIndex(x, SIGMA)))
    return out


def test_e2a_space_tracks_entropy(built, report, benchmark):
    rows = []
    for kind, kwargs, x, idx in built:
        label = kind + (f"({list(kwargs.values())[0]})" if kwargs else "")
        bound = entropy_bits(x) + N
        space = idx.space()
        rows.append(
            [
                label,
                f"{h0(x):.2f}",
                f"{bound:,.0f}",
                space.payload_bits,
                ratio(space.payload_bits, bound),
                space.directory_bits,
            ]
        )
    report.table(
        "E2a  Theorem 2 space: payload vs nH0 + n   (n=%d, sigma=%d)" % (N, SIGMA),
        ["workload", "H0 (bits/sym)", "nH0+n", "payload bits", "ratio", "directory bits"],
        rows,
        note="the ratio staying O(1) while H0 varies 7x is the entropy bound; "
        "directory is the additive O(sigma lg^2 n) term.",
    )
    idx = built[0][3]
    benchmark(lambda: idx.space())


def test_e2a_directory_term(built, report, benchmark):
    # sigma lg^2 n scaling of the directory.
    rows = []
    for sigma in [32, 128, 512]:
        x = standard_string("uniform", N, sigma, seed=8)
        idx = PaghRaoIndex(x, sigma)
        bound = sigma * math.log2(N) ** 2
        rows.append(
            [sigma, idx.space().directory_bits, f"{bound:,.0f}",
             ratio(idx.space().directory_bits, bound)]
        )
    report.table(
        "E2a'  directory bits vs sigma lg^2 n   (n=%d)" % N,
        ["sigma", "directory bits", "sigma*lg^2 n", "ratio"],
        rows,
    )
    benchmark(lambda: PaghRaoIndex(standard_string("uniform", 1024, 32, seed=8), 32))
