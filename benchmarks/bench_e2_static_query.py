"""E2b — Theorem 2 query cost: ``O(z lg(n/z)/B + lg_b n + lg lg n)`` I/Os.

Measured block reads across a selectivity sweep, divided by the bound;
a flat ratio is the theorem.  Includes the §1.3 "no trade-off" claim:
the same structure whose space E2a pinned to the entropy also reads
within a constant of the output's compressed size.
"""

import math

import pytest

from repro.bench import (
    SELECTIVITIES,
    cold_query,
    output_bits_bound,
    prefix_range_for_selectivity,
    ratio,
    standard_string,
)
from repro.core import PaghRaoIndex

N = 1 << 13
SIGMA = 128


@pytest.fixture(scope="module")
def built():
    out = {}
    for kind in ("sequential", "zipf"):
        kwargs = {"theta": 1.0} if kind == "zipf" else {}
        x = standard_string(kind, N, SIGMA, seed=9, **kwargs)
        out[kind] = (x, PaghRaoIndex(x, SIGMA))
    return out


def _bound(idx, z):
    B = idx.disk.block_bits
    n = idx.n
    b = max(2, B // max(1, math.ceil(math.log2(n))))
    return (
        output_bits_bound(n, z) / B
        + math.log(n, b)
        + math.log2(max(2, math.log2(n)))
    )


def test_e2b_selectivity_sweep(built, report, benchmark):
    for kind, (x, idx) in built.items():
        rows = []
        for sel in SELECTIVITIES:
            lo, hi = prefix_range_for_selectivity(x, SIGMA, sel)
            io = cold_query(idx, lo, hi)
            bound = _bound(idx, io["z"])
            rows.append(
                [
                    f"1/{round(1 / sel)}",
                    f"[{lo},{hi}]",
                    io["z"],
                    io["reads"],
                    f"{bound:.1f}",
                    ratio(io["reads"], bound),
                ]
            )
        report.table(
            f"E2b  Theorem 2 query I/O, workload={kind}  (n={N}, sigma={SIGMA})",
            ["selectivity", "range", "z", "block reads", "bound", "ratio"],
            rows,
            note="bound = z lg(n/z)/B + lg_b n + lg lg n; flat ratio = theorem.",
        )
    x, idx = built["sequential"]
    lo, hi = prefix_range_for_selectivity(x, SIGMA, 1 / 16)
    benchmark(lambda: idx.range_query(lo, hi))


def test_e2b_bits_read_vs_output(built, report, benchmark):
    # The stronger statement: bits read within a constant of the
    # compressed output size itself (plus directory blocks).
    x, idx = built["sequential"]
    rows = []
    for sel in SELECTIVITIES:
        lo, hi = prefix_range_for_selectivity(x, SIGMA, sel)
        io = cold_query(idx, lo, hi)
        out_bits = output_bits_bound(N, io["z"])
        rows.append(
            [f"1/{round(1 / sel)}", io["z"], io["bits_read"],
             f"{out_bits:,.0f}", ratio(io["bits_read"], out_bits)]
        )
    report.table(
        "E2b'  bits read vs compressed output size  (sequential)",
        ["selectivity", "z", "bits read", "z lg(n/z)", "ratio"],
        rows,
        note="§1.3: 'within a constant factor of what would be needed to "
        "read the result, had it been precomputed'.  Small-z rows are "
        "dominated by the additive descent term (lg_b n + lg lg n whole "
        "blocks), which the theorem carries separately.",
    )
    benchmark(lambda: idx.count_range(0, SIGMA - 1))


def test_e2b_complement_trick(built, report, benchmark):
    # z > n/2 must not cost more than its complement.
    x, idx = built["sequential"]
    rows = []
    for hi in [SIGMA // 2 - 1, 3 * SIGMA // 4 - 1, SIGMA - 2]:
        io = cold_query(idx, 0, hi)
        rows.append([f"[0,{hi}]", io["z"], f"{io['z']/N:.2f}", io["reads"]])
    report.table(
        "E2b''  complement trick: reads stay bounded as z -> n",
        ["range", "z", "z/n", "block reads"],
        rows,
    )
    benchmark(lambda: idx.range_query(0, SIGMA - 2))
