"""E15 — the predicate algebra: plans that read only what they must.

Four claims.  (a) Disjunction width scales in *unique leaves*: an
``Or`` of w disjoint ranges costs w leaf fetches, each individually
cached, and stays bit-identical to the brute oracle at every width.
(b) An IN-list compiles to maximal code-interval *runs* via the
dictionary: a contiguous membership list costs one range query and
reads strictly fewer index bits than the per-point ``Eq`` loop it
replaces.  (c) Disjuncts share cached legs: a leaf paid for by one
arm of an ``Or`` is a cache hit for every later predicate that
reuses it — zero index bits for the shared leg.  (d) The acceptance
claim: a ``Not`` over a *sparse* predicate fetches the sparse leaf
and subtracts (complement-aware set algebra, §2.1's representation
reused), reading strictly fewer index bits than materializing the
complement as the two flanking range queries.  A final parity check
runs a fixed predicate workload through ``ClusterEngine`` under the
serial and worker-resident executors: identical RIDs, identical
aggregated I/O (the batched compiled-leaf fetch op buys no slack).
"""

from collections import Counter

import pytest

from repro.bench import standard_string
from repro.cluster import ClusterEngine, ProcessExecutor
from repro.engine import QueryEngine
from repro.query import And, Eq, In, Not, Or, Range

N = 1 << 12
SIGMA = 64
THETA = 1.3


@pytest.fixture(scope="module")
def data():
    return standard_string("zipf", N, SIGMA, seed=151, theta=THETA)


def fresh_engine(data):
    engine = QueryEngine(cache_size=512)
    engine.add_column("c", data, SIGMA)
    return engine


def go_cold(engine):
    engine.cache.invalidate()
    for column in engine.columns.values():
        column.index.disk.flush_cache()


def bits_of(engine, fn):
    stats = engine.columns["c"].index.stats
    before = stats.snapshot()
    result = fn()
    return result, (stats.snapshot() - before).bits_read


def oracle(data, pred_fn):
    return [i for i, v in enumerate(data) if pred_fn(v)]


def test_e15a_disjunction_width_scaling(data, report, benchmark):
    engine = fresh_engine(data)
    rows = []
    prev_leaves = 0
    for width in (1, 2, 4, 8, 16):
        # Non-adjacent single-code ranges, so normalization cannot
        # merge them: the plan's unique-leaf count IS the width.
        codes = [2 * k for k in range(width)]
        pred = Or(*(Range("c", c, c) for c in codes))
        plan = engine.plan(pred)
        assert len(plan.leaves) == width
        assert len(plan.leaves) >= prev_leaves
        prev_leaves = len(plan.leaves)
        go_cold(engine)
        got, cold_bits = bits_of(engine, lambda: engine.select(pred))
        assert got == oracle(data, lambda v: v in set(codes))
        _, hot_bits = bits_of(engine, lambda: engine.select(pred))
        assert hot_bits == 0  # every leaf served from the result cache
        rows.append([width, len(plan.leaves), cold_bits, hot_bits])
    report.table(
        "E15a  disjunction width: unique leaves and bits read "
        f"(n={N}, sigma={SIGMA}, zipf {THETA})",
        ["or-width", "unique leaves", "cold bits", "hot bits"],
        rows,
        note="an Or of w disjoint ranges compiles to exactly w leaf "
        "fetches; repeats are served entirely from the result cache.",
    )
    benchmark(lambda: engine.select(Or(Range("c", 0, 0), Range("c", 2, 2))))


def test_e15b_in_list_vs_per_point_loop(data, report, benchmark):
    members = list(range(8, 24))  # 16 adjacent codes -> ONE interval run
    in_pred = In("c", members)
    # A range-friendly backend makes the claim sharp: range-encoded
    # bitmaps answer ANY interval with <= 2 bitmap reads, so one run
    # beats 16 point queries outright.  (On a per-code backend like
    # bitmap-gamma both plans read the same bitmaps — the run still
    # wins on round-trips and result-cache entries.)
    def pinned_engine():
        engine = QueryEngine(cache_size=512)
        engine.add_column("c", data, SIGMA, backend="bitmap-range-encoded")
        return engine

    engine = pinned_engine()
    plan = engine.plan(in_pred)
    assert len(plan.leaves) == 1, "adjacent members must fuse into a run"
    go_cold(engine)
    want, in_bits = bits_of(engine, lambda: engine.select(in_pred))
    assert want == oracle(data, lambda v: v in set(members))

    # The pre-algebra alternative: one Eq select per member, unioned.
    loop_engine = pinned_engine()
    go_cold(loop_engine)

    def per_point():
        out = set()
        for member in members:
            out.update(loop_engine.select(Eq("c", member)))
        return sorted(out)

    got, loop_bits = bits_of(loop_engine, per_point)
    assert got == want
    assert in_bits < loop_bits, (
        f"IN-list run read {in_bits} bits, per-point loop {loop_bits}"
    )
    # Scattered members still collapse to runs, never more leaves
    # than members.
    scattered = In("c", list(range(0, 32, 4)))
    assert len(engine.plan(scattered).leaves) == 8
    report.table(
        "E15b  IN-list (interval runs) vs per-point Eq loop "
        f"({len(members)} adjacent members)",
        ["plan", "leaf fetches", "bits read"],
        [
            ["In(...) as one run", 1, in_bits],
            ["Eq loop + union", len(members), loop_bits],
            ["advantage", "-", f"{loop_bits / max(in_bits, 1):.1f}x fewer"],
        ],
        note="the dictionary turns adjacent membership codes into one "
        "range query (§1.1); the loop pays per member.",
    )
    benchmark(lambda: engine.select(in_pred))


def test_e15c_cached_leg_reuse_across_or_arms(data, report, benchmark):
    shared = Range("c", 4, 9)
    first = Or(shared, Range("c", 20, 33))
    second = And(shared, Range("c", None, 25))
    cold_engine = fresh_engine(data)
    go_cold(cold_engine)
    _, second_cold = bits_of(cold_engine, lambda: cold_engine.select(second))

    engine = fresh_engine(data)
    go_cold(engine)
    _, first_bits = bits_of(engine, lambda: engine.select(first))
    hits_before = engine.cache.hits
    _, second_bits = bits_of(engine, lambda: engine.select(second))
    assert engine.cache.hits > hits_before, "the shared leg must hit"
    assert second_bits < second_cold, (
        f"shared leg not reused: {second_bits} vs cold {second_cold}"
    )
    report.table(
        "E15c  cached-leg reuse across predicates",
        ["query", "bits read"],
        [
            ["Or(A, B)  (cold)", first_bits],
            ["And(A, C) after the Or", second_bits],
            ["And(A, C) cold (control)", second_cold],
        ],
        note="leaf cache keys are the normalized intervals, so any "
        "predicate reusing a leg pays zero index bits for it.",
    )
    benchmark(lambda: engine.select(second))


def test_e15d_not_sparse_beats_materialized_complement(
    data, report, benchmark
):
    """The acceptance criterion: a Not plan over a sparse predicate
    reads fewer index bits than materializing the complement."""
    counts = Counter(data)
    rare = min(
        (c for c in range(SIGMA) if counts.get(c)), key=counts.get
    )
    sparse_z = counts[rare]
    engine = fresh_engine(data)
    plan = engine.plan(Not(Eq("c", rare)))
    assert len(plan.leaves) == 1
    go_cold(engine)
    want, not_bits = bits_of(
        engine, lambda: engine.select(Not(Eq("c", rare)))
    )
    assert want == oracle(data, lambda v: v != rare)

    # The materialized alternative: query the complement's two
    # flanking ranges directly and concatenate.
    comp_engine = fresh_engine(data)
    go_cold(comp_engine)

    def materialized():
        out = []
        if rare > 0:
            out.extend(comp_engine.select(Range("c", 0, rare - 1)))
        if rare < SIGMA - 1:
            out.extend(comp_engine.select(Range("c", rare + 1, SIGMA - 1)))
        return sorted(out)

    got, comp_bits = bits_of(comp_engine, materialized)
    assert got == want
    assert not_bits < comp_bits, (
        f"Not plan read {not_bits} bits, materialized complement "
        f"{comp_bits} — the sparse leaf must win"
    )
    report.table(
        "E15d  Not over a sparse predicate (z={}) vs materialized "
        "complement".format(sparse_z),
        ["plan", "bits read"],
        [
            [f"Not(Eq(c, {rare})) — sparse leaf + flip", not_bits],
            ["flanking ranges materialized", comp_bits],
            ["advantage", f"{comp_bits / max(not_bits, 1):.1f}x fewer bits"],
        ],
        note="the complement-aware algebra reuses the paper's §2.1 "
        "representation: the answer is the sparse leaf, flagged "
        "complemented, never expanded by the index layer.",
    )
    benchmark(lambda: engine.select(Not(Eq("c", rare))))


def test_e15e_cluster_parity_serial_vs_process(data, report):
    """A fixed predicate workload is bit-identical — results and
    aggregated I/O — under the serial and worker-resident executors,
    leaf fetches batched per shard into one pipe message."""
    preds = [
        And(Range("c", 4, 20), Or(In("c", [2, 3, 40]), Not(Eq("c", 7)))),
        Or(*(Range("c", 3 * k, 3 * k + 1) for k in range(6))),
        And(Not(In("c", [0, 1])), Range("c", None, 30)),
    ]
    rows = []
    with ProcessExecutor(max_workers=2) as pool:
        serial = ClusterEngine(num_shards=4)
        resident = ClusterEngine(num_shards=4, executor=pool)
        serial.add_column("c", data, SIGMA)
        resident.add_column("c", data, SIGMA)
        try:
            for i, pred in enumerate(preds):
                want = serial.select(pred)
                got = resident.select(pred)
                assert got == want
                # Batch-scatter form: one 'leaves' message per shard.
                assert (
                    resident.query(pred).positions()
                    == serial.query(pred).positions()
                    == want
                )
                rows.append(
                    [i, repr(pred)[:48] + "...", len(want),
                     len(serial.plan(pred).leaves)]
                )
            assert (
                resident.scatter_io.snapshot()
                == serial.scatter_io.snapshot()
            )
        finally:
            resident.close()
    report.table(
        "E15e  predicate parity: serial vs worker-resident executors",
        ["#", "predicate", "matches", "unique leaves"],
        rows,
        note="identical RIDs and identical aggregated scatter I/O; "
        "resident leaf fetches ship one batched message per shard "
        "per column.",
    )
