"""E14 — process-parallel scatter-gather: overlap that is real.

Three claims.  (a) With the disk latency model on (every block
transfer sleeps, as a real device would), executors that overlap
per-shard fetches beat the serial walk on wall clock: the
worker-resident ``ProcessExecutor`` must clear >1.5x at 4 and 16
shards — asserted, not just recorded — and the threaded executor
overlaps too (the sleeps release the GIL).  Latency-off rows are
*asserted* too, not just recorded: with the fast kernels doing the
decode and the transport speaking grouped per-worker messages plus
shared-memory bulk payloads, the process scatter must beat the
serial walk at 16 shards when real cores are available; on a
single-core host, where parallel decode is physically serialized and
IPC can only cost, the same row must stay within a small bounded
overhead of serial (the old regression was unbounded — it *grew*
with shard count).  (b) Parallelism buys no slack on accounting: the
aggregated per-worker ``IOStats`` totals equal the serial run's
exactly, transfer for transfer.  (c) The prefetching streamed gather
pipelines the next shards' fetches while the current buffer drains —
faster than the serial walk under latency while ``GatherStats`` still
proves the O(max shard answer) delivered-buffer bound.
"""

import os

import pytest

from repro.bench import best_of, standard_string
from repro.bench.workloads import random_ranges
from repro.cluster import ClusterEngine, ProcessExecutor, ThreadedExecutor

N = 1 << 15
SIGMA = 32
LATENCY_S = 2e-4
WORKERS = 4
NUM_QUERIES = 6
SHARD_COUNTS = [1, 4, 16]
REQUIRED_SPEEDUP = 1.5
#: Latency-off bound for hosts without real parallelism (see CORES).
MAX_SINGLE_CORE_OVERHEAD = 1.75

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def data():
    return standard_string("zipf", N, SIGMA, seed=81, theta=1.2)


@pytest.fixture(scope="module")
def query_batch():
    return random_ranges(SIGMA, NUM_QUERIES, seed=82)


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(max_workers=WORKERS) as pool:
        yield pool


@pytest.fixture(scope="module")
def thread_pool():
    with ThreadedExecutor(max_workers=WORKERS) as pool:
        yield pool


def build_cluster(data, num_shards, executor=None, **kwargs):
    cluster = ClusterEngine(
        num_shards=num_shards, executor=executor, drift_window=None, **kwargs
    )
    cluster.add_column("c", data, SIGMA)
    return cluster


def cold_batch(cluster, query_batch):
    """Every query cold: all result and block caches dropped first."""

    def run():
        out = 0
        for lo, hi in query_batch:
            cluster.drop_caches()
            out += cluster.query("c", lo, hi).cardinality
        return out

    return run


def test_e14a_process_scatter_beats_serial_under_latency(
    data, query_batch, process_pool, thread_pool, report, benchmark
):
    rows = []
    speedups = {}
    speedups_off = {}
    for num_shards in SHARD_COUNTS:
        timings = {}
        for label, executor in [
            ("serial", None),
            ("threaded", thread_pool),
            ("process", process_pool),
        ]:
            cluster = build_cluster(data, num_shards, executor)
            run = cold_batch(cluster, query_batch)
            reference = run()
            off_s, total = best_of(run, repeats=3)
            assert total == reference
            cluster.set_io_latency(LATENCY_S)
            on_s, total = best_of(run, repeats=2)
            assert total == reference
            timings[label] = (off_s, on_s)
            cluster.close()
        serial_off, serial_on = timings["serial"]
        for label in ("serial", "threaded", "process"):
            off_s, on_s = timings[label]
            speedup = serial_on / max(on_s, 1e-9)
            speedup_off = serial_off / max(off_s, 1e-9)
            speedups[(num_shards, label)] = speedup
            speedups_off[(num_shards, label)] = speedup_off
            rows.append(
                [
                    num_shards,
                    label,
                    f"{off_s * 1e3:.1f}ms",
                    f"{speedup_off:.2f}x",
                    f"{on_s * 1e3:.1f}ms",
                    f"{speedup:.2f}x",
                ]
            )
    # The tentpole claim: real overlap at 4+ shards, not just a seam.
    for num_shards in (4, 16):
        got = speedups[(num_shards, "process")]
        assert got > REQUIRED_SPEEDUP, (
            f"process executor {got:.2f}x at {num_shards} shards "
            f"(need > {REQUIRED_SPEEDUP}x with latency on)"
        )
    # The fixed regression row: latency OFF, 16 shards.  With real
    # cores the resident scatter must now win outright; a single-core
    # host serializes the workers' decode by definition, so the win
    # is impossible there and the assertion is the bounded-overhead
    # form (the regression this replaces grew with shard count).
    off_16 = speedups_off[(16, "process")]
    if CORES >= 2:
        assert off_16 > 1.0, (
            f"process executor {off_16:.2f}x vs serial at 16 shards "
            f"with latency off ({CORES} cores available: must win)"
        )
    else:
        assert off_16 > 1.0 / MAX_SINGLE_CORE_OVERHEAD, (
            f"process executor {1 / off_16:.2f}x overhead vs serial at "
            f"16 shards with latency off (single-core bound "
            f"{MAX_SINGLE_CORE_OVERHEAD}x)"
        )
    report.table(
        f"E14a  scatter wall clock: {NUM_QUERIES} cold queries over "
        f"n={N} (latency {LATENCY_S * 1e3:.1f}ms/block, {WORKERS} workers, "
        f"{CORES} cores)",
        ["shards", "executor", "lat off", "off speedup", "lat on",
         "on speedup"],
        rows,
        note="speedups are serial vs executor at the same shard count "
        "and latency setting; >1.5x asserted for the process executor "
        "at 4 and 16 shards with latency on, and the latency-off "
        "16-shard row (the old regression) is asserted too: an "
        "outright win with >= 2 cores, bounded overhead "
        f"(< {MAX_SINGLE_CORE_OVERHEAD}x) on a single-core host.",
    )
    cluster = build_cluster(data, 4, process_pool)
    benchmark(cold_batch(cluster, query_batch))
    cluster.close()


def test_e14b_parallelism_buys_no_accounting_slack(
    data, query_batch, process_pool, thread_pool, report, benchmark
):
    results = {}
    for label, executor in [
        ("serial", None),
        ("threaded", thread_pool),
        ("process", process_pool),
    ]:
        cluster = build_cluster(data, 8, executor)
        answers = []
        for lo, hi in query_batch:
            cluster.drop_caches()  # pay the transfers, don't hide them
            answers.append(cluster.query("c", lo, hi).positions())
        answers.append(cluster.select({"c": (1, SIGMA // 2)}))
        results[label] = (answers, cluster.scatter_io.snapshot())
        cluster.close()
    base_answers, base_io = results["serial"]
    for label in ("threaded", "process"):
        answers, io = results[label]
        assert answers == base_answers, f"{label} diverged on answers"
        assert io == base_io, f"{label} diverged on I/O totals"
    report.table(
        "E14b  serial vs parallel accounting on one fixed workload "
        f"({NUM_QUERIES + 1} queries, 8 shards)",
        ["executor", "block reads", "bits read", "identical to serial"],
        [
            [label, io.reads, io.bits_read, "yes" if io == base_io else "NO"]
            for label, (_, io) in results.items()
        ],
        note="asserted: aggregated per-worker IOStats snapshots fold "
        "into exactly the serial totals — the I/O model's cost is a "
        "property of the plan, not of where it runs.",
    )
    benchmark(lambda: base_io.total)


def test_e14c_prefetching_gather_overlaps_the_stream(
    data, process_pool, report, benchmark
):
    second = standard_string("uniform", N, 8, seed=83)
    conditions = {"c": (0, SIGMA - 2), "d": (0, 6)}

    def build(executor, prefetch_depth=None):
        cluster = ClusterEngine(
            num_shards=16,
            executor=executor,
            drift_window=None,
            prefetch_depth=prefetch_depth,
        )
        cluster.add_column("c", data, SIGMA)
        cluster.add_column("d", second, 8)
        cluster.set_io_latency(LATENCY_S)
        return cluster

    def streamed(cluster):
        def run():
            cluster.drop_caches()
            cluster.gather_stats.reset()
            return sum(1 for _ in cluster.select_iter(conditions))

        return run

    serial = build(None)
    assert serial.prefetch_depth == 0  # the inline executor never prefetches
    serial_s, serial_count = best_of(streamed(serial), repeats=2)
    serial.close()
    prefetching = build(process_pool, prefetch_depth=WORKERS)
    prefetch_s, prefetch_count = best_of(streamed(prefetching), repeats=2)
    peak = prefetching.gather_stats.peak_rids
    max_shard = max(prefetching.shard_lengths("c"))
    bound = 2 * 2 * max_shard  # 2 dims x (drain + handoff buffer)
    assert prefetch_count == serial_count > N // 2
    assert peak <= bound, f"peak {peak} RIDs exceeds {bound}"
    speedup = serial_s / max(prefetch_s, 1e-9)
    assert speedup > REQUIRED_SPEEDUP, (
        f"prefetching gather {speedup:.2f}x (need > {REQUIRED_SPEEDUP}x)"
    )
    report.table(
        f"E14c  streamed 2-dim select over {N} rows x 16 shards "
        f"(latency {LATENCY_S * 1e3:.1f}ms/block)",
        ["gather", "seconds", "speedup", "answer RIDs",
         "peak buffered RIDs", "bound"],
        [
            ["serial walk", f"{serial_s:.3f}", "1.0x", serial_count, "-", "-"],
            [
                f"prefetch depth {WORKERS} (process)",
                f"{prefetch_s:.3f}",
                f"{speedup:.2f}x",
                prefetch_count,
                peak,
                bound,
            ],
        ],
        note="speedup > 1.5x and peak <= bound both asserted: the "
        "bridge pipelines later shards' fetches while the current "
        "buffer drains, still materializing at most one draining plus "
        "one handoff buffer per dimension.",
    )
    run = streamed(prefetching)
    benchmark(run)
    prefetching.close()
