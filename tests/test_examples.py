"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; this guards them
against API drift.  Each runs as a subprocess exactly as a user would
invoke it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

SCRIPTS = [
    "quickstart.py",
    "olap_people.py",
    "scientific_sensors.py",
    "dynamic_log.py",
    "approximate_multidim.py",
    "engine_autopick.py",
    "cluster_scatter_gather.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
