"""Stateful tests: cross-shard cache invalidation under mixed updates.

The cluster's contract extends the engine's: a shared-cache entry is
never served after an update to *its* shard, while entries of every
other shard stay live and keep serving.  The machine below interleaves
appends, changes, and deletes — routed to shards by global RID — with
repeated (and so cache-hitting) global queries, checking every answer
against a plain-Python model of the per-shard strings.

The model mirrors deletion semantics exactly: a deleted position holds
a ``None`` hole until the shard's backend compacts (which
:class:`~repro.core.deletions.DeletableIndex` does once half the
shard's physical positions are holes), at which point the model shard
compacts with it and all later global RIDs shift — precisely what a
stale cached answer would get wrong.

Shard *splits* interleave with everything else: a split retires the
split shard's stable uid (killing its cached entries) while every
sibling's entries remain keyed by their unchanged uids — so hot
entries must keep serving across the reshape, and no key may ever
reference a retired uid.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cluster import ClusterEngine

SIGMA = 8
NUM_SHARDS = 3
REBUILD_FRACTION = 0.5  # DeletableIndex's default


class ClusterCacheMachine(RuleBasedStateMachine):
    """Two columns over three shards behind one shared result cache."""

    @initialize()
    def setup(self):
        self.cluster = ClusterEngine(num_shards=NUM_SHARDS, drift_window=None)
        dyn = [0, 3, 1, 7, 2, 5, 0, 4, 6, 1, 3, 2]
        dele = [1, 1, 2, 6, 3, 0, 7, 5, 4, 2, 0, 6]
        self.cluster.add_column("dyn", dyn, SIGMA, dynamism="fully_dynamic")
        self.cluster.add_column(
            "del", dele, SIGMA, dynamism="fully_dynamic", require_delete=True
        )
        # Per-shard model strings; "del" shards may hold None holes.
        slices = self.cluster.plan_.slices()
        self.dyn_shards = [dyn[a:b] for a, b in slices]
        self.del_shards = [dele[a:b] for a, b in slices]

    # ------------------------------------------------------------------
    # Model helpers
    # ------------------------------------------------------------------

    def _flat(self, shards):
        out = []
        for shard in shards:
            out.extend(shard)
        return out

    def _expected(self, shards, lo, hi):
        return [
            i
            for i, c in enumerate(self._flat(shards))
            if c is not None and lo <= c <= hi
        ]

    def _route(self, shards, global_pos):
        for shard_id, shard in enumerate(shards):
            if global_pos < len(shard):
                return shard_id, global_pos
            global_pos -= len(shard)
        raise AssertionError("machine routed outside its own model")

    def _live_positions(self, shards):
        return [
            i for i, c in enumerate(self._flat(shards)) if c is not None
        ]

    # ------------------------------------------------------------------
    # Update rules
    # ------------------------------------------------------------------

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_dyn(self, ch):
        self.cluster.append("dyn", ch)
        self.dyn_shards[-1].append(ch)

    @rule(data=st.data())
    def change_dyn(self, data):
        total = sum(len(s) for s in self.dyn_shards)
        pos = data.draw(st.integers(0, total - 1))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.cluster.change("dyn", pos, ch)
        shard_id, local = self._route(self.dyn_shards, pos)
        self.dyn_shards[shard_id][local] = ch

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_del(self, ch):
        self.cluster.append("del", ch)
        self.del_shards[-1].append(ch)

    @rule(data=st.data())
    def change_del(self, data):
        live = self._live_positions(self.del_shards)
        if not live:
            return
        pos = data.draw(st.sampled_from(live))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.cluster.change("del", pos, ch)
        shard_id, local = self._route(self.del_shards, pos)
        self.del_shards[shard_id][local] = ch

    @rule(data=st.data())
    def delete_del(self, data):
        live = self._live_positions(self.del_shards)
        if not live:
            return
        pos = data.draw(st.sampled_from(live))
        self.cluster.delete("del", pos)
        shard_id, local = self._route(self.del_shards, pos)
        shard = self.del_shards[shard_id]
        shard[local] = None
        # Mirror the backend's global rebuild: once holes reach the
        # rebuild fraction of the shard's physical length, it compacts
        # and every later global RID shifts down.
        holes = sum(1 for c in shard if c is None)
        if holes >= REBUILD_FRACTION * max(1, len(shard)):
            self.del_shards[shard_id] = [c for c in shard if c is not None]

    @rule(data=st.data())
    def split_a_shard(self, data):
        """Lifecycle reshapes interleaved with the update traffic: the
        split compacts pending holes (like any rebuild) and retires
        the shard's uid, which the invariants below then audit."""
        candidates = [
            sid
            for sid in range(len(self.dyn_shards))
            if sum(1 for c in self.dyn_shards[sid] if c is not None) >= 2
            and sum(1 for c in self.del_shards[sid] if c is not None) >= 2
        ]
        if not candidates:
            return
        sid = data.draw(st.sampled_from(candidates))
        self.cluster.split_shard(sid)
        for shards in (self.dyn_shards, self.del_shards):
            live = [c for c in shards[sid] if c is not None]
            mid = len(live) // 2
            shards[sid : sid + 1] = [live[:mid], live[mid:]]

    # ------------------------------------------------------------------
    # Query rules (the second ask is the cache-hitting one)
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def query_twice(self, data):
        name, shards = data.draw(
            st.sampled_from(
                [("dyn", self.dyn_shards), ("del", self.del_shards)]
            )
        )
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        want = self._expected(shards, lo, hi)
        assert self.cluster.query(name, lo, hi).positions() == want
        assert self.cluster.query(name, lo, hi).positions() == want

    @rule(data=st.data())
    def conjunctive_select(self, data):
        # Both columns share the RID space only while equally long;
        # the engine intersects whatever each dimension reports.
        lo = data.draw(st.integers(0, SIGMA - 2))
        dyn = set(self._expected(self.dyn_shards, lo, lo + 1))
        dele = set(self._expected(self.del_shards, 0, 3))
        want = sorted(dyn & dele)
        got = self.cluster.select({"dyn": (lo, lo + 1), "del": (0, 3)})
        assert got == want

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def model_and_cluster_agree_on_shard_lengths(self):
        for name, shards in (
            ("dyn", self.dyn_shards),
            ("del", self.del_shards),
        ):
            assert self.cluster.shard_lengths(name) == [
                len(s) for s in shards
            ]

    @invariant()
    def cached_entries_reference_current_versions(self):
        # The invalidation protocol: no shared-cache key may survive
        # its shard's version — and keys carry stable uids, so none
        # may reference a shard retired by a split.
        uids = self.cluster.shard_uids
        for key in list(self.cluster.shared_cache.store._lru._data):
            name, uid, epoch, version = key[0], key[1], key[2], key[3]
            assert epoch == self.cluster.columns[name].epoch
            assert uid in uids
            position = uids.index(uid)
            current = self.cluster.shard_column(name, position).version
            assert version == current

    @invariant()
    def full_range_matches(self):
        for name, shards in (
            ("dyn", self.dyn_shards),
            ("del", self.del_shards),
        ):
            got = self.cluster.query(name, 0, SIGMA - 1).positions()
            assert got == self._expected(shards, 0, SIGMA - 1)


TestClusterCacheMachine = ClusterCacheMachine.TestCase
TestClusterCacheMachine.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)


def test_interleaved_updates_never_serve_stale_rids():
    """Deterministic companion to the machine: heavy interleaving with
    repeated hot queries, proving the hits are real and never stale."""
    cluster = ClusterEngine(num_shards=4, drift_window=None)
    base = [(3 * i + 1) % SIGMA for i in range(40)]
    cluster.add_column(
        "c", base, SIGMA, dynamism="fully_dynamic", require_delete=True
    )
    shards = [
        base[a:b] for a, b in cluster.plan_.slices()
    ]

    def flat():
        return [c for shard in shards for c in shard]

    stale = 0
    for step in range(120):
        lo, hi = step % 4, step % 4 + 3
        want = [
            i for i, c in enumerate(flat()) if c is not None and lo <= c <= hi
        ]
        for _ in range(2):  # the second answer is served from cache
            if cluster.query("c", lo, hi).positions() != want:
                stale += 1
        kind = step % 3
        if kind == 0:
            cluster.append("c", step % SIGMA)
            shards[-1].append(step % SIGMA)
        elif kind == 1:
            live = [i for i, c in enumerate(flat()) if c is not None]
            pos = live[(step * 7) % len(live)]
            cluster.change("c", pos, (step * 5) % SIGMA)
            acc = 0
            for shard in shards:
                if pos < acc + len(shard):
                    shard[pos - acc] = (step * 5) % SIGMA
                    break
                acc += len(shard)
        else:
            live = [i for i, c in enumerate(flat()) if c is not None]
            pos = live[(step * 11) % len(live)]
            cluster.delete("c", pos)
            acc = 0
            for idx, shard in enumerate(shards):
                if pos < acc + len(shard):
                    shard[pos - acc] = None
                    holes = sum(1 for c in shard if c is None)
                    if holes >= REBUILD_FRACTION * max(1, len(shard)):
                        shards[idx] = [c for c in shard if c is not None]
                    break
                acc += len(shard)
    assert stale == 0
    assert cluster.shared_cache.hits > 50  # the hot path really was hot
