"""Property-based tests (hypothesis) on codecs, bitmaps, trees, indexes."""

import random

from hypothesis import given, settings, strategies as st

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.ebitmap import GapCompressedBitmap, decode_gaps, encode_gaps
from repro.bits.gamma import (
    read_delta,
    read_gamma,
    write_delta,
    write_gamma,
)
from repro.bits.ops import (
    complement_sorted,
    difference_sorted,
    intersect_sorted,
    union_sorted,
)
from repro.bits.plain import PlainBitmap
from repro.bits.wah import WahBitmap
from repro.core import BufferedBitmapIndex, PaghRaoIndex
from repro.hashing import XorFoldHash
from repro.iomodel import Disk
from repro.trees.weighted import WeightedTree

positive_ints = st.integers(min_value=1, max_value=1 << 48)
position_sets = st.sets(st.integers(min_value=0, max_value=4000), max_size=250)
small_strings = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=400
)


class TestCodecs:
    @given(st.lists(positive_ints, max_size=60))
    def test_gamma_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            write_gamma(w, v)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert [read_gamma(r) for _ in values] == values
        assert r.at_end() or r.remaining < 8

    @given(st.lists(positive_ints, max_size=60))
    def test_delta_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            write_delta(w, v)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert [read_delta(r) for _ in values] == values

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 30) - 1),
                st.integers(min_value=1, max_value=30),
            ),
            max_size=40,
        )
    )
    def test_bitio_mixed_roundtrip(self, fields):
        w = BitWriter()
        payload = [(v & ((1 << nb) - 1), nb) for v, nb in fields]
        for v, nb in payload:
            w.write_bits(v, nb)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert [r.read_bits(nb) for _, nb in payload] == [v for v, _ in payload]

    @given(position_sets)
    def test_gap_roundtrip(self, s):
        positions = sorted(s)
        w = BitWriter()
        encode_gaps(w, positions)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert decode_gaps(r, len(positions)) == positions

    @given(position_sets)
    def test_gap_bitmap_roundtrip(self, s):
        positions = sorted(s)
        bm = GapCompressedBitmap.from_positions(positions, 4001)
        assert bm.positions() == positions

    @given(position_sets)
    def test_wah_roundtrip(self, s):
        positions = sorted(s)
        bm = WahBitmap.from_positions(positions, 4001)
        assert bm.positions() == positions

    @given(position_sets)
    def test_plain_roundtrip_and_count(self, s):
        positions = sorted(s)
        bm = PlainBitmap.from_positions(positions, 4001)
        assert bm.positions() == positions
        assert bm.count() == len(positions)


class TestSetAlgebra:
    @given(position_sets, position_sets)
    def test_ops_match_python_sets(self, a, b):
        sa, sb = sorted(a), sorted(b)
        assert union_sorted([sa, sb]) == sorted(a | b)
        assert intersect_sorted(sa, sb) == sorted(a & b)
        assert difference_sorted(sa, sb) == sorted(a - b)

    @given(position_sets)
    def test_complement_involution(self, a):
        sa = sorted(a)
        assert complement_sorted(complement_sorted(sa, 4001), 4001) == sa

    @given(position_sets, position_sets)
    def test_plain_bitmap_algebra(self, a, b):
        ba = PlainBitmap.from_positions(sorted(a), 4001)
        bb = PlainBitmap.from_positions(sorted(b), 4001)
        assert (ba | bb).positions() == sorted(a | b)
        assert (ba & bb).positions() == sorted(a & b)
        assert ba.and_not(bb).positions() == sorted(a - b)
        assert (ba ^ bb).positions() == sorted(a ^ b)


class TestHashing:
    @settings(deadline=None)
    @given(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=1, max_value=10),
        st.integers(),
    )
    def test_xorfold_membership_identity(self, i, fold_bits, seed):
        h = XorFoldHash.sample(random.Random(seed), fold_bits)
        universe = (i + 1) * 2
        hashed = {h(i)}
        assert i in set(h.preimage(hashed, universe))


class TestTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_strings)
    def test_invariants_hold(self, x):
        tree = WeightedTree.build(x, 16)
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(small_strings, st.integers(0, 15), st.integers(0, 15))
    def test_canonical_cover_is_exact(self, x, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = WeightedTree.build(x, 16)
        canonical, _ = tree.canonical_cover(lo, hi)
        got = sorted(p for v in canonical for p in tree.node_positions(v))
        assert got == [i for i, ch in enumerate(x) if lo <= ch <= hi]

    @settings(max_examples=40, deadline=None)
    @given(small_strings)
    def test_split_heavy_false_one_leaf_per_char(self, x):
        tree = WeightedTree.build(x, 16, split_heavy=False)
        seen = set()
        for leaf in tree.leaves:
            assert leaf.char_lo not in seen, "character split across leaves"
            seen.add(leaf.char_lo)


class TestIndexProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_strings, st.integers(0, 15), st.integers(0, 15))
    def test_static_index_matches_oracle(self, x, a, b):
        lo, hi = min(a, b), max(a, b)
        idx = PaghRaoIndex(x, 16, block_bits=256)
        got = idx.range_query(lo, hi).positions()
        assert got == [i for i, ch in enumerate(x) if lo <= ch <= hi]

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),              # key
                st.integers(0, 500),            # position
                st.booleans(),                  # insert?
            ),
            max_size=120,
        )
    )
    def test_buffered_bitmap_matches_shadow(self, ops):
        disk = Disk(block_bits=256, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 4, [[], [], [], []])
        shadow = [set(), set(), set(), set()]
        for key, pos, is_insert in ops:
            if is_insert:
                idx.insert(key, pos)
                shadow[key].add(pos)
            else:
                idx.delete(key, pos)
                shadow[key].discard(pos)
        for key in range(4):
            assert idx.point_query(key) == sorted(shadow[key])
