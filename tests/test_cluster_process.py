"""Process-parallel serving: resident shard runtimes vs the serial path.

The contract under test is the strongest one the executor protocol
makes: a cluster served by worker-resident engine replicas
(``ProcessExecutor``) must be *observationally identical* to the
serial in-process cluster on any fixed workload — bit-identical
query/select/explain results and bit-identical aggregated
``scatter_io`` totals — because the replicas are built from the same
snapshots and kept in sync by the same routed deltas the coordinator
applies locally.
"""

import pytest

from repro.cluster import (
    ClusterEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.cluster.worker import ShardHost
from repro.engine import Advisor, WorkloadStats, get_spec
from repro.errors import InvalidParameterError, QueryError, UpdateError
from repro.model.distributions import uniform, zipf

from tests.conftest import brute_range

SIGMA = 16


class FlipAdvisor(Advisor):
    """Deterministic advisor for drift tests: entropy decides the pick."""

    def __init__(self, threshold: float) -> None:
        super().__init__()
        self.threshold = threshold

    def pick(self, stats: WorkloadStats):
        if stats.h0 < self.threshold:
            return get_spec("fully-dynamic")
        return get_spec("deletable")


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(max_workers=2) as pool:
        yield pool


def drive_fixed_workload(cluster: ClusterEngine) -> dict:
    """One deterministic workload exercising every delta kind.

    Build, query, route updates (append/change/delete), migrate with a
    pin, freeze nothing, query again — recording everything observable
    so two executors can be compared field by field.
    """
    x = zipf(240, SIGMA, theta=1.2, seed=31)
    y = uniform(240, 8, seed=32)
    cluster.add_column("c", x, SIGMA, dynamism="fully_dynamic",
                       require_delete=True)
    cluster.add_column("d", y, 8, dynamism="fully_dynamic")
    out = {"phases": []}

    def observe(tag):
        out["phases"].append(
            {
                "tag": tag,
                "q_c": cluster.query("c", 2, 11).positions(),
                "q_d": cluster.query("d", 1, 5).positions(),
                "select": cluster.select({"c": (0, 9), "d": (2, 7)}),
                "stream": list(cluster.select_iter({"c": (2, 13), "d": (0, 6)})),
                "explain": cluster.explain("c", 2, 11),
                "backends_c": cluster.backends("c"),
                "backends_d": cluster.backends("d"),
            }
        )

    observe("built")
    for i in range(24):
        cluster.append("c", (3 * i) % SIGMA)
        cluster.append("d", (5 * i) % 8)
    for i in range(12):
        cluster.change("c", (7 * i) % 240, (i + 4) % SIGMA)
    for i in range(6):
        try:
            cluster.delete("c", (11 * i) % 200)
        except UpdateError:
            pass  # slot already holds a pending hole; same on every run
    observe("updated")
    cluster.migrate("c", backend="deletable")
    cluster.migrate("d")
    observe("migrated")
    out["scatter_io"] = cluster.scatter_io.snapshot()
    return out


class TestProcessMatchesSerial:
    def test_fixed_workload_identical_results_and_io(self, process_pool):
        serial = ClusterEngine(num_shards=4, drift_window=None)
        proc = ClusterEngine(
            num_shards=4, drift_window=None, executor=process_pool
        )
        try:
            want = drive_fixed_workload(serial)
            got = drive_fixed_workload(proc)
            assert got["phases"] == want["phases"]
            # The headline: per-worker I/O snapshots folded back into
            # cluster totals equal the serial run's, transfer for
            # transfer and bit for bit.
            assert got["scatter_io"] == want["scatter_io"]
            assert got["scatter_io"].bits_read > 0
        finally:
            proc.close()

    def test_static_columns_and_pruning(self, process_pool):
        # Static shards re-dictionary onto local alphabets; the
        # translated ranges and pruned shards must ship identically.
        x = [0] * 60 + [7] * 60 + [13] * 60
        serial = ClusterEngine(num_shards=3)
        serial.add_column("s", x, SIGMA)
        proc = ClusterEngine(num_shards=3, executor=process_pool)
        proc.add_column("s", x, SIGMA)
        try:
            for lo, hi in [(0, 0), (1, 6), (7, 13), (0, 15), (8, 12)]:
                assert (
                    proc.query("s", lo, hi).positions()
                    == serial.query("s", lo, hi).positions()
                    == brute_range(x, lo, hi)
                )
            assert proc.scatter_io.snapshot() == serial.scatter_io.snapshot()
        finally:
            proc.close()

    def test_drift_migration_ships_rebuilds(self, process_pool):
        # Low-entropy start, high-entropy hammering of shard 1: the
        # drift detector rebuilds in place; the resident replica must
        # follow and keep answering identically.
        def build(executor):
            cluster = ClusterEngine(
                num_shards=2, drift_window=8, executor=executor,
                advisor=FlipAdvisor(threshold=1.0),
            )
            cluster.add_column("c", [0] * 40, 8, dynamism="fully_dynamic")
            return cluster

        serial, proc = build(None), build(process_pool)
        try:
            model = [0] * 40
            for i in range(20):
                pos, ch = 20 + (i % 20), i % 8
                for cluster in (serial, proc):
                    cluster.change("c", pos, ch)
                model[pos] = ch
                assert (
                    proc.query("c", 0, 3).positions()
                    == serial.query("c", 0, 3).positions()
                    == brute_range(model, 0, 3)
                )
            assert proc.backends("c") == serial.backends("c")
            assert len(proc.migrations) == len(serial.migrations) > 0
            assert proc.scatter_io.snapshot() == serial.scatter_io.snapshot()
        finally:
            proc.close()

    def test_drop_and_readd_column(self, process_pool):
        proc = ClusterEngine(num_shards=2, executor=process_pool)
        x = uniform(40, 8, seed=33)
        proc.add_column("c", x, 8)
        try:
            assert proc.query("c", 1, 4).positions() == brute_range(x, 1, 4)
            proc.drop_column("c")
            with pytest.raises(QueryError):
                proc.query("c", 0, 1)
            y = [7 - c for c in x]
            proc.add_column("c", y, 8)
            assert proc.query("c", 1, 4).positions() == brute_range(y, 1, 4)
        finally:
            proc.close()


class TestProcessLifecycle:
    def test_auto_split_and_merge_stay_in_sync(self, process_pool):
        def grow(executor):
            cluster = ClusterEngine(
                target_shard_rows=32,
                drift_window=None,
                executor=executor,
            )
            cluster.add_column(
                "c", uniform(48, 8, seed=34), 8,
                dynamism="fully_dynamic", require_delete=True,
            )
            for i in range(40):
                cluster.append("c", (5 * i) % 8)
            deleted, i = 0, 0
            while deleted < 30 and i < 200:
                try:
                    cluster.delete("c", (7 * i) % cluster.total_rows("c"))
                    deleted += 1
                except UpdateError:
                    pass  # pending hole; deterministic on every run
                i += 1
            return cluster

        serial, proc = grow(None), grow(process_pool)
        try:
            assert proc.splits and proc.num_shards == serial.num_shards
            assert len(proc.splits) == len(serial.splits)
            assert len(proc.merges) == len(serial.merges)
            for lo, hi in [(0, 2), (3, 7), (0, 7), (4, 4)]:
                assert (
                    proc.query("c", lo, hi).positions()
                    == serial.query("c", lo, hi).positions()
                )
            assert proc.select({"c": (1, 6)}) == serial.select({"c": (1, 6)})
            assert proc.scatter_io.snapshot() == serial.scatter_io.snapshot()
        finally:
            proc.close()

    def test_explicit_rebalance_under_process_executor(self, process_pool):
        proc = ClusterEngine(
            num_shards=2, drift_window=None, executor=process_pool
        )
        x = zipf(200, 8, theta=1.1, seed=35)
        proc.add_column("c", x, 8)
        try:
            ops = proc.rebalance(target_shard_rows=40)
            assert ops > 0 and max(proc.shard_lengths("c")) <= 40
            assert proc.query("c", 0, 7).positions() == list(range(200))
            assert proc.select({"c": (2, 5)}) == brute_range(x, 2, 5)
        finally:
            proc.close()


class TestPrefetchingGather:
    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_stream_order_and_bound_at_depth(self, process_pool, depth):
        n, shards = 1024, 8
        a = uniform(n, 8, seed=36)
        b = uniform(n, 8, seed=37)
        proc = ClusterEngine(
            num_shards=shards,
            drift_window=None,
            executor=process_pool,
            prefetch_depth=depth,
        )
        proc.add_column("a", a, 8)
        proc.add_column("b", b, 8)
        try:
            proc.gather_stats.reset()
            got = list(proc.select_iter({"a": (0, 6), "b": (0, 6)}))
            want = [i for i in range(n) if a[i] <= 6 and b[i] <= 6]
            assert got == want and len(want) > n // 2
            max_shard = max(proc.shard_lengths("a"))
            # Delivered-buffer bound: one draining buffer per
            # dimension, plus one handoff buffer when a prefetch
            # window exists.
            per_dim = 1 if depth == 0 else 2
            assert proc.gather_stats.peak_rids <= 2 * per_dim * max_shard
            assert proc.gather_stats.live_rids == 0
        finally:
            proc.close()

    def test_early_close_drains_pipelined_requests(self, process_pool):
        n = 512
        a = uniform(n, 8, seed=38)
        proc = ClusterEngine(
            num_shards=8, drift_window=None, executor=process_pool,
            prefetch_depth=2,
        )
        proc.add_column("a", a, 8)
        try:
            it = proc.query_iter("a", 0, 6)
            for _ in range(5):
                next(it)
            it.close()  # abandons in-flight pipe requests: must drain
            assert proc.gather_stats.live_rids == 0
            # The pipe is clean: the next query sees only its own
            # replies.
            assert proc.query("a", 0, 6).positions() == brute_range(a, 0, 6)
        finally:
            proc.close()

    def test_depth_zero_walk_is_lazy_about_io(self):
        # The serial walk's contract: an early-exiting consumer never
        # pays for shards it did not reach — the next fetch must not
        # even start until the current buffer is drained.
        a = uniform(120, 8, seed=43)
        cluster = ClusterEngine(num_shards=3, drift_window=None)
        cluster.add_column("a", a, 8)
        assert cluster.prefetch_depth == 0
        it = cluster.query_iter("a", 0, 6)
        next(it)  # shard 0's buffer delivered; shards 1-2 untouched
        it.close()
        assert len(cluster.shared_cache) == 1  # only shard 0 was fetched
        one_shard_io = cluster.scatter_io.snapshot()
        # Draining fully fetches the rest (and the bound stays 1 buffer).
        cluster.gather_stats.reset()
        assert list(cluster.query_iter("a", 0, 6)) == brute_range(a, 0, 6)
        assert cluster.scatter_io.bits_read > one_shard_io.bits_read
        max_shard = max(cluster.shard_lengths("a"))
        assert cluster.gather_stats.peak_rids <= max_shard

    def test_pipelined_requests_beyond_the_throttle_cap(self, process_pool):
        # More outstanding requests than _Worker.MAX_PIPELINE: the
        # throttle resolves the oldest first, and every future still
        # answers correctly afterwards.
        x = uniform(60, 8, seed=44)
        proc = ClusterEngine(num_shards=1, drift_window=None,
                             executor=process_pool)
        proc.add_column("a", x, 8)
        try:
            uid = proc.shard_uids[0]
            futures = [
                process_pool.submit_query(uid, "a", lo, lo)
                for _ in range(40)
                for lo in range(8)
            ]  # 320 requests down one pipe
            for i, future in enumerate(futures):
                positions, _ = future.result()
                assert positions == brute_range(x, i % 8, i % 8)
        finally:
            proc.close()

    def test_threaded_prefetch_matches_serial(self):
        n = 600
        a = uniform(n, 8, seed=39)
        b = zipf(n, 8, theta=1.2, seed=40)
        serial = ClusterEngine(num_shards=6, drift_window=None)
        serial.add_column("a", a, 8)
        serial.add_column("b", b, 8)
        with ThreadedExecutor(4) as pool:
            threaded = ClusterEngine(
                num_shards=6, drift_window=None, executor=pool
            )
            threaded.add_column("a", a, 8)
            threaded.add_column("b", b, 8)
            assert threaded.prefetch_depth == 1  # auto: threads overlap
            conds = {"a": (0, 5), "b": (1, 6)}
            assert list(threaded.select_iter(conds)) == list(
                serial.select_iter(conds)
            )
            assert (
                threaded.scatter_io.snapshot() == serial.scatter_io.snapshot()
            )


class TestExecutorProtocol:
    def test_serial_submit_is_inline_and_captures_errors(self):
        pool = SerialExecutor()
        assert pool.submit(lambda a, b: a + b, 2, 3).result() == 5
        failing = pool.submit(lambda: 1 // 0)
        with pytest.raises(ZeroDivisionError):
            failing.result()
        assert pool.supports_prefetch is False and pool.kind == "local"

    def test_threaded_submit(self):
        with ThreadedExecutor(2) as pool:
            futures = [pool.submit(lambda v=v: v * v) for v in range(8)]
            assert [f.result() for f in futures] == [v * v for v in range(8)]
            assert pool.supports_prefetch is True

    def test_process_executor_validation(self):
        with pytest.raises(InvalidParameterError):
            ProcessExecutor(max_workers=0)

    def test_worker_errors_propagate(self, process_pool):
        with pytest.raises(InvalidParameterError):
            process_pool.apply_delta(999_999_999, ("append", "c", 0))

    def test_shared_executor_serves_many_clusters(self, process_pool):
        # Shard uids are process-unique, so one pool hosts replicas of
        # several clusters without collision.
        one = ClusterEngine(num_shards=2, executor=process_pool)
        two = ClusterEngine(num_shards=2, executor=process_pool)
        x = uniform(40, 8, seed=41)
        y = [7 - c for c in x]
        one.add_column("c", x, 8)
        two.add_column("c", y, 8)
        try:
            assert one.query("c", 1, 3).positions() == brute_range(x, 1, 3)
            assert two.query("c", 1, 3).positions() == brute_range(y, 1, 3)
        finally:
            one.close()
            two.close()


class TestShardHost:
    """The worker-side runtime, driven in-process for edge coverage."""

    def test_unknown_uid_and_delta_rejected(self):
        host = ShardHost()
        with pytest.raises(InvalidParameterError):
            host.delta(0, ("append", "c", 1))
        host.build(0, (16, 0.0, [("c", [0, 1, 2, 3], 4, "fully_dynamic",
                                  0.1, True, False, "fully-dynamic")]))
        with pytest.raises(InvalidParameterError):
            host.delta(0, ("warp", "c"))
        positions, io = host.query(0, "c", 1, 2)
        assert positions == [1, 2]
        assert io.total >= 0
        host.retire(0)
        with pytest.raises(InvalidParameterError):
            host.query(0, "c", 1, 2)

    def test_latency_reapplied_after_rebuild(self):
        host = ShardHost()
        host.build(0, (16, 0.0, [("c", [0, 1, 2, 3], 4, "fully_dynamic",
                                  0.1, True, False, "fully-dynamic")]))
        host.delta(0, ("set_latency", 0.25))
        host.delta(0, ("rebuild", "c", "deletable"))
        engine = host.engines[0]
        assert engine.column("c").index.disk.latency_s == 0.25
        host.delta(0, ("set_latency", 0.0))
        assert engine.column("c").index.disk.latency_s == 0.0


def _payload(codes, sigma, dynamism="fully_dynamic", backend="fully-dynamic"):
    return (
        16,
        0.0,
        [("c", list(codes), sigma, dynamism, 0.1, True, False, backend)],
    )


class TestDeltaBatching:
    """Coalesced routed deltas: one pipe message, exact ordering."""

    def test_coalescable_deltas_buffer_and_flush_on_query(self, process_pool):
        uid = 9_000_001
        process_pool.build_shard(uid, _payload([0, 1, 2, 3], 8))
        try:
            for ch in (5, 6, 7):
                process_pool.apply_delta(uid, ("append", "c", ch))
            assert process_pool.pending_delta_count(uid) == 3
            # The query flushes the buffer ahead of itself on the same
            # FIFO pipe, so its reply reflects every buffered append.
            positions, _ = process_pool.query_shard(uid, "c", 5, 7)
            assert positions == [4, 5, 6]
            assert process_pool.pending_delta_count(uid) == 0
        finally:
            process_pool.retire_shard(uid)

    def test_batch_cap_auto_flushes(self, process_pool):
        uid = 9_000_002
        process_pool.build_shard(uid, _payload([0, 1, 2, 3], 8))
        old_cap = process_pool.DELTA_BATCH_MAX
        process_pool.DELTA_BATCH_MAX = 4
        try:
            for ch in range(3):
                process_pool.apply_delta(uid, ("append", "c", ch))
            assert process_pool.pending_delta_count(uid) == 3  # under cap
            process_pool.apply_delta(uid, ("append", "c", 3))
            assert process_pool.pending_delta_count(uid) == 0  # cap hit
            positions, _ = process_pool.query_shard(uid, "c", 0, 7)
            assert positions == list(range(8))
        finally:
            process_pool.DELTA_BATCH_MAX = old_cap
            process_pool.retire_shard(uid)

    def test_non_coalescable_delta_preserves_order(self, process_pool):
        # The buffered append creates position 4; the synchronous
        # delete targets it.  Shipping out of order would make the
        # worker raise on an out-of-range position.
        uid = 9_000_003
        process_pool.build_shard(
            uid, _payload([0, 1, 2, 3], 8, backend="deletable")
        )
        try:
            process_pool.apply_delta(uid, ("append", "c", 7))
            assert process_pool.pending_delta_count(uid) == 1
            process_pool.apply_delta(uid, ("delete", "c", 4))
            assert process_pool.pending_delta_count(uid) == 0
            positions, _ = process_pool.query_shard(uid, "c", 0, 7)
            assert positions == [0, 1, 2, 3]
        finally:
            process_pool.retire_shard(uid)

    def test_same_worker_buffers_are_per_shard(self):
        # One worker, two resident shards: flushing one shard's buffer
        # (via its query) must leave the sibling's buffer untouched.
        with ProcessExecutor(max_workers=1) as pool:
            pool.build_shard(1, _payload([0, 1], 8))
            pool.build_shard(2, _payload([2, 3], 8))
            pool.apply_delta(1, ("append", "c", 4))
            pool.apply_delta(2, ("append", "c", 5))
            pool.query_shard(1, "c", 0, 7)
            assert pool.pending_delta_count(1) == 0
            assert pool.pending_delta_count(2) == 1
            pool.flush_deltas()
            assert pool.pending_delta_count(2) == 0
            positions, _ = pool.query_shard(2, "c", 5, 5)
            assert positions == [2]

    def test_worker_error_surfaces_at_flush(self):
        # A buffered delta that the worker rejects (append to a static
        # column) raises at the flush point, not at the buffered call.
        with ProcessExecutor(max_workers=1) as pool:
            pool.build_shard(
                1, _payload([0, 1, 2, 3], 8, dynamism="static",
                            backend=None)
            )
            pool.apply_delta(1, ("append", "c", 1))  # buffered: no error
            assert pool.pending_delta_count(1) == 1
            with pytest.raises(UpdateError):
                pool.flush_deltas()
            # The worker loop survived the failed batch.
            positions, _ = pool.query_shard(1, "c", 0, 1)
            assert positions == [0, 1]

    def test_io_totals_reflect_buffered_updates(self, process_pool):
        uid = 9_000_004
        process_pool.build_shard(uid, _payload([0, 1, 2, 3], 8))
        try:
            process_pool.apply_delta(uid, ("append", "c", 6))
            process_pool.io_totals()
            assert process_pool.pending_delta_count(uid) == 0
        finally:
            process_pool.retire_shard(uid)

    def test_retire_flushes_before_retiring(self, process_pool):
        uid = 9_000_005
        process_pool.build_shard(uid, _payload([0, 1, 2, 3], 8))
        process_pool.apply_delta(uid, ("append", "c", 6))
        process_pool.retire_shard(uid)  # must not leave a dangling buffer
        assert process_pool.pending_delta_count(uid) == 0
        with pytest.raises(InvalidParameterError):
            process_pool.query_shard(uid, "c", 0, 1)

    def test_host_delta_batch_applies_in_order(self):
        host = ShardHost()
        host.build(0, _payload([0, 1, 2, 3], 8))
        host.delta_batch(
            0,
            [("append", "c", 5), ("change", "c", 4, 6), ("append", "c", 5)],
        )
        positions, _ = host.query(0, "c", 5, 6)
        assert positions == [4, 5]

    def test_batched_cluster_updates_match_serial(self, process_pool):
        # End to end through the cluster: write-heavy routed traffic
        # rides the batch path and stays bit-identical to serial.
        x = uniform(120, SIGMA, seed=77)
        serial = ClusterEngine(num_shards=3, drift_window=None)
        proc = ClusterEngine(
            num_shards=3, drift_window=None, executor=process_pool
        )
        try:
            model = list(x)
            for cluster in (serial, proc):
                cluster.add_column(
                    "c", x, SIGMA, dynamism="fully_dynamic"
                )
            for i in range(40):
                ch = (3 * i) % SIGMA
                serial.append("c", ch)
                proc.append("c", ch)
                model.append(ch)
                if i % 5 == 0:
                    pos = (7 * i) % len(model)
                    serial.change("c", pos, (ch + 1) % SIGMA)
                    proc.change("c", pos, (ch + 1) % SIGMA)
                    model[pos] = (ch + 1) % SIGMA
            want = brute_range(model, 2, 9)
            assert serial.query("c", 2, 9).positions() == want
            assert proc.query("c", 2, 9).positions() == want
            assert (
                proc.scatter_io.snapshot() == serial.scatter_io.snapshot()
            )
        finally:
            proc.close()


class TestSharedMemoryTransport:
    """Big snapshots and long batches ride shared memory, bit-exact."""

    def test_large_build_ships_codes_through_a_segment(self):
        rng_codes = [(7 * i) % SIGMA for i in range(3000)]
        with ProcessExecutor(max_workers=1) as pool:
            assert len(rng_codes) >= pool.SHM_MIN_CODES
            pool.build_shard(7_100_001, _payload(rng_codes, SIGMA))
            # The build is synchronous, so its segment is already gone.
            assert pool.segment_count() == 0
            positions, _ = pool.query_shard(7_100_001, "c", 2, 9)
            assert positions == brute_range(rng_codes, 2, 9)

    def test_long_delta_batch_ships_through_a_segment(self):
        codes = list(range(8)) * 300
        with ProcessExecutor(max_workers=1) as pool:
            pool.build_shard(7_100_002, _payload(codes, 8))
            model = list(codes)
            for i in range(pool.SHM_MIN_DELTAS + 9):
                ch = (3 * i) % 8
                if i % 3 == 0:
                    pos = (11 * i) % len(model)
                    pool.apply_delta(7_100_002, ("change", "c", pos, ch))
                    model[pos] = ch
                else:
                    pool.apply_delta(7_100_002, ("append", "c", ch))
                    model.append(ch)
            assert pool.pending_delta_count(7_100_002) > 0
            pool.flush_deltas()
            # Blocking flush resolved the shipment: segment released.
            assert pool.segment_count() == 0
            positions, _ = pool.query_shard(7_100_002, "c", 2, 5)
            assert positions == brute_range(model, 2, 5)

    def test_large_resident_cluster_matches_serial(self, process_pool):
        from repro.model.distributions import zipf

        x = zipf(6000, SIGMA, theta=1.1, seed=91)
        serial = ClusterEngine(num_shards=2, drift_window=None)
        proc = ClusterEngine(
            num_shards=2, drift_window=None, executor=process_pool
        )
        try:
            for cluster in (serial, proc):
                cluster.add_column("c", x, SIGMA, dynamism="fully_dynamic")
            assert (
                proc.query("c", 3, 10).positions()
                == serial.query("c", 3, 10).positions()
                == brute_range(x, 3, 10)
            )
            assert proc.stats().scatter_io == serial.stats().scatter_io
        finally:
            serial.close()
            proc.close()

    def test_no_segments_survive_close(self):
        import os

        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        pool = ProcessExecutor(max_workers=1)
        codes = [(5 * i) % 8 for i in range(4000)]
        pool.build_shard(7_100_003, _payload(codes, 8))
        for i in range(pool.SHM_MIN_DELTAS):
            pool.apply_delta(7_100_003, ("append", "c", i % 8))
        # Close without flushing or draining: the abandoned-shipment
        # path must still release every segment.
        pool.close()
        assert pool.segment_count() == 0
        if before is not None:
            assert set(os.listdir("/dev/shm")) - before == set()

    def test_coordinator_keeps_codes_and_stats_only(self, process_pool):
        from repro.model.distributions import uniform as _uniform

        x = _uniform(200, 8, seed=51)
        serial = ClusterEngine(num_shards=2, drift_window=None)
        proc = ClusterEngine(
            num_shards=2, drift_window=None, executor=process_pool
        )
        try:
            for cluster in (serial, proc):
                cluster.add_column("c", x, 8, dynamism="fully_dynamic")
            # Resident coordinators defer their local index structures
            # (the worker replica serves); serial clusters build them.
            assert all(
                engine.column("c").deferred for engine in proc.shards
            )
            assert not any(
                engine.column("c").deferred for engine in serial.shards
            )
            # Planning still works from codes + stats alone.
            assert proc.query("c", 1, 4).positions() == brute_range(x, 1, 4)
            assert all(
                engine.column("c").deferred for engine in proc.shards
            )
        finally:
            serial.close()
            proc.close()


class TestWorkerDeath:
    """A dead worker surfaces typed errors, never a hang or a leak."""

    def _fresh_pool_with_shard(self, uid, codes=(0, 1, 2, 3)):
        pool = ProcessExecutor(max_workers=1)
        pool.build_shard(uid, _payload(list(codes), 8))
        return pool

    def test_query_after_kill_raises_worker_died(self):
        from repro.errors import WorkerDiedError

        uid = 7_200_001
        pool = self._fresh_pool_with_shard(uid)
        try:
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises(WorkerDiedError) as exc_info:
                pool.query_shard(uid, "c", 0, 1)
            assert exc_info.value.uid == uid
            assert exc_info.value.worker_index == 0
        finally:
            pool.close()

    def test_kill_mid_delta_batch_flush(self):
        from repro.errors import WorkerDiedError

        uid = 7_200_002
        pool = self._fresh_pool_with_shard(uid)
        try:
            for i in range(5):
                pool.apply_delta(uid, ("append", "c", i % 8))
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises(WorkerDiedError) as exc_info:
                pool.flush_deltas()
                # The send can win the race with the pipe teardown; the
                # reply never comes, so the blocking harvest raises.
            assert exc_info.value.uid == uid
        finally:
            pool.close()

    def test_kill_before_shm_build_releases_segment(self):
        from repro.errors import WorkerDiedError

        uid = 7_200_003
        pool = self._fresh_pool_with_shard(uid)
        try:
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            codes = [(3 * i) % 8 for i in range(4000)]
            with pytest.raises(WorkerDiedError):
                pool.build_shard(7_200_004, _payload(codes, 8))
            # The segment created for the doomed build must not leak.
            assert pool.segment_count() == 0
        finally:
            pool.close()

    def test_worker_deaths_counted_once_per_worker(self):
        from repro.errors import WorkerDiedError
        from repro.obs import MetricsRegistry

        uid = 7_200_006
        pool = self._fresh_pool_with_shard(uid)
        pool.metrics = MetricsRegistry()
        try:
            assert pool.worker_deaths == 0
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            # Several failed calls against one dead worker still count
            # a single death — the counter tracks the alive->dead
            # transition, not the error volume.
            for _ in range(3):
                with pytest.raises(WorkerDiedError):
                    pool.query_shard(uid, "c", 0, 1)
            assert pool.worker_deaths == 1
            assert (
                pool.metrics.counter("cluster.worker_deaths").value == 1
            )
        finally:
            pool.close()

    def test_worker_deaths_surface_in_cluster_stats(self):
        from repro.errors import WorkerDiedError

        pool = ProcessExecutor(max_workers=1)
        cluster = ClusterEngine(
            num_shards=1, drift_window=None, executor=pool
        )
        try:
            cluster.add_column("c", [0, 1, 2, 3], 8)
            assert cluster.stats().worker_deaths == 0
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            with pytest.raises(WorkerDiedError):
                cluster.query("c", 0, 1)
            stats = cluster.stats()
            assert stats.worker_deaths == 1
            assert stats.to_dict()["worker_deaths"] == 1
        finally:
            cluster.close()

    def test_pipelined_futures_all_resolve_on_death(self):
        from repro.errors import WorkerDiedError

        uid = 7_200_005
        pool = self._fresh_pool_with_shard(uid)
        try:
            futures = [pool.submit_query(uid, "c", 0, 1) for _ in range(6)]
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=10)
            for future in futures:
                with pytest.raises(WorkerDiedError) as exc_info:
                    future.result()
                assert exc_info.value.uid == uid
        finally:
            pool.close()
