"""Unit tests for alphabets, entropy bounds, and workload generators."""

import math

import pytest

from repro.errors import InvalidParameterError, QueryError
from repro.model import (
    Alphabet,
    by_name,
    char_counts,
    clustered,
    entropy_bits,
    h0,
    h0_from_counts,
    heavy_hitter,
    lg_binomial,
    markov_runs,
    output_bound_bits,
    sequential,
    uniform,
    zipf,
)


class TestAlphabet:
    def test_dense_codes_in_value_order(self):
        a = Alphabet(["pear", "apple", "fig", "apple"])
        assert a.sigma == 3
        assert a.values() == ["apple", "fig", "pear"]
        assert a.code("apple") == 0
        assert a.value(2) == "pear"

    def test_encode_decode_roundtrip(self):
        x = [5, 1, 5, 9, 1]
        a = Alphabet(x)
        codes = a.encode(x)
        assert a.decode(codes) == x

    def test_unknown_value_rejected(self):
        a = Alphabet([1, 2])
        with pytest.raises(QueryError):
            a.code(3)
        with pytest.raises(QueryError):
            a.encode([1, 3])

    def test_code_out_of_range_rejected(self):
        a = Alphabet([1])
        with pytest.raises(QueryError):
            a.value(1)

    def test_code_range_inclusive(self):
        a = Alphabet([10, 20, 30, 40])
        assert a.code_range(20, 30) == (1, 2)

    def test_code_range_snaps_to_occurring_values(self):
        a = Alphabet([10, 20, 30, 40])
        # 15..35 covers occurring values 20, 30.
        assert a.code_range(15, 35) == (1, 2)

    def test_code_range_empty(self):
        a = Alphabet([10, 40])
        assert a.code_range(15, 35) is None

    def test_code_range_inverted_rejected(self):
        a = Alphabet([1, 2])
        with pytest.raises(QueryError):
            a.code_range(2, 1)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(InvalidParameterError):
            Alphabet([])

    def test_contains(self):
        a = Alphabet([1, 2])
        assert 1 in a and 3 not in a


class TestEntropy:
    def test_uniform_entropy_is_lg_sigma(self):
        x = sequential(1024, 16)
        assert h0(x) == pytest.approx(4.0)

    def test_single_character_entropy_zero(self):
        assert h0([3] * 100) == 0.0

    def test_empty_string(self):
        assert h0([]) == 0.0
        assert entropy_bits([]) == 0.0

    def test_h0_from_counts_mapping_and_sequence(self):
        assert h0_from_counts({0: 2, 1: 2}) == pytest.approx(1.0)
        assert h0_from_counts([2, 2]) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            h0_from_counts([-1, 2])

    def test_entropy_bits_scales(self):
        x = sequential(512, 4)
        assert entropy_bits(x) == pytest.approx(512 * 2.0)

    def test_lg_binomial_small_cases(self):
        assert lg_binomial(4, 2) == pytest.approx(math.log2(6))
        assert lg_binomial(10, 0) == 0.0
        assert lg_binomial(10, 10) == 0.0

    def test_lg_binomial_symmetry(self):
        assert lg_binomial(100, 30) == pytest.approx(lg_binomial(100, 70))

    def test_lg_binomial_validation(self):
        with pytest.raises(InvalidParameterError):
            lg_binomial(5, 6)

    def test_output_bound_uses_complement(self):
        # Answers above n/2 are measured against their complement (§2.1).
        assert output_bound_bits(100, 99) == pytest.approx(
            output_bound_bits(100, 1)
        )

    def test_char_counts(self):
        assert char_counts([1, 1, 2]) == {1: 2, 2: 1}


class TestDistributions:
    @pytest.mark.parametrize(
        "gen", [uniform, clustered, markov_runs, sequential]
    )
    def test_basic_contract(self, gen):
        x = gen(500, 16, seed=3)
        assert len(x) == 500
        assert all(0 <= c < 16 for c in x)

    def test_zipf_contract_and_skew(self):
        x = zipf(5000, 64, theta=1.5, seed=1)
        assert len(x) == 5000
        assert all(0 <= c < 64 for c in x)
        counts = char_counts(x)
        # Code 0 must dominate under strong skew.
        assert counts[0] > counts.get(10, 0)

    def test_zipf_theta_zero_is_uniformish(self):
        x = zipf(20000, 4, theta=0.0, seed=2)
        counts = char_counts(x)
        for c in range(4):
            assert abs(counts[c] - 5000) < 600

    def test_heavy_hitter_fraction(self):
        x = heavy_hitter(10000, 16, fraction=0.7, hot=3, seed=4)
        counts = char_counts(x)
        assert counts[3] > 6500

    def test_sequential_deterministic(self):
        assert sequential(6, 3) == [0, 1, 2, 0, 1, 2]

    def test_seed_reproducibility(self):
        assert uniform(100, 8, seed=9) == uniform(100, 8, seed=9)
        assert uniform(100, 8, seed=9) != uniform(100, 8, seed=10)

    def test_markov_runs_are_bursty(self):
        x = markov_runs(5000, 16, stay=0.95, seed=5)
        changes = sum(1 for a, b in zip(x, x[1:]) if a != b)
        assert changes < 1000  # far fewer changes than uniform's ~4700

    def test_clustered_is_sorted(self):
        x = clustered(1000, 16, seed=6)
        assert x == sorted(x)

    def test_registry(self):
        assert by_name("uniform") is uniform
        with pytest.raises(InvalidParameterError):
            by_name("nope")

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            uniform(-1, 4)
        with pytest.raises(InvalidParameterError):
            uniform(4, 0)
        with pytest.raises(InvalidParameterError):
            zipf(4, 4, theta=-1)
        with pytest.raises(InvalidParameterError):
            heavy_hitter(4, 4, fraction=1.5)
        with pytest.raises(InvalidParameterError):
            markov_runs(4, 4, stay=1.0)
