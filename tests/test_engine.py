"""Unit tests for the index registry, advisor, and query engine."""

import pytest

from repro.baselines import CompressedBitmapIndex
from repro.core import PaghRaoIndex, SecondaryIndex
from repro.engine import (
    Advisor,
    CostModel,
    CostProfile,
    IndexSpec,
    LRUCache,
    QueryEngine,
    WorkloadStats,
    all_specs,
    get_spec,
    specs,
)
from repro.engine import registry as registry_mod
from repro.errors import InvalidParameterError, QueryError, UpdateError
from repro.model.distributions import uniform, zipf
from repro.queries import Table

from tests.conftest import brute_range


class TestRegistry:
    def test_every_spec_builds_a_secondary_index(self):
        x = uniform(64, 8, seed=0)
        for spec in all_specs():
            idx = spec.build(x, 8)
            assert isinstance(idx, SecondaryIndex)
            assert idx.n == 64 and idx.sigma == 8

    def test_known_members_present(self):
        names = {s.name for s in all_specs()}
        assert {"pagh-rao", "btree", "bitmap-gamma", "fully-dynamic",
                "appendable", "deletable"} <= names

    def test_get_spec_unknown(self):
        with pytest.raises(InvalidParameterError):
            get_spec("nope")

    def test_register_rejects_duplicates(self):
        spec = get_spec("pagh-rao")
        with pytest.raises(InvalidParameterError):
            registry_mod.register(spec)

    def test_specs_filters(self):
        assert all(s.family == "bitmap" for s in specs(family="bitmap"))
        assert len(specs(family="bitmap")) >= 6
        dyn = specs(dynamism="fully_dynamic")
        assert {s.name for s in dyn} == {"fully-dynamic", "deletable"}
        semi = {s.name for s in specs(dynamism="semidynamic")}
        assert "appendable" in semi and "fully-dynamic" in semi
        assert all(not s.exact for s in specs(exact=False))

    def test_serves_delete(self):
        assert get_spec("deletable").serves("fully_dynamic", True)
        assert not get_spec("fully-dynamic").serves("static", True)

    def test_cost_estimators_positive(self):
        for spec in all_specs():
            assert spec.cost.space_bits(1000, 16, 3.5) > 0
            assert spec.cost.query_cost(1000, 16, 3.5, 50) > 0


class TestWorkloadStats:
    def test_measure(self):
        stats = WorkloadStats.measure([0, 1, 1, 3])
        assert stats.n == 4 and stats.sigma == 4
        assert 0 < stats.h0 <= 2.0
        assert stats.expected_z == max(1, round(0.1 * 4))

    def test_measure_with_overrides(self):
        stats = WorkloadStats.measure(
            [0, 1], sigma=8, dynamism="semidynamic", expected_selectivity=0.5
        )
        assert stats.sigma == 8
        assert stats.dynamism == "semidynamic"
        assert stats.expected_z == 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            WorkloadStats(n=10, sigma=0, h0=1.0)
        with pytest.raises(InvalidParameterError):
            WorkloadStats(n=10, sigma=4, h0=1.0, expected_selectivity=0.0)
        with pytest.raises(InvalidParameterError):
            WorkloadStats(n=10, sigma=4, h0=1.0, dynamism="sometimes")


class TestAdvisor:
    def test_low_cardinality_picks_bitmap_family(self):
        # The acceptance workload: a handful of distinct values.
        x = uniform(4096, 4, seed=1)
        pick = Advisor().pick(WorkloadStats.measure(x, 4))
        assert pick.family == "bitmap"

    def test_high_entropy_picks_pagh_rao_family(self):
        # Near-maximal entropy over a large alphabet: the Theorem-2
        # structure's nH0-bounded space plus directory wins — under the
        # *analytic* estimators (the calibrated default re-weighs them;
        # see TestDefaultCalibration).
        x = uniform(4096, 512, seed=2)
        analytic = Advisor(CostModel(calibration=None))
        pick = analytic.pick(WorkloadStats.measure(x, 512))
        assert pick.family == "pagh-rao"

    def test_dynamism_constrains_candidates(self):
        x = uniform(1024, 16, seed=3)
        adv = Advisor()
        assert adv.pick(
            WorkloadStats.measure(x, 16, dynamism="fully_dynamic")
        ).name == "fully-dynamic"
        assert adv.pick(
            WorkloadStats.measure(
                x, 16, dynamism="fully_dynamic", require_delete=True
            )
        ).name == "deletable"
        semi = adv.pick(WorkloadStats.measure(x, 16, dynamism="semidynamic"))
        assert semi.dynamism in ("semidynamic", "fully_dynamic")

    def test_rank_sorted_and_exactness_filter(self):
        x = zipf(512, 32, theta=1.0, seed=4)
        stats = WorkloadStats.measure(x, 32)
        ranked = Advisor().rank(stats)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores)
        assert all(spec.exact for spec, _ in ranked)
        relaxed = Advisor().rank(stats.with_(require_exact=False))
        assert len(relaxed) == len(ranked) + 1  # + pagh-rao-approx

    def test_cost_model_override_changes_verdict(self):
        # With queries essentially free, space alone decides; with
        # queries enormously weighted, query cost decides.  The two
        # models must be able to disagree on some workload.
        x = uniform(2048, 64, seed=5)
        stats = WorkloadStats.measure(x, 64)
        space_only = Advisor(CostModel(queries_per_build=0.0))
        query_mad = Advisor(CostModel(queries_per_build=1e9))
        assert space_only.pick(stats).name != query_mad.pick(stats).name

    def test_restricted_candidate_pool(self):
        x = uniform(256, 8, seed=6)
        adv = Advisor(candidates=[get_spec("btree")])
        assert adv.pick(WorkloadStats.measure(x, 8)).name == "btree"

    def test_no_eligible_backend_raises(self):
        adv = Advisor(candidates=[get_spec("pagh-rao")])
        stats = WorkloadStats(n=10, sigma=4, h0=1.0, dynamism="fully_dynamic")
        with pytest.raises(InvalidParameterError):
            adv.pick(stats)

    def test_explain_mentions_winner_and_bounds(self):
        x = uniform(512, 4, seed=7)
        stats = WorkloadStats.measure(x, 4)
        text = Advisor().explain(stats)
        winner = Advisor().pick(stats)
        assert winner.name in text
        assert "#1" in text and "H0=" in text


class TestApproximateScoring:
    """Theorem-3 backends are scored, not just filter-relaxed."""

    def stats(self, require_exact=False):
        x = uniform(4096, 256, seed=20)
        return WorkloadStats.measure(
            x, 256, expected_selectivity=0.05, require_exact=require_exact
        )

    def test_fp_rate_declared_only_for_approximate_backends(self):
        for spec in all_specs():
            if spec.exact:
                assert spec.cost.false_positive_rate == 0.0
            else:
                assert 0.0 < spec.cost.false_positive_rate < 1.0

    def test_fp_verification_traffic_raises_the_score(self):
        approx = get_spec("pagh-rao-approx")
        stats = self.stats()
        cheap = CostModel(fp_verify_bits=0.0).score(approx, stats)
        dear = CostModel(fp_verify_bits=4096.0).score(approx, stats)
        assert dear > cheap
        # Exact backends are untouched by the fp weight.
        exact = get_spec("pagh-rao")
        assert CostModel(fp_verify_bits=0.0).score(exact, stats) == (
            CostModel(fp_verify_bits=4096.0).score(exact, stats)
        )

    def test_fp_weight_can_flip_the_relaxed_verdict(self):
        # Against its exact sibling, the Theorem-3 filter's cheaper
        # O(z lg(1/eps)) reads win when verification is free; priced
        # honestly, the fp traffic hands the column back to the exact
        # structure.  Both verdicts come from *scoring* — the
        # approximate spec is eligible either way.
        pool = [get_spec("pagh-rao"), get_spec("pagh-rao-approx")]
        stats = self.stats()
        free_fp = Advisor(
            CostModel(queries_per_build=1e6, fp_verify_bits=0.0),
            candidates=pool,
        )
        paid_fp = Advisor(
            CostModel(queries_per_build=1e6, fp_verify_bits=4096.0),
            candidates=pool,
        )
        assert free_fp.pick(stats).name == "pagh-rao-approx"
        assert paid_fp.pick(stats).name == "pagh-rao"
        ranked = paid_fp.rank(stats)
        assert any(spec.name == "pagh-rao-approx" for spec, _ in ranked)

    def test_require_exact_plumbed_through_add_column(self):
        x = uniform(4096, 256, seed=21)
        engine = QueryEngine(
            advisor=Advisor(
                CostModel(queries_per_build=1e6, fp_verify_bits=0.0),
                candidates=[get_spec("pagh-rao"), get_spec("pagh-rao-approx")],
            )
        )
        col = engine.add_column(
            "c", x, 256, expected_selectivity=0.05, require_exact=False
        )
        assert col.stats.require_exact is False
        assert col.spec.name == "pagh-rao-approx"
        # Exact-by-default columns never land on the approximate spec.
        col2 = engine.add_column("c2", x, 256, expected_selectivity=0.05)
        assert col2.spec.exact


class TestCostCalibration:
    """CostModel.from_reports fits per-family weights from recorded runs."""

    def write_report(self, tmp_path, rows, name="calib"):
        from repro.bench import Report

        report = Report(name, str(tmp_path))
        report.table(
            "calibration",
            ["backend", "family", "est_bits", "measured_bits"],
            rows,
        )
        return report.save().replace(".txt", ".json")

    def test_weights_are_measured_over_estimated(self, tmp_path):
        path = self.write_report(
            tmp_path,
            [
                ["pagh-rao", "pagh-rao", 1000, 2000],
                ["appendable", "pagh-rao", 1000, 4000],
                ["bitmap-gamma", "bitmap", 2000, 1000],
            ],
        )
        model = CostModel.from_reports([path])
        assert model.family_weight("pagh-rao") == pytest.approx(3.0)
        assert model.family_weight("bitmap") == pytest.approx(0.5)
        assert model.family_weight("btree") == 1.0  # absent -> neutral

    def test_weights_scale_scores_and_can_flip_picks(self, tmp_path):
        x = uniform(4096, 512, seed=22)
        stats = WorkloadStats.measure(x, 512)
        analytic = CostModel(calibration=None)
        assert Advisor(analytic).pick(stats).family == "pagh-rao"
        path = self.write_report(
            tmp_path, [["pagh-rao", "pagh-rao", 1, 1000]]
        )
        calibrated = CostModel.from_reports([path], base=analytic)
        assert Advisor(calibrated).pick(stats).family != "pagh-rao"
        spec = get_spec("pagh-rao")
        assert calibrated.score(spec, stats) == pytest.approx(
            1000.0 * analytic.score(spec, stats)
        )

    def test_parses_fmt_thousands_commas(self, tmp_path):
        # Report.table runs cells through fmt(), which adds thousands
        # separators; from_reports must undo them.
        path = self.write_report(
            tmp_path, [["btree", "btree", 1234567, 2469134]]
        )
        model = CostModel.from_reports([path])
        assert model.family_weight("btree") == pytest.approx(2.0)

    def test_ignores_non_calibration_tables_and_keeps_base(self, tmp_path):
        from repro.bench import Report

        report = Report("other", str(tmp_path))
        report.table("unrelated", ["a", "b"], [[1, 2]])
        path = report.save().replace(".txt", ".json")
        base = CostModel(queries_per_build=7.0, calibration=None)
        model = CostModel.from_reports([path], base=base)
        assert model.family_weights == ()
        assert model.queries_per_build == 7.0

    def test_multiple_reports_accumulate(self, tmp_path):
        p1 = self.write_report(
            tmp_path, [["btree", "btree", 100, 100]], name="one"
        )
        p2 = self.write_report(
            tmp_path, [["btree", "btree", 100, 300]], name="two"
        )
        model = CostModel.from_reports([p1, p2])
        assert model.family_weight("btree") == pytest.approx(2.0)


class TestDefaultCalibration:
    """The checked-in calibration is the default cost model."""

    def test_default_model_loads_packaged_weights(self):
        from repro.engine.advisor import (
            PACKAGED_WEIGHTS_PATH,
            _parse_weights_file,
        )

        model = CostModel()
        assert model.family_weights == _parse_weights_file(
            PACKAGED_WEIGHTS_PATH
        )
        assert model.family_weights  # the package data is non-empty

    def test_kwarg_escape_hatch_yields_analytic_model(self):
        assert CostModel(calibration=None).family_weights == ()

    def test_explicit_weights_beat_calibration(self):
        model = CostModel(family_weights=(("bitmap", 2.0),))
        assert model.family_weights == (("bitmap", 2.0),)

    def test_env_escape_hatch_disables(self, monkeypatch):
        from repro.engine.advisor import CALIBRATION_ENV

        monkeypatch.setenv(CALIBRATION_ENV, "off")
        assert CostModel().family_weights == ()

    def test_env_and_kwarg_paths_load_files(self, tmp_path, monkeypatch):
        import json

        from repro.engine.advisor import CALIBRATION_ENV

        path = tmp_path / "weights.json"
        path.write_text(json.dumps({"family_weights": {"btree": 0.25}}))
        assert CostModel(calibration=str(path)).family_weights == (
            ("btree", 0.25),
        )
        monkeypatch.setenv(CALIBRATION_ENV, str(path))
        assert CostModel().family_weights == (("btree", 0.25),)

    def test_packaged_copy_matches_benchmark_artifact(self):
        # The package data is the checked-in E11e emission; the two
        # copies must not drift apart silently.
        import json
        import os

        from repro.engine.advisor import PACKAGED_WEIGHTS_PATH

        results_copy = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "results",
            "e11_family_weights.json",
        )
        if not os.path.exists(results_copy):
            pytest.skip("benchmarks/results artifact not present")
        with open(PACKAGED_WEIGHTS_PATH) as f:
            packaged = json.load(f)["family_weights"]
        with open(results_copy) as f:
            emitted = json.load(f)["family_weights"]
        assert packaged == emitted

    def test_calibrated_default_reranks_high_entropy(self):
        # The measured weights penalize families whose estimators
        # flattered them; the default advisor's verdict may therefore
        # differ from the analytic one — and must still be a valid,
        # eligible backend.
        x = uniform(4096, 512, seed=2)
        stats = WorkloadStats.measure(x, 512)
        pick = Advisor().pick(stats)
        assert pick.serves("static")
        ranked = Advisor().rank(stats)
        assert ranked[0][0].name == pick.name


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0

    def test_invalidate_predicate(self):
        cache = LRUCache(8)
        cache.put(("x", 0), 1)
        cache.put(("y", 0), 2)
        assert cache.invalidate(lambda k: k[0] == "x") == 1
        assert ("x", 0) not in cache and ("y", 0) in cache
        assert cache.invalidate() == 1
        assert len(cache) == 0


class TestQueryEngine:
    def make(self, **kw):
        # sigma must be well below n for the Pagh-Rao directory term
        # (sigma lg^2 n) to amortize; at sigma ~ n the b-tree wins.
        engine = QueryEngine(**kw)
        engine.add_column("low", uniform(2048, 4, seed=8), 4)
        engine.add_column("high", uniform(2048, 512, seed=9), 512)
        return engine

    def test_plan_families_match_acceptance(self):
        # Analytic economics: the acceptance families of the raw
        # estimators (the calibrated default may re-rank "high").
        engine = self.make(cost_model=CostModel(calibration=None))
        assert engine.plan("low", 0, 1).spec.family == "bitmap"
        assert engine.plan("high", 0, 99).spec.family == "pagh-rao"

    def test_plan_reports_cache_state_without_executing(self):
        engine = self.make()
        assert engine.plan("low", 1, 2).cached is False
        engine.query("low", 1, 2)
        assert engine.plan("low", 1, 2).cached is True
        text = engine.plan("low", 1, 2).describe()
        assert "cache" in text

    def test_query_results_match_oracle_and_cache(self):
        engine = QueryEngine()
        x = uniform(500, 16, seed=10)
        engine.add_column("c", x, 16)
        first = engine.query("c", 3, 9)
        assert first.positions() == brute_range(x, 3, 9)
        again = engine.query("c", 3, 9)
        assert again is first  # served from cache
        assert engine.cache.hits == 1

    def test_select_matches_brute_force(self):
        engine = QueryEngine()
        a = uniform(600, 8, seed=11)
        b = uniform(600, 8, seed=12)
        engine.add_column("a", a, 8)
        engine.add_column("b", b, 8)
        got = engine.select({"a": (2, 5), "b": (0, 3)})
        want = [
            i for i in range(600) if 2 <= a[i] <= 5 and 0 <= b[i] <= 3
        ]
        assert got == want

    def test_select_iter_streams_the_same_answer(self):
        engine = QueryEngine()
        a = uniform(600, 8, seed=11)
        b = uniform(600, 8, seed=12)
        engine.add_column("a", a, 8)
        engine.add_column("b", b, 8)
        conditions = {"a": (2, 5), "b": (0, 3)}
        want = engine.select(conditions)
        assert list(engine.select_iter(conditions)) == want
        # query_iter flows through the same cache as query().
        hits = engine.cache.hits
        assert list(engine.query_iter("a", 2, 5)) == brute_range(a, 2, 5)
        assert engine.cache.hits == hits + 1
        # Early abandonment is clean: take a few, close, ask again.
        it = engine.select_iter(conditions)
        head = [next(it) for _ in range(3)]
        it.close()
        assert head == want[:3]
        assert engine.select(conditions) == want

    def test_select_requires_conditions(self):
        engine = self.make()
        with pytest.raises(QueryError):
            engine.select({})
        with pytest.raises(QueryError):
            engine.select_iter({})
        with pytest.raises(QueryError):
            engine.select_iter({"missing": (0, 1)})  # eager validation

    def test_select_short_circuits_empty_dimension(self):
        engine = QueryEngine()
        engine.add_column("c", [1, 1, 1, 3], 4)
        assert engine.select({"c": (0, 0)}) == []

    def test_updates_invalidate_cache(self):
        engine = QueryEngine()
        engine.add_column(
            "d", [0, 1, 2, 3, 0, 1], 4, dynamism="fully_dynamic"
        )
        before = engine.query("d", 0, 0).positions()
        assert before == [0, 4]
        engine.change("d", 1, 0)
        after = engine.query("d", 0, 0).positions()
        assert after == [0, 1, 4]
        engine.append("d", 0)
        assert engine.query("d", 0, 0).positions() == [0, 1, 4, 6]
        # Eager invalidation: no stale-version keys left behind.
        col = engine.columns["d"]
        assert all(
            key[1] == col.version for key in engine.cache._data
            if key[0] == "d"
        )

    def test_static_column_rejects_updates(self):
        engine = self.make()
        with pytest.raises(UpdateError):
            engine.append("low", 1)
        with pytest.raises(UpdateError):
            engine.change("low", 0, 1)
        with pytest.raises(UpdateError):
            engine.delete("low", 0)

    def test_delete_path(self):
        engine = QueryEngine()
        engine.add_column(
            "d", [0, 1, 2, 3], 4,
            dynamism="fully_dynamic", require_delete=True,
        )
        assert engine.columns["d"].spec.name == "deletable"
        assert engine.query("d", 1, 1).positions() == [1]
        engine.delete("d", 1)
        assert engine.query("d", 1, 1).positions() == []

    def test_delete_keeps_code_mirror_honest(self):
        engine = QueryEngine()
        codes = [0, 1, 2, 3, 0, 1, 2, 3]
        engine.add_column(
            "d", codes, 4, dynamism="fully_dynamic", require_delete=True
        )
        col = engine.columns["d"]
        engine.delete("d", 1)
        # Regression: the mirror used to keep the deleted value.
        assert col.codes[1] is None
        # Drive the backend through compaction: the mirror must follow
        # the rewritten position space and stay oracle-consistent.
        while col.index.compactions == 0:
            live = next(i for i, c in enumerate(col.codes) if c is not None)
            engine.delete("d", live)
        assert None not in col.codes
        assert len(col.codes) == col.index.n
        for lo in range(4):
            want = [i for i, c in enumerate(col.codes) if c == lo]
            assert engine.query("d", lo, lo).positions() == want

    def test_rebuild_swaps_backend_in_place(self):
        engine = QueryEngine()
        x = uniform(256, 8, seed=30)
        col = engine.add_column("c", x, 8, backend="btree")
        want = engine.query("c", 2, 5).positions()
        version = col.version
        col.rebuild(get_spec("bitmap-gamma"))
        assert col.spec.name == "bitmap-gamma"
        assert col.version == version + 1
        assert engine.query("c", 2, 5).positions() == want

    def test_rebuild_rejects_weaker_dynamism(self):
        engine = QueryEngine()
        col = engine.add_column(
            "c", [0, 1, 2, 3], 4, dynamism="fully_dynamic"
        )
        with pytest.raises(InvalidParameterError):
            col.rebuild(get_spec("pagh-rao"))

    def test_rebuild_compacts_pending_deletions(self):
        engine = QueryEngine()
        col = engine.add_column(
            "c", [3, 1, 2, 0], 4, dynamism="fully_dynamic",
            require_delete=True,
        )
        engine.delete("c", 1)
        assert col.codes[1] is None
        col.rebuild(get_spec("deletable"))
        assert col.codes == [3, 2, 0]
        assert engine.query("c", 0, 3).positions() == [0, 1, 2]

    def test_restat_after_updates(self):
        engine = QueryEngine()
        col = engine.add_column(
            "c", [0] * 64, 4, dynamism="fully_dynamic"
        )
        for i in range(32):
            engine.change("c", i, i % 4)
        assert col.stats.h0 == 0.0
        fresh = col.restat()
        assert fresh is col.stats and fresh.h0 > 0.5
        assert fresh.dynamism == "fully_dynamic" and fresh.sigma == 4

    def test_backend_pin_overrides_advisor(self):
        engine = QueryEngine()
        col = engine.add_column(
            "c", uniform(256, 4, seed=13), 4, backend="pagh-rao"
        )
        assert isinstance(col.index, PaghRaoIndex)
        with pytest.raises(InvalidParameterError):
            engine.add_column(
                "c2", [0, 1], 2, dynamism="fully_dynamic", backend="pagh-rao"
            )

    def test_column_name_rules(self):
        engine = self.make()
        with pytest.raises(InvalidParameterError):
            engine.add_column("low", [0, 1], 2)
        with pytest.raises(InvalidParameterError):
            engine.add_column("empty", [], 2)
        with pytest.raises(QueryError):
            engine.query("missing", 0, 1)

    def test_drop_column_clears_cache(self):
        engine = self.make()
        engine.query("low", 0, 1)
        engine.drop_column("low")
        assert "low" not in engine.columns
        assert all(key[0] != "low" for key in engine.cache._data)

    def test_explain_variants(self):
        engine = self.make()
        overview = engine.explain()
        assert "2 column(s)" in overview and "low" in overview
        per_column = engine.explain("high")
        assert "pagh-rao" in per_column and "#1" in per_column
        per_query = engine.explain("low", 0, 1)
        assert "low[0..1]" in per_query

    def test_advisor_and_cost_model_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError):
            QueryEngine(advisor=Advisor(), cost_model=CostModel())


class TestTableIntegration:
    def test_default_table_is_engine_backed(self):
        table = Table({"age": [33, 41, 33, 27], "city": list("abca")})
        assert table.engine is not None
        assert set(table.engine.columns) == {"age", "city"}
        assert table.select({"age": (30, 40)}) == [0, 2]

    def test_repeated_selects_hit_cache(self):
        table = Table({"v": [5, 1, 5, 2, 5]})
        table.select({"v": (5, 5)})
        hits_before = table.engine.cache.hits
        table.select({"v": (5, 5)})
        assert table.engine.cache.hits == hits_before + 1

    def test_explicit_factory_bypasses_engine(self):
        table = Table(
            {"v": [1, 2, 3]},
            factory=lambda codes, sigma: CompressedBitmapIndex(codes, sigma),
        )
        assert table.engine is None
        assert isinstance(table.columns["v"].index, CompressedBitmapIndex)
        assert table.select({"v": (2, 3)}) == [1, 2]

    def test_factory_and_engine_conflict(self):
        with pytest.raises(InvalidParameterError):
            Table(
                {"v": [1]},
                factory=lambda c, s: PaghRaoIndex(c, s),
                engine=QueryEngine(),
            )

    def test_shared_engine_across_tables_rejects_name_clash(self):
        engine = QueryEngine()
        Table({"v": [1, 2]}, engine=engine)
        with pytest.raises(InvalidParameterError):
            Table({"v": [3, 4]}, engine=engine)


class TestCalibrationFeedback:
    """CostModel.load_calibrated: measured weights back into serving."""

    def test_loads_weights_json_and_validates(self, tmp_path):
        import json

        from repro.engine import CostModel
        from repro.errors import InvalidParameterError

        path = tmp_path / "weights.json"
        path.write_text(
            json.dumps({"family_weights": {"bitmap": 0.5, "btree": 2.0}})
        )
        model = CostModel.load_calibrated(str(path))
        assert model.family_weight("bitmap") == 0.5
        assert model.family_weight("btree") == 2.0
        assert model.family_weight("pagh-rao") == 1.0  # absent: neutral
        # Overrides pass through like from_reports.
        tuned = CostModel.load_calibrated(str(path), queries_per_build=8.0)
        assert tuned.queries_per_build == 8.0
        for bad in ({}, {"family_weights": {}}, {"family_weights": {"x": 0}}):
            path.write_text(json.dumps(bad))
            if bad:
                import pytest

                with pytest.raises(InvalidParameterError):
                    CostModel.load_calibrated(str(path))

    def test_tables_accept_a_cost_model(self, tmp_path):
        import json

        import pytest

        from repro.cluster import ClusterEngine, ShardedTable
        from repro.engine import CostModel
        from repro.errors import InvalidParameterError
        from repro.queries import Table

        path = tmp_path / "weights.json"
        path.write_text(json.dumps({"family_weights": {"btree": 1e-9}}))
        model = CostModel.load_calibrated(str(path))
        # A weight this extreme must actually steer the advisor.
        table = Table({"v": list(range(16)) * 4}, cost_model=model)
        assert table.columns["v"].index.__class__.__name__ == (
            "BTreeSecondaryIndex"
        )
        sharded = ShardedTable(
            {"v": list(range(16)) * 4}, num_shards=2, cost_model=model
        )
        assert sharded.cluster.backends("v") == ["btree", "btree"]
        assert sharded.select({"v": (3, 7)}) == table.select({"v": (3, 7)})
        with pytest.raises(InvalidParameterError):
            Table({"v": [1, 2]}, cost_model=model, factory=lambda c, s: None)
        with pytest.raises(InvalidParameterError):
            ShardedTable(
                {"v": [1, 2]}, cluster=ClusterEngine(1), cost_model=model
            )
