"""Unit tests for the asyncio serving front end and hot-shard replicas.

``pytest-asyncio`` is deliberately not a dependency: every async test
drives its own event loop through ``asyncio.run`` from a synchronous
test function, which also pins the loop's lifetime inside the test.
"""

import asyncio
import random
import threading
from types import SimpleNamespace

import pytest

from repro.cluster import (
    CacheStore,
    ClusterEngine,
    InMemorySharedCache,
    ProcessExecutor,
    SerialExecutor,
)
from repro.errors import (
    InvalidParameterError,
    Overloaded,
    QueryError,
    RequestTimeout,
)
from repro.obs import MetricsRegistry, Tracer
from repro.query import Range
from repro.serve import FrontEnd, ReplicaSet

from tests.conftest import brute_range


def _make_cluster(num_shards=3, rows=120, sigma=32, **kwargs):
    random.seed(20260808)
    codes = [random.randrange(16) for _ in range(rows)]
    cluster = ClusterEngine(num_shards=num_shards, **kwargs)
    cluster.add_column(
        "v", codes, sigma, dynamism="fully_dynamic", require_delete=True
    )
    return cluster, codes


class _GateEngine:
    """A stub engine whose ``count`` blocks until released.

    Implements exactly the surface the front end touches: ``count``,
    ``mutations``, ``replicas``, and ``_meta`` (for fingerprinting).
    """

    def __init__(self) -> None:
        self.mutations = 0
        self.replicas = None
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def _meta(self, name):
        return SimpleNamespace(sigma=32, epoch="e0")

    def count(self, pred):
        with self._lock:
            self.calls += 1
        if not self.gate.wait(timeout=30):
            raise AssertionError("test gate never released")
        return self.calls


class _NullStore(CacheStore):
    """A shared-cache store that retains nothing — every get misses."""

    def get(self, key):
        return None

    def put(self, key, positions):
        pass

    def __len__(self):
        return 0


class TestFrontEndOps:
    """Every op answers exactly what the engine answers serially."""

    def test_all_ops_match_serial_oracle(self):
        cluster, codes = _make_cluster()
        fe = FrontEnd(cluster)
        pred = Range("v", 2, 9)

        async def main():
            assert await fe.count(pred) == cluster.count(pred)
            assert await fe.select(pred) == cluster.select(pred)
            assert await fe.exists(pred) == cluster.exists(pred)
            assert (await fe.query(pred)).positions() == cluster.query(
                pred
            ).positions()
            assert await fe.count_by("v", pred) == cluster.count_by(
                "v", pred
            )
            assert await fe.topk("v", pred, 3) == cluster.topk(
                "v", pred, 3
            )
            await fe.close()

        asyncio.run(main())
        assert cluster.count(pred) == len(brute_range(codes, 2, 9))
        stats = fe.stats()
        assert stats.requests == 6 and stats.completed == 6
        assert stats.shed == 0 and stats.errors == 0

    def test_engine_errors_propagate_typed(self):
        cluster, _ = _make_cluster()
        fe = FrontEnd(cluster)

        async def main():
            with pytest.raises(QueryError):
                await fe.count(Range("nope", 0, 1))
            await fe.close()

        asyncio.run(main())

    def test_constructor_validation(self):
        cluster, _ = _make_cluster()
        with pytest.raises(InvalidParameterError):
            FrontEnd([])
        with pytest.raises(InvalidParameterError):
            FrontEnd(cluster, max_inflight=0)
        with pytest.raises(InvalidParameterError):
            FrontEnd(cluster, timeout_s=0)
        with pytest.raises(InvalidParameterError):
            FrontEnd(cluster, replica_refresh_every=0)

    def test_closed_front_end_rejects_requests(self):
        cluster, _ = _make_cluster()
        fe = FrontEnd(cluster)

        async def main():
            await fe.close()
            await fe.close()  # idempotent
            with pytest.raises(InvalidParameterError):
                await fe.count(Range("v", 0, 1))

        asyncio.run(main())


class TestCoalescing:
    def test_duplicates_share_one_scatter(self):
        # A resident executor counts worker ops; a null shared-cache
        # store guarantees repeats are real scatters — so the fold
        # count *is* the number of scatters that actually ran.
        pool = ProcessExecutor(max_workers=2)
        cluster = ClusterEngine(
            num_shards=2,
            executor=pool,
            shared_cache=InMemorySharedCache(store=_NullStore()),
            drift_window=None,
        )
        try:
            random.seed(3)
            cluster.add_column(
                "v", [random.randrange(8) for _ in range(40)], 8
            )
            pool.reset_op_counts()
            fe = FrontEnd(cluster)
            pred = Range("v", 1, 6)

            async def main():
                results = await asyncio.gather(
                    *[fe.count(pred) for _ in range(6)]
                )
                assert set(results) == {cluster.count(pred)}
                await fe.close()

            folds_before = pool.op_counts.get("fold", 0)
            asyncio.run(main())
            # Six requests, one execution: one fold per shard, once —
            # the serial-oracle call above accounts separately.
            assert (
                pool.op_counts.get("fold", 0) - folds_before
                == cluster.num_shards + cluster.num_shards
            )
            assert fe.coalesced == 5 and fe.admitted == 1
        finally:
            cluster.close()

    def test_equivalent_predicates_coalesce(self):
        engine = _GateEngine()
        fe = FrontEnd(engine)
        a = Range("v", 1, 5) & Range("w", 2, 6)
        b = Range("w", 2, 6) & Range("v", 1, 5)

        async def main():
            leader = asyncio.create_task(fe.count(a))
            await asyncio.sleep(0)
            follower = asyncio.create_task(fe.count(b))
            await asyncio.sleep(0)
            assert fe.coalesced == 1
            engine.gate.set()
            assert await leader == await follower == 1
            await fe.close()

        asyncio.run(main())
        assert engine.calls == 1

    def test_mutation_fence_closes_the_window(self):
        # A write between two identical requests must start a fresh
        # flight: the key embeds every engine's mutation counter.
        engine = _GateEngine()
        engine.gate.set()  # no blocking needed here
        fe = FrontEnd(engine)
        pred = Range("v", 0, 3)

        async def main():
            await fe.count(pred)
            engine.mutations += 1  # what any cluster write does
            await fe.count(pred)
            await fe.close()

        asyncio.run(main())
        assert engine.calls == 2 and fe.coalesced == 0

    def test_coalescing_off_executes_every_request(self):
        engine = _GateEngine()
        fe = FrontEnd(engine, coalesce=False)
        pred = Range("v", 0, 3)

        async def main():
            tasks = [
                asyncio.create_task(fe.count(pred)) for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            engine.gate.set()
            await asyncio.gather(*tasks)
            await fe.close()

        asyncio.run(main())
        assert engine.calls == 3 and fe.coalesced == 0


class TestAdmission:
    def test_reject_newest_sheds_typed(self):
        engine = _GateEngine()
        fe = FrontEnd(engine, max_inflight=2, coalesce=False)
        pred = Range("v", 0, 3)

        async def main():
            first = asyncio.create_task(fe.count(pred))
            second = asyncio.create_task(fe.count(pred))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as excinfo:
                await fe.count(pred)
            assert excinfo.value.inflight == 2
            assert excinfo.value.capacity == 2
            engine.gate.set()
            await asyncio.gather(first, second)
            # Capacity freed: admitted again.
            assert await fe.count(pred) == 3
            await fe.close()

        asyncio.run(main())
        assert fe.shed == 1 and fe.admitted == 3

    def test_followers_bypass_admission(self):
        engine = _GateEngine()
        fe = FrontEnd(engine, max_inflight=1)
        hot = Range("v", 0, 3)

        async def main():
            leader = asyncio.create_task(fe.count(hot))
            await asyncio.sleep(0)
            follower = asyncio.create_task(fe.count(hot))
            await asyncio.sleep(0)
            # The duplicate rode the leader's slot; a distinct
            # predicate needs its own and is shed.
            with pytest.raises(Overloaded):
                await fe.count(Range("v", 5, 9))
            engine.gate.set()
            assert await leader == await follower
            await fe.close()

        asyncio.run(main())
        assert fe.coalesced == 1 and fe.shed == 1

    def test_deadline_raises_request_timeout(self):
        engine = _GateEngine()
        fe = FrontEnd(engine, timeout_s=0.05)
        pred = Range("v", 0, 3)

        async def main():
            with pytest.raises(RequestTimeout) as excinfo:
                await fe.count(pred)
            assert excinfo.value.op == "count"
            assert excinfo.value.timeout_s == 0.05
            # The shielded execution still completes once released.
            engine.gate.set()
            await fe.drain()
            await fe.close()

        asyncio.run(main())
        assert fe.timeouts == 1 and fe.errors == 0
        assert engine.calls == 1

    def test_per_call_timeout_overrides_default(self):
        engine = _GateEngine()
        engine.gate.set()
        fe = FrontEnd(engine, timeout_s=0.001)

        async def main():
            # A generous per-call deadline rescues a tight default.
            assert await fe.count(Range("v", 0, 3), timeout_s=30.0) == 1
            await fe.close()

        asyncio.run(main())
        assert fe.timeouts == 0


class TestCancellation:
    def test_cancelled_follower_never_cancels_the_leader(self):
        engine = _GateEngine()
        tracer = Tracer()
        fe = FrontEnd(engine, tracer=tracer)
        pred = Range("v", 0, 3)

        async def main():
            leader = asyncio.create_task(fe.count(pred))
            await asyncio.sleep(0)
            follower = asyncio.create_task(fe.count(pred))
            await asyncio.sleep(0)
            follower.cancel()
            await asyncio.sleep(0)
            engine.gate.set()
            assert await leader == 1
            with pytest.raises(asyncio.CancelledError):
                await follower
            await fe.close()

        asyncio.run(main())
        assert fe.cancelled == 1 and engine.calls == 1
        # Nothing leaked: no pending task, no single-flight entry, and
        # every begun trace was finished into the ring.
        assert not fe._tasks and not fe._singleflight
        assert len(tracer.traces) == fe.admitted == 1
        assert all(trace.finished for trace in tracer.traces)

    def test_cancelled_leader_caller_still_serves_followers(self):
        engine = _GateEngine()
        fe = FrontEnd(engine)
        pred = Range("v", 0, 3)

        async def main():
            leader = asyncio.create_task(fe.count(pred))
            await asyncio.sleep(0)
            follower = asyncio.create_task(fe.count(pred))
            await asyncio.sleep(0)
            leader.cancel()
            await asyncio.sleep(0)
            engine.gate.set()
            # The execution outlives its originating caller.
            assert await follower == 1
            await fe.close()

        asyncio.run(main())
        assert engine.calls == 1 and fe.cancelled == 1
        assert not fe._tasks and not fe._singleflight


class TestStress:
    def test_concurrent_mixed_ops_with_midflight_appends(self):
        # Appended codes sit outside every queried range, so each
        # request's oracle answer is time-invariant however the writes
        # interleave — which is what lets 60 concurrent clients each
        # assert an exact result.
        cluster, codes = _make_cluster(num_shards=3, rows=150)
        metrics = MetricsRegistry()
        fe = FrontEnd(cluster, max_inflight=256, metrics=metrics)
        preds = [Range("v", lo, lo + 4) for lo in range(0, 11)]
        oracle = {}
        for i, pred in enumerate(preds):
            oracle[("count", i)] = cluster.count(pred)
            oracle[("select", i)] = cluster.select(pred)
            oracle[("exists", i)] = cluster.exists(pred)
            oracle[("count_by", i)] = cluster.count_by("v", pred)
            oracle[("topk", i)] = cluster.topk("v", pred, 3)

        async def client(op, i):
            pred = preds[i]
            if op == "count":
                return op, i, await fe.count(pred)
            if op == "select":
                return op, i, await fe.select(pred)
            if op == "exists":
                return op, i, await fe.exists(pred)
            if op == "count_by":
                return op, i, await fe.count_by("v", pred)
            return op, i, await fe.topk("v", pred, 3)

        async def writer(loop):
            for _ in range(6):
                await loop.run_in_executor(None, cluster.append, "v", 20)
                await asyncio.sleep(0)

        async def main():
            loop = asyncio.get_running_loop()
            rng = random.Random(99)
            ops = ["count", "select", "exists", "count_by", "topk"]
            tasks = [
                client(rng.choice(ops), rng.randrange(len(preds)))
                for _ in range(60)
            ]
            results, _ = await asyncio.gather(
                asyncio.gather(*tasks), writer(loop)
            )
            for op, i, value in results:
                assert value == oracle[(op, i)], (op, i)
            await fe.close()

        asyncio.run(main())
        stats = fe.stats()
        assert stats.requests == 60
        assert stats.completed == 60  # exactly one result each
        assert stats.shed == 0 and stats.errors == 0
        assert stats.admitted + stats.coalesced == 60
        assert stats.inflight == 0
        assert (
            metrics.counter("serve.requests").value == 60
        )
        # Six writes landed mid-flight.
        assert cluster.total_rows("v") == 156


class TestReplicaSet:
    def test_attach_detach_lifecycle(self):
        cluster, _ = _make_cluster(num_shards=4)
        with pytest.raises(InvalidParameterError):
            ReplicaSet(capacity=0)
        replicas = ReplicaSet(capacity=2)
        cluster.attach_replicas(replicas)
        with pytest.raises(InvalidParameterError):
            cluster.attach_replicas(ReplicaSet())
        with pytest.raises(InvalidParameterError):
            ReplicaSet().refresh()  # unbound
        assert len(replicas.stats().resident) == 2
        cluster.detach_replicas()
        assert replicas.stats().resident == ()
        # Re-attachable after a clean detach.
        cluster.attach_replicas(ReplicaSet(capacity=1))
        cluster.close()

    def test_fetch_is_version_fenced(self):
        cluster, _ = _make_cluster(num_shards=4)
        replicas = ReplicaSet(capacity=2)
        cluster.attach_replicas(replicas)
        uid = cluster.shard_uids[0]
        version = cluster.shards[0].column("v").version
        hit = replicas.fetch(uid, "v", 0, 5, version)
        assert hit is not None
        positions, io = hit
        oracle, _ = cluster.shards[0].query_measured("v", 0, 5)
        assert list(positions) == list(oracle.positions())
        assert io.bits_read > 0
        # A mismatched version abstains rather than serving stale.
        assert replicas.fetch(uid, "v", 0, 5, version + 1) is None
        # An unreplicated uid abstains too.
        assert replicas.fetch(999_999, "v", 0, 5, version) is None
        stats = replicas.stats()
        assert stats.hits == 1 and stats.stale == 1 and stats.absent == 1

    def test_routed_deltas_keep_replicas_fresh(self):
        cluster, codes = _make_cluster(num_shards=4)
        replicas = ReplicaSet(capacity=4)  # replicate everything
        cluster.attach_replicas(replicas)
        cluster.change("v", 0, 13)
        cluster.delete("v", 1)
        uid = cluster.shard_uids[0]
        version = cluster.shards[0].column("v").version
        hit = replicas.fetch(uid, "v", 13, 13, version)
        assert hit is not None
        oracle, _ = cluster.shards[0].query_measured("v", 13, 13)
        assert list(hit[0]) == list(oracle.positions())
        cluster.close()

    def test_failed_delta_drops_the_replica(self):
        cluster, _ = _make_cluster(num_shards=2)
        replicas = ReplicaSet(capacity=2)
        cluster.attach_replicas(replicas)
        uid = cluster.shard_uids[0]
        retires_before = replicas.retires
        replicas.on_delta(uid, ("no_such_op",))
        assert replicas.retires == retires_before + 1
        version = cluster.shards[0].column("v").version
        assert replicas.fetch(uid, "v", 0, 5, version) is None
        # The primary is untouched and the other replica still serves.
        other = cluster.shard_uids[1]
        assert (
            replicas.fetch(
                other, "v", 0, 5, cluster.shards[1].column("v").version
            )
            is not None
        )
        cluster.close()

    def test_scatter_consults_replicas_after_cache_miss(self):
        cluster, codes = _make_cluster(
            num_shards=3, io_latency_s=0.0002
        )
        replicas = ReplicaSet(capacity=3)
        cluster.attach_replicas(replicas)
        pred = Range("v", 2, 9)
        oracle = brute_range(codes, 2, 9)
        # Cold shared cache both times: the second pass is served from
        # the replicas, answer identical.
        assert cluster.select(pred) == oracle
        cluster.drop_caches()
        assert cluster.select(pred) == oracle
        assert replicas.hits > 0
        assert cluster.count(pred) == len(oracle)
        stats = cluster.stats()
        assert stats.replicas is not None
        assert stats.replicas["hits"] == replicas.hits
        assert stats.to_dict()["replicas"]["capacity"] == 3
        cluster.close()

    def test_refresh_promotes_hot_shards(self):
        cluster, _ = _make_cluster(num_shards=4, drift_window=None)
        replicas = ReplicaSet(capacity=1)
        cluster.attach_replicas(replicas)
        # Heat shard 2 with routed writes, then refresh membership.
        lo, hi = cluster.plan_.slices()[2]
        for _ in range(8):
            cluster.change("v", lo, 7)
        assert cluster.shard_heat(2) >= 8
        resident = replicas.refresh()
        assert resident == (cluster.shard_uids[2],)
        assert replicas.stats().resident == (cluster.shard_uids[2],)
        cluster.close()

    def test_front_end_drives_periodic_refresh(self):
        cluster, _ = _make_cluster(num_shards=3)
        replicas = ReplicaSet(capacity=2)
        cluster.attach_replicas(replicas)
        fe = FrontEnd(cluster, replica_refresh_every=2, coalesce=False)
        refreshes_before = replicas.refreshes

        async def main():
            for lo in range(5):
                await fe.count(Range("v", lo, lo + 3))
            await fe.close()

        asyncio.run(main())
        assert replicas.refreshes >= refreshes_before + 2
        cluster.close()
