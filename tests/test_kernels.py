"""Fast kernels vs. pure-Python references — randomized parity suite.

Every block-oriented kernel in :mod:`repro.bits.kernels` must compute
exactly what the reference loop it replaces computes, on the same
adversarial inputs: empty operands, complemented operands,
universe-boundary positions, 31-bit group edges, truncated bit
streams.  The suite runs the public entry points under *both*
``REPRO_KERNEL`` values (the ``kernel`` fixture flips the switch) and
additionally compares fast kernels head-to-head with their reference
twins, so a divergence is pinned to the kernel rather than the test
oracle.
"""

from __future__ import annotations

import random
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bits import kernels, ops
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.ebitmap import GapCompressedBitmap, decode_gaps, encode_gaps
from repro.bits.wah import GROUP_BITS, WahBitmap, _MAX_RUN
from repro.errors import CodecError, InvalidParameterError

position_lists = st.lists(
    st.integers(min_value=0, max_value=200), unique=True
).map(sorted)


# The kernel fixture is a pure switch-flip, safe to share across
# generated examples; silence the function-scoped-fixture check.
fixture_ok = settings(
    suppress_health_check=[
        HealthCheck.function_scoped_fixture,
        HealthCheck.too_slow,
    ]
)


@pytest.fixture(params=kernels.KERNELS)
def kernel(request):
    """Run the test once per kernel, restoring the ambient switch."""
    before = kernels.kernel_name()
    kernels.set_kernel(request.param)
    yield request.param
    kernels.set_kernel(before)


class TestKernelSwitch:
    def test_set_kernel_and_name(self):
        before = kernels.kernel_name()
        try:
            kernels.set_kernel("python")
            assert kernels.kernel_name() == "python"
            assert not kernels.USE_FAST
            kernels.set_kernel("fast")
            assert kernels.kernel_name() == "fast"
            assert kernels.USE_FAST
        finally:
            kernels.set_kernel(before)

    def test_set_kernel_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            kernels.set_kernel("numpy")

    @pytest.mark.parametrize("name", ["python", "fast"])
    def test_env_selects_kernel(self, name):
        code = (
            "from repro.bits import kernels; print(kernels.kernel_name())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_KERNEL": name, "PATH": ""},
        )
        assert out.stdout.strip() == name

    def test_env_rejects_unknown(self):
        code = "import repro.bits.kernels"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_KERNEL": "turbo", "PATH": ""},
        )
        assert out.returncode != 0
        assert "REPRO_KERNEL" in out.stderr


class TestSetAlgebraParity:
    """ops.* under each kernel against brute-force set oracles."""

    @fixture_ok
    @given(a=position_lists, b=position_lists)
    def test_intersect(self, kernel, a, b):
        assert ops.intersect_sorted(a, b) == sorted(set(a) & set(b))
        assert ops.intersect_count(a, b) == len(set(a) & set(b))

    @fixture_ok
    @given(a=position_lists, b=position_lists)
    def test_difference(self, kernel, a, b):
        assert ops.difference_sorted(a, b) == sorted(set(a) - set(b))

    @fixture_ok
    @given(lists=st.lists(position_lists, max_size=5))
    def test_union(self, kernel, lists):
        expect = sorted(set().union(*map(set, lists)))
        assert ops.union_sorted(lists) == expect
        assert ops.intersect_many(lists) == (
            sorted(set.intersection(*map(set, lists))) if lists else []
        )

    @fixture_ok
    @given(lists=st.lists(position_lists, max_size=5))
    def test_union_disjoint(self, kernel, lists):
        # Make the lists pairwise disjoint by striding each into its
        # own residue class, preserving sortedness.
        k = max(len(lists), 1)
        disjoint = [
            [p * k + i for p in lst] for i, lst in enumerate(lists)
        ]
        expect = sorted(set().union(*map(set, disjoint)))
        assert ops.union_disjoint_sorted(disjoint) == expect

    @fixture_ok
    @given(a=position_lists, universe=st.integers(0, 260))
    def test_complement(self, kernel, a, universe):
        a = [p for p in a if p < universe]
        expect = [p for p in range(universe) if p not in set(a)]
        assert ops.complement_sorted(a, universe) == expect

    @fixture_ok
    @given(
        a=position_lists,
        a_comp=st.booleans(),
        b=position_lists,
        b_comp=st.booleans(),
    )
    def test_complemented_operands(self, kernel, a, a_comp, b, b_comp):
        # The aware twins compose the dispatched base kernels; check
        # them against materialized sets over a concrete universe.
        universe = 230
        sa = set(range(universe)) - set(a) if a_comp else set(a)
        sb = set(range(universe)) - set(b) if b_comp else set(b)

        def concrete(stored, comp):
            return set(range(universe)) - set(stored) if comp else set(stored)

        got, comp = ops.union_aware(a, a_comp, b, b_comp)
        assert concrete(got, comp) == sa | sb
        got, comp = ops.intersect_aware(a, a_comp, b, b_comp)
        assert concrete(got, comp) == sa & sb
        got, comp = ops.difference_aware(a, a_comp, b, b_comp)
        assert concrete(got, comp) == sa - sb
        assert ops.union_aware_count(a, a_comp, b, b_comp, universe) == len(
            sa | sb
        )
        assert ops.intersect_aware_count(
            a, a_comp, b, b_comp, universe
        ) == len(sa & sb)
        assert ops.difference_aware_count(
            a, a_comp, b, b_comp, universe
        ) == len(sa - sb)

    def test_empty_operands(self, kernel):
        assert ops.intersect_sorted([], [1, 2]) == []
        assert ops.intersect_sorted([1, 2], []) == []
        assert ops.difference_sorted([], [1]) == []
        assert ops.difference_sorted([1], []) == [1]
        assert ops.union_sorted([]) == []
        assert ops.union_sorted([[], []]) == []
        assert ops.intersect_many([]) == []
        assert ops.intersect_many([[], [1]]) == []
        assert ops.complement_sorted([], 0) == []
        assert ops.complement_sorted([], 3) == [0, 1, 2]

    def test_results_are_fresh_lists(self, kernel):
        a = [1, 2, 3]
        for got in (
            ops.union_disjoint_sorted([a]),
            ops.union_sorted([a]),
            ops.difference_sorted(a, []),
        ):
            assert got == a and got is not a


class TestWahDecodeParity:
    """WahBitmap.positions() under each kernel vs. the reference."""

    @fixture_ok
    @given(
        data=st.data(),
        universe=st.integers(min_value=1, max_value=6 * GROUP_BITS + 5),
    )
    def test_roundtrip_group_edges(self, kernel, data, universe):
        positions = data.draw(
            st.lists(
                st.integers(0, universe - 1), unique=True
            ).map(sorted)
        )
        bm = WahBitmap.from_positions(positions, universe)
        assert bm.positions() == positions
        assert list(bm.iter_positions()) == positions

    @pytest.mark.parametrize(
        "universe",
        [1, GROUP_BITS - 1, GROUP_BITS, GROUP_BITS + 1, 2 * GROUP_BITS,
         3 * GROUP_BITS - 1, 3 * GROUP_BITS + 1],
    )
    def test_all_ones_at_group_edges(self, kernel, universe):
        positions = list(range(universe))
        bm = WahBitmap.from_positions(positions, universe)
        assert bm.positions() == positions

    def test_universe_boundary_position(self, kernel):
        for universe in (GROUP_BITS, GROUP_BITS + 1, 5 * GROUP_BITS + 3):
            bm = WahBitmap.from_positions([universe - 1], universe)
            assert bm.positions() == [universe - 1]

    def test_malformed_literal_raises(self, kernel):
        # A literal bit at/after the universe is corrupt data in every
        # kernel: universe 5, literal sets position 6.
        word = 1 << (GROUP_BITS - 1 - 6)
        bad = WahBitmap((word,), 5, 1)
        with pytest.raises(CodecError):
            bad.positions()

    def test_sparse_random_parity(self, kernel):
        rng = random.Random(13)
        universe = 40_000
        positions = sorted(rng.sample(range(universe), 700))
        bm = WahBitmap.from_positions(positions, universe)
        assert bm.positions() == positions

    def test_clustered_runs_parity(self, kernel):
        rng = random.Random(5)
        universe = 50_000
        positions, p = [], 0
        while p < universe:
            run = rng.randint(1, 400)
            positions.extend(range(p, min(p + run, universe)))
            p += run + rng.randint(1, 400)
        bm = WahBitmap.from_positions(positions, universe)
        assert bm.positions() == positions


class TestWahFillBoundaries:
    """Exact-boundary regressions for fill runs of _MAX_RUN groups.

    ``emit_fill`` must emit one fill word for exactly ``_MAX_RUN``
    equal groups and split at ``_MAX_RUN + 1``; both decoders must
    round-trip the split, and ``count`` must stay consistent.  The
    all-one cases narrow ``wah._MAX_RUN`` (3 — intentionally an
    all-ones bit pattern, since decoders mask ``word & _MAX_RUN``) so
    the splits are reachable without 2**30 groups of ones; the
    all-zero cases run at the real boundary, which costs only two
    literals around one giant zero fill.
    """

    def _fill_words(self, bm):
        return [w for w in bm.words if w >> 31]

    @pytest.mark.parametrize("extra", [0, 1])
    def test_zero_run_at_real_max_run(self, kernel, extra):
        # A literal group followed by exactly _MAX_RUN (+ extra)
        # trailing all-zero groups; the encoder's all-zero-tail
        # shortcut makes this O(1), so the split is tested at the real
        # 2**30 - 1 boundary.
        ngroups = _MAX_RUN + extra
        universe = (ngroups + 1) * GROUP_BITS
        positions = [0]
        bm = WahBitmap.from_positions(positions, universe)
        fills = self._fill_words(bm)
        runs = [w & _MAX_RUN for w in fills]
        assert all((w >> 30) & 1 == 0 for w in fills)
        if extra == 0:
            assert runs == [_MAX_RUN]
        else:
            assert sorted(runs) == [1, _MAX_RUN]
        assert sum(runs) == ngroups
        assert bm.positions() == positions
        assert bm.count == len(positions)

    @pytest.mark.parametrize("extra", [0, 1])
    def test_one_run_at_narrowed_max_run(
        self, kernel, monkeypatch, extra
    ):
        import repro.bits.wah as wah_mod

        monkeypatch.setattr(wah_mod, "_MAX_RUN", 3)
        ngroups = 3 + extra
        universe = (ngroups + 1) * GROUP_BITS
        positions = list(range(ngroups * GROUP_BITS))
        bm = WahBitmap.from_positions(positions, universe)
        # The trailing empty group encodes as a zero fill; the one
        # runs are what the narrowed boundary must split.
        one_runs = [
            w & 3 for w in self._fill_words(bm) if (w >> 30) & 1
        ]
        if extra == 0:
            assert one_runs == [3]
        else:
            assert one_runs == [3, 1]
        assert sum(one_runs) == ngroups
        assert bm.positions() == positions
        assert list(bm.iter_positions()) == positions
        assert bm.count == len(positions)

    def test_narrowed_zero_run_split_roundtrip(self, kernel, monkeypatch):
        import repro.bits.wah as wah_mod

        monkeypatch.setattr(wah_mod, "_MAX_RUN", 3)
        # 9 zero groups between two literals: splits into 3+3+3.
        universe = 11 * GROUP_BITS
        positions = [3, 10 * GROUP_BITS + 1]
        bm = WahBitmap.from_positions(positions, universe)
        runs = [w & 3 for w in self._fill_words(bm)]
        assert runs == [3, 3, 3]
        assert bm.positions() == positions


class TestGammaDecodeParity:
    """decode_gaps under each kernel: values, reader position, errors."""

    @fixture_ok
    @given(
        gaps=st.lists(st.integers(min_value=1, max_value=1 << 20)),
        tail=st.integers(min_value=1, max_value=500),
    )
    def test_positions_and_reader_position(self, kernel, gaps, tail):
        positions, prev = [], -1
        for g in gaps:
            prev += g
            positions.append(prev)
        w = BitWriter()
        encode_gaps(w, positions)
        marker_at = w.bit_length
        from repro.bits.gamma import write_gamma

        write_gamma(w, tail)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert decode_gaps(r, len(positions)) == positions
        # The contract: exactly the gamma bits consumed, reader left
        # positioned for the next sequential decode.
        assert r.tell() == marker_at
        from repro.bits.gamma import read_gamma

        assert read_gamma(r) == tail

    def test_zero_count(self, kernel):
        r = BitReader(b"", bit_length=0)
        assert decode_gaps(r, 0) == []
        assert r.tell() == 0

    def test_truncated_unary_raises(self, kernel):
        # Six zero bits and no marker: unary runs off the stream.
        r = BitReader(b"\x00", bit_length=6)
        with pytest.raises(CodecError):
            decode_gaps(r, 1)

    def test_truncated_payload_raises(self, kernel):
        # "001" promises two payload bits; only one follows.
        r = BitReader(b"\x24", bit_length=4)
        with pytest.raises(CodecError):
            decode_gaps(r, 1)

    def test_bitmap_roundtrip_large_gaps(self, kernel):
        rng = random.Random(99)
        universe = 1 << 22
        positions = sorted(rng.sample(range(universe), 400))
        bm = GapCompressedBitmap.from_positions(positions, universe)
        assert bm.positions() == positions


class TestFastVsReferenceHeadToHead:
    """Direct fast-kernel calls against the reference loops."""

    @settings(
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=st.data(),
        universe=st.integers(min_value=1, max_value=4000),
    )
    def test_wah_decode_matches_iter(self, data, universe):
        positions = data.draw(
            st.lists(st.integers(0, universe - 1), unique=True).map(sorted)
        )
        bm = WahBitmap.from_positions(positions, universe)
        assert kernels.wah_decode(bm.words, bm.universe) == list(
            bm.iter_positions()
        )

    @fixture_ok
    @given(gaps=st.lists(st.integers(min_value=1, max_value=1 << 16)))
    def test_gamma_decode_matches_read_gamma(self, gaps):
        positions, prev = [], -1
        for g in gaps:
            prev += g
            positions.append(prev)
        w = BitWriter()
        encode_gaps(w, positions)
        fast_r = BitReader(w.getvalue(), bit_length=w.bit_length)
        got = kernels.decode_gaps_fast(fast_r, len(positions))
        from repro.bits.gamma import read_gamma

        ref_r = BitReader(w.getvalue(), bit_length=w.bit_length)
        expect, prev = [], -1
        for _ in positions:
            prev += read_gamma(ref_r)
            expect.append(prev)
        assert got == expect
        assert fast_r.tell() == ref_r.tell()
