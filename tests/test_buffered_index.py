"""Tests for Theorem 5 (§4.1.1) — buffered appends."""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import AppendableIndex, BufferedAppendableIndex
from repro.model import distributions as dist


class TestCorrectness:
    def test_appends_match_oracle_with_buffers_in_flight(self):
        # Query between appends so answers must merge buffered ops.
        sigma = 24
        x0 = dist.uniform(600, sigma, seed=1)
        idx = BufferedAppendableIndex(x0, sigma, rebuild_factor=4.0)
        x = list(x0)
        rng = random.Random(0)
        for step in range(1000):
            ch = rng.randrange(sigma)
            idx.append(ch)
            x.append(ch)
            if step % 83 == 0:
                lo, hi = sorted((rng.randrange(sigma), rng.randrange(sigma)))
                got = idx.range_query(lo, hi).positions()
                assert got == brute_range(x, lo, hi), (step, lo, hi)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_ops_actually_buffer(self):
        sigma = 16
        idx = BufferedAppendableIndex(
            dist.uniform(2000, sigma, seed=2), sigma, rebuild_factor=8.0
        )
        for ch in range(10):
            idx.append(ch % sigma)
        assert idx.pending_ops > 0

    def test_query_sees_op_in_every_buffer_depth(self):
        # Append enough to force cascaded flushes, querying throughout.
        sigma = 8
        idx = BufferedAppendableIndex(
            dist.uniform(1500, sigma, seed=3), sigma, rebuild_factor=16.0
        )
        x = list(dist.uniform(1500, sigma, seed=3))
        rng = random.Random(2)
        for _ in range(2500):
            ch = rng.randrange(sigma)
            idx.append(ch)
            x.append(ch)
        for lo, hi in random_ranges(rng, sigma, 8):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_complement_with_pending_ops(self):
        sigma = 4
        idx = BufferedAppendableIndex([0, 1, 2, 3] * 100, sigma, rebuild_factor=8.0)
        x = [0, 1, 2, 3] * 100
        for _ in range(30):
            idx.append(2)
            x.append(2)
        r = idx.range_query(0, 2)  # > half: complemented
        assert r.positions() == brute_range(x, 0, 2)

    def test_single_character_alphabet(self):
        idx = BufferedAppendableIndex([0] * 20, 1)
        for _ in range(15):
            idx.append(0)
        assert idx.range_query(0, 0).positions() == list(range(35))


class TestIOBounds:
    def test_buffered_appends_cheaper_than_direct(self):
        # Theorem 5 vs Theorem 4: O(lg n / b) vs O(lg lg n) per append.
        # The buffers only pay off when internal memory cannot hold the
        # tail block of every per-node chain, so run with a small M.
        sigma = 32
        x0 = dist.uniform(4000, sigma, seed=4)
        rng = random.Random(3)
        appends = [rng.randrange(sigma) for _ in range(600)]

        direct = AppendableIndex(x0, sigma, rebuild_factor=8.0, mem_blocks=4)
        direct.stats.reset()
        for ch in appends:
            direct.append(ch)
        direct_io = direct.stats.total

        buffered = BufferedAppendableIndex(
            x0, sigma, rebuild_factor=8.0, mem_blocks=4
        )
        buffered.stats.reset()
        for ch in appends:
            buffered.append(ch)
        buffered_io = buffered.stats.total

        assert buffered_io < direct_io

    def test_space_includes_buffers(self):
        sigma = 16
        x = dist.uniform(1000, sigma, seed=5)
        plain = AppendableIndex(x, sigma)
        buf = BufferedAppendableIndex(x, sigma)
        # Theorem 5 trades space: sigma lg n * B extra bits of buffers.
        assert buf.space().directory_bits > plain.space().directory_bits
