"""Tests for the Theorem 3 structure (§3) — approximate range queries."""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import ApproximatePaghRaoIndex, ApproximateResult, RangeResult
from repro.errors import QueryError
from repro.model import distributions as dist


def make_index(n=4096, sigma=64, theta=0.0, seed=0):
    x = dist.zipf(n, sigma, theta=theta, seed=seed)
    return x, ApproximatePaghRaoIndex(x, sigma, seed=seed)


class TestSupersetProperty:
    def test_no_false_negatives(self):
        # The defining guarantee: the answer is a superset of the truth.
        x, idx = make_index(seed=1)
        rng = random.Random(1)
        for lo, hi in random_ranges(rng, 64, 25):
            r = idx.approx_range_query(lo, hi, eps=1 / 16)
            truth = set(brute_range(x, lo, hi))
            if isinstance(r, ApproximateResult):
                assert truth <= set(r.positions())
                for p in truth:
                    assert r.might_contain(p)
            else:
                assert set(r.positions()) == truth

    def test_exact_fallback_when_z_large(self):
        x, idx = make_index(seed=2)
        # z/eps near n forces the exact path (j > k or no savings).
        r = idx.approx_range_query(0, 60, eps=1 / 2)
        assert isinstance(r, RangeResult)
        assert r.positions() == brute_range(x, 0, 60)

    def test_empty_range(self):
        x = [0, 3] * 500
        idx = ApproximatePaghRaoIndex(x, 4, seed=3)
        r = idx.approx_range_query(1, 2, eps=1 / 8)
        assert isinstance(r, RangeResult)
        assert r.positions() == []

    def test_eps_validation(self):
        _, idx = make_index(seed=4)
        with pytest.raises(QueryError):
            idx.approx_range_query(0, 1, eps=0.0)
        with pytest.raises(QueryError):
            idx.approx_range_query(0, 1, eps=1.0)


class TestLevelChoice:
    def test_choose_level_smallest_sufficient(self):
        _, idx = make_index(n=65536 if False else 4096, seed=5)
        # 2^(2^j) must exceed z/eps.
        j = idx.choose_level(z=10, eps=1 / 4)
        if j is not None:
            assert (1 << (1 << j)) > 40
            if j > 1:
                assert (1 << (1 << (j - 1))) <= 40

    def test_choose_level_none_when_huge(self):
        _, idx = make_index(seed=6)
        assert idx.choose_level(z=4000, eps=1 / 1024) is None

    def test_k_is_lg_lg_n(self):
        _, idx = make_index(n=4096, seed=7)
        # lg lg 4096 = lg 12 ≈ 3.58 → k = 3.
        assert idx.k == 3


class TestFalsePositiveRate:
    def test_fpp_at_most_eps_statistically(self):
        # For i not in the answer, Pr[i reported] <= eps over the hash
        # draw.  Average over seeds and probes; allow 3x sampling slack.
        # sigma=256 keeps z ~ 16 so the hashed path engages at eps=1/8:
        # z/eps = 128 < 2^(2^3) = 256 with k = 3.
        n, sigma = 4096, 256
        eps = 1 / 8
        x = dist.uniform(n, sigma, seed=8)
        truth = set(brute_range(x, 20, 20))
        probes = [i for i in range(0, n, 13) if i not in truth][:150]
        fp = trials = 0
        for seed in range(12):
            idx = ApproximatePaghRaoIndex(x, sigma, seed=seed)
            r = idx.approx_range_query(20, 20, eps=eps)
            if not isinstance(r, ApproximateResult):
                continue
            trials += len(probes)
            fp += sum(1 for i in probes if r.might_contain(i))
        assert trials > 0, "approximate path never engaged; adjust workload"
        assert fp / trials <= 3 * eps

    def test_smaller_eps_fewer_false_positives(self):
        n, sigma = 4096, 64
        x = dist.uniform(n, sigma, seed=9)
        counts = {}
        for eps in (1 / 4, 1 / 64):
            total = 0
            for seed in range(8):
                idx = ApproximatePaghRaoIndex(x, sigma, seed=seed)
                r = idx.approx_range_query(30, 30, eps=eps)
                if isinstance(r, ApproximateResult):
                    total += len(r.positions()) - r.exact_cardinality
            counts[eps] = total
        assert counts[1 / 64] <= counts[1 / 4]


class TestIOAndSize:
    def test_hashed_read_smaller_than_exact(self):
        # The point of §3: bits read ~ z lg(1/eps) < z lg(n/z).
        n, sigma = 4096, 64
        x = dist.uniform(n, sigma, seed=10)
        idx = ApproximatePaghRaoIndex(x, sigma, seed=10)
        lo, hi = 12, 12
        idx.disk.flush_cache()
        idx.stats.reset()
        r = idx.approx_range_query(lo, hi, eps=1 / 4)
        approx_bits = idx.stats.bits_read
        assert isinstance(r, ApproximateResult)
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(lo, hi)
        exact_bits = idx.stats.bits_read
        assert approx_bits < exact_bits

    def test_space_overhead_constant_factor(self):
        # Hashed sets cost O(lg C(n,|I|)) per node: total payload within
        # a constant factor of the exact-only index.
        from repro.core import PaghRaoIndex

        n, sigma = 4096, 64
        x = dist.uniform(n, sigma, seed=11)
        exact = PaghRaoIndex(x, sigma)
        approx = ApproximatePaghRaoIndex(x, sigma, seed=11)
        assert approx.space().payload_bits <= 4 * exact.space().payload_bits


class TestIntersection:
    def test_intersect_filters(self):
        # Two independent dimensions; intersecting their approximate
        # answers keeps all true matches.  sigma=256 keeps per-character
        # z ~ 8, so z/eps = 64 < 2^(2^3) and the hashed path engages.
        n, sigma = 2048, 256
        x1 = dist.uniform(n, sigma, seed=12)
        x2 = dist.uniform(n, sigma, seed=13)
        i1 = ApproximatePaghRaoIndex(x1, sigma, seed=1)
        i2 = ApproximatePaghRaoIndex(x2, sigma, seed=2)
        r1 = i1.approx_range_query(4, 4, eps=1 / 8)
        r2 = i2.approx_range_query(9, 9, eps=1 / 8)
        assert isinstance(r1, ApproximateResult)
        assert isinstance(r2, ApproximateResult)
        truth = set(brute_range(x1, 4, 4)) & set(brute_range(x2, 9, 9))
        got = set(r1.intersect(r2))
        assert truth <= got

    def test_candidates_sorted_and_bounded(self):
        n, sigma = 2048, 256
        x = dist.uniform(n, sigma, seed=14)
        idx = ApproximatePaghRaoIndex(x, sigma, seed=14)
        r = idx.approx_range_query(7, 7, eps=1 / 8)
        assert isinstance(r, ApproximateResult)
        cands = r.positions()
        assert cands == sorted(cands)
        assert len(cands) <= r.candidate_bound
