"""Shared test helpers and the project's Hypothesis profiles.

The stateful machines (engine, cluster, lifecycle) run many update +
full-verify steps per example; an explicit profile keeps the whole
property/stateful portion of the suite well under a minute in CI:

* ``repro`` — the local default: no deadline (a single step can
  legitimately rebuild several shard indexes), moderate example
  counts.
* ``repro-ci`` — what CI loads (``CI=1`` is set by GitHub Actions):
  same settings, fewer examples.

Machines that pin their own ``settings(...)`` inherit the loaded
profile's defaults (notably ``deadline=None``) and override the rest.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    stateful_step_count=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "repro-ci",
    parent=settings.get_profile("repro"),
    max_examples=15,
)
settings.load_profile("repro-ci" if os.environ.get("CI") else "repro")


def brute_range(x, lo, hi):
    """The oracle: positions of characters in [lo, hi]."""
    return [i for i, ch in enumerate(x) if lo <= ch <= hi]


def random_ranges(rng, sigma, count):
    """Random inclusive code ranges plus the standard edge cases."""
    out = []
    for _ in range(count):
        lo = rng.randrange(sigma)
        out.append((lo, rng.randrange(lo, sigma)))
    out.extend([(0, sigma - 1), (0, 0), (sigma - 1, sigma - 1)])
    if sigma > 2:
        out.append((1, sigma - 2))
    return out
