"""Shared test helpers."""

from __future__ import annotations


def brute_range(x, lo, hi):
    """The oracle: positions of characters in [lo, hi]."""
    return [i for i, ch in enumerate(x) if lo <= ch <= hi]


def random_ranges(rng, sigma, count):
    """Random inclusive code ranges plus the standard edge cases."""
    out = []
    for _ in range(count):
        lo = rng.randrange(sigma)
        out.append((lo, rng.randrange(lo, sigma)))
    out.extend([(0, sigma - 1), (0, 0), (sigma - 1, sigma - 1)])
    if sigma > 2:
        out.append((1, sigma - 2))
    return out
