"""Shared test helpers and the project's Hypothesis profiles.

The stateful machines (engine, cluster, lifecycle) run many update +
full-verify steps per example; an explicit profile keeps the whole
property/stateful portion of the suite well under a minute in CI:

* ``repro`` — the local default: no deadline (a single step can
  legitimately rebuild several shard indexes), moderate example
  counts.
* ``repro-ci`` — what CI loads (``CI=1`` is set by GitHub Actions):
  same settings, fewer examples.

Machines that pin their own ``settings(...)`` inherit the loaded
profile's defaults (notably ``deadline=None``) and override the rest.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    stateful_step_count=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "repro-ci",
    parent=settings.get_profile("repro"),
    max_examples=15,
)
settings.load_profile("repro-ci" if os.environ.get("CI") else "repro")


def brute_range(x, lo, hi):
    """The oracle: positions of characters in [lo, hi]."""
    return [i for i, ch in enumerate(x) if lo <= ch <= hi]


def random_ranges(rng, sigma, count):
    """Random inclusive code ranges plus the standard edge cases."""
    out = []
    for _ in range(count):
        lo = rng.randrange(sigma)
        out.append((lo, rng.randrange(lo, sigma)))
    out.extend([(0, sigma - 1), (0, 0), (sigma - 1, sigma - 1)])
    if sigma > 2:
        out.append((1, sigma - 2))
    return out


def random_pred(rng, columns, depth):
    """One random value-space predicate AST over ``columns``.

    ``columns`` maps each column name to its sorted occurring values;
    leaves are Range (closed or open-ended), Eq, In — including values
    that never occur, exercising the empty-leaf folds — and interior
    nodes are And/Or (2-3 children) and Not, to ``depth`` levels.
    """
    from repro.query import And, Eq, In, Not, Or, Range

    names = sorted(columns)
    if depth <= 0 or rng.random() < 0.35:
        name = rng.choice(names)
        values = columns[name]
        missing = max(values) + 1  # ints in every workload we generate
        kind = rng.randrange(5)
        if kind == 0:
            lo, hi = sorted(rng.choice(values) for _ in range(2))
            return Range(name, lo, hi)
        if kind == 1:
            bound = rng.choice(values)
            return (
                Range(name, bound, None)
                if rng.random() < 0.5
                else Range(name, None, bound)
            )
        if kind == 2:
            return Eq(name, rng.choice(values + [missing]))
        if kind == 3:
            pool = values + [missing, missing + 2]
            return In(
                name,
                [rng.choice(pool) for _ in range(rng.randrange(1, 6))],
            )
        return Range(name, None, None)  # the whole column
    kind = rng.randrange(3)
    if kind == 0:
        return Not(random_pred(rng, columns, depth - 1))
    parts = [
        random_pred(rng, columns, depth - 1)
        for _ in range(rng.randrange(2, 4))
    ]
    return And(*parts) if kind == 1 else Or(*parts)


def pred_matches(pred, row):
    """The brute oracle: does a row (``{column: value}``) satisfy?"""
    from repro.query import And, Eq, In, Not, Or, Range

    if isinstance(pred, Range):
        v = row[pred.column]
        if pred.lo is not None and v < pred.lo:
            return False
        if pred.hi is not None and v > pred.hi:
            return False
        return True
    if isinstance(pred, Eq):
        return row[pred.column] == pred.value
    if isinstance(pred, In):
        return row[pred.column] in pred.values
    if isinstance(pred, Not):
        return not pred_matches(pred.part, row)
    if isinstance(pred, And):
        return all(pred_matches(p, row) for p in pred.parts)
    if isinstance(pred, Or):
        return any(pred_matches(p, row) for p in pred.parts)
    raise AssertionError(f"unknown node {type(pred).__name__}")


def pred_oracle(pred, columns):
    """Row ids the brute oracle selects from parallel value columns."""
    num_rows = len(next(iter(columns.values())))
    return [
        rid
        for rid in range(num_rows)
        if pred_matches(pred, {name: columns[name][rid] for name in columns})
    ]
