"""Unit tests for the pruned weight-balanced tree of §2.2."""

import math

import pytest

from repro.errors import InvalidParameterError, QueryError
from repro.model import distributions as dist
from repro.trees.weighted import (
    WeightedTree,
    materialized_level_set,
)


def brute_force(x, lo, hi):
    return [i for i, ch in enumerate(x) if lo <= ch <= hi]


class TestConstruction:
    def test_invariants_uniform(self):
        x = dist.uniform(2000, 32, seed=1)
        tree = WeightedTree.build(x, 32)
        tree.check_invariants()

    def test_invariants_zipf(self):
        x = dist.zipf(2000, 64, theta=1.2, seed=2)
        tree = WeightedTree.build(x, 64)
        tree.check_invariants()

    def test_invariants_heavy_hitter(self):
        # One character owns 70% of positions: exercises heavy splitting.
        x = dist.heavy_hitter(1500, 16, fraction=0.7, seed=3)
        tree = WeightedTree.build(x, 16)
        tree.check_invariants()

    def test_single_character_string(self):
        tree = WeightedTree.build([0] * 50, 1)
        assert tree.root.is_leaf
        assert tree.root.weight == 50
        assert tree.height == 1

    def test_two_characters(self):
        tree = WeightedTree.build([0, 1, 0, 1], 2)
        tree.check_invariants()
        assert not tree.root.is_leaf

    def test_missing_characters_allowed(self):
        # sigma may exceed the number of occurring characters.
        x = [0, 5, 0, 5, 5]
        tree = WeightedTree.build(x, 8)
        tree.check_invariants()
        assert tree.range_count(0, 7) == 5

    def test_height_logarithmic(self):
        n = 4096
        x = dist.uniform(n, 64, seed=4)
        tree = WeightedTree.build(x, 64, branching=8)
        # Height should be ~ log_c(n) + pruning slack, far below lg n.
        assert tree.height <= 2 * math.log(n, 8) + 4

    def test_node_count_near_sigma_lg_n(self):
        # §2.2: the pruned tree has O(sigma lg n) nodes.
        n, sigma = 4096, 32
        x = dist.uniform(n, sigma, seed=5)
        tree = WeightedTree.build(x, sigma)
        assert len(tree.nodes) <= 4 * sigma * math.log2(n)

    def test_branching_validation(self):
        with pytest.raises(InvalidParameterError):
            WeightedTree.build([0, 1], 2, branching=4)

    def test_alphabet_validation(self):
        with pytest.raises(InvalidParameterError):
            WeightedTree.build([3], 2)
        with pytest.raises(InvalidParameterError):
            WeightedTree.build([0], 0)

    def test_weight_decay(self):
        # Node at level i has weight O(n / (c/4)^(i-1)) — geometric decay.
        x = dist.uniform(8000, 128, seed=6)
        tree = WeightedTree.build(x, 128, branching=8)
        for node in tree.iter_nodes():
            assert node.weight <= max(1, 2 * 8000 / (2 ** (node.level - 1)))


class TestCounts:
    def test_range_count_matches_brute_force(self):
        x = dist.zipf(1000, 16, theta=1.0, seed=7)
        tree = WeightedTree.build(x, 16)
        for lo, hi in [(0, 15), (3, 7), (5, 5), (0, 0), (15, 15)]:
            assert tree.range_count(lo, hi) == len(brute_force(x, lo, hi))

    def test_range_count_validation(self):
        tree = WeightedTree.build([0, 1], 2)
        with pytest.raises(QueryError):
            tree.range_count(1, 0)
        with pytest.raises(QueryError):
            tree.range_count(0, 2)

    def test_char_count(self):
        x = [0, 0, 1, 2, 2, 2]
        tree = WeightedTree.build(x, 3)
        assert [tree.char_count(c) for c in range(3)] == [2, 1, 3]

    def test_char_of_occ(self):
        x = [0, 0, 1, 2]
        tree = WeightedTree.build(x, 3)
        assert [tree.char_of_occ(k) for k in range(4)] == [0, 0, 1, 2]


class TestNodePositions:
    def test_root_positions_are_everything(self):
        x = dist.uniform(300, 8, seed=8)
        tree = WeightedTree.build(x, 8)
        assert tree.node_positions(tree.root) == list(range(300))

    def test_leaf_positions_single_character(self):
        x = dist.uniform(300, 8, seed=9)
        tree = WeightedTree.build(x, 8)
        for leaf in tree.leaves:
            ch = leaf.char_lo
            for p in tree.node_positions(leaf):
                assert x[p] == ch

    def test_children_partition_positions(self):
        x = dist.zipf(500, 16, theta=0.8, seed=10)
        tree = WeightedTree.build(x, 16)
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            merged = sorted(
                p for ch in node.children for p in tree.node_positions(ch)
            )
            assert merged == tree.node_positions(node)


class TestCanonicalCover:
    @pytest.mark.parametrize("theta", [0.0, 1.0, 2.0])
    def test_cover_partitions_answer(self, theta):
        x = dist.zipf(800, 32, theta=theta, seed=11)
        tree = WeightedTree.build(x, 32)
        for lo, hi in [(0, 31), (4, 20), (7, 7), (30, 31), (0, 1)]:
            canonical, _ = tree.canonical_cover(lo, hi)
            merged = sorted(
                p for v in canonical for p in tree.node_positions(v)
            )
            assert merged == brute_force(x, lo, hi)

    def test_cover_is_disjoint(self):
        x = dist.uniform(800, 32, seed=12)
        tree = WeightedTree.build(x, 32)
        canonical, _ = tree.canonical_cover(3, 29)
        seen = set()
        for v in canonical:
            ps = set(tree.node_positions(v))
            assert not (ps & seen)
            seen |= ps

    def test_cover_size_logarithmic(self):
        x = dist.uniform(8000, 256, seed=13)
        tree = WeightedTree.build(x, 256, branching=8)
        canonical, visited = tree.canonical_cover(1, 254)
        # O(1) canonical nodes per level, O(lg n) levels; degree <= 4c.
        assert len(canonical) <= 2 * 4 * 8 * tree.height
        assert len(visited) <= 2 * tree.height + 1

    def test_cover_validation(self):
        tree = WeightedTree.build([0, 1], 2)
        with pytest.raises(QueryError):
            tree.canonical_cover(1, 0)


class TestMaterialization:
    def test_level_set(self):
        assert materialized_level_set(1) == {1}
        assert materialized_level_set(9) == {1, 2, 4, 8}
        assert materialized_level_set(8) == {1, 2, 4, 8}

    def test_frontier_of_materialized_node_is_itself(self):
        x = dist.uniform(500, 16, seed=14)
        tree = WeightedTree.build(x, 16)
        frontier, skipped = tree.materialized_frontier(tree.root)
        assert frontier == [tree.root]
        assert skipped == []

    def test_frontier_covers_node(self):
        x = dist.uniform(4000, 64, seed=15)
        tree = WeightedTree.build(x, 64)
        for node in tree.iter_nodes():
            frontier, skipped = tree.materialized_frontier(node)
            merged = sorted(
                p for v in frontier for p in tree.node_positions(v)
            )
            assert merged == tree.node_positions(node)
            for s in skipped:
                assert not s.is_leaf
                assert s.level not in tree.materialized_levels

    def test_frontier_left_to_right(self):
        x = dist.uniform(4000, 64, seed=16)
        tree = WeightedTree.build(x, 64)
        for node in tree.levels[3] if len(tree.levels) > 3 else []:
            frontier, _ = tree.materialized_frontier(node)
            los = [v.occ_lo for v in frontier]
            assert los == sorted(los)


class TestNavigation:
    def test_leaf_for_char_last(self):
        x = dist.zipf(600, 16, theta=1.0, seed=17)
        tree = WeightedTree.build(x, 16)
        for ch in range(16):
            if tree.char_count(ch) == 0:
                continue
            leaf = tree.leaf_for_char_last(ch)
            assert leaf.char_lo == ch
            last_pos = max(i for i, c in enumerate(x) if c == ch)
            assert last_pos in tree.node_positions(leaf)

    def test_leaf_for_missing_char_raises(self):
        tree = WeightedTree.build([0, 0, 2], 3)
        with pytest.raises(QueryError):
            tree.leaf_for_char_last(1)

    def test_path_to(self):
        x = dist.uniform(500, 16, seed=18)
        tree = WeightedTree.build(x, 16)
        leaf = tree.leaves[0]
        path = tree.path_to(leaf)
        assert path[0] is tree.root
        assert path[-1] is leaf
        assert [v.level for v in path] == list(range(1, leaf.level + 1))
