"""The unified observability layer: traces, metrics, slow-query log.

The tentpole claims, proved here end to end:

* one query becomes one *stitched* trace — coordinator spans (plan,
  scatter, gather_merge) and worker-side spans (``worker_query`` /
  ``worker_fold``, built inside resident processes and shipped back on
  the existing reply tuples) in a single tree whose per-span
  ``bits_read`` tags sum to exactly the cluster's ``scatter_io``
  accounting;
* abandoned pipelined replies from an early-closed streaming gather
  are dropped and counted, never grafted into a later query's trace;
* delta-batch flushes are attributed to the query that triggered them;
* every ``stats()`` snapshot is one typed object that survives
  ``json.dumps`` round trips, as do ``Snapshot``, ``GatherStats`` and
  ``PlanReport``.
"""

import json
import random

import pytest

from repro.cluster import (
    ClusterEngine,
    GatherStats,
    ProcessExecutor,
    ShardedTable,
)
from repro.engine import QueryEngine
from repro.iomodel.stats import Snapshot
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    SlowQueryLog,
    Span,
    Trace,
    Tracer,
)
from repro.queries import Table
from repro.query import And, PlanReport, Range

from tests.conftest import pred_oracle


def all_bits(trace):
    """Sum of every span's ``bits_read`` tag across the whole trace."""
    return sum(s.tags.get("bits_read", 0) for s in trace.spans())


# ---------------------------------------------------------------------------
# Primitives: clock, spans, traces, tracer
# ---------------------------------------------------------------------------


class TestManualClock:
    def test_advances_deterministically(self):
        clock = ManualClock(10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5


class TestSpan:
    def test_dict_round_trip_preserves_tree(self):
        root = Span("scatter", t0=1.0, t1=4.0, tags={"mode": "count"})
        child = Span("worker_fold", t0=1.5, t1=3.0, tags={"bits_read": 64})
        root.children.append(child)
        back = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert back.name == "scatter"
        assert back.tags == {"mode": "count"}
        assert back.duration_s == pytest.approx(3.0)
        (kid,) = back.children
        assert kid.name == "worker_fold"
        assert kid.tags["bits_read"] == 64
        assert [s.name for s in back.walk()] == ["scatter", "worker_fold"]


class TestTrace:
    def make(self, clock=None):
        tracer = Tracer(clock=clock or ManualClock())
        return tracer, tracer.begin("query")

    def test_spans_nest_under_the_innermost_open_span(self):
        tracer, trace = self.make()
        with trace.span("scatter"):
            with trace.span("leaf_fetch", column="a"):
                pass
            trace.event("delta_flush", deltas=3)
        names = [s.name for s in trace.spans()]
        assert names == ["query", "scatter", "leaf_fetch", "delta_flush"]
        (scatter,) = trace.find("scatter")
        assert {c.name for c in scatter.children} == {
            "leaf_fetch",
            "delta_flush",
        }

    def test_span_timing_comes_from_the_injected_clock(self):
        clock = ManualClock()
        tracer, trace = self.make(clock)
        with trace.span("scatter") as span:
            clock.advance(0.25)
        assert span.duration_s == pytest.approx(0.25)

    def test_graft_attaches_serialized_worker_spans(self):
        tracer, trace = self.make()
        shipped = Span("worker_fold", tags={"bits_read": 8}).to_dict()
        with trace.span("scatter"):
            trace.graft([shipped])
        (grafted,) = trace.find("worker_fold")
        assert grafted.tags["bits_read"] == 8
        assert tracer.dropped_spans == 0

    def test_graft_after_finish_drops_and_counts(self):
        tracer, trace = self.make()
        tracer.finish(trace)
        stale = Span("worker_query").to_dict()
        assert trace.graft([stale, stale]) == []
        assert tracer.dropped_spans == 2
        assert trace.find("worker_query") == []

    def test_to_dict_is_json_serializable(self):
        tracer, trace = self.make()
        with trace.span("plan"):
            pass
        tracer.finish(trace)
        data = json.loads(json.dumps(trace.to_dict()))
        assert data["trace_id"] == trace.trace_id
        assert data["finished"] is True
        assert data["root"]["name"] == "query"


class TestTracer:
    def test_disabled_begin_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("query") is None
        assert tracer.last() is None

    def test_finish_is_idempotent_and_ring_is_bounded(self):
        tracer = Tracer(clock=ManualClock(), keep=2)
        traces = [tracer.begin(f"op{i}") for i in range(3)]
        for trace in traces:
            tracer.finish(trace)
            tracer.finish(trace)  # second finish is a no-op
        assert len(tracer.traces) == 2
        assert tracer.last() is traces[-1]
        assert [t.root.name for t in tracer.traces] == ["op1", "op2"]

    def test_trace_ids_are_unique(self):
        tracer = Tracer(clock=ManualClock())
        a, b = tracer.begin("query"), tracer.begin("query")
        assert a.trace_id != b.trace_id
        assert a.root.tags["trace_id"] == a.trace_id


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("query.count")
        metrics.inc("query.count", 2)
        metrics.set_gauge("shards", 4)
        for v in (1.0, 3.0, 2.0):
            metrics.observe("latency", v)
        assert metrics.counter("query.count").value == 3
        assert metrics.gauge("shards").value == 4
        hist = metrics.histogram("latency")
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)
        assert hist.percentile(50) == pytest.approx(2.0)
        assert hist.percentile(0) == pytest.approx(1.0)
        assert hist.percentile(100) == pytest.approx(3.0)

    def test_reservoir_is_bounded_but_totals_are_not(self):
        metrics = MetricsRegistry(reservoir=4)
        for v in range(100):
            metrics.observe("x", float(v))
        hist = metrics.histogram("x")
        assert len(hist.samples) == 4
        assert hist.count == 100
        assert hist.min == 0.0 and hist.max == 99.0

    def test_to_dict_is_json_serializable_and_reset_clears(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.set_gauge("b", 7)
        metrics.observe("c", 0.5)
        data = json.loads(json.dumps(metrics.to_dict()))
        assert data["counters"] == {"a": 1}
        assert data["gauges"] == {"b": 7}
        assert data["histograms"]["c"]["count"] == 1
        metrics.reset()
        assert metrics.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_fast_queries_are_not_recorded(self):
        log = SlowQueryLog(threshold_s=1.0)
        assert log.observe("query", 0.5) is None
        assert len(log) == 0

    def test_slow_queries_capture_trace_and_lazy_report(self):
        log = SlowQueryLog(threshold_s=1.0)
        tracer = Tracer(clock=ManualClock())
        trace = tracer.begin("select")
        tracer.finish(trace)
        calls = []

        def report_fn():
            calls.append(1)
            return {"root": "Range"}

        record = log.observe(
            "select", 2.0, trace=trace, report_fn=report_fn
        )
        assert record is not None and calls == [1]
        assert record.op == "select"
        assert record.elapsed_s == 2.0
        assert record.trace["trace_id"] == trace.trace_id
        assert record.report == {"root": "Range"}
        json.dumps(log.to_dict())

    def test_report_fn_exceptions_never_fail_the_query(self):
        log = SlowQueryLog(threshold_s=0.0)

        def broken():
            raise RuntimeError("planner exploded")

        record = log.observe("count", 1.0, report_fn=broken)
        assert record is not None and record.report is None

    def test_ring_is_bounded_newest_last(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=2)
        for i in range(4):
            log.observe(f"op{i}", float(i))
        assert log.capacity == 2
        assert [r.op for r in log.records()] == ["op2", "op3"]
        log.clear()
        assert len(log) == 0


# ---------------------------------------------------------------------------
# Engine-level observability
# ---------------------------------------------------------------------------


def make_engine(**kwargs):
    engine = QueryEngine(**kwargs)
    rng = random.Random(11)
    engine.add_column("a", [rng.randrange(16) for _ in range(400)], 16)
    engine.add_column("b", [rng.randrange(8) for _ in range(400)], 8)
    return engine


class TestEngineTracing:
    def test_leaf_query_miss_then_hit(self):
        tracer = Tracer(clock=ManualClock())
        engine = make_engine(tracer=tracer)
        engine.query("a", 2, 9)
        miss = tracer.last()
        (fetch,) = miss.find("leaf_fetch")
        assert fetch.tags["cache"] == "miss"
        assert fetch.tags["column"] == "a"
        assert fetch.tags["backend"]
        assert fetch.tags["bits_read"] > 0
        (lookup,) = miss.find("cache_lookup")
        assert lookup.tags == {"tier": "engine", "hit": False}

        engine.query("a", 2, 9)
        hit = tracer.last()
        assert hit.trace_id != miss.trace_id
        (fetch,) = hit.find("leaf_fetch")
        assert fetch.tags["cache"] == "hit"
        assert fetch.tags["bits_read"] == 0
        (lookup,) = hit.find("cache_lookup")
        assert lookup.tags["hit"] is True

    def test_predicate_ops_trace_as_one_tree(self):
        tracer = Tracer(clock=ManualClock())
        engine = make_engine(tracer=tracer)
        pred = And(Range("a", 2, 9), Range("b", 1, 5))
        engine.count(pred)
        trace = tracer.last()
        assert trace.root.name == "count"
        # Nested leaf queries stitched into the same tree, not their
        # own traces.
        assert len(trace.find("leaf_fetch")) == 2
        assert len(tracer.traces) == 1

    def test_disabled_tracer_produces_nothing(self):
        tracer = Tracer(enabled=False)
        engine = make_engine(tracer=tracer)
        result = engine.query("a", 2, 9)
        assert result.positions()  # still answers
        assert len(tracer.traces) == 0
        assert tracer.last() is None

    def test_traced_answers_match_untraced(self):
        plain = make_engine()
        traced = make_engine(
            tracer=Tracer(clock=ManualClock()),
            metrics=MetricsRegistry(),
            slow_log=SlowQueryLog(threshold_s=0.0),
        )
        pred = And(Range("a", 3, 12), Range("b", 0, 4))
        assert traced.query("a", 2, 9).positions() == (
            plain.query("a", 2, 9).positions()
        )
        assert traced.select(pred) == plain.select(pred)
        assert traced.count(pred) == plain.count(pred)


class TestEngineMetrics:
    def test_query_and_cache_counters(self):
        metrics = MetricsRegistry()
        engine = make_engine(metrics=metrics)
        for column in engine.columns.values():
            column.index.disk.flush_cache()  # make the read pay transfers
        engine.query("a", 2, 9)
        engine.query("a", 2, 9)
        counters = metrics.to_dict()["counters"]
        assert counters["query.count"] == 2
        assert counters["cache.engine.misses"] == 1
        assert counters["cache.engine.hits"] == 1
        assert counters["query.bits_read"] > 0
        # The simulated disk reports transfers into the same registry.
        assert counters["io.read_transfers"] > 0
        assert metrics.histogram("query.latency_s").count == 2

    def test_lru_counters_agree_with_fast_path(self):
        # The instrumented leaf path must charge the LRU's own hit/miss
        # stats exactly as the fast path does.
        plain = make_engine()
        traced = make_engine(tracer=Tracer(clock=ManualClock()))
        for engine in (plain, traced):
            engine.query("a", 2, 9)
            engine.query("a", 2, 9)
            engine.query("a", 0, 3)
        assert traced.cache.hits == plain.cache.hits
        assert traced.cache.misses == plain.cache.misses


class TestEngineSlowLog:
    def test_slow_select_captures_trace_and_plan_report(self):
        tracer = Tracer(clock=ManualClock())
        log = SlowQueryLog(threshold_s=0.0)
        engine = make_engine(tracer=tracer, slow_log=log)
        engine.select(And(Range("a", 2, 9), Range("b", 1, 5)))
        (record,) = log.records()
        assert record.op == "select"
        assert record.trace["root"]["name"] == "select"
        assert record.report is not None
        assert record.report["root"]["op"] == "and"
        json.dumps(record.to_dict())

    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=10.0)
        engine = make_engine(slow_log=log)
        engine.query("a", 2, 9)
        assert len(log) == 0  # nothing takes ten wall-clock seconds


class TestEngineStats:
    def test_snapshot_embeds_columns_cache_io_metrics(self):
        metrics = MetricsRegistry()
        log = SlowQueryLog(threshold_s=0.0)
        engine = make_engine(metrics=metrics, slow_log=log)
        engine.query("a", 2, 9)
        stats = engine.stats()
        assert {c.name for c in stats.columns} == {"a", "b"}
        assert stats.cache.tier == "engine"
        assert stats.cache.misses == 1
        assert stats.io.bits_read > 0
        assert stats.metrics["counters"]["query.count"] == 1
        assert stats.slow_queries == 1
        data = json.loads(json.dumps(stats.to_dict()))
        assert data["io"]["bits_read"] == stats.io.bits_read

    def test_table_stats_wraps_engine_stats(self):
        table = Table({"x": [3, 1, 4, 1, 5, 9, 2, 6]})
        stats = table.stats()
        assert stats.num_rows == 8
        assert stats.engine is not None and stats.cluster is None
        json.dumps(stats.to_dict())


# ---------------------------------------------------------------------------
# Serialization round trips (satellite a)
# ---------------------------------------------------------------------------


class TestJsonRoundTrips:
    def test_snapshot(self):
        snap = Snapshot(reads=3, writes=1, bits_read=512, bits_written=64)
        back = Snapshot.from_json(json.loads(json.dumps(snap.to_json())))
        assert back == snap

    def test_gather_stats(self):
        stats = GatherStats()
        stats.acquire(10)
        stats.acquire(5)
        stats.release(10)
        back = GatherStats.from_json(
            json.loads(json.dumps(stats.to_json()))
        )
        assert back.live_rids == stats.live_rids
        assert back.peak_rids == stats.peak_rids

    def test_plan_report(self):
        engine = make_engine()
        report = engine.plan(And(Range("a", 2, 9), Range("b", 1, 5)))
        back = PlanReport.from_json(
            json.loads(json.dumps(report.to_json()))
        )
        assert back == report

    def test_cluster_plan_report_with_shard_verdicts(self):
        cluster = ClusterEngine(num_shards=3)
        rng = random.Random(7)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(300)], 16
        )
        report = cluster.plan(Range("a", 2, 9))
        back = PlanReport.from_json(
            json.loads(json.dumps(report.to_json()))
        )
        assert back == report
        assert back.leaves[0].shards  # per-shard verdicts survived


# ---------------------------------------------------------------------------
# Cluster-level observability (serial executor)
# ---------------------------------------------------------------------------


def make_cluster(num_shards=3, rows=600, **kwargs):
    cluster = ClusterEngine(num_shards=num_shards, **kwargs)
    rng = random.Random(23)
    cluster.add_column(
        "a", [rng.randrange(16) for _ in range(rows)], 16
    )
    cluster.add_column("b", [rng.randrange(8) for _ in range(rows)], 8)
    return cluster


class TestClusterTracingSerial:
    def test_predicate_query_trace_shape_and_bits(self):
        tracer = Tracer(clock=ManualClock())
        cluster = make_cluster(tracer=tracer)
        before = cluster.scatter_io.snapshot()
        cluster.query(And(Range("a", 2, 9), Range("b", 1, 5)))
        delta = cluster.scatter_io.snapshot() - before
        trace = tracer.last()
        assert trace.root.name == "query"
        assert trace.find("plan")
        assert trace.find("scatter")
        assert trace.find("gather_merge")
        fetches = trace.find("leaf_fetch")
        assert fetches
        assert all(
            s.tags["trace_id"] == trace.trace_id for s in fetches
        )
        assert all_bits(trace) == delta.bits_read

    def test_repeat_query_hits_shared_cache(self):
        tracer = Tracer(clock=ManualClock())
        metrics = MetricsRegistry()
        cluster = make_cluster(tracer=tracer, metrics=metrics)
        cluster.query("a", 2, 9)
        cluster.query("a", 2, 9)
        trace = tracer.last()
        lookups = trace.find("cache_lookup")
        assert lookups and all(
            s.tags["tier"] == "shared" and s.tags["hit"] for s in lookups
        )
        assert all_bits(trace) == 0
        counters = metrics.to_dict()["counters"]
        assert counters["cache.shared.hits"] > 0
        assert counters["cache.shared.misses"] > 0

    def test_aggregate_folds_trace_locally(self):
        tracer = Tracer(clock=ManualClock())
        cluster = make_cluster(tracer=tracer)
        before = cluster.scatter_io.snapshot()
        cluster.count(Range("a", 2, 9))
        delta = cluster.scatter_io.snapshot() - before
        trace = tracer.last()
        assert trace.root.name == "count"
        folds = trace.find("shard_fold")
        assert folds
        assert all(s.tags["mode"] == "count" for s in folds)
        assert all_bits(trace) == delta.bits_read

    def test_slow_log_records_cluster_queries(self):
        log = SlowQueryLog(threshold_s=0.0)
        cluster = make_cluster(
            tracer=Tracer(clock=ManualClock()), slow_log=log
        )
        cluster.select(Range("a", 2, 9))
        (record,) = log.records()
        assert record.op == "select"
        assert record.report["root"]["op"] == "leaf"
        assert record.trace["root"]["name"] == "select"

    def test_stats_snapshot(self):
        metrics = MetricsRegistry()
        cluster = make_cluster(metrics=metrics)
        cluster.query("a", 2, 9)
        stats = cluster.stats()
        assert stats.num_shards == 3
        assert set(stats.columns) == {"a", "b"}
        assert stats.scatter_io.bits_read > 0
        assert len(stats.shards) == 3
        assert all(s.rows > 0 for s in stats.shards)
        assert stats.shared_cache is not None
        assert stats.shared_cache.tier == "shared"
        assert stats.metrics["counters"]["query.count"] == 1
        data = json.loads(json.dumps(stats.to_dict()))
        assert data["num_shards"] == 3
        assert data["scatter_io"]["bits_read"] == (
            stats.scatter_io.bits_read
        )

    def test_traced_cluster_answers_match_untraced(self):
        plain = make_cluster()
        traced = make_cluster(
            tracer=Tracer(clock=ManualClock()),
            metrics=MetricsRegistry(),
            slow_log=SlowQueryLog(threshold_s=0.0),
        )
        pred = And(Range("a", 3, 12), Range("b", 0, 4))
        assert traced.select(pred) == plain.select(pred)
        assert traced.count(pred) == plain.count(pred)
        assert traced.query("a", 2, 9).positions() == (
            plain.query("a", 2, 9).positions()
        )
        # The I/O accounting itself is unchanged by instrumentation.
        assert (
            traced.scatter_io.snapshot() == plain.scatter_io.snapshot()
        )


# ---------------------------------------------------------------------------
# Worker-resident stitching (ProcessExecutor)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_pool():
    with ProcessExecutor(max_workers=2) as pool:
        yield pool


class TestProcessExecutorStitching:
    def test_aggregate_trace_stitches_worker_spans_bits_exact(
        self, obs_pool
    ):
        # The acceptance criterion: one cluster aggregate under a
        # ProcessExecutor yields a single trace holding coordinator
        # AND worker spans, and the worker spans' summed bits_read
        # equals the scatter_io snapshot delta exactly.
        tracer = Tracer()
        cluster = make_cluster(executor=obs_pool, tracer=tracer)
        before = cluster.scatter_io.snapshot()
        n = cluster.count(Range("a", 2, 9))
        delta = cluster.scatter_io.snapshot() - before
        assert n > 0 and delta.bits_read > 0
        trace = tracer.last()
        assert trace.root.name == "count"
        assert trace.find("plan") and trace.find("scatter")
        folds = trace.find("worker_fold")
        assert folds  # spans built inside the resident workers
        assert all(
            s.tags["trace_id"] == trace.trace_id for s in folds
        )
        assert sum(s.tags["bits_read"] for s in folds) == delta.bits_read
        assert all_bits(trace) == delta.bits_read

    def test_leaf_query_stitches_worker_query_spans(self, obs_pool):
        tracer = Tracer()
        cluster = make_cluster(executor=obs_pool, tracer=tracer)
        before = cluster.scatter_io.snapshot()
        cluster.query("a", 2, 9)
        delta = cluster.scatter_io.snapshot() - before
        trace = tracer.last()
        fetches = trace.find("worker_query")
        assert fetches
        assert all(
            s.tags["trace_id"] == trace.trace_id for s in fetches
        )
        assert all_bits(trace) == delta.bits_read

        # Repeat: answered from the shared cache, no worker spans.
        before = cluster.scatter_io.snapshot()
        cluster.query("a", 2, 9)
        assert (cluster.scatter_io.snapshot() - before).bits_read == 0
        repeat = tracer.last()
        assert repeat.find("worker_query") == []
        lookups = repeat.find("cache_lookup")
        assert lookups and all(s.tags["hit"] for s in lookups)

    def test_early_closed_stream_drops_abandoned_spans(self, obs_pool):
        tracer = Tracer()
        cluster = make_cluster(
            num_shards=4, executor=obs_pool, tracer=tracer,
            prefetch_depth=2,
        )
        stream = cluster.query_iter("a", 0, 15)
        next(stream)
        stream.close()  # prefetched replies are still in flight
        first = tracer.last()
        assert first.root.name == "query_iter"
        assert first.finished
        assert tracer.dropped_spans > 0

        # The next query's trace contains only its own spans.
        cluster.query(Range("a", 2, 9))
        second = tracer.last()
        assert second.trace_id != first.trace_id
        tagged = [
            s for s in second.spans() if "trace_id" in s.tags
        ]
        assert tagged and all(
            s.tags["trace_id"] == second.trace_id for s in tagged
        )

    def test_streamed_answers_unchanged_by_tracing(self, obs_pool):
        plain = make_cluster(executor=obs_pool)
        traced = make_cluster(executor=obs_pool, tracer=Tracer())
        assert list(traced.query_iter("a", 2, 9)) == list(
            plain.query_iter("a", 2, 9)
        )

    def test_delta_flush_attributed_to_flushing_query(self, obs_pool):
        tracer = Tracer()
        metrics = MetricsRegistry()
        saved = obs_pool.metrics
        obs_pool.metrics = metrics
        try:
            cluster = ClusterEngine(
                num_shards=2, executor=obs_pool, tracer=tracer
            )
            rng = random.Random(3)
            codes = [rng.randrange(16) for _ in range(300)]
            cluster.add_column("a", codes, 16, dynamism="semidynamic")
            for _ in range(3):
                cluster.append("a", 5)
            last_uid = cluster.shard_uids[-1]
            assert obs_pool.pending_delta_count(last_uid) == 3
            # A strict-subset range: a full range would specialize to
            # an ALL root answered at the coordinator, shipping no
            # fold and flushing nothing.
            n = cluster.count(Range("a", 0, 14))
            assert n == sum(1 for c in codes if c <= 14) + 3
            assert obs_pool.pending_delta_count(last_uid) == 0
            trace = tracer.last()
            events = trace.find("delta_flush")
            assert events
            assert any(
                e.tags["shard_uid"] == last_uid and e.tags["deltas"] == 3
                for e in events
            )
            hist = metrics.histogram("delta.flush_size")
            assert hist.count >= 1 and hist.max == 3
        finally:
            obs_pool.metrics = saved

    def test_reset_op_counts_and_stats_embedding(self, obs_pool):
        cluster = make_cluster(executor=obs_pool)
        obs_pool.reset_op_counts()
        cluster.count(Range("a", 2, 9))
        stats = cluster.stats()
        assert stats.op_counts  # fold traffic shows up
        assert stats.op_counts == dict(obs_pool.op_counts)
        json.dumps(stats.to_dict())
        obs_pool.reset_op_counts()
        assert dict(obs_pool.op_counts) == {}
        assert cluster.stats().op_counts == {}


# ---------------------------------------------------------------------------
# Table facades
# ---------------------------------------------------------------------------


class TestShardedTableStats:
    def test_stats_wraps_cluster_stats(self):
        table = ShardedTable(
            {"x": [3, 1, 4, 1, 5, 9, 2, 6] * 20}, num_shards=2
        )
        table.select(Range("x", 1, 5))
        stats = table.stats()
        assert stats.num_rows == 160
        assert stats.engine is None and stats.io is None
        assert stats.cluster is not None
        data = json.loads(json.dumps(stats.to_dict()))
        assert data["cluster"]["num_shards"] == 2

    def test_traced_sharded_table_matches_oracle(self):
        tracer = Tracer(clock=ManualClock())
        rng = random.Random(41)
        columns = {
            "a": [rng.randrange(12) for _ in range(240)],
            "b": [rng.randrange(6) for _ in range(240)],
        }
        table = ShardedTable(dict(columns), num_shards=3, tracer=tracer)
        pred = And(Range("a", 2, 8), Range("b", 1, 4))
        assert table.select(pred) == pred_oracle(pred, columns)
        assert tracer.last().root.name == "select"
