"""Stateful tests: the shard lifecycle (auto-split/merge) stays exact.

The cluster's sizing policy — split a shard whose live rows outgrow
``target_shard_rows``, fuse an underfull shard into its smaller
neighbor when the union stays under the target — reshapes the shard
set while serving.  The machine below interleaves appends, changes,
deletes, queries, and selects with that policy active, mirroring it in
a plain-Python model of per-shard strings that *independently*
implements the same spec: split at the live midpoint (holes compact),
merge by concatenating live codes.  After every step the cluster must
agree bit-exactly with the model (the brute oracle) *and*, for the
delete-free column, with a single-engine :class:`QueryEngine` fed the
identical updates — splits must be invisible to global RIDs when no
holes compact.

The invariants also enforce the cache-key lifecycle: every live
shared-cache key must reference a *current* shard uid at its current
version — a split or merge that leaked a retired shard's entries, or
let a fresh shard alias one, fails here immediately.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cluster import ClusterEngine, ShardedTable
from repro.engine import QueryEngine
from repro.errors import InvalidParameterError
from repro.model.distributions import uniform
from repro.queries import Table

from tests.conftest import brute_range

SIGMA = 8
TARGET = 12
FLOOR = TARGET // 4  # the constructor's default merge floor
REBUILD_FRACTION = 0.5  # DeletableIndex's default


def live_count(shard):
    return sum(1 for c in shard if c is not None)


class ClusterLifecycleMachine(RuleBasedStateMachine):
    """Two columns under the auto lifecycle, vs model + single engine."""

    @initialize()
    def setup(self):
        self.cluster = ClusterEngine(
            target_shard_rows=TARGET, drift_window=None
        )
        base_a = [0, 3, 1, 7, 2, 5, 0, 4, 6, 1, 3, 2] * 2
        base_b = [1, 1, 2, 6, 3, 0, 7, 5, 4, 2, 0, 6] * 2
        self.cluster.add_column("a", base_a, SIGMA, dynamism="fully_dynamic")
        self.cluster.add_column(
            "b", base_b, SIGMA, dynamism="fully_dynamic", require_delete=True
        )
        # The delete-free column is additionally mirrored by a single
        # engine fed the identical update stream: lifecycle reshapes
        # must be invisible to its global RIDs.
        self.single = QueryEngine()
        self.single.add_column("a", base_a, SIGMA, dynamism="fully_dynamic")
        slices = self.cluster.plan_.slices()
        self.a_shards = [list(base_a[lo:hi]) for lo, hi in slices]
        self.b_shards = [list(base_b[lo:hi]) for lo, hi in slices]

    # ------------------------------------------------------------------
    # Model: the lifecycle policy, implemented independently
    # ------------------------------------------------------------------

    def _columns(self):
        return (self.a_shards, self.b_shards)

    def _max_live(self, sid):
        return max(live_count(shards[sid]) for shards in self._columns())

    def _model_split(self, sid):
        for shards in self._columns():
            live = [c for c in shards[sid] if c is not None]
            mid = len(live) // 2
            shards[sid : sid + 1] = [live[:mid], live[mid:]]

    def _model_merge(self, left):
        for shards in self._columns():
            merged = [c for c in shards[left] if c is not None] + [
                c for c in shards[left + 1] if c is not None
            ]
            shards[left : left + 2] = [merged]

    def _model_lifecycle(self, sid, may_shrink=False):
        # Mirrors the cluster's policy exactly, including its gating:
        # the merge check runs only on deletes (the only live-shrinking
        # update), the split check on every update.
        if self._max_live(sid) > TARGET:
            if all(
                live_count(shards[sid]) >= 2 for shards in self._columns()
            ):
                self._model_split(sid)
            return
        if (
            may_shrink
            and len(self.a_shards) > 1
            and self._max_live(sid) < FLOOR
        ):
            neighbors = sorted(
                (
                    s
                    for s in (sid - 1, sid + 1)
                    if 0 <= s < len(self.a_shards)
                ),
                key=lambda s: (self._max_live(s), s),
            )
            for nb in neighbors:
                if self._max_live(sid) + self._max_live(nb) > TARGET:
                    continue
                left = min(sid, nb)
                if any(
                    live_count(shards[left]) + live_count(shards[left + 1])
                    == 0
                    for shards in self._columns()
                ):
                    continue
                self._model_merge(left)
                return

    def _flat(self, shards):
        return [c for shard in shards for c in shard]

    def _expected(self, shards, lo, hi):
        return [
            i
            for i, c in enumerate(self._flat(shards))
            if c is not None and lo <= c <= hi
        ]

    def _route(self, shards, global_pos):
        for sid, shard in enumerate(shards):
            if global_pos < len(shard):
                return sid, global_pos
            global_pos -= len(shard)
        raise AssertionError("machine routed outside its own model")

    def _live_positions(self, shards):
        return [
            i for i, c in enumerate(self._flat(shards)) if c is not None
        ]

    # ------------------------------------------------------------------
    # Update rules (every one may trigger a lifecycle operation)
    # ------------------------------------------------------------------

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_a(self, ch):
        self.cluster.append("a", ch)
        self.single.append("a", ch)
        sid = len(self.a_shards) - 1
        self.a_shards[sid].append(ch)
        self._model_lifecycle(sid)

    @rule(data=st.data())
    def change_a(self, data):
        total = sum(len(s) for s in self.a_shards)
        pos = data.draw(st.integers(0, total - 1))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.cluster.change("a", pos, ch)
        self.single.change("a", pos, ch)
        sid, local = self._route(self.a_shards, pos)
        self.a_shards[sid][local] = ch
        self._model_lifecycle(sid)

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_b(self, ch):
        self.cluster.append("b", ch)
        sid = len(self.b_shards) - 1
        self.b_shards[sid].append(ch)
        self._model_lifecycle(sid)

    @rule(data=st.data())
    def change_b(self, data):
        live = self._live_positions(self.b_shards)
        if not live:
            return
        pos = data.draw(st.sampled_from(live))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.cluster.change("b", pos, ch)
        sid, local = self._route(self.b_shards, pos)
        self.b_shards[sid][local] = ch
        self._model_lifecycle(sid)

    @rule(data=st.data())
    def delete_b(self, data):
        live = self._live_positions(self.b_shards)
        if not live:
            return
        pos = data.draw(st.sampled_from(live))
        self.cluster.delete("b", pos)
        sid, local = self._route(self.b_shards, pos)
        shard = self.b_shards[sid]
        shard[local] = None
        # Mirror the backend's own compaction first (it happens inside
        # the delete), then the cluster's lifecycle check.
        holes = sum(1 for c in shard if c is None)
        if holes >= REBUILD_FRACTION * max(1, len(shard)):
            self.b_shards[sid] = [c for c in shard if c is not None]
        self._model_lifecycle(sid, may_shrink=True)

    @rule(data=st.data())
    def merge_adjacent(self, data):
        """Explicit merges (the auto floor is hard to starve down to
        while column `a` keeps growing): same model mirror, same
        cache-lifecycle obligations."""
        candidates = [
            left
            for left in range(len(self.a_shards) - 1)
            if self._max_live(left) + self._max_live(left + 1) <= TARGET
            and all(
                live_count(shards[left]) + live_count(shards[left + 1]) > 0
                for shards in self._columns()
            )
        ]
        if not candidates:
            return
        left = data.draw(st.sampled_from(candidates))
        self.cluster.merge_shards(left)
        self._model_merge(left)

    # ------------------------------------------------------------------
    # Query rules (the second ask is the cache-hitting one)
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def query_twice(self, data):
        name, shards = data.draw(
            st.sampled_from(
                [("a", self.a_shards), ("b", self.b_shards)]
            )
        )
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        want = self._expected(shards, lo, hi)
        assert self.cluster.query(name, lo, hi).positions() == want
        assert self.cluster.query(name, lo, hi).positions() == want
        if name == "a":
            assert self.single.query("a", lo, hi).positions() == want

    @rule(data=st.data())
    def select_and_select_iter(self, data):
        lo = data.draw(st.integers(0, SIGMA - 2))
        a = set(self._expected(self.a_shards, lo, lo + 1))
        b = set(self._expected(self.b_shards, 0, 3))
        want = sorted(a & b)
        conditions = {"a": (lo, lo + 1), "b": (0, 3)}
        assert self.cluster.select(conditions) == want
        assert list(self.cluster.select_iter(conditions)) == want

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def model_and_cluster_agree_on_shard_layout(self):
        # The strongest differential check: the independently modeled
        # lifecycle policy produced the identical shard set.
        for name, shards in (("a", self.a_shards), ("b", self.b_shards)):
            assert self.cluster.shard_lengths(name) == [
                len(s) for s in shards
            ]

    @invariant()
    def cached_entries_reference_live_uids_and_versions(self):
        # The key lifecycle: every shared-cache key must carry a
        # *current* shard uid (retired uids are evicted eagerly) at
        # that shard's current version and the column's live epoch.
        uids = self.cluster.shard_uids
        for key in list(self.cluster.shared_cache.store._lru._data):
            name, uid, epoch, version = key[0], key[1], key[2], key[3]
            assert epoch == self.cluster.columns[name].epoch
            assert uid in uids
            position = uids.index(uid)
            assert version == self.cluster.shard_column(name, position).version

    @invariant()
    def full_range_matches(self):
        for name, shards in (("a", self.a_shards), ("b", self.b_shards)):
            got = self.cluster.query(name, 0, SIGMA - 1).positions()
            assert got == self._expected(shards, 0, SIGMA - 1)


TestClusterLifecycleMachine = ClusterLifecycleMachine.TestCase
TestClusterLifecycleMachine.settings = settings(
    max_examples=12, stateful_step_count=40, deadline=None
)


def test_auto_split_triggers_under_append_burst():
    """Deterministic companion: sustained appends force repeated
    splits; every answer stays oracle-identical and no shard ends
    above the target."""
    cluster = ClusterEngine(target_shard_rows=16, drift_window=None)
    base = [(5 * i + 2) % SIGMA for i in range(32)]
    cluster.add_column("c", base, SIGMA, dynamism="semidynamic")
    model = list(base)
    shards_before = cluster.num_shards
    for i in range(120):
        ch = (3 * i) % SIGMA
        cluster.append("c", ch)
        model.append(ch)
        lo, hi = i % 4, i % 4 + 3
        assert cluster.query("c", lo, hi).positions() == brute_range(
            model, lo, hi
        )
    assert cluster.splits, "appends past the target must split"
    assert cluster.num_shards > shards_before
    assert max(cluster.shard_lengths("c")) <= 16
    assert sum(cluster.shard_lengths("c")) == len(model)
    # Fresh uids per lifecycle op: all distinct, none reused.
    assert len(set(cluster.shard_uids)) == cluster.num_shards


def test_auto_merge_after_deletions():
    """Deletions starve shards below the floor; underfull shards fuse
    into neighbors (never overshooting the target) and answers stay
    oracle-identical through every reshape."""
    cluster = ClusterEngine(target_shard_rows=8, drift_window=None)
    base = [(7 * i + 1) % 4 for i in range(32)]
    cluster.add_column(
        "c", base, 4, dynamism="fully_dynamic", require_delete=True
    )
    assert cluster.num_shards == 4
    # Delete the current first live row repeatedly; compactions and
    # merges both renumber, so re-derive the oracle from the cluster's
    # own full-range answer each round instead of double-bookkeeping.
    survivors = list(base)
    for _ in range(26):
        victim_rid = cluster.query("c", 0, 3).positions()[0]
        # Deletes, compactions, and merges all preserve the relative
        # order of live values, so the model is just the value list.
        survivors = survivors[1:]
        cluster.delete("c", victim_rid)
        # Reconstruct the full live value sequence from per-value
        # position lists: it must equal the model bit-exactly, however
        # compactions and merges renumbered the RIDs underneath.
        sequence = sorted(
            (pos, v)
            for v in range(4)
            for pos in cluster.query("c", v, v).positions()
        )
        assert [v for _, v in sequence] == survivors
    assert cluster.merges, "starved shards must merge"
    assert cluster.num_shards < 4
    assert max(cluster.shard_lengths("c")) <= 8


def test_split_retires_only_the_split_shards_cache_entries():
    """Pre-split hot entries of the split shard die; siblings' hot
    entries keep serving — and a fresh shard can never alias a
    retired neighbor's entry (the positional-key bug stable uids
    exist to prevent)."""
    # Shard 2 holds no value in [1, 4]; after splitting shard 1 the
    # shard at *position* 2 is old shard 1's right half, whose correct
    # answer is every row.  A positional cache key would serve the old
    # (empty) entry; the uid key cannot.
    x = [1] * 20 + [2] * 20 + [7] * 20
    cluster = ClusterEngine(num_shards=3, drift_window=None)
    cluster.add_column("c", x, 8, dynamism="fully_dynamic")
    want = brute_range(x, 1, 4)
    assert cluster.query("c", 1, 4).positions() == want
    assert len(cluster.shared_cache) == 3
    hits_before = cluster.shared_cache.hits
    uids_before = list(cluster.shard_uids)
    cluster.split_shard(1)
    assert cluster.num_shards == 4
    assert cluster.shard_uids[0] == uids_before[0]
    assert cluster.shard_uids[3] == uids_before[2]
    assert uids_before[1] not in cluster.shard_uids
    # The split shard's entry was evicted with its uid; the two
    # sibling entries survived.
    assert len(cluster.shared_cache) == 2
    # No holes were compacted, so global RIDs are unchanged — and the
    # re-ask must be bit-exact (a positional alias would drop 10 rows).
    assert cluster.query("c", 1, 4).positions() == want
    # Exactly the two sibling shards hit; both fresh halves missed.
    assert cluster.shared_cache.hits == hits_before + 2


def test_merge_retires_both_sides_cache_entries():
    x = [3, 3, 3, 3, 0, 0, 0, 0, 5, 5, 5, 5]
    cluster = ClusterEngine(num_shards=3, drift_window=None)
    cluster.add_column("c", x, 8, dynamism="fully_dynamic")
    assert cluster.query("c", 0, 5).positions() == list(range(12))
    assert len(cluster.shared_cache) == 3
    hits_before = cluster.shared_cache.hits
    surviving_uid = cluster.shard_uids[2]
    cluster.merge_shards(0)
    assert cluster.num_shards == 2
    assert cluster.shard_uids[1] == surviving_uid
    assert len(cluster.shared_cache) == 1
    assert cluster.query("c", 0, 5).positions() == list(range(12))
    assert cluster.shared_cache.hits == hits_before + 1  # shard 2 only


def test_streaming_gather_memory_is_block_bounded():
    """The k-way merge materializes one shard's answer per dimension
    at a time: on a large, low-selectivity select the peak buffered
    RID count stays O(max shard answer), far under the answer size."""
    n, sigma, shards = 4096, 8, 16
    a = uniform(n, sigma, seed=51)
    b = uniform(n, sigma, seed=52)
    cluster = ClusterEngine(num_shards=shards, drift_window=None)
    cluster.add_column("a", a, sigma)
    cluster.add_column("b", b, sigma)
    conditions = {"a": (0, 6), "b": (0, 6)}
    cluster.gather_stats.reset()
    count = 0
    last = -1
    for rid in cluster.select_iter(conditions):
        assert rid > last
        last = rid
        count += 1
    want = [i for i in range(n) if a[i] <= 6 and b[i] <= 6]
    assert count == len(want) > n // 2  # genuinely low selectivity
    max_shard = max(cluster.shard_lengths("a"))
    peak = cluster.gather_stats.peak_rids
    assert peak <= 2 * max_shard, (
        f"peak {peak} exceeds the two-dimension block bound "
        f"{2 * max_shard}"
    )
    assert peak < count, "peak must stay below the full answer"
    assert cluster.gather_stats.live_rids == 0  # all buffers released
    # Early abandonment releases buffers too (generator close path).
    cluster.gather_stats.reset()
    it = cluster.select_iter(conditions)
    for _ in range(5):
        next(it)
    it.close()
    assert cluster.gather_stats.live_rids == 0
    # And the materialized select agrees with the streamed one.
    assert cluster.select(conditions) == want


def test_lifecycle_validation_and_errors():
    cluster = ClusterEngine(num_shards=2, drift_window=None)
    cluster.add_column("c", [0, 1, 2, 3], 4, dynamism="fully_dynamic")
    import pytest

    with pytest.raises(InvalidParameterError):
        cluster.split_shard(5)
    with pytest.raises(InvalidParameterError):
        cluster.merge_shards(1)  # no right neighbor
    with pytest.raises(InvalidParameterError):
        cluster.rebalance()  # no target anywhere
    with pytest.raises(InvalidParameterError):
        cluster.rebalance(target_shard_rows=0)
    with pytest.raises(InvalidParameterError):
        ClusterEngine(num_shards=2, auto_split=True)  # needs a target
    with pytest.raises(InvalidParameterError):
        ClusterEngine(target_shard_rows=8, min_shard_rows=9)
    with pytest.raises(InvalidParameterError):
        ClusterEngine(target_shard_rows=8, min_shard_rows=0)
    # A 1-row shard cannot split.
    tiny = ClusterEngine(num_shards=4, drift_window=None)
    tiny.add_column("t", [0, 1, 2, 3], 4)
    with pytest.raises(InvalidParameterError):
        tiny.split_shard(0)
    # A rejected lifecycle call leaves the cluster fully serviceable.
    assert cluster.query("c", 0, 3).positions() == [0, 1, 2, 3]
    assert tiny.query("t", 0, 3).positions() == [0, 1, 2, 3]


def test_rebalance_converges_on_large_reshapes():
    """A reshape needing hundreds of splits must run to completion —
    the op backstop is sized from the data, never from the starting
    shard count."""
    x = uniform(4100, 8, seed=58)
    cluster = ClusterEngine(num_shards=1, drift_window=None)
    cluster.add_column("c", x, 8)
    ops = cluster.rebalance(target_shard_rows=16)
    assert ops >= 255
    assert max(cluster.shard_lengths("c")) <= 16
    assert cluster.query("c", 2, 5).positions() == brute_range(x, 2, 5)


def test_rebalance_honors_configured_merge_floor():
    """An explicit rebalance target must not discard the operator's
    min_shard_rows: shards above the configured floor stay unmerged
    even when the default target//4 ratio would fuse them."""
    cluster = ClusterEngine(
        num_shards=10, min_shard_rows=2, drift_window=None, auto_split=False
    )
    cluster.add_column("c", uniform(30, 4, seed=59), 4)
    assert cluster.shard_lengths("c") == [3] * 10
    # Default ratio would be 100 // 4 = 25 and merge everything; the
    # configured floor of 2 keeps every 3-row shard as it is.
    assert cluster.rebalance(target_shard_rows=100) == 0
    assert cluster.num_shards == 10


def test_rebalance_reshapes_a_fixed_cluster():
    """A num_shards cluster has no auto policy, but rebalance() with an
    explicit target reshapes it — splitting the one fat shard."""
    x = uniform(200, 16, seed=53)
    cluster = ClusterEngine(num_shards=1, drift_window=None)
    cluster.add_column("c", x, 16)
    ops = cluster.rebalance(target_shard_rows=30)
    assert ops > 0 and cluster.num_shards >= 7
    assert max(cluster.shard_lengths("c")) <= 30
    for lo, hi in [(0, 15), (3, 12), (7, 7)]:
        assert cluster.query("c", lo, hi).positions() == brute_range(
            x, lo, hi
        )
    # Idempotent once balanced.
    assert cluster.rebalance(target_shard_rows=30) == 0


def test_split_rebuilds_static_columns_on_fresh_local_dictionaries():
    """A static column's halves are re-dictionaried: each new shard
    gets a dense local alphabet over exactly the codes it holds, and
    the per-shard advisor re-judges the slice."""
    # One shard holding 4-value data next to high-cardinality data.
    low = uniform(64, 4, seed=54)
    high = [4 + v for v in uniform(64, 200, seed=55)]
    cluster = ClusterEngine(num_shards=1, drift_window=None)
    cluster.add_column("c", low + high, 204, dynamism="static")
    assert cluster.columns["c"].domains[0] is not None
    cluster.split_shard(0)
    meta = cluster.columns["c"]
    # Fresh local dictionaries: the low half's domain is tiny, the
    # high half's large — and local sigma matches each domain.
    assert len(meta.domains[0]) <= 4
    assert len(meta.domains[1]) > 50
    for sid in range(2):
        assert cluster.shard_column("c", sid).sigma == len(meta.domains[sid])
    want = brute_range(low + high, 1, 100)
    assert cluster.query("c", 1, 100).positions() == want
    # Range pruning still works through the new dictionaries.
    assert cluster.query("c", 0, 3).positions() == brute_range(
        low + high, 0, 3
    )


def test_pins_carry_across_split_and_merge():
    cluster = ClusterEngine(num_shards=2, drift_window=None)
    cluster.add_column("c", uniform(40, 8, seed=56), 8, backend="btree")
    cluster.split_shard(0)
    # The column-wide pin governs both halves.
    assert cluster.backends("c") == ["btree", "btree", "btree"]
    per_shard = ClusterEngine(num_shards=2, drift_window=None)
    per_shard.add_column("d", uniform(40, 8, seed=57), 8)
    per_shard.migrate("d", shard_id=1, backend="btree")
    per_shard.split_shard(1)
    # A per-shard pin follows the data into both halves.
    assert per_shard.columns["d"].shard_pins == {1: "btree", 2: "btree"}
    assert per_shard.backends("d")[1:] == ["btree", "btree"]
    # Merging halves that agree keeps the pin; the untouched shard 0
    # pin map survives the positional shift.
    per_shard.merge_shards(1)
    assert per_shard.columns["d"].shard_pins == {1: "btree"}
    assert per_shard.backends("d")[1] == "btree"


def test_sharded_table_grows_through_auto_splits():
    """The value-space path end to end: a ShardedTable built with a
    target splits under append_row while row ids, the value mirror,
    and select answers all stay aligned with a single-engine Table."""
    values_v = [5, 1, 5, 2, 7, 1, 5, 2] * 3
    values_w = [1, 2, 3, 4, 1, 2, 3, 4] * 3
    table = ShardedTable(
        {"v": list(values_v), "w": list(values_w)},
        target_shard_rows=10,
        dynamism="semidynamic",
        drift_window=None,
    )
    model_v, model_w = list(values_v), list(values_w)
    for i in range(40):
        v = values_v[i % len(values_v)]
        w = values_w[i % len(values_w)]
        rid = table.append_row({"v": v, "w": w})
        model_v.append(v)
        model_w.append(w)
        assert rid == len(model_v) - 1
        assert table.row(rid) == {"v": v, "w": w}
    assert table.cluster.splits, "growth must have split shards"
    assert max(table.cluster.shard_lengths("v")) <= 10
    single = Table({"v": model_v, "w": model_w})
    conds = {"v": (2, 5), "w": (1, 3)}
    assert table.select(conds) == single.select(conds)
    assert list(table.select_iter(conds)) == single.select(conds)


def test_sharded_table_explain_is_typed():
    import pytest

    from repro.errors import QueryError

    table = ShardedTable(
        {"age": [33, 41, 27, 58, 33, 41], "city": list("abcabc")},
        num_shards=2,
    )
    overview = table.explain()
    assert "2 shard(s)" in overview
    per_column = table.explain("age")
    assert "shard 0" in per_column and "shard 1" in per_column
    # Value-space conditions answer with the typed PlanReport: value
    # ranges translated like select's, per-leaf shard fan-out, JSON
    # round-trip, and a readable rendering.
    import json

    from repro.query import PlanReport

    table.select({"age": (30, 45)})
    report = table.explain({"age": (30, 45), "city": ("a", "a")})
    assert isinstance(report, PlanReport)
    assert report.kind == "cluster" and report.num_shards == 2
    assert {leaf.column for leaf in report.leaves} == {"age", "city"}
    age_leaf = next(l for l in report.leaves if l.column == "age")
    assert len(age_leaf.shards) == 2
    assert age_leaf.cached  # the select above warmed the shared tier
    json.dumps(report.to_dict())
    assert "and" in str(report)
    # A dimension with no value in range compiles to the empty plan —
    # reported as such, not crashed on.
    empty = table.explain({"age": (100, 200)})
    assert empty.predicate == "FALSE" and empty.leaves == ()
    assert "empty" in str(empty)
    with pytest.raises(QueryError):
        table.explain({})
    with pytest.raises(QueryError):
        table.explain("missing")


def test_rebalance_prefers_the_hottest_of_tied_shards():
    """Heat-aware lifecycle: when oversized shards tie within the
    tolerance, the split order follows the existing per-shard update
    counters — the drift clocks double as the heat signal — with the
    positional tie-break keeping the policy deterministic."""
    cluster = ClusterEngine(num_shards=2, drift_window=None,
                            heat_tolerance=0.25)
    cluster.add_column(
        "c", uniform(80, 8, seed=71), 8, dynamism="fully_dynamic"
    )
    # Equal sizes (40/40), but all update traffic lands on shard 1.
    for i in range(12):
        cluster.change("c", 40 + (i % 40), i % 8)
    assert cluster.shard_heat(0) == 0 and cluster.shard_heat(1) == 12
    want = cluster.query("c", 0, 7).positions()
    cluster.rebalance(target_shard_rows=30)
    # Both shards were over target and tied in size: the hot one split
    # first (recorded shard_id is the position at split time).
    assert cluster.splits[0].shard_id == 1
    assert max(cluster.shard_lengths("c")) <= 30
    assert cluster.query("c", 0, 7).positions() == want


def test_rebalance_heat_tiebreak_respects_size_tolerance():
    # A clearly fatter cold shard must still split before a hot but
    # much smaller one: heat only breaks near-ties.
    cluster = ClusterEngine(num_shards=2, drift_window=None,
                            heat_tolerance=0.1)
    cluster.add_column(
        "c", uniform(100, 8, seed=72), 8, dynamism="fully_dynamic"
    )
    # Shard 1 starts at 50 rows and takes updates (hot); grow shard 1?
    # Appends go to the last shard, so fatten shard 1 instead and heat
    # shard 0: the size gap (beyond tolerance) must beat the heat.
    for i in range(30):
        cluster.append("c", i % 8)  # shard 1 -> 80 rows
    for i in range(10):
        cluster.change("c", i % 50, i % 8)  # heat shard 0
    assert cluster.shard_heat(0) >= 10
    cluster.rebalance(target_shard_rows=45)
    assert cluster.splits[0].shard_id == 1  # the fat one, despite cold


def test_shard_heat_validates_and_sums_columns():
    cluster = ClusterEngine(num_shards=2, drift_window=None)
    cluster.add_column("a", uniform(20, 4, seed=73), 4,
                       dynamism="fully_dynamic")
    cluster.add_column("b", uniform(20, 4, seed=74), 4,
                       dynamism="fully_dynamic")
    cluster.change("a", 0, 1)
    cluster.change("b", 1, 2)
    cluster.change("b", 15, 3)
    assert cluster.shard_heat(0) == 2
    assert cluster.shard_heat(1) == 1
    import pytest

    with pytest.raises(InvalidParameterError):
        cluster.shard_heat(9)


def test_streaming_gather_prefetch_bound_under_threads():
    """The prefetching bridge widens the accounted bound to the
    documented handoff (two delivered buffers per dimension) and no
    further, at any depth."""
    from repro.cluster import ThreadedExecutor

    n, sigma, shards = 2048, 8, 8
    a = uniform(n, sigma, seed=75)
    b = uniform(n, sigma, seed=76)
    with ThreadedExecutor(4) as pool:
        cluster = ClusterEngine(
            num_shards=shards, drift_window=None, executor=pool,
            prefetch_depth=2,
        )
        cluster.add_column("a", a, sigma)
        cluster.add_column("b", b, sigma)
        conditions = {"a": (0, 6), "b": (0, 6)}
        cluster.gather_stats.reset()
        got = list(cluster.select_iter(conditions))
        want = [i for i in range(n) if a[i] <= 6 and b[i] <= 6]
        assert got == want and len(want) > n // 2
        max_shard = max(cluster.shard_lengths("a"))
        peak = cluster.gather_stats.peak_rids
        # One draining + one handoff buffer per dimension — still
        # O(max shard answer), never O(answer).
        assert peak <= 2 * 2 * max_shard
        assert peak < len(want)
        assert cluster.gather_stats.live_rids == 0
