"""Unit tests for the bit-stream reader/writer."""

import pytest

from repro.bits.bitio import BitReader, BitWriter
from repro.errors import CodecError, InvalidParameterError


class TestBitWriter:
    def test_empty_writer(self):
        w = BitWriter()
        assert w.bit_length == 0
        assert w.getvalue() == b""

    def test_single_bit(self):
        w = BitWriter()
        w.write_bits(1, 1)
        assert w.bit_length == 1
        assert w.getvalue() == b"\x80"

    def test_msb_first_order(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b00001, 5)
        assert w.getvalue() == bytes([0b10100001])

    def test_crosses_byte_boundary(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        assert w.bit_length == 12
        assert w.getvalue() == bytes([0xAB, 0xC0])

    def test_wide_value(self):
        w = BitWriter()
        w.write_bits((1 << 100) - 1, 100)
        assert w.bit_length == 100
        assert w.getvalue()[:12] == b"\xff" * 12

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_length == 0

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            w.write_bits(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            w.write_bits(-1, 4)

    def test_negative_width_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            w.write_bits(0, -1)

    def test_unary(self):
        w = BitWriter()
        w.write_unary(0)
        w.write_unary(3)
        # 1 | 0001 -> 10001...
        assert w.getvalue() == bytes([0b10001000])
        assert w.bit_length == 5

    def test_long_unary(self):
        w = BitWriter()
        w.write_unary(200)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert r.read_unary() == 200

    def test_extend(self):
        a = BitWriter()
        a.write_bits(0b101, 3)
        b = BitWriter()
        b.write_bits(0b11, 2)
        a.extend(b)
        assert a.bit_length == 5
        r = BitReader(a.getvalue(), bit_length=5)
        assert r.read_bits(5) == 0b10111


class TestBitReader:
    def test_roundtrip_mixed_widths(self):
        w = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1), (77, 7)]
        for v, nb in values:
            w.write_bits(v, nb)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        for v, nb in values:
            assert r.read_bits(nb) == v
        assert r.at_end()

    def test_window_offset(self):
        # A reader can start mid-buffer at any bit offset.
        r = BitReader(bytes([0b11110000, 0b10101010]), bit_offset=4, bit_length=8)
        assert r.read_bits(8) == 0b00001010

    def test_read_past_end_raises(self):
        r = BitReader(b"\xff", bit_length=4)
        r.read_bits(4)
        with pytest.raises(CodecError):
            r.read_bits(1)

    def test_peek_does_not_consume(self):
        r = BitReader(b"\xa0")
        assert r.peek_bits(3) == 0b101
        assert r.read_bits(3) == 0b101

    def test_tell_and_seek(self):
        r = BitReader(b"\xff\x00")
        r.read_bits(5)
        assert r.tell() == 5
        r.seek(0)
        assert r.read_bits(8) == 0xFF

    def test_seek_outside_window_raises(self):
        r = BitReader(b"\xff", bit_length=8)
        with pytest.raises(InvalidParameterError):
            r.seek(9)

    def test_remaining(self):
        r = BitReader(b"\xff\xff", bit_length=12)
        r.read_bits(5)
        assert r.remaining == 7

    def test_unary_spanning_many_bytes(self):
        w = BitWriter()
        w.write_unary(70)
        w.write_bits(0b1011, 4)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert r.read_unary() == 70
        assert r.read_bits(4) == 0b1011

    def test_unary_missing_terminator_raises(self):
        r = BitReader(b"\x00", bit_length=8)
        with pytest.raises(CodecError):
            r.read_unary()

    def test_window_validation(self):
        with pytest.raises(InvalidParameterError):
            BitReader(b"\x00", bit_offset=4, bit_length=8)

    def test_zero_bit_read(self):
        r = BitReader(b"", bit_length=0)
        assert r.read_bits(0) == 0
        assert r.at_end()
