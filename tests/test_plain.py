"""Unit tests for uncompressed bitmaps."""

import pytest

from repro.bits.plain import PlainBitmap
from repro.errors import InvalidParameterError


class TestPlainBitmap:
    def test_set_get_clear(self):
        bm = PlainBitmap(20)
        bm.set(0)
        bm.set(19)
        assert bm.get(0) and bm.get(19)
        assert not bm.get(10)
        bm.clear(0)
        assert not bm.get(0)

    def test_contains(self):
        bm = PlainBitmap.from_positions([3], 10)
        assert 3 in bm
        assert 4 not in bm
        assert -1 not in bm
        assert 10 not in bm

    def test_bounds_checked(self):
        bm = PlainBitmap(8)
        with pytest.raises(InvalidParameterError):
            bm.set(8)
        with pytest.raises(InvalidParameterError):
            bm.get(-1)

    def test_from_positions_roundtrip(self):
        positions = [0, 7, 8, 9, 63, 64]
        bm = PlainBitmap.from_positions(positions, 100)
        assert bm.positions() == positions
        assert bm.count() == len(positions)

    def test_size_bits_is_universe(self):
        assert PlainBitmap(12345).size_bits == 12345

    def test_or_and_xor(self):
        a = PlainBitmap.from_positions([1, 3, 5], 10)
        b = PlainBitmap.from_positions([3, 4], 10)
        assert (a | b).positions() == [1, 3, 4, 5]
        assert (a & b).positions() == [3]
        assert (a ^ b).positions() == [1, 4, 5]

    def test_and_not(self):
        a = PlainBitmap.from_positions([1, 3, 5], 10)
        b = PlainBitmap.from_positions([3], 10)
        assert a.and_not(b).positions() == [1, 5]

    def test_complement_respects_padding(self):
        # Universe 10 occupies 2 bytes; the 6 padding bits must stay 0.
        bm = PlainBitmap.from_positions([0, 9], 10)
        comp = bm.complement()
        assert comp.positions() == list(range(1, 9))
        assert comp.complement() == bm

    def test_incompatible_universes_rejected(self):
        with pytest.raises(InvalidParameterError):
            PlainBitmap(8) | PlainBitmap(16)

    def test_zero_universe(self):
        bm = PlainBitmap(0)
        assert bm.count() == 0
        assert bm.positions() == []
        assert bm.complement().count() == 0

    def test_raw_roundtrip(self):
        bm = PlainBitmap.from_positions([2, 4], 16)
        again = PlainBitmap(16, bm.to_bytes())
        assert again == bm

    def test_raw_wrong_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            PlainBitmap(16, b"\x00")
