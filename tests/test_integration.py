"""Cross-structure integration tests.

Every index in the package answers the same queries on the same
strings; these tests pin them against each other and against the
brute-force oracle, and check the global cost relationships the paper
establishes between them.
"""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.baselines import (
    BinnedBitmapIndex,
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    IntervalEncodedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    UncompressedBitmapIndex,
    WahBitmapIndex,
)
from repro.core import (
    AppendableIndex,
    ApproximatePaghRaoIndex,
    BufferedAppendableIndex,
    DynamicSecondaryIndex,
    PaghRaoIndex,
    UniformTreeIndex,
)
from repro.model import distributions as dist
from repro.model.entropy import entropy_bits

EVERY_INDEX = [
    UniformTreeIndex,
    PaghRaoIndex,
    ApproximatePaghRaoIndex,
    AppendableIndex,
    BufferedAppendableIndex,
    DynamicSecondaryIndex,
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    UncompressedBitmapIndex,
    BinnedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    IntervalEncodedBitmapIndex,
    WahBitmapIndex,
]


class TestAllStructuresAgree:
    @pytest.mark.parametrize("theta", [0.0, 1.2])
    def test_same_answers_everywhere(self, theta):
        sigma = 24
        x = dist.zipf(800, sigma, theta=theta, seed=11)
        indexes = [cls(x, sigma) for cls in EVERY_INDEX]
        rng = random.Random(4)
        for lo, hi in random_ranges(rng, sigma, 12):
            want = brute_range(x, lo, hi)
            for idx in indexes:
                got = idx.range_query(lo, hi).positions()
                assert got == want, (type(idx).__name__, lo, hi)

    def test_exact_answers_have_no_false_positives(self):
        sigma = 16
        x = dist.uniform(500, sigma, seed=12)
        idx = PaghRaoIndex(x, sigma)
        result = idx.range_query(3, 9)
        assert result.is_exact
        for p in result.positions():
            assert 3 <= x[p] <= 9

    def test_result_membership_protocol(self):
        sigma = 8
        x = dist.uniform(300, sigma, seed=13)
        idx = PaghRaoIndex(x, sigma)
        result = idx.range_query(2, 5)
        want = set(brute_range(x, 2, 5))
        for p in range(300):
            assert (p in result) == (p in want)
        assert len(result) == len(want)


class TestCostRelationships:
    """The paper's comparative claims, measured."""

    def setup_method(self):
        self.sigma = 64
        self.n = 4096
        self.x = dist.sequential(self.n, self.sigma)

    def _bits_read_cold(self, idx, lo, hi):
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(lo, hi)
        return idx.stats.bits_read

    def test_pagh_rao_beats_bitmap_scan_on_wide_ranges(self):
        # §1.2's example: l = sigma/2 on a uniform string; the bitmap
        # index reads a lg(sigma)/lg(sigma/l) factor more than optimal.
        ours = PaghRaoIndex(self.x, self.sigma)
        bitmap = CompressedBitmapIndex(self.x, self.sigma)
        lo, hi = 0, self.sigma // 2 - 1
        assert self._bits_read_cold(ours, lo, hi) < self._bits_read_cold(
            bitmap, lo, hi
        )

    def test_pagh_rao_beats_btree_on_bits(self):
        # §1.3: explicit position lists cost a lg(n) factor.
        ours = PaghRaoIndex(self.x, self.sigma)
        btree = BTreeSecondaryIndex(self.x, self.sigma)
        lo, hi = 0, 15
        assert self._bits_read_cold(ours, lo, hi) < self._bits_read_cold(
            btree, lo, hi
        )

    def test_space_ordering(self):
        # entropy-bounded < n lg sigma bitmap family << n sigma family.
        ours = PaghRaoIndex(self.x, self.sigma)
        gamma = CompressedBitmapIndex(self.x, self.sigma)
        rangeenc = RangeEncodedBitmapIndex(self.x, self.sigma)
        assert ours.space().payload_bits <= 4 * gamma.space().payload_bits
        assert gamma.space().payload_bits < rangeenc.space().payload_bits / 4

    def test_no_time_space_tradeoff(self):
        # §1.3's central claim: Theorem 2 is simultaneously within a
        # constant of the best space AND the best bits-read among the
        # trade-off structures (multires at two bin widths).
        ours = PaghRaoIndex(self.x, self.sigma)
        coarse = MultiResolutionBitmapIndex(self.x, self.sigma, bin_width=8)
        fine = MultiResolutionBitmapIndex(self.x, self.sigma, bin_width=2)
        lo, hi = 3, 44  # unaligned, wide
        our_bits = self._bits_read_cold(ours, lo, hi)
        our_space = ours.space().payload_bits
        for other in (coarse, fine):
            bits = self._bits_read_cold(other, lo, hi)
            space = other.space().payload_bits
            assert our_bits <= 4 * bits + 4096
            assert our_space <= 2 * space

    def test_entropy_adaptivity_unique_to_ours(self):
        # On a skewed string, Theorem 2's payload tracks nH0 while the
        # uncompressed family stays at n*sigma.
        skew = dist.zipf(self.n, self.sigma, theta=1.8, seed=14)
        ours = PaghRaoIndex(skew, self.sigma)
        plain = UncompressedBitmapIndex(skew, self.sigma)
        h_bits = entropy_bits(skew)
        assert ours.space().payload_bits <= 6 * (h_bits + self.n)
        assert plain.space().payload_bits == self.n * self.sigma


class TestDynamicConvergence:
    def test_dynamic_equals_static_after_same_history(self):
        # Build static on final string; dynamic via appends: answers and
        # (post-rebuild) spaces must agree.
        sigma = 16
        x = dist.uniform(1200, sigma, seed=15)
        static = PaghRaoIndex(x, sigma)
        dyn = AppendableIndex(x[:600], sigma)
        for ch in x[600:]:
            dyn.append(ch)
        rng = random.Random(5)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert (
                dyn.range_query(lo, hi).positions()
                == static.range_query(lo, hi).positions()
            )

    def test_change_sequence_equivalent_to_fresh_build(self):
        sigma = 12
        x = list(dist.uniform(500, sigma, seed=16))
        dyn = DynamicSecondaryIndex(x, sigma)
        rng = random.Random(6)
        for _ in range(300):
            i = rng.randrange(len(x))
            ch = rng.randrange(sigma)
            dyn.change(i, ch)
            x[i] = ch
        fresh = PaghRaoIndex(x, sigma)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert (
                dyn.range_query(lo, hi).positions()
                == fresh.range_query(lo, hi).positions()
            )
