"""Tests for Theorem 7 (§4.3) — the fully dynamic secondary index."""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import DynamicSecondaryIndex
from repro.errors import InvalidParameterError, UpdateError
from repro.model import distributions as dist


class TestCorrectness:
    def test_mixed_updates_match_oracle(self):
        sigma = 20
        x0 = dist.zipf(600, sigma, theta=0.6, seed=1)
        idx = DynamicSecondaryIndex(x0, sigma)
        x = list(x0)
        rng = random.Random(0)
        for step in range(2000):
            if rng.random() < 0.4:
                ch = rng.randrange(sigma)
                idx.append(ch)
                x.append(ch)
            else:
                i = rng.randrange(len(x))
                ch = rng.randrange(sigma)
                idx.change(i, ch)
                x[i] = ch
            if step % 149 == 0:
                lo, hi = sorted((rng.randrange(sigma), rng.randrange(sigma)))
                assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_change_to_same_char_noop(self):
        idx = DynamicSecondaryIndex([0, 1, 0], 2)
        before = idx.stats.snapshot()
        idx.change(0, 0)
        # At most the x[i] read; no index writes.
        assert idx.stats.writes == before.writes

    def test_change_reads_old_char_from_disk(self):
        idx = DynamicSecondaryIndex([0, 1, 0], 2)
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.change(1, 0)
        assert idx.stats.reads >= 1
        assert idx.range_query(0, 0).positions() == [0, 1, 2]
        assert idx.range_query(1, 1).positions() == []

    def test_change_to_unseen_char_rebuilds(self):
        idx = DynamicSecondaryIndex([0] * 50, 4)
        before = idx.rebuilds
        idx.change(10, 3)
        assert idx.rebuilds == before + 1
        assert idx.range_query(3, 3).positions() == [10]

    def test_heavy_updates_into_one_char(self):
        sigma = 8
        idx = DynamicSecondaryIndex(dist.uniform(400, sigma, seed=2), sigma)
        x = list(dist.uniform(400, sigma, seed=2))
        for i in range(0, 400, 2):
            idx.change(i, 5)
            x[i] = 5
        assert idx.range_query(5, 5).positions() == brute_range(x, 5, 5)
        assert idx.range_query(0, 4).positions() == brute_range(x, 0, 4)

    def test_count_range_after_changes(self):
        sigma = 8
        idx = DynamicSecondaryIndex(dist.uniform(300, sigma, seed=3), sigma)
        x = list(dist.uniform(300, sigma, seed=3))
        rng = random.Random(1)
        for _ in range(150):
            i = rng.randrange(len(x))
            ch = rng.randrange(sigma)
            idx.change(i, ch)
            x[i] = ch
        for lo, hi in [(0, 7), (2, 5), (7, 7)]:
            assert idx.count_range(lo, hi) == len(brute_range(x, lo, hi))

    def test_flush_all_preserves_answers(self):
        sigma = 12
        idx = DynamicSecondaryIndex(dist.uniform(400, sigma, seed=4), sigma)
        x = list(dist.uniform(400, sigma, seed=4))
        rng = random.Random(2)
        for _ in range(300):
            i = rng.randrange(len(x))
            ch = rng.randrange(sigma)
            idx.change(i, ch)
            x[i] = ch
        idx.flush_all()
        for lo, hi in random_ranges(rng, sigma, 8):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_validation(self):
        idx = DynamicSecondaryIndex([0, 1], 2)
        with pytest.raises(UpdateError):
            idx.change(5, 0)
        with pytest.raises(InvalidParameterError):
            idx.change(0, 9)
        with pytest.raises(InvalidParameterError):
            idx.append(9)
        with pytest.raises(InvalidParameterError):
            DynamicSecondaryIndex([0], 0)


class TestIOBounds:
    def test_update_io_polylog(self):
        sigma = 32
        n0 = 3000
        idx = DynamicSecondaryIndex(dist.uniform(n0, sigma, seed=5), sigma)
        rng = random.Random(3)
        idx.stats.reset()
        ops = 500
        for _ in range(ops):
            idx.change(rng.randrange(n0), rng.randrange(sigma))
        per_op = idx.stats.total / ops
        # O(lg n lg lg n / b) amortized + the O(1) x[i] read/write:
        # a handful of block transfers at this scale, far below a full
        # root-to-leaf rewrite (~height * levels).
        assert per_op <= 16

    def test_query_io_reasonable(self):
        import math

        sigma = 32
        n = 4000
        idx = DynamicSecondaryIndex(dist.uniform(n, sigma, seed=6), sigma)
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(4, 4)
        # O(z lg(n/z)/B + lg n lg lg n) with generous constants.
        assert idx.stats.reads <= 6 * math.log2(n) * math.log2(math.log2(n))
