"""Tests for the Theorem 2 structure (§2.2) — the headline contribution."""

import math
import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import PaghRaoIndex
from repro.errors import InvalidParameterError, QueryError
from repro.model import distributions as dist
from repro.model.entropy import entropy_bits


class TestCorrectness:
    @pytest.mark.parametrize(
        "name,theta",
        [("uniform", None), ("zipf", 0.5), ("zipf", 1.5), ("clustered", None),
         ("markov_runs", None), ("sequential", None)],
    )
    def test_matches_brute_force(self, name, theta):
        gen = dist.by_name(name)
        kwargs = {"theta": theta} if theta is not None else {}
        x = gen(1500, 32, seed=3, **kwargs)
        idx = PaghRaoIndex(x, 32)
        rng = random.Random(0)
        for lo, hi in random_ranges(rng, 32, 30):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_heavy_hitter_string(self):
        # One character with 70% of positions exercises heavy splitting
        # and the complement trick simultaneously.
        x = dist.heavy_hitter(1200, 16, fraction=0.7, hot=5, seed=4)
        idx = PaghRaoIndex(x, 16)
        rng = random.Random(1)
        for lo, hi in random_ranges(rng, 16, 25):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_single_character(self):
        idx = PaghRaoIndex([0] * 64, 1)
        assert idx.range_query(0, 0).positions() == list(range(64))

    def test_two_characters(self):
        x = [0, 1] * 50
        idx = PaghRaoIndex(x, 2)
        assert idx.range_query(0, 0).positions() == list(range(0, 100, 2))
        assert idx.range_query(1, 1).positions() == list(range(1, 100, 2))

    def test_complement_trick(self):
        x = dist.uniform(1000, 8, seed=5)
        idx = PaghRaoIndex(x, 8)
        result = idx.range_query(0, 6)
        assert result.complemented
        assert result.positions() == brute_range(x, 0, 6)
        assert result.cardinality == len(brute_range(x, 0, 6))

    def test_missing_characters(self):
        x = [0, 7] * 200
        idx = PaghRaoIndex(x, 8)
        assert idx.range_query(2, 5).positions() == []
        assert idx.range_query(0, 6).positions() == list(range(0, 400, 2))

    def test_materialization_all_matches(self):
        x = dist.zipf(900, 32, theta=1.0, seed=6)
        exp = PaghRaoIndex(x, 32, materialization="exponential")
        full = PaghRaoIndex(x, 32, materialization="all")
        rng = random.Random(2)
        for lo, hi in random_ranges(rng, 32, 15):
            assert (
                exp.range_query(lo, hi).positions()
                == full.range_query(lo, hi).positions()
            )

    def test_count_range_matches(self):
        x = dist.zipf(900, 32, theta=0.8, seed=7)
        idx = PaghRaoIndex(x, 32)
        rng = random.Random(3)
        for lo, hi in random_ranges(rng, 32, 15):
            assert idx.count_range(lo, hi) == len(brute_range(x, lo, hi))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PaghRaoIndex([0], 1, materialization="some")
        idx = PaghRaoIndex([0, 1], 2)
        with pytest.raises(QueryError):
            idx.range_query(1, 0)
        with pytest.raises(QueryError):
            idx.range_query(-1, 0)

    def test_branching_parameter_sweep(self):
        x = dist.uniform(700, 16, seed=8)
        for c in (5, 8, 16):
            idx = PaghRaoIndex(x, 16, branching=c)
            assert idx.range_query(3, 11).positions() == brute_range(x, 3, 11)


class TestSpaceBounds:
    def test_space_tracks_entropy(self):
        # Theorem 2: O(nH0 + n + sigma lg^2 n) bits.  Payload within a
        # constant of nH0 + n across skews.
        n, sigma = 8192, 64
        for theta in (0.0, 1.0, 2.0):
            x = dist.zipf(n, sigma, theta=theta, seed=9)
            idx = PaghRaoIndex(x, sigma)
            bound = entropy_bits(x) + n
            assert idx.space().payload_bits <= 6 * bound

    def test_skew_shrinks_space(self):
        n, sigma = 8192, 64
        flat = PaghRaoIndex(dist.zipf(n, sigma, 0.0, seed=1), sigma)
        skew = PaghRaoIndex(dist.zipf(n, sigma, 2.0, seed=1), sigma)
        assert skew.space().payload_bits < flat.space().payload_bits

    def test_exponential_materialization_beats_all_levels(self):
        x = dist.uniform(4096, 64, seed=2)
        exp = PaghRaoIndex(x, 64, materialization="exponential")
        full = PaghRaoIndex(x, 64, materialization="all")
        assert exp.space().payload_bits <= full.space().payload_bits

    def test_space_beats_explicit_positions(self):
        # §1.3: the explicit representation stores (char, pos) pairs of
        # lg(sigma) + lg(n) bits each; the entropy-bounded payload must
        # undercut it.
        n, sigma = 8192, 128
        x = dist.uniform(n, sigma, seed=3)
        idx = PaghRaoIndex(x, sigma)
        explicit = n * (math.log2(n) + math.log2(sigma))
        assert idx.space().payload_bits < explicit


class TestQueryIOBounds:
    def setup_method(self):
        self.n, self.sigma = 8192, 128
        self.x = dist.uniform(self.n, self.sigma, seed=4)
        self.idx = PaghRaoIndex(self.x, self.sigma)

    def _cold_query_reads(self, lo, hi):
        self.idx.disk.flush_cache()
        self.idx.stats.reset()
        self.idx.range_query(lo, hi)
        return self.idx.stats.reads

    def test_io_scales_with_output(self):
        B = self.idx.disk.block_bits
        for lo, hi in [(0, 0), (0, 7), (0, 31), (0, 63)]:
            z = len(brute_range(self.x, lo, hi))
            z_eff = max(1, min(z, self.n - z))
            bound = z_eff * math.log2(self.n / z_eff) / B
            overhead = math.log2(self.n) + math.log2(math.log2(self.n)) + 8
            assert self._cold_query_reads(lo, hi) <= 6 * (bound + overhead)

    def test_small_answer_small_io(self):
        reads = self._cold_query_reads(5, 5)
        # One character: descent + O(1) bitmaps.
        assert reads <= 3 * math.log2(self.n)

    def test_full_range_uses_complement(self):
        # z = n: complement is empty; nearly free after the count.
        reads = self._cold_query_reads(0, self.sigma - 1)
        assert reads <= 10
