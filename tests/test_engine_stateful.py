"""Stateful tests for engine cache invalidation.

The engine's contract: a cached result is never served after an update
to its column.  The machines below interleave appends/changes on
``fully_dynamic`` and ``semidynamic`` columns with repeated (and so
cache-hitting) queries, checking every answer against a plain-Python
model — in the style of ``tests/test_stateful.py``.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.engine import QueryEngine

SIGMA = 8


class EngineCacheMachine(RuleBasedStateMachine):
    """A fully-dynamic and a semidynamic column behind one shared cache."""

    @initialize()
    def setup(self):
        self.engine = QueryEngine(cache_size=32)
        self.dyn = [0, 3, 1, 7, 2, 5, 0, 4]
        self.app = [1, 1, 2, 6, 3, 0, 7, 5]
        self.engine.add_column(
            "dyn", self.dyn, SIGMA, dynamism="fully_dynamic"
        )
        self.engine.add_column(
            "app", self.app, SIGMA, dynamism="semidynamic"
        )

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_dynamic(self, ch):
        self.engine.append("dyn", ch)
        self.dyn.append(ch)

    @rule(data=st.data())
    def change_dynamic(self, data):
        pos = data.draw(st.integers(0, len(self.dyn) - 1))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.engine.change("dyn", pos, ch)
        self.dyn[pos] = ch

    @rule(ch=st.integers(0, SIGMA - 1))
    def append_semidynamic(self, ch):
        self.engine.append("app", ch)
        self.app.append(ch)

    @rule(data=st.data())
    def query_twice(self, data):
        # Ask the same range twice in a row: the second answer comes
        # from the cache and must still match the model.
        name, model = data.draw(
            st.sampled_from([("dyn", self.dyn), ("app", self.app)])
        )
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        want = [i for i, c in enumerate(model) if lo <= c <= hi]
        assert self.engine.query(name, lo, hi).positions() == want
        assert self.engine.query(name, lo, hi).positions() == want

    @invariant()
    def cached_entries_current(self):
        # No cache key may reference a stale column version.
        for key in list(self.engine.cache._data):
            name, version = key[0], key[1]
            assert version == self.engine.columns[name].version

    @invariant()
    def full_range_matches(self):
        for name, model in (("dyn", self.dyn), ("app", self.app)):
            got = self.engine.query(name, 0, SIGMA - 1).positions()
            assert got == list(range(len(model)))


class EngineThrashingCacheMachine(RuleBasedStateMachine):
    """A capacity-2 cache: constant eviction must never corrupt answers."""

    @initialize()
    def setup(self):
        self.engine = QueryEngine(cache_size=2)
        self.x = [5, 2, 7, 1, 0, 3]
        self.engine.add_column("c", self.x, SIGMA, dynamism="fully_dynamic")

    @rule(data=st.data())
    def update(self, data):
        pos = data.draw(st.integers(0, len(self.x) - 1))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.engine.change("c", pos, ch)
        self.x[pos] = ch

    @rule(data=st.data())
    def query(self, data):
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        want = [i for i, c in enumerate(self.x) if lo <= c <= hi]
        assert self.engine.query("c", lo, hi).positions() == want

    @invariant()
    def cache_within_capacity(self):
        assert len(self.engine.cache) <= 2


TestEngineCacheMachine = EngineCacheMachine.TestCase
TestEngineCacheMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)

TestEngineThrashingCacheMachine = EngineThrashingCacheMachine.TestCase
TestEngineThrashingCacheMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
