"""Unit tests for the sharded scatter-gather serving layer."""

import pytest

from repro.cluster import (
    ClusterEngine,
    InMemorySharedCache,
    SerialExecutor,
    ShardedTable,
    ThreadedExecutor,
    locate,
    offsets_of,
    plan_shards,
    shared_key,
)
from repro.engine import Advisor, CostModel, WorkloadStats, get_spec
from repro.errors import InvalidParameterError, QueryError, UpdateError
from repro.model.distributions import uniform, zipf
from repro.queries import Table

from tests.conftest import brute_range


class TestShardPlan:
    def test_balanced_split_covers_rid_space(self):
        plan = plan_shards(10, 3)
        assert plan.slices() == [(0, 4), (4, 7), (7, 10)]
        assert plan.num_shards == 3

    def test_target_shard_rows(self):
        plan = plan_shards(100, target_shard_rows=30)
        assert plan.num_shards == 4
        assert sum(stop - start for start, stop in plan.slices()) == 100

    def test_no_empty_shards(self):
        assert plan_shards(3, 8).num_shards == 3
        assert all(stop > start for start, stop in plan_shards(3, 8).slices())

    def test_sizing_knobs_exclusive(self):
        with pytest.raises(InvalidParameterError):
            plan_shards(10, num_shards=2, target_shard_rows=5)
        with pytest.raises(InvalidParameterError):
            plan_shards(0, 2)
        with pytest.raises(InvalidParameterError):
            plan_shards(10, num_shards=0)
        with pytest.raises(InvalidParameterError):
            plan_shards(10, target_shard_rows=0)

    def test_locate_routes_by_live_lengths(self):
        offsets = offsets_of([4, 3, 3])
        assert offsets == [0, 4, 7]
        assert locate(offsets, 10, 0) == (0, 0)
        assert locate(offsets, 10, 4) == (1, 0)
        assert locate(offsets, 10, 9) == (2, 2)
        with pytest.raises(QueryError):
            locate(offsets, 10, 10)
        with pytest.raises(QueryError):
            locate(offsets, 10, -1)


class TestSharedCache:
    def test_get_put_roundtrip_returns_copy(self):
        cache = InMemorySharedCache(8)
        key = shared_key("c", "e", 0, 0, 1, 3)
        cache.put(key, [1, 2, 3])
        got = cache.get(key)
        assert got == [1, 2, 3]
        got.append(99)  # a caller mutating its copy must not poison the cache
        assert cache.get(key) == [1, 2, 3]
        assert cache.hits == 2 and cache.misses == 0

    def test_lru_eviction(self):
        cache = InMemorySharedCache(2)
        cache.put(shared_key("c", "e", 0, 0, 0, 0), [0])
        cache.put(shared_key("c", "e", 1, 0, 0, 0), [1])
        cache.get(shared_key("c", "e", 0, 0, 0, 0))
        cache.put(shared_key("c", "e", 2, 0, 0, 0), [2])
        assert shared_key("c", "e", 1, 0, 0, 0) not in cache
        assert cache.evictions == 1

    def test_invalidate_by_column_and_shard(self):
        cache = InMemorySharedCache(8)
        cache.put(shared_key("a", "e", 0, 0, 0, 0), [0])
        cache.put(shared_key("a", "e", 1, 0, 0, 0), [1])
        cache.put(shared_key("b", "e", 0, 0, 0, 0), [2])
        assert cache.invalidate(column="a", shard_id=1) == 1
        assert shared_key("a", "e", 0, 0, 0, 0) in cache
        assert cache.invalidate(column="a") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1

    def test_zero_capacity_stores_nothing(self):
        cache = InMemorySharedCache(0)
        cache.put(shared_key("c", "e", 0, 0, 0, 0), [0])
        assert len(cache) == 0

    def test_minimal_external_cache_satisfies_the_cluster(self):
        # The documented contract: get/put only — invalidate and the
        # explain() presence probe must degrade gracefully.
        from repro.cluster import SharedResultCache

        class MinimalCache(SharedResultCache):
            def __init__(self):
                self.data = {}

            def get(self, key):
                return self.data.get(key)

            def put(self, key, positions):
                self.data[key] = list(positions)

        cluster = ClusterEngine(num_shards=2, shared_cache=MinimalCache())
        x = uniform(40, 8, seed=40)
        cluster.add_column("c", x, 8, dynamism="fully_dynamic")
        assert cluster.query("c", 1, 4).positions() == brute_range(x, 1, 4)
        cluster.change("c", 0, 7)  # invalidate() no-op must be safe
        model = [7] + list(x[1:])
        assert cluster.query("c", 1, 4).positions() == brute_range(model, 1, 4)
        assert "miss" in cluster.explain("c", 1, 4)  # pessimistic probe
        # Epoch stamping: drop + re-add under the same name must never
        # resurrect the previous incarnation's entries, even though
        # shard versions restart at zero and nothing was evicted.
        cluster.drop_column("c")
        y = [7 - c for c in x]
        cluster.add_column("c", y, 8, dynamism="fully_dynamic")
        assert cluster.query("c", 1, 4).positions() == brute_range(y, 1, 4)


class TestExecutors:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(lambda v: v * v, range(5)) == [0, 1, 4, 9, 16]

    def test_threaded_preserves_order_and_propagates_errors(self):
        with ThreadedExecutor(4) as pool:
            assert pool.map(lambda v: v * v, range(32)) == [
                v * v for v in range(32)
            ]
            with pytest.raises(ZeroDivisionError):
                pool.map(lambda v: 1 // v, [2, 1, 0])

    def test_threaded_rejects_zero_workers(self):
        with pytest.raises(InvalidParameterError):
            ThreadedExecutor(0)


class TestClusterEngine:
    def test_query_matches_oracle_and_merges_in_order(self):
        x = zipf(300, 16, theta=1.1, seed=1)
        cluster = ClusterEngine(num_shards=5)
        cluster.add_column("c", x, 16)
        for lo, hi in [(0, 3), (2, 2), (0, 15), (5, 12)]:
            result = cluster.query("c", lo, hi)
            assert result.positions() == brute_range(x, lo, hi)
            assert result.cardinality == len(brute_range(x, lo, hi))

    def test_per_shard_stats_can_pick_different_backends(self):
        # First half: 4 distinct values (bitmap country); second half:
        # 256 distinct values (pagh-rao country).  With 2 shards the
        # advisor must be free to disagree with itself.
        low = uniform(2048, 4, seed=2)
        high = [4 + v for v in uniform(2048, 252, seed=3)]
        # The analytic model: this test documents the raw estimators'
        # per-shard disagreement, independent of checked-in calibration.
        cluster = ClusterEngine(
            num_shards=2, cost_model=CostModel(calibration=None)
        )
        cluster.add_column("c", low + high, 256)
        families = [
            cluster.shard_column("c", s).spec.family for s in range(2)
        ]
        assert families[0] == "bitmap"
        assert families[1] == "pagh-rao"
        # ...and the split-brain column still answers exactly.
        want = brute_range(low + high, 1, 200)
        assert cluster.query("c", 1, 200).positions() == want

    def test_select_matches_single_engine_table(self):
        a = uniform(400, 8, seed=4)
        b = zipf(400, 8, theta=1.3, seed=5)
        cluster = ClusterEngine(num_shards=3)
        cluster.add_column("a", a, 8)
        cluster.add_column("b", b, 8)
        want = [
            i for i in range(400) if 2 <= a[i] <= 6 and 0 <= b[i] <= 2
        ]
        assert cluster.select({"a": (2, 6), "b": (0, 2)}) == want

    def test_select_short_circuits_and_requires_conditions(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", [1, 1, 1, 1], 3)
        assert cluster.select({"c": (0, 0)}) == []
        with pytest.raises(QueryError):
            cluster.select({})

    def test_column_length_must_match_shard_plan(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("a", [0, 1, 2, 3], 4)
        with pytest.raises(InvalidParameterError):
            cluster.add_column("b", [0, 1, 2], 4)
        with pytest.raises(InvalidParameterError):
            cluster.add_column("a", [0, 1, 2, 3], 4)
        with pytest.raises(QueryError):
            cluster.query("missing", 0, 1)

    def test_invalid_range_rejected_before_scatter(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", [0, 1, 2, 3], 4)
        for lo, hi in [(-1, 2), (0, 4), (3, 1)]:
            with pytest.raises(QueryError):
                cluster.query("c", lo, hi)

    def test_updates_route_to_one_shard_and_invalidate_only_it(self):
        x = uniform(90, 8, seed=6)
        cluster = ClusterEngine(num_shards=3, drift_window=None)
        cluster.add_column("c", x, 8, dynamism="fully_dynamic")
        model = list(x)
        cluster.query("c", 0, 3)  # populate all three shards' entries
        assert len(cluster.shared_cache) == 3
        versions_before = [
            cluster.shard_column("c", s).version for s in range(3)
        ]
        cluster.change("c", 0, 7)  # routes to shard 0
        model[0] = 7
        versions_after = [
            cluster.shard_column("c", s).version for s in range(3)
        ]
        assert versions_after[0] == versions_before[0] + 1
        assert versions_after[1:] == versions_before[1:]
        # Only shard 0's entry was evicted; the others keep serving.
        assert len(cluster.shared_cache) == 2
        hits_before = cluster.shared_cache.hits
        assert cluster.query("c", 0, 3).positions() == brute_range(model, 0, 3)
        assert cluster.shared_cache.hits == hits_before + 2

    def test_append_goes_to_last_shard(self):
        cluster = ClusterEngine(num_shards=2, drift_window=None)
        cluster.add_column("c", [0, 1, 2, 3], 4, dynamism="semidynamic")
        cluster.append("c", 0)
        assert cluster.shard_lengths("c") == [2, 3]
        assert cluster.query("c", 0, 0).positions() == [0, 4]
        assert cluster.total_rows("c") == 5

    def test_delete_translates_global_positions(self):
        x = [3, 1, 2, 0, 3, 1, 2, 0, 3]
        cluster = ClusterEngine(num_shards=3, drift_window=None)
        cluster.add_column(
            "c", x, 4, dynamism="fully_dynamic", require_delete=True
        )
        cluster.delete("c", 4)  # shard 1, local 1
        model = list(x)
        model[4] = None
        want = [i for i, v in enumerate(model) if v == 3]
        assert cluster.query("c", 3, 3).positions() == want

    def test_static_column_rejects_updates(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", [0, 1, 2, 3], 4)
        with pytest.raises(UpdateError):
            cluster.append("c", 1)

    def test_drop_column(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", [0, 1, 2, 3], 4)
        cluster.query("c", 0, 3)
        cluster.drop_column("c")
        assert "c" not in cluster.columns
        assert len(cluster.shared_cache) == 0
        with pytest.raises(QueryError):
            cluster.query("c", 0, 1)

    def test_threaded_executor_matches_serial(self):
        x = zipf(500, 32, theta=1.2, seed=7)
        serial = ClusterEngine(num_shards=8)
        serial.add_column("c", x, 32)
        with ThreadedExecutor(4) as pool:
            threaded = ClusterEngine(num_shards=8, executor=pool)
            threaded.add_column("c", x, 32)
            for lo, hi in [(0, 5), (10, 31), (4, 4)]:
                assert (
                    threaded.query("c", lo, hi).positions()
                    == serial.query("c", lo, hi).positions()
                )

    def test_plan_and_explain_variants(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", uniform(64, 4, seed=8), 4)
        plans = cluster.plan("c", 0, 1)
        assert len(plans) == 2 and all(p.column == "c" for p in plans)
        overview = cluster.explain()
        assert "2 shard(s)" in overview and "c:" in overview
        per_column = cluster.explain("c")
        assert "shard 0" in per_column and "shard 1" in per_column
        cluster.query("c", 0, 1)
        per_query = cluster.explain("c", 0, 1)
        assert "shared-cache" in per_query

    def test_fully_pruned_plan_reports_cold_and_free(self):
        # Regression: a leaf every shard prunes has no live shard
        # plans, so the vacuous all([]) used to render it "cached"
        # with a live shard count of zero.  It must read as what it
        # is: never served, never cached, never costed.
        from repro.query import Eq

        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", [0, 0, 2, 2], 4)  # code 3 never occurs
        report = cluster.explain(Eq("c", 3))
        (leaf,) = report.leaves
        assert all(s.pruned for s in leaf.shards)
        assert leaf.cached is False
        assert leaf.estimated_cost_bits == 0
        assert report.estimated_total_bits == 0
        assert "all shards pruned" in str(report)
        assert "0 shard(s)" not in str(report)
        # ...and the pruned plan still answers exactly.
        assert cluster.select(Eq("c", 3)) == []
        assert cluster.count(Eq("c", 3)) == 0


class FlipAdvisor(Advisor):
    """Deterministic advisor for drift tests: entropy decides the pick."""

    def __init__(self, threshold: float) -> None:
        super().__init__()
        self.threshold = threshold

    def pick(self, stats: WorkloadStats):
        if stats.h0 < self.threshold:
            return get_spec("fully-dynamic")
        return get_spec("deletable")


class TestMigration:
    def test_explicit_migrate_refits_static_column(self):
        # An append-capable column that went cold: freezing it re-opens
        # the static pool and the advisor re-picks per shard.
        x = uniform(1024, 4, seed=9)
        cluster = ClusterEngine(num_shards=4)
        cluster.add_column("c", x, 4, dynamism="semidynamic")
        assert set(cluster.backends("c")) <= {"appendable"}
        want = brute_range(x, 1, 2)
        migrations = cluster.migrate("c", dynamism="static")
        assert all(m.changed for m in migrations)
        assert all(
            cluster.shard_column("c", s).spec.dynamism == "static"
            for s in range(4)
        )
        assert cluster.query("c", 1, 2).positions() == want
        with pytest.raises(UpdateError):
            cluster.append("c", 0)  # the freeze is real

    def test_freeze_suspends_the_delete_requirement(self):
        # A frozen column can never see another delete, so the freeze
        # must re-open the static pool instead of keeping the advisor
        # confined to delete-capable backends.
        cluster = ClusterEngine(num_shards=2)
        x = uniform(64, 4, seed=13)
        cluster.add_column(
            "d", x, 4, dynamism="fully_dynamic", require_delete=True
        )
        assert cluster.backends("d") == ["deletable", "deletable"]
        cluster.delete("d", 3)
        migrations = cluster.migrate("d", dynamism="static")
        assert all(m.changed for m in migrations)
        assert all(
            cluster.shard_column("d", s).spec.dynamism == "static"
            for s in range(2)
        )
        # Pending holes were compacted by the rebuild.
        model = [c for i, c in enumerate(x) if i != 3]
        for lo in range(4):
            assert cluster.query("d", lo, lo).positions() == brute_range(
                model, lo, lo
            )
        # The *declared* contract survives the freeze: unfreezing
        # restores delete capability, not just change/append.
        cluster.migrate("d", dynamism="fully_dynamic")
        assert cluster.backends("d") == ["deletable", "deletable"]
        before = cluster.query("d", 0, 3).cardinality
        cluster.delete("d", 0)
        assert cluster.query("d", 0, 3).cardinality == before - 1

    def test_migrate_enforces_require_exact(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("e", uniform(64, 8, seed=14), 8)
        with pytest.raises(InvalidParameterError):
            cluster.migrate("e", backend="pagh-rao-approx")
        assert all(
            cluster.shard_column("e", s).spec.exact for s in range(2)
        )

    def test_explicit_migrate_with_pinned_backend(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", uniform(64, 8, seed=10), 8)
        migrations = cluster.migrate("c", backend="btree")
        assert [m.new_backend for m in migrations] == ["btree", "btree"]
        assert cluster.backends("c") == ["btree", "btree"]
        assert cluster.query("c", 2, 5).positions() == brute_range(
            uniform(64, 8, seed=10), 2, 5
        )

    def test_migrate_single_shard_only(self):
        cluster = ClusterEngine(num_shards=3)
        cluster.add_column("c", uniform(90, 8, seed=11), 8)
        cluster.migrate("c", shard_id=1, backend="btree")
        backends = cluster.backends("c")
        assert backends[1] == "btree"
        assert backends[0] != "btree" and backends[2] != "btree"
        # A single-shard backend choice pins that shard only: the
        # other shards keep their drift auto-migration.
        assert cluster.columns["c"].backend is None
        assert cluster.columns["c"].shard_pins == {1: "btree"}

    def test_per_shard_pin_survives_drift_until_unpinned(self):
        advisor = FlipAdvisor(threshold=1.0)
        cluster = ClusterEngine(
            num_shards=2, advisor=advisor, drift_window=4
        )
        cluster.add_column("c", [0] * 20, 8, dynamism="fully_dynamic")
        cluster.migrate("c", shard_id=1, backend="deletable")
        # High-entropy traffic to shard 1 would flip the advisor, but
        # the shard pin holds.
        for i in range(10):
            cluster.change("c", 10 + (i % 10), i % 8)
        assert cluster.backends("c")[1] == "deletable"
        # Releasing the pin hands the shard back to the advisor.
        cluster.unpin("c", shard_id=1)
        assert cluster.columns["c"].shard_pins == {}
        cluster.migrate("c", shard_id=1)
        assert cluster.backends("c")[1] == "deletable"  # h0 still high
        # Bare migrate() honors remaining pins; none left, so the
        # advisor governs both shards again.
        cluster.migrate("c")

    def test_shard_id_validated(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column("c", uniform(64, 8, seed=12), 8)
        for bad in (-1, 2, 5):
            with pytest.raises(InvalidParameterError):
                cluster.migrate("c", shard_id=bad)
            with pytest.raises(InvalidParameterError):
                cluster.shard_column("c", bad)

    def test_migrate_validates_dynamism_before_mutating_meta(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "c", [0, 1, 2, 3], 4, dynamism="fully_dynamic"
        )
        for bad_call in (
            lambda: cluster.migrate("c", dynamism="bogus"),
            lambda: cluster.migrate("c", shard_id=99, dynamism="static"),
            lambda: cluster.migrate("c", dynamism="static", backend="nope"),
            lambda: cluster.migrate("c", shard_id=0, dynamism="static"),
            # The backend/dynamism combination must be validated as a
            # pair before either is recorded.
            lambda: cluster.migrate(
                "c", backend="pagh-rao", dynamism="fully_dynamic"
            ),
        ):
            with pytest.raises(InvalidParameterError):
                bad_call()
            # A rejected migrate leaves the column exactly as it was.
            assert cluster.columns["c"].dynamism == "fully_dynamic"
            assert cluster.columns["c"].backend is None
        cluster.change("c", 0, 3)  # the column is still healthy

    def test_explicit_migrate_resets_drift_clock(self):
        cluster = ClusterEngine(
            num_shards=1, advisor=FlipAdvisor(1.0), drift_window=4
        )
        cluster.add_column("c", [0] * 10, 8, dynamism="fully_dynamic")
        for i in range(3):
            cluster.change("c", i, 0)
        assert cluster.columns["c"].updates_since_stat[0] == 3
        cluster.migrate("c")  # freshly restatted: the clock restarts
        assert cluster.columns["c"].updates_since_stat[0] == 0

    def test_migrate_backend_pin_is_recorded_and_sticks(self):
        advisor = FlipAdvisor(threshold=1.0)
        cluster = ClusterEngine(
            num_shards=2, advisor=advisor, drift_window=4
        )
        cluster.add_column("c", [0] * 20, 8, dynamism="fully_dynamic")
        cluster.migrate("c", backend="deletable")
        assert cluster.columns["c"].backend == "deletable"
        # Drift traffic must not silently revert the operator's pin.
        for i in range(12):
            cluster.change("c", 10 + (i % 10), i % 8)
        assert cluster.backends("c") == ["deletable", "deletable"]
        # Neither must a later advisor-driven migrate: the standing
        # pin keeps governing until a new backend is named.
        cluster.migrate("c")
        assert cluster.backends("c") == ["deletable", "deletable"]
        assert cluster.columns["c"].backend == "deletable"

    def test_add_column_rejects_out_of_alphabet_codes(self):
        # Parity with QueryEngine: static shards are re-dictionaried
        # onto local alphabets, which must not swallow a data error.
        cluster = ClusterEngine(num_shards=2)
        for dynamism in ("static", "semidynamic"):
            with pytest.raises(InvalidParameterError):
                cluster.add_column(
                    f"c_{dynamism}", [0, 1, 2, 9], 4, dynamism=dynamism
                )
            with pytest.raises(InvalidParameterError):
                cluster.add_column(
                    f"n_{dynamism}", [0, -1, 2, 3], 4, dynamism=dynamism
                )
        # Negative codes are rejected on the sigma-inference path too.
        with pytest.raises(InvalidParameterError):
            cluster.add_column("inferred", [0, 1, -1, 2])

    def test_engines_sharing_one_cache_do_not_collide(self):
        # The documented cross-process scenario: one external store,
        # several engines, same column names — epochs must fence them.
        cache = InMemorySharedCache(64)
        one = ClusterEngine(num_shards=2, shared_cache=cache)
        one.add_column("c", [0, 1, 2, 3, 0, 1, 2, 3], 4)
        assert one.query("c", 1, 2).positions() == [1, 2, 5, 6]
        two = ClusterEngine(num_shards=2, shared_cache=cache)
        two.add_column("c", [1, 0, 3, 2, 3, 2, 1, 0], 4)
        assert two.query("c", 1, 2).positions() == [0, 3, 5, 6]

    def test_add_column_failure_unwinds(self):
        cluster = ClusterEngine(num_shards=2)
        with pytest.raises(InvalidParameterError):
            cluster.add_column(
                "c", [0, 1, 2, 9], 4, dynamism="semidynamic"
            )
        assert "c" not in cluster.columns
        # The name is reusable and the plan was not pinned to the
        # failed attempt.
        cluster.add_column("c", [0, 1, 2, 3, 1, 0], 4)
        assert cluster.query("c", 1, 1).positions() == [1, 4]

    def test_freeze_is_enforced_even_on_update_capable_backends(self):
        # A frozen column may keep an append-capable backend (the
        # advisor or a pin can land on one); the cluster-level contract
        # must still reject updates.
        cluster = ClusterEngine(num_shards=2, drift_window=None)
        cluster.add_column(
            "c", [0, 1, 2, 3], 4, dynamism="semidynamic"
        )
        cluster.migrate("c", dynamism="static", backend="appendable")
        assert cluster.backends("c") == ["appendable", "appendable"]
        with pytest.raises(UpdateError):
            cluster.append("c", 1)

    def test_migrate_rejects_unservable_backend(self):
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "c", [0, 1, 2, 3], 4, dynamism="fully_dynamic"
        )
        with pytest.raises(InvalidParameterError):
            cluster.migrate("c", backend="pagh-rao")

    def test_drift_detector_migrates_online(self):
        # Start low-entropy (constant column) -> FlipAdvisor picks
        # fully-dynamic.  Hammer one shard with high-entropy changes:
        # past drift_window updates the shard restats and migrates to
        # deletable, in place, with answers staying exact throughout.
        advisor = FlipAdvisor(threshold=1.0)
        cluster = ClusterEngine(
            num_shards=2, advisor=advisor, drift_window=8
        )
        x = [0] * 40
        cluster.add_column("c", x, 8, dynamism="fully_dynamic")
        assert cluster.backends("c") == ["fully-dynamic", "fully-dynamic"]
        model = list(x)
        for i in range(16):
            pos = 20 + (i % 20)  # all routed to shard 1
            ch = i % 8
            cluster.change("c", pos, ch)
            model[pos] = ch
            assert cluster.query("c", 0, 0).positions() == brute_range(
                model, 0, 0
            )
        assert cluster.backends("c") == ["fully-dynamic", "deletable"]
        assert len(cluster.migrations) == 1
        migration = cluster.migrations[0]
        assert migration.shard_id == 1 and migration.changed
        # The untouched shard was never re-advised.
        assert cluster.shard_column("c", 0).spec.name == "fully-dynamic"

    def test_pinned_backend_disables_drift_migration(self):
        advisor = FlipAdvisor(threshold=1.0)
        cluster = ClusterEngine(
            num_shards=2, advisor=advisor, drift_window=4
        )
        cluster.add_column(
            "c", [0] * 20, 8, dynamism="fully_dynamic",
            backend="fully-dynamic",
        )
        for i in range(12):
            cluster.change("c", 10 + (i % 10), i % 8)
        assert cluster.backends("c") == ["fully-dynamic", "fully-dynamic"]
        assert cluster.migrations == []

    def test_restat_refreshes_measured_fields_only(self):
        cluster = ClusterEngine(num_shards=1, drift_window=None)
        cluster.add_column(
            "c", [0] * 32, 8, dynamism="fully_dynamic",
            expected_selectivity=0.25,
        )
        column = cluster.shard_column("c", 0)
        assert column.stats.h0 == 0.0
        for i in range(16):
            cluster.change("c", i, i % 8)
        stale = column.stats
        assert stale.h0 == 0.0  # measured once, now wrong
        fresh = column.restat()
        assert fresh.h0 > 1.5
        assert fresh.n == 32
        assert fresh.dynamism == "fully_dynamic"
        assert fresh.expected_selectivity == 0.25
        assert fresh.sigma == stale.sigma


class TestShardedTable:
    def test_value_space_select_matches_table(self):
        rows = {
            "age": [33, 41, 33, 27, 58, 33, 41, 66, 12, 45] * 6,
            "city": list("abcabcabca") * 6,
        }
        sharded = ShardedTable(rows, num_shards=4)
        single = Table(rows)
        conds = {"age": (30, 45), "city": ("a", "b")}
        assert sharded.select(conds) == single.select(conds)
        assert sharded.row(0) == single.row(0) == {"age": 33, "city": "a"}

    def test_out_of_domain_range_returns_empty(self):
        sharded = ShardedTable({"v": [1, 2, 3, 4]}, num_shards=2)
        assert sharded.select({"v": (100, 200)}) == []

    def test_backend_pinning_per_column(self):
        rows = {"a": [1, 2, 3, 4, 5, 6], "b": [6, 5, 4, 3, 2, 1]}
        sharded = ShardedTable(
            rows, num_shards=2, backend={"a": "btree", "b": "bitmap-gamma"}
        )
        assert sharded.cluster.backends("a") == ["btree", "btree"]
        assert sharded.cluster.backends("b") == [
            "bitmap-gamma", "bitmap-gamma"
        ]
        assert sharded.select({"a": (2, 5), "b": (3, 6)}) == [1, 2, 3]

    def test_table_sharded_constructor_path(self):
        table = Table.sharded({"v": [5, 1, 5, 2, 5]}, num_shards=2)
        assert isinstance(table, ShardedTable)
        assert table.select({"v": (5, 5)}) == [0, 2, 4]
        assert table.cluster.num_shards == 2

    def test_sizing_conflicts_and_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardedTable({})
        with pytest.raises(InvalidParameterError):
            ShardedTable({"a": [1, 2], "b": [1]})
        with pytest.raises(InvalidParameterError):
            ShardedTable(
                {"v": [1, 2]}, num_shards=2, cluster=ClusterEngine(2)
            )
        with pytest.raises(QueryError):
            ShardedTable({"v": [1, 2]}).select({})
        with pytest.raises(QueryError):
            ShardedTable({"v": [1, 2]}).column("w")
        with pytest.raises(QueryError):
            ShardedTable({"v": [1, 2]}).row(5)

    def test_explain_passthrough(self):
        sharded = ShardedTable({"v": [1, 2, 3, 4]}, num_shards=2)
        assert "2 shard(s)" in sharded.explain()

    def test_append_row_and_change_keep_value_mirror_in_sync(self):
        rows = {"v": [5, 1, 5, 2], "w": [1, 2, 3, 4]}
        table = ShardedTable(rows, num_shards=2, dynamism="semidynamic")
        rid = table.append_row({"v": 5, "w": 2})
        assert rid == 4 and table.num_rows == 5
        assert table.select({"v": (5, 5)}) == [0, 2, 4]
        assert table.row(4) == {"v": 5, "w": 2}
        table2 = ShardedTable(
            {"v": [5, 1, 5, 2]}, num_shards=2, dynamism="fully_dynamic"
        )
        table2.change("v", 1, 5)
        assert table2.select({"v": (5, 5)}) == [0, 1, 2]
        assert table2.row(1) == {"v": 5}

    def test_append_row_validates_before_mutating(self):
        table = ShardedTable(
            {"v": [5, 1], "w": [1, 2]}, num_shards=1, dynamism="semidynamic"
        )
        with pytest.raises(InvalidParameterError):
            table.append_row({"v": 5})  # missing column
        with pytest.raises(QueryError):
            table.append_row({"v": 5, "w": 99})  # value outside alphabet
        static = ShardedTable({"v": [5, 1]}, num_shards=1)
        with pytest.raises(UpdateError):
            static.append_row({"v": 5})
        # Nothing leaked into any mirror or index.
        assert table.num_rows == 2 and static.num_rows == 2
        assert table.select({"v": (5, 5)}) == [0]
        with pytest.raises(QueryError):
            table.change("v", 5, 1)


class TestCacheStores:
    """The CacheStore seam: pluggable backing stores for the shared cache."""

    def test_dict_store_prefix_invalidation(self):
        from repro.cluster import DictStore

        store = DictStore(capacity=16)
        store.put(shared_key("a", "e", 0, 0, 0, 0), [0])
        store.put(shared_key("a", "e", 1, 0, 0, 0), [1])
        store.put(shared_key("b", "e", 0, 0, 0, 0), [2])
        # Keys are laid out (column, shard uid, ...), so both cluster
        # invalidation granularities are literal prefixes.
        assert store.invalidate_prefix(("a", 1)) == 1
        assert store.invalidate_prefix(("a",)) == 1
        assert store.invalidate_prefix(()) == 1
        assert len(store) == 0

    def test_ttl_store_expires_without_enumeration(self):
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(ttl_s=10.0, clock=lambda: clock[0])
        key = shared_key("c", "e", 0, 0, 1, 3)
        store.put(key, [1, 2, 3])
        assert store.get(key) == [1, 2, 3]
        assert key in store
        clock[0] = 11.0
        assert key not in store
        assert store.get(key) is None  # lazily dropped
        assert store.expirations == 1
        # No key enumeration: prefix invalidation is an honest no-op.
        store.put(key, [4])
        assert store.invalidate_prefix(("c",)) == 0
        assert store.get(key) == [4]

    def test_ttl_store_len_excludes_expired_entries(self):
        # Regression: len() used to report raw dict size, counting
        # entries get/contains would already refuse to serve.
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(ttl_s=10.0, clock=lambda: clock[0])
        store.put(shared_key("a", "e", 0, 0, 0, 0), [1])
        store.put(shared_key("b", "e", 0, 0, 0, 0), [2])
        assert len(store) == 2
        clock[0] = 11.0
        # Nothing swept or lazily dropped yet — still invisible.
        assert len(store) == 0
        store.put(shared_key("c", "e", 0, 0, 0, 0), [3])
        assert len(store) == 1

    def test_ttl_store_counts_overwrite_expirations(self):
        # Regression: an entry that dies and is overwritten between
        # sweeps was never counted as expired — not by get (the key
        # was never read), not by the sweep (the overwrite revived
        # the slot first).
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(ttl_s=5.0, clock=lambda: clock[0])
        key = shared_key("c", "e", 0, 0, 1, 3)
        store.put(key, [1])
        clock[0] = 6.0
        store.put(key, [2])  # overwrite of an already-dead entry
        assert store.expirations == 1
        assert store.get(key) == [2]
        # A live overwrite is not an expiration.
        store.put(key, [3])
        assert store.expirations == 1

    def test_ttl_store_rejects_nonpositive_ttl(self):
        from repro.cluster import TTLStore

        with pytest.raises(InvalidParameterError):
            TTLStore(ttl_s=0)
        with pytest.raises(InvalidParameterError):
            TTLStore(ttl_s=1.0, max_entries=0)

    def test_ttl_store_bound_evicts_soonest_expiring_first(self):
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(
            ttl_s=10.0, clock=lambda: clock[0], max_entries=2
        )
        k1 = shared_key("a", "e", 0, 0, 0, 0)
        k2 = shared_key("b", "e", 0, 0, 0, 0)
        k3 = shared_key("c", "e", 0, 0, 0, 0)
        store.put(k1, [1])
        clock[0] = 1.0
        store.put(k2, [2])
        clock[0] = 2.0
        store.put(k3, [3])
        # k1 expires soonest, so the bound evicted it — live, hence an
        # eviction, not an expiration.
        assert store.get(k1) is None
        assert store.get(k2) == [2] and store.get(k3) == [3]
        assert store.evictions == 1 and store.expirations == 0

    def test_ttl_store_bound_reclaims_expired_before_evicting_live(self):
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(
            ttl_s=5.0, clock=lambda: clock[0], max_entries=2
        )
        dead = shared_key("a", "e", 0, 0, 0, 0)
        store.put(dead, [1])
        clock[0] = 6.0  # the first entry is now expired
        store.put(shared_key("b", "e", 0, 0, 0, 0), [2])
        store.put(shared_key("c", "e", 0, 0, 0, 0), [3])
        # The sweep reclaimed the dead entry; no live one was evicted.
        assert store.expirations == 1 and store.evictions == 0
        assert len(store) == 2

    def test_ttl_store_overwrite_refreshes_eviction_order(self):
        from repro.cluster import TTLStore

        clock = [0.0]
        store = TTLStore(
            ttl_s=10.0, clock=lambda: clock[0], max_entries=2
        )
        k1 = shared_key("a", "e", 0, 0, 0, 0)
        k2 = shared_key("b", "e", 0, 0, 0, 0)
        store.put(k1, [1])
        clock[0] = 1.0
        store.put(k2, [2])
        clock[0] = 2.0
        store.put(k1, [10])  # overwrite: k1 now expires *after* k2
        clock[0] = 3.0
        store.put(shared_key("c", "e", 0, 0, 0, 0), [3])
        assert store.get(k2) is None  # k2 became soonest-expiring
        assert store.get(k1) == [10]
        assert store.evictions == 1

    def test_cluster_serves_correctly_over_bounded_ttl_store(self):
        from repro.cluster import TTLStore

        cache = InMemorySharedCache(store=TTLStore(60.0, max_entries=4))
        cluster = ClusterEngine(
            num_shards=3, shared_cache=cache, drift_window=None
        )
        x = uniform(60, 8, seed=7)
        cluster.add_column("c", x, 8)
        for lo in range(8):
            assert cluster.query("c", lo, 7).positions() == brute_range(
                x, lo, 7
            )
        # The bound held however many distinct queries flowed through.
        assert len(cache) <= 4
        assert cache.store.evictions > 0

    def test_cluster_serves_correctly_over_ttl_store(self):
        # The deployment the TTL path models: no eager invalidation at
        # all — versioned keys alone must keep answers exact while
        # expiry bounds the dead weight.
        from repro.cluster import TTLStore

        clock = [0.0]
        cache = InMemorySharedCache(store=TTLStore(5.0, clock=lambda: clock[0]))
        cluster = ClusterEngine(
            num_shards=2, shared_cache=cache, drift_window=None
        )
        x = uniform(40, 8, seed=42)
        cluster.add_column("c", x, 8, dynamism="fully_dynamic")
        model = list(x)
        assert cluster.query("c", 1, 4).positions() == brute_range(model, 1, 4)
        cluster.change("c", 0, 7)
        model[0] = 7
        # The stale entry still sits in the store (invalidation is a
        # no-op there), yet can never be served again.
        assert cluster.query("c", 1, 4).positions() == brute_range(model, 1, 4)
        before = len(cache)
        clock[0] = 6.0
        stale = shared_key(
            "c", cluster.columns["c"].epoch, cluster.shard_uids[0], 0, 1, 4
        )
        assert cache.get(stale) is None  # aged out
        assert len(cache) < before or before == 0

    def test_invalidate_requires_column_for_shard_scope(self):
        cache = InMemorySharedCache(8)
        with pytest.raises(InvalidParameterError):
            cache.invalidate(shard_id=3)
