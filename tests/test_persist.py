"""The durable persistence tier: snapshots, WAL, crash-safe restart.

Three layers of guarantees, each tested differentially against a live
twin of the same cluster:

* **formats** — the ``*.snap`` snapshot and the CRC-framed WAL round
  trip byte-exactly, and *every* injected corruption is either healed
  (a torn tail, the one legal crash artifact) or loudly typed
  (:class:`~repro.errors.CorruptSnapshot` /
  :class:`~repro.errors.CorruptWAL`) — never a silently wrong answer;
* **recovery** — checkpoint + WAL replay reproduces the exact answers,
  shard plan, backend verdicts and epochs of the cluster that died,
  under both the serial and the process executor;
* **policy** — the background :class:`~repro.persist.Checkpointer`
  fires on its mutation/byte thresholds and rotation keeps the log
  bounded.

The crash-injection helpers (:func:`flip_byte`,
:func:`truncate_file`) are deliberately dumb — they model what disks
and crashes actually do to files, a byte at a time.
"""

import os
import pickle
import random
import struct
import time

import pytest

from repro.cluster import ClusterEngine, ProcessExecutor, ShardedTable
from repro.engine import QueryEngine
from repro.errors import (
    CorruptSnapshot,
    CorruptWAL,
    InvalidParameterError,
    PersistenceError,
)
from repro.persist import (
    CheckpointPolicy,
    Checkpointer,
    DeltaLog,
    FileCacheStore,
    SnapshotFile,
    checkpoint_cluster,
    current_manifest,
    flatten_codes,
    init_persistence,
    load_shard_engine,
    read_current,
    restore_cluster,
    unflatten_codes,
    wal_segments,
    write_shard_snapshot,
)
from repro.persist.checkpoint import WAL_DIRNAME
from repro.query import Range


# ----------------------------------------------------------------------
# Crash injection helpers
# ----------------------------------------------------------------------


def flip_byte(path, offset):
    """Corrupt one byte in place — the classic bit-rot injection."""
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def truncate_file(path, keep):
    """Chop a file mid-write — what a crash during append leaves."""
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def _wal_files(directory):
    wal_dir = os.path.join(directory, WAL_DIRNAME)
    return [os.path.join(wal_dir, name) for name in wal_segments(wal_dir)]


# ----------------------------------------------------------------------
# Codes flattening
# ----------------------------------------------------------------------


class TestCodesRoundTrip:
    def test_flatten_unflatten_with_holes(self):
        codes = [3, None, 0, 7, None, 2]
        assert unflatten_codes(flatten_codes(codes)) == codes

    def test_flatten_empty(self):
        assert unflatten_codes(flatten_codes([])) == []


# ----------------------------------------------------------------------
# Snapshot format
# ----------------------------------------------------------------------


def _build_engine(seed=5, n=600, sigma=32, backend=None):
    rng = random.Random(seed)
    x = [rng.randrange(sigma) for _ in range(n)]
    engine = QueryEngine()
    engine.add_column("c", x, sigma, backend=backend)
    return x, engine


class TestSnapshot:
    def test_round_trip_answers(self, tmp_path):
        x, engine = _build_engine(backend="pagh-rao")
        path = str(tmp_path / "a.snap")
        manifest = write_shard_snapshot(path, engine)
        assert manifest["kind"] == "shard-engine"
        restored = load_shard_engine(path)
        for lo, hi in [(0, 3), (5, 20), (0, 31)]:
            assert (
                restored.query("c", lo, hi).positions()
                == engine.query("c", lo, hi).positions()
            )

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        _, engine = _build_engine()
        path = str(tmp_path / "a.snap")
        write_shard_snapshot(path, engine)
        assert os.listdir(tmp_path) == ["a.snap"]

    def test_every_byte_flip_is_detected(self, tmp_path):
        """Fuzz: any single corrupted byte raises CorruptSnapshot, on
        open or on the full-file verify — never a silent pass."""
        _, engine = _build_engine(n=120, sigma=8, backend="bitmap-plain")
        path = str(tmp_path / "a.snap")
        write_shard_snapshot(path, engine)
        size = os.path.getsize(path)
        rng = random.Random(99)
        offsets = {0, 4, size - 1, size // 2} | {
            rng.randrange(size) for _ in range(24)
        }
        for offset in offsets:
            flip_byte(path, offset)
            try:
                with pytest.raises(CorruptSnapshot):
                    snap = SnapshotFile(path)
                    snap.verify()
                    snap.close()
            finally:
                flip_byte(path, offset)  # restore for the next probe
        # And the restored original still verifies.
        snap = SnapshotFile(path)
        snap.verify()
        snap.close()

    def test_truncated_snapshot_raises(self, tmp_path):
        _, engine = _build_engine(n=100, sigma=8)
        path = str(tmp_path / "a.snap")
        write_shard_snapshot(path, engine)
        truncate_file(path, os.path.getsize(path) // 2)
        with pytest.raises(CorruptSnapshot):
            SnapshotFile(path)

    def test_deferred_column_persists_codes_only(self, tmp_path):
        x, engine = _build_engine()
        path = str(tmp_path / "a.snap")
        write_shard_snapshot(path, engine)
        snap = SnapshotFile(path)
        (entry,) = snap.manifest["columns"]
        assert entry["skeleton"] is not None
        snap.close()
        restored = load_shard_engine(path, defer=True)
        column = restored.column("c")
        assert column.deferred
        assert column.codes == x


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------


class TestDeltaLog:
    def test_append_reopen_round_trip(self, tmp_path):
        d = str(tmp_path)
        log, records = DeltaLog.open(d)
        assert records == []
        wrote = [("append", "c", i) for i in range(25)]
        for record in wrote:
            log.append(record)
        assert log.last_seq == 25
        log.close()
        log2, records2 = DeltaLog.open(d)
        assert [r for _seq, r in records2] == wrote
        assert [seq for seq, _r in records2] == list(range(1, 26))
        assert log2.last_seq == 25
        log2.append(("change", "c", 0, 1))
        assert log2.last_seq == 26
        log2.close()

    def test_rotation_deletes_old_segments(self, tmp_path):
        d = str(tmp_path)
        log, _ = DeltaLog.open(d)
        for i in range(10):
            log.append(("append", "c", i))
        log.rotate()
        assert len(wal_segments(d)) == 1
        for i in range(3):
            log.append(("append", "c", i))
        log.close()
        _log, records = DeltaLog.open(d)
        _log.close()
        # Only the post-rotation tail survives; sequence numbers
        # continue from before the rotation.
        assert [seq for seq, _r in records] == [11, 12, 13]

    def test_torn_tail_is_truncated_cleanly(self, tmp_path):
        d = str(tmp_path)
        log, _ = DeltaLog.open(d)
        for i in range(8):
            log.append(("append", "c", i))
        log.close()
        (path,) = [os.path.join(d, s) for s in wal_segments(d)]
        size = os.path.getsize(path)
        truncate_file(path, size - 3)  # crash mid final record
        log2, records = DeltaLog.open(d)
        assert len(records) == 7  # the torn record is gone, clean tail
        # The tail is REALLY gone: appends land where it was.
        seq = log2.append(("append", "c", 99))
        assert seq == 8
        log2.close()
        _log, records2 = DeltaLog.open(d)
        _log.close()
        assert [r for _s, r in records2][-1] == ("append", "c", 99)

    def test_torn_final_frame_crc_is_truncated(self, tmp_path):
        """A crash can also leave a full-length frame with garbage
        bytes: corrupting the LAST record is healed as a torn tail."""
        d = str(tmp_path)
        log, _ = DeltaLog.open(d)
        for i in range(5):
            log.append(("append", "c", i))
        log.close()
        path = os.path.join(d, wal_segments(d)[0])
        flip_byte(path, os.path.getsize(path) - 1)
        _log, records = DeltaLog.open(d)
        _log.close()
        assert len(records) == 4

    def test_mid_file_corruption_raises(self, tmp_path):
        d = str(tmp_path)
        log, _ = DeltaLog.open(d)
        offsets = []
        for i in range(6):
            offsets.append(log.segment_bytes)
            log.append(("append", "c", i))
        log.close()
        path = os.path.join(d, wal_segments(d)[0])
        header = struct.calcsize("<4sHHQ")
        # Flip a byte inside record 2's payload — not the final frame,
        # so this is bit rot, not a torn tail: refuse to recover.
        flip_byte(path, header + offsets[2] - offsets[0] + 9)
        with pytest.raises(CorruptWAL):
            DeltaLog.open(d)

    def test_bad_magic_raises(self, tmp_path):
        d = str(tmp_path)
        log, _ = DeltaLog.open(d)
        log.append(("append", "c", 1))
        log.close()
        path = os.path.join(d, wal_segments(d)[0])
        flip_byte(path, 0)
        with pytest.raises(CorruptWAL):
            DeltaLog.open(d)

    def test_sync_modes_validate(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            DeltaLog.open(str(tmp_path), sync="yolo")
        for mode in ("none", "flush", "fsync"):
            log, _ = DeltaLog.open(str(tmp_path / mode), sync=mode)
            log.append(("append", "c", 0))
            log.close()


# ----------------------------------------------------------------------
# Cluster checkpoint / restore
# ----------------------------------------------------------------------


def _drive(cluster, rng, rounds=120):
    """A mixed mutation workload: appends, changes, deletes, DDL."""
    deleted = set()
    for i in range(rounds):
        op = rng.randrange(10)
        if op < 6:
            cluster.append("a", rng.randrange(16))
        elif op < 8:
            cluster.append("b", rng.randrange(40))
        elif op == 8:
            pos = rng.randrange(cluster.total_rows("b"))
            if pos not in deleted:
                cluster.change("b", pos, rng.randrange(40))
        else:
            pos = rng.randrange(cluster.total_rows("b"))
            if pos not in deleted:
                cluster.delete("b", pos)
                deleted.add(pos)


def _answers(cluster):
    return (
        sorted(cluster.query("a", 2, 9).positions()),
        sorted(cluster.query("b", 0, 25).positions()),
        cluster.count(Range("a", 0, 7)),
    )


def _fingerprint(cluster):
    """Control-plane equality: shards, verdicts, pins, epochs."""
    return (
        cluster.num_shards,
        [sorted(e.columns) for e in cluster.shards],
        {
            name: (meta.sigma, meta.dynamism, meta.backend,
                   dict(meta.shard_pins), meta.epoch)
            for name, meta in cluster.columns.items()
        },
    )


@pytest.fixture
def durable_cluster(tmp_path):
    """A live cluster with a baseline checkpoint + attached WAL, plus
    a mirror cluster receiving the identical workload in RAM only."""
    rng = random.Random(17)
    base_a = [rng.randrange(16) for _ in range(900)]
    base_b = [rng.randrange(40) for _ in range(900)]

    def build():
        c = ClusterEngine(target_shard_rows=256)
        c.add_column("a", base_a, dynamism="semidynamic")
        c.add_column("b", base_b, dynamism="fully_dynamic",
                     backend="deletable")
        return c

    cluster = build()
    mirror = build()
    directory = str(tmp_path / "dur")
    init_persistence(cluster, directory)
    yield cluster, mirror, directory, rng.random
    cluster.close()
    mirror.close()


class TestCheckpointRestore:
    def test_restore_replays_wal_to_identical_answers(self, tmp_path):
        rng = random.Random(31)
        cluster = ClusterEngine(target_shard_rows=200)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(800)],
            dynamism="semidynamic",
        )
        cluster.add_column(
            "b", [rng.randrange(40) for _ in range(800)],
            dynamism="fully_dynamic", backend="deletable",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        _drive(cluster, rng)
        cluster.migrate("a", backend="buffered-appendable")
        cluster.rebalance()
        expected = _answers(cluster)
        fingerprint = _fingerprint(cluster)
        wal_len = cluster.wal.last_seq
        cluster.close()  # acknowledged writes are on disk; die now

        restored = restore_cluster(d)
        try:
            assert _answers(restored) == expected
            assert _fingerprint(restored) == fingerprint
            assert restored.wal is not None
            assert restored.wal.last_seq == wal_len
        finally:
            restored.close()

    def test_checkpoint_then_restore_skips_replayed_prefix(self, tmp_path):
        rng = random.Random(32)
        cluster = ClusterEngine(target_shard_rows=300)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(600)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        for _ in range(60):
            cluster.append("a", rng.randrange(16))
        info = checkpoint_cluster(cluster, d)
        assert info.applied_seq == 60
        for _ in range(15):
            cluster.append("a", rng.randrange(16))
        expected = _answers_one(cluster)
        cluster.close()

        restored = restore_cluster(d)
        try:
            # Only the 15 post-checkpoint records replay.
            assert _answers_one(restored) == expected
            assert restored.total_rows("a") == 675
        finally:
            restored.close()

    def test_restore_without_wal_attachment_is_read_only_cold_start(
        self, tmp_path
    ):
        rng = random.Random(33)
        cluster = ClusterEngine(num_shards=3)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(300)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        cluster.append("a", 3)
        expected = _answers_one(cluster)
        cluster.close()
        restored = restore_cluster(d, attach_wal=False)
        try:
            assert restored.wal is None
            assert _answers_one(restored) == expected
        finally:
            restored.close()

    def test_lifecycle_records_replay(self, tmp_path):
        """split / merge / unpin / set_latency journal and replay."""
        rng = random.Random(34)
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(400)],
            dynamism="semidynamic", backend="appendable",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        cluster.split_shard(0)
        cluster.merge_shards(1)
        cluster.unpin("a")
        cluster.set_io_latency(0.0001)
        expected = _answers_one(cluster)
        fingerprint = _fingerprint(cluster)
        cluster.close()
        restored = restore_cluster(d)
        try:
            assert _answers_one(restored) == expected
            assert _fingerprint(restored) == fingerprint
            assert restored.io_latency_s == 0.0001
        finally:
            restored.close()

    def test_epochs_survive_restart(self, durable_cluster):
        """Durable cache keys: the column epoch a FileCacheStore keys
        by is identical after a cold restore."""
        cluster, _mirror, directory, _rand = durable_cluster
        epochs = {n: m.epoch for n, m in cluster.columns.items()}
        cluster.append("a", 3)
        cluster.close()
        restored = restore_cluster(directory)
        try:
            assert {n: m.epoch for n, m in restored.columns.items()} == epochs
        finally:
            restored.close()

    def test_no_checkpoint_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            restore_cluster(str(tmp_path))

    def test_double_init_raises(self, durable_cluster):
        cluster, _mirror, directory, _rand = durable_cluster
        with pytest.raises(PersistenceError):
            init_persistence(cluster, directory)

    def test_manifest_tamper_detected(self, durable_cluster):
        cluster, _mirror, directory, _rand = durable_cluster
        cluster.close()
        current = read_current(directory)
        manifest_path = os.path.join(directory, current, "MANIFEST.json")
        flip_byte(manifest_path, os.path.getsize(manifest_path) // 2)
        with pytest.raises(PersistenceError):
            restore_cluster(directory)

    def test_snapshot_tamper_detected_at_restore(self, durable_cluster):
        cluster, _mirror, directory, _rand = durable_cluster
        cluster.close()
        current = read_current(directory)
        manifest = current_manifest(directory)
        snap_path = os.path.join(directory, current, manifest["shards"][0])
        flip_byte(snap_path, os.path.getsize(snap_path) - 2)
        with pytest.raises(CorruptSnapshot):
            restore_cluster(directory)

    def test_torn_wal_tail_recovers(self, durable_cluster):
        cluster, mirror, directory, _rand = durable_cluster
        rng = random.Random(35)
        for _ in range(30):
            code = rng.randrange(16)
            cluster.append("a", code)
            mirror.append("a", code)
        cluster.close()
        (path,) = _wal_files(directory)
        truncate_file(path, os.path.getsize(path) - 2)
        restored = restore_cluster(directory)
        try:
            # One acknowledged record was torn (the sync mode's
            # documented exposure); everything before it replays.
            assert restored.total_rows("a") in (929, 930)
            lo, hi = 2, 9
            got = set(restored.query("a", lo, hi).positions())
            want = set(mirror.query("a", lo, hi).positions())
            assert got <= want
            assert len(want) - len(got) <= 1
        finally:
            restored.close()


def _answers_one(cluster):
    return sorted(cluster.query("a", 2, 9).positions())


class TestProcessExecutorRestore:
    def test_restore_under_resident_executor(self, tmp_path):
        rng = random.Random(41)
        d = str(tmp_path / "dur")
        with ProcessExecutor(max_workers=2) as pool:
            cluster = ClusterEngine(target_shard_rows=200, executor=pool)
            cluster.add_column(
                "a", [rng.randrange(16) for _ in range(900)],
                dynamism="semidynamic",
            )
            init_persistence(cluster, d)
            for _ in range(50):
                cluster.append("a", rng.randrange(16))
            expected = _answers_one(cluster)
            fingerprint = _fingerprint(cluster)
            deferred = [
                [column.deferred for column in engine.columns.values()]
                for engine in cluster.shards
            ]
            cluster.close()

            restored = restore_cluster(d, executor=pool)
            try:
                assert _answers_one(restored) == expected
                assert _fingerprint(restored) == fingerprint
                # Coordinator-side deferredness matches the live
                # cluster shard for shard: workers hold the built
                # indexes; only shards the replayed lifecycle builds
                # locally (post-split) are materialized — the same
                # ones the pre-crash cluster had built locally.
                assert [
                    [col.deferred for col in engine.columns.values()]
                    for engine in restored.shards
                ] == deferred
            finally:
                restored.close()

    def test_serial_checkpoint_restores_under_process_and_back(
        self, tmp_path
    ):
        """Executor mobility: a checkpoint written serially restores
        resident, and a resident checkpoint restores serially."""
        rng = random.Random(42)
        d1 = str(tmp_path / "s2p")
        d2 = str(tmp_path / "p2s")
        serial = ClusterEngine(num_shards=4)
        serial.add_column(
            "a", [rng.randrange(16) for _ in range(700)],
            dynamism="semidynamic",
        )
        init_persistence(serial, d1)
        expected = _answers_one(serial)
        serial.close()
        with ProcessExecutor(max_workers=2) as pool:
            resident = restore_cluster(d1, executor=pool)
            assert _answers_one(resident) == expected
            checkpoint_cluster(resident, d2)
            resident.close()
        back = restore_cluster(d2, attach_wal=False)
        try:
            assert _answers_one(back) == expected
        finally:
            back.close()


# ----------------------------------------------------------------------
# Checkpoint policy
# ----------------------------------------------------------------------


class TestCheckpointer:
    def test_policy_validation(self):
        CheckpointPolicy()  # both-None is legal: manual-only mode
        with pytest.raises(InvalidParameterError):
            CheckpointPolicy(every_mutations=0)
        with pytest.raises(InvalidParameterError):
            CheckpointPolicy(every_wal_bytes=-5)

    def test_background_checkpoint_fires_on_mutations(self, tmp_path):
        rng = random.Random(51)
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(300)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        checkpointer = Checkpointer(
            cluster, d, CheckpointPolicy(every_mutations=10)
        )
        try:
            for _ in range(40):
                cluster.append("a", rng.randrange(16))
            deadline = time.monotonic() + 10.0
            while (
                checkpointer.checkpoints == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert checkpointer.checkpoints >= 1
            assert read_current(d) != "ckpt-00000001"
            assert checkpointer.last_info.applied_seq > 0
        finally:
            checkpointer.close()
            cluster.close()
        restored = restore_cluster(d, attach_wal=False)
        restored.close()

    def test_checkpoint_now_rotates_wal(self, tmp_path):
        rng = random.Random(52)
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(200)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        for _ in range(20):
            cluster.append("a", 1)
        bytes_before = cluster.wal.segment_bytes
        checkpointer = Checkpointer(
            cluster, d, CheckpointPolicy(every_mutations=10_000)
        )
        try:
            info = checkpointer.checkpoint_now()
            assert info.applied_seq == 20
            assert cluster.wal.segment_bytes < bytes_before
        finally:
            checkpointer.close()
            cluster.close()


# ----------------------------------------------------------------------
# FileCacheStore
# ----------------------------------------------------------------------


def _key(column="c", uid=7, epoch="e" * 12, version=3, lo=1, hi=5):
    return (column, uid, epoch, version, lo, hi)


class TestFileCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        store = FileCacheStore(str(tmp_path))
        assert store.get(_key()) is None
        store.put(_key(), (1, 5, 9, 200))
        assert store.get(_key()) == (1, 5, 9, 200)
        assert _key() in store
        assert store.get(_key(version=4)) is None

    def test_empty_positions_round_trip(self, tmp_path):
        store = FileCacheStore(str(tmp_path))
        store.put(_key(), ())
        assert store.get(_key()) == ()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = FileCacheStore(str(tmp_path))
        store.put(_key(), (1, 2, 3))
        path = store._path(_key())
        flip_byte(path, os.path.getsize(path) - 1)
        assert store.get(_key()) is None
        assert not os.path.exists(path)

    def test_invalidate_granularities(self, tmp_path):
        store = FileCacheStore(str(tmp_path))
        store.put(_key(uid=1, lo=0, hi=1), (1,))
        store.put(_key(uid=1, lo=2, hi=3), (2,))
        store.put(_key(uid=2), (3,))
        store.put(_key(column="d"), (4,))
        assert store.invalidate_prefix(("c", 1)) == 2
        assert store.get(_key(uid=1, lo=0, hi=1)) is None
        assert store.get(_key(uid=2)) == (3,)
        assert store.invalidate_prefix(("c",)) == 1
        assert store.get(_key(column="d")) == (4,)
        assert store.invalidate_prefix(()) == 1
        assert store.entry_count() == 0

    def test_pickles_to_same_directory(self, tmp_path):
        store = FileCacheStore(str(tmp_path))
        store.put(_key(), (8,))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get(_key()) == (8,)

    def test_worker_side_store_serves_across_drop_caches(self, tmp_path):
        """The resident query path consults the store: a second cold
        query (caches dropped) answers from durable entries."""
        rng = random.Random(61)
        store_dir = str(tmp_path / "store")
        with ProcessExecutor(max_workers=2) as pool:
            pool.attach_cache_store(FileCacheStore(store_dir))
            cluster = ClusterEngine(num_shards=4, executor=pool)
            cluster.add_column(
                "a", [rng.randrange(16) for _ in range(600)],
                dynamism="semidynamic",
            )
            expected = sorted(cluster.query("a", 2, 9).positions())
            probe = FileCacheStore(store_dir)
            assert probe.entry_count() >= 4  # one entry per shard
            cluster.drop_caches()
            assert sorted(cluster.query("a", 2, 9).positions()) == expected
            cluster.close()


# ----------------------------------------------------------------------
# Replicas, tables, front ends
# ----------------------------------------------------------------------


class TestReplicaRehydrate:
    def test_replicas_adopt_restore_snapshots(self, tmp_path):
        from repro.obs import MetricsRegistry
        from repro.serve import ReplicaSet

        rng = random.Random(71)
        cluster = ClusterEngine(target_shard_rows=256)
        cluster.add_column(
            "a", [rng.randrange(16) for _ in range(900)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        expected = _answers_one(cluster)
        cluster.close()

        metrics = MetricsRegistry()
        restored = restore_cluster(d, metrics=metrics)
        try:
            replicas = ReplicaSet(capacity=2, metrics=metrics)
            restored.attach_replicas(replicas)
            assert len(replicas._synced) == 2
            assert metrics.counter("serve.replica.rehydrated").value == 2
            assert _answers_one(restored) == expected
            # A mutation drops the touched shard's snapshot source so
            # a later refresh can never adopt a stale file.
            restored.append("a", 1)
            last_uid = restored.shard_uids[-1]
            assert last_uid not in restored._snap_sources
        finally:
            restored.close()


class TestShardedTablePersistence:
    def test_table_round_trip_with_value_mirror(self, tmp_path):
        rng = random.Random(81)
        values = [rng.choice("pqrstuvw") for _ in range(500)]
        nums = [rng.randrange(50) for _ in range(500)]
        table = ShardedTable(
            {"s": values, "n": nums},
            target_shard_rows=200,
            dynamism="fully_dynamic",
        )
        d = str(tmp_path / "dur")
        table.init_persistence(d)
        for _ in range(30):
            table.append_row(
                {"s": rng.choice("pqrstuvw"), "n": rng.randrange(50)}
            )
        table.change("n", 3, 42)
        expected = table.select(Range("s", "q", "t"))
        row = table.row(510)
        table.cluster.close()

        restored = ShardedTable.restore(d)
        try:
            assert restored.num_rows == 530
            assert restored.select(Range("s", "q", "t")) == expected
            assert restored.row(510) == row
            assert restored.row(3)["n"] == 42
            # The mirror keeps working: value-space writes post-restore.
            rid = restored.append_row({"s": "p", "n": 1})
            assert restored.row(rid) == {"s": "p", "n": 1}
        finally:
            restored.cluster.close()

    def test_restore_requires_table_extras(self, tmp_path):
        rng = random.Random(82)
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "a", [rng.randrange(8) for _ in range(100)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        cluster.close()
        with pytest.raises(PersistenceError):
            ShardedTable.restore(d)


class TestFrontEndPersistence:
    def test_front_end_round_trip_single_and_fleet(self, tmp_path):
        import asyncio

        from repro.serve import FrontEnd

        rng = random.Random(91)
        nums = [rng.randrange(50) for _ in range(400)]

        async def run():
            single_dir = str(tmp_path / "single")
            fleet_dir = str(tmp_path / "fleet")

            def engine():
                c = ClusterEngine(num_shards=3)
                c.add_column("x", nums, dynamism="semidynamic")
                return c

            fe = FrontEnd(engine())
            expected = sorted(
                (await fe.query(Range("x", 10, 30))).positions()
            )
            infos = await fe.checkpoint(single_dir)
            assert len(infos) == 1
            await fe.close()
            fe.engines[0].close()

            fe2 = FrontEnd.restore(single_dir)
            got = await fe2.query(Range("x", 10, 30))
            assert sorted(got.positions()) == expected
            await fe2.close()
            for e in fe2.engines:
                e.close()

            fleet = FrontEnd([engine(), engine()])
            infos = await fleet.checkpoint(fleet_dir)
            assert len(infos) == 2
            await fleet.close()
            for e in fleet.engines:
                e.close()
            assert sorted(os.listdir(fleet_dir)) == [
                "engine-00", "engine-01",
            ]
            fleet2 = FrontEnd.restore(
                fleet_dir, restore_kwargs={"attach_wal": False}
            )
            got = await fleet2.query(Range("x", 10, 30))
            assert sorted(got.positions()) == expected
            await fleet2.close()
            for e in fleet2.engines:
                e.close()

        asyncio.run(run())

    def test_restore_empty_directory_raises(self, tmp_path):
        from repro.serve import FrontEnd

        with pytest.raises(InvalidParameterError):
            FrontEnd.restore(str(tmp_path))


# ----------------------------------------------------------------------
# The inspect CLI
# ----------------------------------------------------------------------


class TestInspectCLI:
    def _durable(self, tmp_path):
        rng = random.Random(101)
        cluster = ClusterEngine(num_shards=2)
        cluster.add_column(
            "a", [rng.randrange(8) for _ in range(200)],
            dynamism="semidynamic",
        )
        d = str(tmp_path / "dur")
        init_persistence(cluster, d)
        for _ in range(10):
            cluster.append("a", rng.randrange(8))
        cluster.close()
        return d

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        from repro.persist.__main__ import main

        d = self._durable(tmp_path)
        assert main(["inspect", d]) == 0
        out = capsys.readouterr().out
        assert "all checksums OK" in out
        assert "column 'a'" in out

    def test_torn_tail_reported_not_healed_exit_zero(self, tmp_path, capsys):
        """A torn tail is the legal crash artifact: reported, exit 0,
        and — inspection being read-only — NOT truncated."""
        from repro.persist.__main__ import main

        d = self._durable(tmp_path)
        (path,) = _wal_files(d)
        size = os.path.getsize(path)
        truncate_file(path, size - 2)
        assert main(["inspect", d]) == 0
        assert "torn" in capsys.readouterr().out
        assert os.path.getsize(path) == size - 2

    def test_mid_file_corruption_exits_one(self, tmp_path, capsys):
        from repro.persist.__main__ import main

        d = self._durable(tmp_path)
        (path,) = _wal_files(d)
        size = os.path.getsize(path)
        # Inside the first record's payload — bit rot, not a tail.
        flip_byte(path, struct.calcsize("<4sHHQ") + 10)
        assert main(["inspect", d]) == 1
        assert "CRC MISMATCH" in capsys.readouterr().out
        assert os.path.getsize(path) == size  # still read-only

    def test_usage_exits_two(self, capsys):
        from repro.persist.__main__ import main

        assert main([]) == 2
        assert main(["inspect", "/nonexistent-dir-xyz"]) == 2
