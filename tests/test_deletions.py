"""Tests for deletion support (§4 introduction)."""

import random

import pytest

from tests.conftest import brute_range
from repro.core import DeletableIndex
from repro.core.deletions import DeletionTracker
from repro.errors import InvalidParameterError, UpdateError
from repro.iomodel import Disk
from repro.model import distributions as dist


class TestDeletionTracker:
    def test_rank_and_membership(self):
        t = DeletionTracker(Disk(block_bits=512, mem_blocks=0))
        for p in [5, 17, 3, 99]:
            t.mark_deleted(p)
        assert len(t) == 4
        assert t.is_deleted(17)
        assert not t.is_deleted(4)
        assert t.deleted_at_or_before(5) == 2
        assert t.deleted_at_or_before(99) == 4

    def test_double_delete_rejected(self):
        t = DeletionTracker(Disk(block_bits=512, mem_blocks=0))
        t.mark_deleted(5)
        with pytest.raises(UpdateError):
            t.mark_deleted(5)

    def test_translation(self):
        t = DeletionTracker(Disk(block_bits=512, mem_blocks=0))
        n = 20
        for p in [0, 3, 4, 10]:
            t.mark_deleted(p)
        live = [i for i in range(n) if i not in (0, 3, 4, 10)]
        for logical, physical in enumerate(live):
            assert t.logical_to_physical(logical, n) == physical
            assert t.physical_to_logical(physical) == logical

    def test_translation_errors(self):
        t = DeletionTracker(Disk(block_bits=512, mem_blocks=0))
        t.mark_deleted(1)
        with pytest.raises(UpdateError):
            t.physical_to_logical(1)
        with pytest.raises(InvalidParameterError):
            t.logical_to_physical(-1, 10)
        with pytest.raises(InvalidParameterError):
            t.logical_to_physical(9, 10)  # only 9 live elements (0..8)


class TestDeletableIndex:
    def test_deleted_positions_disappear(self):
        x = [3, 1, 3, 2, 3]
        idx = DeletableIndex(x, 4)
        assert idx.range_query(3, 3).positions() == [0, 2, 4]
        idx.delete(2)
        assert idx.range_query(3, 3).positions() == [0, 4]
        assert idx.is_deleted(2)
        assert idx.live_count() == 4

    def test_full_range_excludes_deleted(self):
        x = dist.uniform(300, 8, seed=1)
        idx = DeletableIndex(x, 8)
        idx.delete(7)
        idx.delete(100)
        got = idx.range_query(0, 7).positions()
        assert 7 not in got and 100 not in got
        assert len(got) == 298

    def test_mixed_workload_matches_oracle(self):
        sigma = 12
        x = list(dist.uniform(400, sigma, seed=2))
        idx = DeletableIndex(x, sigma, rebuild_fraction=0.9)
        dead: set[int] = set()
        rng = random.Random(0)
        for step in range(600):
            r = rng.random()
            if r < 0.3 and len(dead) < len(x) - 20:
                live = [i for i in range(len(x)) if i not in dead]
                p = rng.choice(live)
                idx.delete(p)
                dead.add(p)
            elif r < 0.6:
                ch = rng.randrange(sigma)
                idx.append(ch)
                x.append(ch)
            else:
                live = [i for i in range(len(x)) if i not in dead]
                p = rng.choice(live)
                ch = rng.randrange(sigma)
                idx.change(p, ch)
                x[p] = ch
            if step % 97 == 0:
                lo, hi = sorted((rng.randrange(sigma), rng.randrange(sigma)))
                want = [
                    i for i in brute_range(x, lo, hi) if i not in dead
                ]
                assert idx.range_query(lo, hi).positions() == want

    def test_compaction_renumbers(self):
        x = [0, 1] * 20
        idx = DeletableIndex(x, 2, rebuild_fraction=0.25)
        for p in range(0, 20, 2):  # delete ten 0s
            idx.delete(p)
        assert idx.compactions >= 1
        # After compaction: 10 zeros and 20 ones remain, renumbered.
        assert idx.live_count() == 30
        assert idx.n == 30
        assert len(idx.range_query(0, 0).positions()) == 10
        assert len(idx.range_query(1, 1).positions()) == 20

    def test_operations_on_deleted_position_rejected(self):
        idx = DeletableIndex([0, 1, 0], 2)
        idx.delete(1)
        with pytest.raises(UpdateError):
            idx.delete(1)
        with pytest.raises(UpdateError):
            idx.change(1, 0)

    def test_infinity_outside_user_alphabet(self):
        idx = DeletableIndex([0, 1], 2)
        assert idx.infinity == 2
        with pytest.raises(InvalidParameterError):
            idx.append(idx.infinity)
        with pytest.raises(InvalidParameterError):
            idx.change(0, idx.infinity)

    def test_translation_roundtrip(self):
        x = dist.uniform(100, 4, seed=3)
        idx = DeletableIndex(x, 4, rebuild_fraction=0.95)
        for p in [3, 50, 51, 99]:
            idx.delete(p)
        live = [i for i in range(100) if i not in (3, 50, 51, 99)]
        for j in [0, 10, len(live) - 1]:
            assert idx.logical_to_physical(j) == live[j]
            assert idx.physical_to_logical(live[j]) == j
