"""Tests for the Theorem 1 structure (§2.1)."""

import math
import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import UniformTreeIndex
from repro.errors import InvalidParameterError, QueryError
from repro.model import distributions as dist


class TestCorrectness:
    @pytest.mark.parametrize("name", ["uniform", "zipf", "clustered", "sequential"])
    def test_matches_brute_force(self, name):
        x = dist.by_name(name)(1200, 32, seed=3)
        idx = UniformTreeIndex(x, 32)
        rng = random.Random(0)
        for lo, hi in random_ranges(rng, 32, 30):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_non_power_of_two_alphabet(self):
        x = dist.uniform(800, 23, seed=4)
        idx = UniformTreeIndex(x, 23)
        rng = random.Random(1)
        for lo, hi in random_ranges(rng, 23, 20):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_sigma_one(self):
        idx = UniformTreeIndex([0] * 50, 1)
        assert idx.range_query(0, 0).positions() == list(range(50))

    def test_empty_string(self):
        idx = UniformTreeIndex([], 4)
        assert idx.range_query(0, 3).positions() == []

    def test_complement_trick_engages(self):
        x = dist.uniform(1000, 8, seed=5)
        idx = UniformTreeIndex(x, 8)
        result = idx.range_query(0, 6)  # ~7/8 of everything
        assert result.complemented
        assert result.positions() == brute_range(x, 0, 6)

    def test_missing_character_empty(self):
        x = [0, 2] * 100
        idx = UniformTreeIndex(x, 4)
        assert idx.range_query(1, 1).positions() == []

    def test_count_range(self):
        x = dist.zipf(600, 16, theta=1.0, seed=6)
        idx = UniformTreeIndex(x, 16)
        for lo, hi in [(0, 15), (2, 7), (9, 9)]:
            assert idx.count_range(lo, hi) == len(brute_range(x, lo, hi))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformTreeIndex([0, 9], 4)
        with pytest.raises(InvalidParameterError):
            UniformTreeIndex([0], 0)
        idx = UniformTreeIndex([0, 1], 2)
        with pytest.raises(QueryError):
            idx.range_query(1, 0)
        with pytest.raises(QueryError):
            idx.range_query(0, 2)


class TestBounds:
    def test_space_O_n_lg2_sigma(self):
        # Theorem 1: O(n lg^2 sigma) bits.
        n, sigma = 4096, 64
        x = dist.sequential(n, sigma)
        idx = UniformTreeIndex(x, sigma)
        bound = n * math.log2(sigma) ** 2
        assert idx.space().total_bits <= 4 * bound + 64 * sigma

    def test_level_j_costs_O_nj_bits(self):
        # §2.1: "the space used by the jth level compressed bitmaps is
        # O(nj) bits" — summing to O(n lg^2 sigma).
        n, sigma = 2048, 32
        x = dist.uniform(n, sigma, seed=7)
        idx = UniformTreeIndex(x, sigma)
        levels = math.log2(sigma) + 1
        total_bound = n * levels * (levels + 1) / 2  # sum of nj
        assert idx.space().payload_bits <= 2 * total_bound

    def test_query_io_has_lg_sigma_descent_term(self):
        # O(T/B + lg sigma): tiny answers still cost <= ~2 lg sigma I/Os.
        n, sigma = 4096, 256
        x = dist.sequential(n, sigma)
        idx = UniformTreeIndex(x, sigma)
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(17, 17)
        assert idx.stats.reads <= 4 * math.log2(sigma) + 8

    def test_query_io_scales_with_output_not_range(self):
        # Reading a wide range of rare characters must not cost one I/O
        # per character (the win over per-character bitmap scans).
        n, sigma = 8192, 256
        x = dist.sequential(n, sigma)
        idx = UniformTreeIndex(x, sigma)
        idx.disk.flush_cache()
        idx.stats.reset()
        result = idx.range_query(0, sigma // 2 - 1)
        wide = idx.stats.reads
        # The same output read as explicit per-character bitmaps costs
        # ~sigma/2 directory+bitmap touches; the tree reads O(T/B + lg σ).
        assert wide < sigma // 2
        assert result.cardinality == n // 2
