"""Tests for Theorem 6 (§4.2) — the buffered compressed bitmap index."""

import math
import random

import pytest

from repro.core import BufferedBitmapIndex
from repro.errors import InvalidParameterError
from repro.iomodel import Disk


def make(num_keys=16, block_bits=512, seed=0, max_pos=5000, density=100):
    rng = random.Random(seed)
    disk = Disk(block_bits=block_bits, mem_blocks=0)
    initial = [
        sorted(rng.sample(range(max_pos), rng.randrange(0, density)))
        for _ in range(num_keys)
    ]
    return disk, initial, BufferedBitmapIndex(disk, num_keys, initial)


class TestCorrectness:
    def test_bulk_load_roundtrip(self):
        _, initial, idx = make(seed=1)
        for k, positions in enumerate(initial):
            assert idx.point_query(k) == positions
        idx.check_invariants()

    def test_empty_keys_supported(self):
        disk = Disk(block_bits=512, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 4, [[], [5], [], []])
        assert idx.point_query(0) == []
        assert idx.point_query(1) == [5]

    def test_mixed_updates_match_shadow(self):
        rng = random.Random(2)
        _, initial, idx = make(seed=2)
        shadow = [set(p) for p in initial]
        for step in range(4000):
            k = rng.randrange(16)
            if shadow[k] and rng.random() < 0.45:
                p = rng.choice(sorted(shadow[k]))
                idx.delete(k, p)
                shadow[k].discard(p)
            else:
                p = rng.randrange(20000)
                idx.insert(k, p)
                shadow[k].add(p)
            if step % 400 == 0:
                for kk in range(16):
                    assert idx.point_query(kk) == sorted(shadow[kk]), (step, kk)
                idx.check_invariants()
        idx.flush_all()
        idx.check_invariants()
        for kk in range(16):
            assert idx.point_query(kk) == sorted(shadow[kk])

    def test_insert_then_delete_same_position(self):
        disk = Disk(block_bits=512, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 2, [[1, 2], []])
        idx.insert(0, 99)
        idx.delete(0, 99)
        assert idx.point_query(0) == [1, 2]
        idx.insert(1, 7)
        idx.delete(1, 7)
        idx.insert(1, 7)
        assert idx.point_query(1) == [7]

    def test_duplicate_insert_idempotent(self):
        disk = Disk(block_bits=512, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 1, [[3]])
        idx.insert(0, 3)
        idx.insert(0, 3)
        assert idx.point_query(0) == [3]

    def test_delete_absent_noop(self):
        disk = Disk(block_bits=512, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 1, [[3]])
        idx.delete(0, 4)
        assert idx.point_query(0) == [3]

    def test_block_splits_on_growth(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        idx = BufferedBitmapIndex(disk, 1, [[]])
        for p in range(0, 2000, 3):
            idx.insert(0, p)
        idx.flush_all()
        assert idx._total_blocks() > 1
        assert idx.point_query(0) == list(range(0, 2000, 3))

    def test_cardinality(self):
        _, initial, idx = make(seed=3)
        assert idx.cardinality(0) == len(initial[0])

    def test_validation(self):
        disk = Disk(block_bits=512, mem_blocks=0)
        with pytest.raises(InvalidParameterError):
            BufferedBitmapIndex(disk, 0)
        with pytest.raises(InvalidParameterError):
            BufferedBitmapIndex(disk, 2, [[1]])
        with pytest.raises(InvalidParameterError):
            BufferedBitmapIndex(disk, 1, [[2, 1]])
        idx = BufferedBitmapIndex(disk, 1, [[1]])
        with pytest.raises(InvalidParameterError):
            idx.insert(1, 0)
        with pytest.raises(InvalidParameterError):
            idx.insert(0, -1)
        with pytest.raises(InvalidParameterError):
            idx.point_query(5)


class TestIOBounds:
    def test_update_amortized_sublinear_io(self):
        # Theorem 6: amortized O(lg n / b) I/Os per update — below one
        # I/O per operation (a direct per-op leaf rewrite costs >= 2).
        disk = Disk(block_bits=2048, mem_blocks=0)
        rng = random.Random(4)
        initial = [sorted(rng.sample(range(50000), 400)) for _ in range(8)]
        idx = BufferedBitmapIndex(disk, 8, initial)
        disk.stats.reset()
        ops = 2000
        for _ in range(ops):
            idx.insert(rng.randrange(8), rng.randrange(100000))
        per_op = disk.stats.total / ops
        assert per_op < 1.0

    def test_point_query_io_T_over_B_plus_lg(self):
        disk = Disk(block_bits=1024, mem_blocks=0)
        rng = random.Random(5)
        initial = [sorted(rng.sample(range(100000), 2000)) for _ in range(8)]
        idx = BufferedBitmapIndex(disk, 8, initial)
        disk.flush_cache()
        disk.stats.reset()
        out = idx.point_query(3)
        chain_blocks = len(idx._chains[3])
        # T/B term = chain blocks; + O(lg) buffers.
        assert disk.stats.reads <= chain_blocks + 4 * math.log2(len(out) * 8) + 8

    def test_space_near_payload(self):
        # O(nH0): allocated blocks within a constant of used gap bits.
        disk = Disk(block_bits=1024, mem_blocks=0)
        rng = random.Random(6)
        initial = [sorted(rng.sample(range(100000), 3000)) for _ in range(4)]
        idx = BufferedBitmapIndex(disk, 4, initial)
        blocks_bits = idx._total_blocks() * 1024
        assert blocks_bits <= 2 * idx.payload_bits + 4 * 1024
