"""Tests for every baseline index (B1-B7) and their cost signatures."""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.baselines import (
    BinnedBitmapIndex,
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    IntervalEncodedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    UncompressedBitmapIndex,
    WahBitmapIndex,
)
from repro.errors import QueryError
from repro.model import distributions as dist

ALL_BASELINES = [
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    UncompressedBitmapIndex,
    BinnedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    IntervalEncodedBitmapIndex,
    WahBitmapIndex,
]


class TestCorrectnessMatrix:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    @pytest.mark.parametrize("name", ["uniform", "zipf", "clustered"])
    def test_matches_brute_force(self, cls, name):
        sigma = 20
        x = dist.by_name(name)(900, sigma, seed=5)
        idx = cls(x, sigma)
        rng = random.Random(0)
        for lo, hi in random_ranges(rng, sigma, 15):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi), (
                cls.__name__,
                lo,
                hi,
            )

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_odd_sigma(self, cls):
        sigma = 13
        x = dist.uniform(500, sigma, seed=6)
        idx = cls(x, sigma)
        rng = random.Random(1)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_sigma_two(self, cls):
        x = [0, 1, 1, 0, 1]
        idx = cls(x, 2)
        assert idx.range_query(0, 0).positions() == [0, 3]
        assert idx.range_query(1, 1).positions() == [1, 2, 4]
        assert idx.range_query(0, 1).positions() == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_invalid_range_rejected(self, cls):
        idx = cls([0, 1], 2)
        with pytest.raises(QueryError):
            idx.range_query(1, 0)


class TestCostSignatures:
    """Each baseline's characteristic cost, as §1.2-§1.3 describe it."""

    def setup_method(self):
        self.sigma = 64
        self.n = 4096
        self.x = dist.sequential(self.n, self.sigma)

    def _cold_reads(self, idx, lo, hi):
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(lo, hi)
        return idx.stats.reads

    def test_compressed_bitmap_scans_whole_range(self):
        # Reading l bitmaps costs Omega(l) character decodes: bits read
        # grow with range length even though output is proportional.
        idx = CompressedBitmapIndex(self.x, self.sigma)
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(0, 31)
        wide_bits = idx.stats.bits_read
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(0, 0)
        narrow_bits = idx.stats.bits_read
        assert wide_bits >= 16 * narrow_bits

    def test_range_encoded_constant_scans(self):
        idx = RangeEncodedBitmapIndex(self.x, self.sigma)
        narrow = self._cold_reads(idx, 10, 12)
        wide = self._cold_reads(idx, 1, 60)
        # Always exactly <= 2 bitmap scans: cost independent of width.
        assert abs(narrow - wide) <= 2

    def test_interval_encoded_at_most_two_scans(self):
        idx = IntervalEncodedBitmapIndex(self.x, self.sigma)
        n_bits_per_bitmap = self.n
        for lo, hi in [(0, 0), (5, 30), (0, 62), (10, 63), (40, 50)]:
            idx.disk.flush_cache()
            idx.stats.reset()
            idx.range_query(lo, hi)
            assert idx.stats.bits_read <= 4 * n_bits_per_bitmap + 64

    def test_range_encoding_space_is_n_sigma(self):
        idx = RangeEncodedBitmapIndex(self.x, self.sigma)
        assert idx.space().payload_bits == self.n * self.sigma

    def test_interval_encoding_half_the_space(self):
        rng_idx = RangeEncodedBitmapIndex(self.x, self.sigma)
        int_idx = IntervalEncodedBitmapIndex(self.x, self.sigma)
        assert int_idx.space().payload_bits <= 0.6 * rng_idx.space().payload_bits

    def test_binned_candidate_checks_on_edges(self):
        idx = BinnedBitmapIndex(self.x, self.sigma, bin_width=8)
        idx.candidate_checks = 0
        idx.range_query(3, 20)  # partial bins at both ends
        assert idx.candidate_checks > 0
        idx.candidate_checks = 0
        idx.range_query(8, 23)  # exactly aligned: no checks
        assert idx.candidate_checks == 0

    def test_multires_levels(self):
        idx = MultiResolutionBitmapIndex(self.x, self.sigma, bin_width=4)
        assert idx.num_levels == 4  # 64 -> 16 -> 4 -> 1

    def test_multires_space_grows_with_levels(self):
        flat = CompressedBitmapIndex(self.x, self.sigma)
        multi = MultiResolutionBitmapIndex(self.x, self.sigma, bin_width=4)
        assert multi.space().payload_bits > flat.space().payload_bits

    def test_multires_reads_fewer_bitmaps_than_flat_scan(self):
        flat = CompressedBitmapIndex(self.x, self.sigma)
        multi = MultiResolutionBitmapIndex(self.x, self.sigma, bin_width=4)
        flat_reads = self._cold_reads(flat, 0, 47)
        multi_reads = self._cold_reads(multi, 0, 47)
        assert multi_reads <= flat_reads

    def test_btree_reads_lg_n_bits_per_result(self):
        idx = BTreeSecondaryIndex(self.x, self.sigma)
        gamma = CompressedBitmapIndex(self.x, self.sigma)
        lo, hi = 0, 31  # half the alphabet: z = n/2
        idx.disk.flush_cache()
        idx.stats.reset()
        idx.range_query(lo, hi)
        btree_bits = idx.stats.bits_read
        gamma.disk.flush_cache()
        gamma.stats.reset()
        gamma.range_query(lo, hi)
        gamma_bits = gamma.stats.bits_read
        # Explicit (char,pos) entries are wider than gap codes.
        assert btree_bits > 1.5 * gamma_bits

    def test_btree_append(self):
        idx = BTreeSecondaryIndex([0, 1, 2], 4)
        idx.insert_append(2)
        assert idx.range_query(2, 2).positions() == [2, 3]
        assert idx.n == 4

    def test_wah_payload_at_least_gamma(self):
        x = dist.uniform(4096, 64, seed=7)
        wah = WahBitmapIndex(x, 64)
        gamma = CompressedBitmapIndex(x, 64)
        assert wah.space().payload_bits >= gamma.space().payload_bits
