"""Stateful (model-based) hypothesis tests for the dynamic structures.

Each machine drives a dynamic index through arbitrary operation
sequences while maintaining a plain-Python model, checking equivalence
after every step block.  These catch ordering and buffering bugs that
fixed scenarios miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import (
    BufferedAppendableIndex,
    BufferedBitmapIndex,
    DynamicSecondaryIndex,
)
from repro.iomodel import Disk

SIGMA = 8


class BufferedBitmapMachine(RuleBasedStateMachine):
    """BufferedBitmapIndex vs a list of Python sets."""

    @initialize()
    def setup(self):
        self.disk = Disk(block_bits=256, mem_blocks=2)
        self.idx = BufferedBitmapIndex(self.disk, 4, [[], [5, 9], [], [0]])
        self.model = [set(), {5, 9}, set(), {0}]

    @rule(key=st.integers(0, 3), pos=st.integers(0, 300))
    def insert(self, key, pos):
        self.idx.insert(key, pos)
        self.model[key].add(pos)

    @rule(key=st.integers(0, 3), pos=st.integers(0, 300))
    def delete(self, key, pos):
        self.idx.delete(key, pos)
        self.model[key].discard(pos)

    @rule()
    def flush(self):
        self.idx.flush_all()

    @invariant()
    def matches_model(self):
        for key in range(4):
            assert self.idx.point_query(key) == sorted(self.model[key])


class DynamicIndexMachine(RuleBasedStateMachine):
    """DynamicSecondaryIndex vs a plain list."""

    @initialize()
    def setup(self):
        self.x = [0, 3, 1, 7, 2, 5, 0, 4, 6, 1, 2, 3]
        self.idx = DynamicSecondaryIndex(
            self.x, SIGMA, block_bits=256, mem_blocks=4
        )

    @rule(ch=st.integers(0, SIGMA - 1))
    def append(self, ch):
        self.idx.append(ch)
        self.x.append(ch)

    @rule(data=st.data())
    def change(self, data):
        i = data.draw(st.integers(0, len(self.x) - 1))
        ch = data.draw(st.integers(0, SIGMA - 1))
        self.idx.change(i, ch)
        self.x[i] = ch

    @rule(data=st.data())
    def query(self, data):
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        got = self.idx.range_query(lo, hi).positions()
        want = [i for i, c in enumerate(self.x) if lo <= c <= hi]
        assert got == want

    @invariant()
    def count_consistent(self):
        assert self.idx.count_range(0, SIGMA - 1) == len(self.x)


class BufferedAppendMachine(RuleBasedStateMachine):
    """BufferedAppendableIndex (Theorem 5) vs a plain list."""

    @initialize()
    def setup(self):
        self.x = [0, 1, 2, 3, 4, 5, 6, 7] * 4
        self.idx = BufferedAppendableIndex(
            self.x, SIGMA, block_bits=256, mem_blocks=4, rebuild_factor=3.0
        )

    @rule(ch=st.integers(0, SIGMA - 1))
    def append(self, ch):
        self.idx.append(ch)
        self.x.append(ch)

    @rule(data=st.data())
    def query(self, data):
        lo = data.draw(st.integers(0, SIGMA - 1))
        hi = data.draw(st.integers(lo, SIGMA - 1))
        got = self.idx.range_query(lo, hi).positions()
        want = [i for i, c in enumerate(self.x) if lo <= c <= hi]
        assert got == want


TestBufferedBitmapMachine = BufferedBitmapMachine.TestCase
TestBufferedBitmapMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestDynamicIndexMachine = DynamicIndexMachine.TestCase
TestDynamicIndexMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)

TestBufferedAppendMachine = BufferedAppendMachine.TestCase
TestBufferedAppendMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
