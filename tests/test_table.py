"""Tests for the RID-intersection query layer (§1's application)."""

import random

import pytest

from repro.errors import InvalidParameterError, QueryError
from repro.queries import Table, approximate_factory


def people_table(rows=600, seed=0, factory=None):
    rng = random.Random(seed)
    columns = {
        "age": [rng.randrange(18, 80) for _ in range(rows)],
        "sex": [rng.choice(["f", "m"]) for _ in range(rows)],
        "status": [
            rng.choice(["divorced", "married", "single", "widowed"])
            for _ in range(rows)
        ],
    }
    if factory is None:
        return columns, Table(columns)
    return columns, Table(columns, factory=factory)


def oracle(columns, conditions):
    rows = len(next(iter(columns.values())))
    out = []
    for rid in range(rows):
        if all(lo <= columns[c][rid] <= hi for c, (lo, hi) in conditions.items()):
            out.append(rid)
    return out


class TestExactSelect:
    def test_married_men_of_33(self):
        # The paper's §1 example query.
        columns, table = people_table()
        conds = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        assert table.select(conds) == oracle(columns, conds)

    def test_range_conditions(self):
        columns, table = people_table(seed=1)
        conds = {"age": (30, 45), "status": ("married", "single")}
        assert table.select(conds) == oracle(columns, conds)

    def test_single_condition(self):
        columns, table = people_table(seed=2)
        conds = {"age": (50, 60)}
        assert table.select(conds) == oracle(columns, conds)

    def test_unmatched_value_range_empty(self):
        columns, table = people_table(seed=3)
        assert table.select({"age": (200, 300)}) == []

    def test_value_range_snapping(self):
        # Bounds need not be occurring values.
        columns, table = people_table(seed=4)
        conds = {"age": (32.5, 45.5)}
        want = oracle(columns, {"age": (33, 45)})
        assert table.select(conds) == want

    def test_row_access(self):
        columns, table = people_table(seed=5)
        row = table.row(7)
        assert row["age"] == columns["age"][7]
        with pytest.raises(QueryError):
            table.row(10_000)

    def test_validation(self):
        columns, table = people_table(seed=6)
        with pytest.raises(QueryError):
            table.select({})
        with pytest.raises(QueryError):
            table.select({"nope": (0, 1)})
        with pytest.raises(InvalidParameterError):
            Table({"a": [1, 2], "b": [1]})
        with pytest.raises(InvalidParameterError):
            Table({})


class TestApproximateSelect:
    def test_verified_equals_exact(self):
        columns, table = people_table(factory=approximate_factory(seed=1))
        conds = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        assert table.select_approximate(conds, eps=1 / 16) == oracle(
            columns, conds
        )

    def test_candidates_superset_of_truth(self):
        columns, table = people_table(factory=approximate_factory(seed=2))
        conds = {"age": (40, 42), "sex": ("f", "f")}
        truth = set(oracle(columns, conds))
        cands = set(table.select_approximate(conds, eps=1 / 8, verify=False))
        assert truth <= cands

    def test_requires_approximate_indexes(self):
        columns, table = people_table()  # exact factory
        with pytest.raises(QueryError):
            table.select_approximate({"age": (30, 31)}, eps=1 / 8)

    def test_multi_dim_filtering_shrinks_candidates(self):
        # eps^(d-k) survival: more dimensions -> fewer false candidates.
        columns, table = people_table(rows=1200, factory=approximate_factory(seed=3))
        one = {"age": (33, 33)}
        three = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        c1 = table.select_approximate(one, eps=1 / 4, verify=False)
        c3 = table.select_approximate(three, eps=1 / 4, verify=False)
        assert len(c3) <= len(c1)
