"""Tests for the RID-intersection query layer (§1's application)."""

import random

import pytest

from repro.errors import InvalidParameterError, QueryError
from repro.queries import Table, approximate_factory


def people_table(rows=600, seed=0, factory=None):
    rng = random.Random(seed)
    columns = {
        "age": [rng.randrange(18, 80) for _ in range(rows)],
        "sex": [rng.choice(["f", "m"]) for _ in range(rows)],
        "status": [
            rng.choice(["divorced", "married", "single", "widowed"])
            for _ in range(rows)
        ],
    }
    if factory is None:
        return columns, Table(columns)
    return columns, Table(columns, factory=factory)


def oracle(columns, conditions):
    rows = len(next(iter(columns.values())))
    out = []
    for rid in range(rows):
        if all(lo <= columns[c][rid] <= hi for c, (lo, hi) in conditions.items()):
            out.append(rid)
    return out


class TestExactSelect:
    def test_married_men_of_33(self):
        # The paper's §1 example query.
        columns, table = people_table()
        conds = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        assert table.select(conds) == oracle(columns, conds)

    def test_range_conditions(self):
        columns, table = people_table(seed=1)
        conds = {"age": (30, 45), "status": ("married", "single")}
        assert table.select(conds) == oracle(columns, conds)

    def test_single_condition(self):
        columns, table = people_table(seed=2)
        conds = {"age": (50, 60)}
        assert table.select(conds) == oracle(columns, conds)

    def test_unmatched_value_range_empty(self):
        columns, table = people_table(seed=3)
        assert table.select({"age": (200, 300)}) == []

    def test_value_range_snapping(self):
        # Bounds need not be occurring values.
        columns, table = people_table(seed=4)
        conds = {"age": (32.5, 45.5)}
        want = oracle(columns, {"age": (33, 45)})
        assert table.select(conds) == want

    def test_row_access(self):
        columns, table = people_table(seed=5)
        row = table.row(7)
        assert row["age"] == columns["age"][7]
        with pytest.raises(QueryError):
            table.row(10_000)

    def test_validation(self):
        columns, table = people_table(seed=6)
        with pytest.raises(QueryError):
            table.select({})
        with pytest.raises(QueryError):
            table.select({"nope": (0, 1)})
        with pytest.raises(InvalidParameterError):
            Table({"a": [1, 2], "b": [1]})
        with pytest.raises(InvalidParameterError):
            Table({})


class TestApproximateSelect:
    def test_verified_equals_exact(self):
        columns, table = people_table(factory=approximate_factory(seed=1))
        conds = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        assert table.select_approximate(conds, eps=1 / 16) == oracle(
            columns, conds
        )

    def test_candidates_superset_of_truth(self):
        columns, table = people_table(factory=approximate_factory(seed=2))
        conds = {"age": (40, 42), "sex": ("f", "f")}
        truth = set(oracle(columns, conds))
        cands = set(table.select_approximate(conds, eps=1 / 8, verify=False))
        assert truth <= cands

    def test_requires_approximate_indexes(self):
        columns, table = people_table()  # exact factory
        with pytest.raises(QueryError):
            table.select_approximate({"age": (30, 31)}, eps=1 / 8)

    def test_multi_dim_filtering_shrinks_candidates(self):
        # eps^(d-k) survival: more dimensions -> fewer false candidates.
        columns, table = people_table(rows=1200, factory=approximate_factory(seed=3))
        one = {"age": (33, 33)}
        three = {
            "age": (33, 33),
            "sex": ("m", "m"),
            "status": ("married", "married"),
        }
        c1 = table.select_approximate(one, eps=1 / 4, verify=False)
        c3 = table.select_approximate(three, eps=1 / 4, verify=False)
        assert len(c3) <= len(c1)


class TestPredicateAlgebra:
    """The value-space algebra on Table, and the deprecated adapter."""

    def test_star_style_query_matches_oracle(self):
        from repro.query import And, Eq, In, Not, Or, Range

        columns, table = people_table(seed=10)
        pred = And(
            Range("age", 30, 45),
            Or(In("status", ["married", "widowed"]), Eq("sex", "f")),
            Not(Eq("status", "divorced")),
        )
        want = [
            rid
            for rid in range(len(columns["age"]))
            if 30 <= columns["age"][rid] <= 45
            and (
                columns["status"][rid] in ("married", "widowed")
                or columns["sex"][rid] == "f"
            )
            and columns["status"][rid] != "divorced"
        ]
        assert table.select(pred) == want
        assert list(table.select_iter(pred)) == want

    def test_open_bounds_and_missing_values(self):
        from repro.query import Eq, In, Not, Range

        columns, table = people_table(seed=11)
        assert table.select(Range("age", 60, None)) == oracle(
            columns, {"age": (60, 10**9)}
        )
        assert table.select(Range("age", None, 25)) == oracle(
            columns, {"age": (-(10**9), 25)}
        )
        # Values that never occur: empty for Eq/In, everything for Not.
        assert table.select(Eq("status", "engaged")) == []
        assert table.select(In("age", [200, 300])) == []
        assert table.select(Not(Eq("status", "engaged"))) == list(
            range(len(columns["age"]))
        )

    def test_factory_path_serves_the_algebra_too(self):
        from repro.queries import default_factory
        from repro.query import And, Not, Range

        columns, table = people_table(seed=12, factory=default_factory)
        assert table.engine is None  # the legacy engine-less build
        pred = And(Range("age", 25, 50), Not(Range("sex", "m", "m")))
        want = [
            rid
            for rid in range(len(columns["age"]))
            if 25 <= columns["age"][rid] <= 50
            and columns["sex"][rid] != "m"
        ]
        assert table.select(pred) == want
        assert list(table.select_iter(pred)) == want

    def test_explain_returns_typed_report(self):
        import json

        from repro.query import And, In, Range
        from repro.query import PlanReport

        columns, table = people_table(seed=13)
        report = table.explain(
            And(Range("age", 30, 40), In("status", ["married", "single"]))
        )
        assert isinstance(report, PlanReport)
        assert report.kind == "engine"
        json.dumps(report.to_dict())


class TestMappingAdapterDeprecation:
    """The old mapping signature: equivalent, and warned exactly once
    per call site."""

    def equivalent(self, table, mapping):
        from repro.query import mapping_to_pred

        with pytest.warns(DeprecationWarning):
            from repro.query._compat import reset_warned_call_sites

            reset_warned_call_sites()
            legacy = table.select(mapping)
        return legacy == table.select(mapping_to_pred(mapping))

    def test_adapter_equivalent_to_algebra_path(self):
        columns, table = people_table(seed=14)
        assert self.equivalent(table, {"age": (33, 33)})
        assert self.equivalent(
            table, {"age": (30, 45), "status": ("married", "single")}
        )
        assert self.equivalent(table, {"age": (200, 300)})  # empty

    def test_warns_exactly_once_per_call_site(self):
        import warnings as warnings_mod

        from repro.query._compat import reset_warned_call_sites

        columns, table = people_table(seed=15)
        reset_warned_call_sites()
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            for _ in range(5):
                table.select({"age": (30, 40)})  # one site, one warning
            table.select({"age": (30, 40)})  # a distinct second site
            table.select_iter({"age": (30, 40)})  # distinct API, warns too
        deprecations = [
            w
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 3
        # The warning points at the caller, not the adapter internals.
        assert all(
            w.filename.endswith("test_table.py") for w in deprecations
        )
