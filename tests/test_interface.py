"""Tests for the query-result protocol and space accounting types."""

import pytest

from repro.core.interface import RangeResult, SpaceBreakdown
from repro.model.entropy import lg_binomial


class TestRangeResult:
    def test_plain_result(self):
        r = RangeResult([2, 5, 9], universe=20)
        assert r.positions() == [2, 5, 9]
        assert r.cardinality == 3
        assert len(r) == 3
        assert 5 in r and 6 not in r
        assert r.is_exact

    def test_complemented_result(self):
        # Stored = the complement; reported = everything else.
        r = RangeResult([0, 1], universe=6, complemented=True)
        assert r.cardinality == 4
        assert r.positions() == [2, 3, 4, 5]
        assert 0 not in r and 3 in r
        assert r.stored_positions() == [0, 1]

    def test_iter_positions_streams_both_representations(self):
        plain = RangeResult([2, 5, 9], universe=20)
        assert list(plain.iter_positions()) == plain.positions()
        # The complemented walk yields the gaps lazily, in order,
        # without ever building the O(z) list.
        comp = RangeResult([0, 3, 4], universe=8, complemented=True)
        it = comp.iter_positions()
        assert next(it) == 1
        assert list(it) == [2, 5, 6, 7]
        full = RangeResult([], universe=3, complemented=True)
        assert list(full.iter_positions()) == [0, 1, 2]
        empty = RangeResult([], universe=0, complemented=True)
        assert list(empty.iter_positions()) == []

    def test_out_of_universe_membership(self):
        r = RangeResult([1], universe=4)
        assert -1 not in r
        assert 4 not in r
        rc = RangeResult([1], universe=4, complemented=True)
        assert -1 not in rc
        assert 4 not in rc

    def test_empty(self):
        r = RangeResult.empty(10)
        assert r.cardinality == 0
        assert r.positions() == []
        assert r.compressed_size_bits == 0

    def test_compressed_size_small_for_complement(self):
        # A nearly-full answer stored as a tiny complement costs little.
        full = RangeResult(list(range(999)), universe=1000)
        comp = RangeResult([999], universe=1000, complemented=True)
        assert comp.cardinality == 999
        assert comp.compressed_size_bits < full.compressed_size_bits / 50

    def test_information_bound(self):
        r = RangeResult([1, 2, 3], universe=100)
        assert r.information_bound_bits == pytest.approx(lg_binomial(100, 3))

    def test_compressed_size_above_information_bound(self):
        positions = list(range(0, 1000, 7))
        r = RangeResult(positions, universe=1000)
        assert r.compressed_size_bits >= r.information_bound_bits

    def test_empty_universe(self):
        r = RangeResult([], universe=0)
        assert r.cardinality == 0
        assert r.positions() == []
        assert 0 not in r

    def test_empty_universe_complemented(self):
        # Regression: the complement over an empty universe is empty,
        # never negative-cardinality garbage.
        r = RangeResult([], universe=0, complemented=True)
        assert r.cardinality == 0
        assert r.positions() == []

    def test_rejects_stored_outside_universe(self):
        # Regression: a complemented result over a too-small universe
        # used to fabricate positions that were never in the string.
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            RangeResult([5], universe=3, complemented=True)
        with pytest.raises(QueryError):
            RangeResult([0], universe=0)
        with pytest.raises(QueryError):
            RangeResult([-1, 2], universe=5)
        with pytest.raises(QueryError):
            RangeResult([], universe=-1)


class TestSpaceBreakdown:
    def test_total(self):
        s = SpaceBreakdown(payload_bits=10, directory_bits=5)
        assert s.total_bits == 15

    def test_add(self):
        a = SpaceBreakdown(1, 2)
        b = SpaceBreakdown(10, 20)
        c = a + b
        assert (c.payload_bits, c.directory_bits) == (11, 22)

    def test_frozen(self):
        s = SpaceBreakdown(1, 2)
        with pytest.raises(AttributeError):
            s.payload_bits = 5
