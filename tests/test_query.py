"""Unit tests for the predicate algebra, planner, and combinators.

Differential end-to-end coverage lives in ``test_conformance.py``
(random ASTs over every registry backend); this file pins the pieces:
normalization rewrites, the complement-aware set algebra, the
streaming combinators, plan compilation/dedup, the typed PlanReport,
and the deprecated mapping adapters.
"""

import json
import random
import warnings

import pytest

from repro.bits.ops import (
    complement_sorted,
    difference_aware,
    intersect_aware,
    union_aware,
    union_many,
)
from repro.core.interface import RangeResult
from repro.engine import QueryEngine
from repro.errors import InvalidParameterError, QueryError
from repro.query import (
    FALSE,
    TRUE,
    And,
    Eq,
    In,
    Not,
    Or,
    PlanReport,
    Pred,
    Range,
    columns_of,
    compile_pred,
    evaluate,
    evaluate_count,
    evaluate_count_by,
    evaluate_exists,
    evaluate_fetch,
    mapping_to_pred,
    normalize,
    order_children,
    specialize,
)
from repro.query._compat import reset_warned_call_sites
from repro.query.stream import (
    complement_iter,
    count_iter,
    difference_iter,
    first,
    intersect_iters,
    union_iters,
)

from tests.conftest import pred_oracle, random_pred


SIGMAS = {"a": 10, "b": 6}


def norm(pred):
    return normalize(pred, SIGMAS.__getitem__)


class TestNormalization:
    def test_eq_and_in_become_interval_runs(self):
        assert norm(Eq("a", 4)) == Range("a", 4, 4)
        # {1,2,3, 7, 8} -> two maximal runs, not five point queries.
        assert norm(In("a", [8, 2, 1, 7, 3, 2])) == Or(
            Range("a", 1, 3), Range("a", 7, 8)
        )
        assert norm(In("a", [])) is FALSE
        assert norm(In("a", [99])) is FALSE  # outside the alphabet

    def test_open_bounds_clip_and_full_column_folds(self):
        assert norm(Range("a", None, 3)) == Range("a", 0, 3)
        assert norm(Range("a", 7, None)) == Range("a", 7, 9)
        assert norm(Range("a", None, None)) is TRUE
        assert norm(Range("a", -5, 99)) is TRUE
        assert norm(Range("a", 5, 3)) is FALSE

    def test_nnf_pushes_not_to_leaves(self):
        pred = Not(And(Range("a", 0, 2), Not(Range("b", 1, 2))))
        got = norm(pred)
        assert got == Or(Range("b", 1, 2), Not(Range("a", 0, 2)))

    def test_double_negation_cancels(self):
        assert norm(Not(Not(Range("a", 2, 5)))) == Range("a", 2, 5)

    def test_and_intersects_same_column_intervals(self):
        assert norm(
            And(Range("a", 0, 5), Range("a", 3, 9))
        ) == Range("a", 3, 5)
        assert norm(And(Range("a", 0, 2), Range("a", 5, 7))) is FALSE

    def test_and_resolves_same_column_negation_statically(self):
        # [1,9] minus [3,5] is residual runs — no Not leaf survives.
        got = norm(And(Range("a", 1, 9), Not(Range("a", 3, 5))))
        assert got == Or(Range("a", 1, 2), Range("a", 6, 9))
        # A conjunction of only negations stays a (cheap) Not leaf:
        # the whole-column positive folded to TRUE first.
        assert norm(
            And(Range("a", 0, None), Not(Range("a", 3, 5)))
        ) == Not(Range("a", 3, 5))
        # Subtracting everything collapses the conjunction.
        assert norm(
            And(Range("a", 3, 5), Not(Range("a", 0, None)))
        ) is FALSE

    def test_or_merges_adjacent_and_overlapping_runs(self):
        assert norm(
            Or(Range("a", 0, 2), Range("a", 3, 5), Range("a", 5, 6))
        ) == Range("a", 0, 6)

    def test_or_intersects_negated_intervals(self):
        # ~[0,4] | ~[3,8] = ~([0,4] & [3,8]) = ~[3,4]
        got = norm(Or(Not(Range("a", 0, 4)), Not(Range("a", 3, 8))))
        assert got == Not(Range("a", 3, 4))
        # Disjoint negations cover everything.
        assert norm(
            Or(Not(Range("a", 0, 2)), Not(Range("a", 5, 7)))
        ) is TRUE

    def test_merged_full_coverage_refolds_to_constants(self):
        # Runs that merge to the whole alphabet get the same TRUE/FALSE
        # fold a single full-range leaf gets — equivalent predicates
        # must stay equivalent (position-space semantics, incl. holes).
        assert norm(Or(Range("a", 0, 4), Range("a", 5, 9))) is TRUE
        assert norm(
            And(Not(Range("a", 0, 4)), Not(Range("a", 5, 9)))
        ) is FALSE
        assert norm(In("a", list(range(10)))) is TRUE

    def test_constants_fold(self):
        leaf = Range("a", 1, 2)
        assert norm(And(leaf, Range("b", 6, 9))) is FALSE  # empty leaf
        assert norm(Or(leaf, Range("a", None, None))) is TRUE
        assert norm(Not(Range("a", 20, 30))) is TRUE

    def test_canonical_order_and_dedup(self):
        a, b = Range("a", 1, 2), Range("b", 0, 3)
        assert norm(And(b, a, a)) == norm(And(a, b))
        assert norm(Or(b, a, b)) == norm(Or(a, b))

    def test_value_bounds_rejected_in_code_space(self):
        with pytest.raises(QueryError):
            norm(Range("a", "x", "y"))

    def test_operator_sugar(self):
        a, b = Range("a", 1, 2), Range("b", 0, 3)
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            And()
        with pytest.raises(InvalidParameterError):
            Or()
        with pytest.raises(InvalidParameterError):
            Not("not a predicate")
        with pytest.raises(InvalidParameterError):
            Range(7, 0, 1)

    def test_columns_of_sees_through_simplification(self):
        pred = And(Range("a", 50, 60), Or(Eq("b", 1), Not(In("a", [2]))))
        assert columns_of(pred) == {"a", "b"}

    def test_equivalent_predicates_compile_identically(self):
        p1 = And(In("a", [1, 2, 7]), Not(Range("b", 2, 4)))
        p2 = And(
            Not(Range("b", 2, 4)),
            Or(Range("a", 1, 2), Range("a", 7, 7)),
        )
        plan1 = compile_pred(p1, SIGMAS.__getitem__)
        plan2 = compile_pred(p2, SIGMAS.__getitem__)
        assert plan1.normalized == plan2.normalized
        assert plan1.leaves == plan2.leaves
        assert plan1.root == plan2.root


class TestAwareAlgebra:
    """The complement-aware pair algebra against brute sets."""

    UNIVERSE = 24

    def materialize(self, stored, comp):
        if not comp:
            return set(stored)
        return set(range(self.UNIVERSE)) - set(stored)

    def pairs(self, rng):
        stored = sorted(rng.sample(range(self.UNIVERSE), rng.randrange(9)))
        return stored, rng.random() < 0.5

    def test_matches_set_algebra_on_random_pairs(self):
        rng = random.Random(7)
        for _ in range(300):
            a, ac = self.pairs(rng)
            b, bc = self.pairs(rng)
            sa, sb = self.materialize(a, ac), self.materialize(b, bc)
            for fn, want in [
                (union_aware, sa | sb),
                (intersect_aware, sa & sb),
                (difference_aware, sa - sb),
            ]:
                stored, comp = fn(a, ac, b, bc)
                assert stored == sorted(stored)
                assert self.materialize(stored, comp) == want

    def test_never_materializes_a_complement(self):
        # ~A | ~B stays complemented with a small stored list.
        stored, comp = union_aware([1], True, [1, 2], True)
        assert (stored, comp) == ([1], True)
        stored, comp = intersect_aware([5], False, [2], True)
        assert (stored, comp) == ([5], False)

    def test_union_many(self):
        assert union_many([[1, 3], [2, 3], [0]]) == [0, 1, 2, 3]
        assert union_many([]) == []


class TestStreamCombinators:
    def test_union_intersect_difference_complement(self):
        a, b, c = [1, 3, 5, 9], [3, 4, 5], [5, 9, 11]
        assert list(union_iters([iter(a), iter(b), iter(c)])) == [
            1, 3, 4, 5, 9, 11,
        ]
        assert list(intersect_iters([iter(a), iter(b), iter(c)])) == [5]
        assert list(difference_iter(iter(a), iter(b))) == [1, 9]
        assert list(complement_iter(iter([0, 2, 3]), 6)) == [1, 4, 5]
        assert list(complement_iter(iter([]), 3)) == [0, 1, 2]

    def test_close_propagates_to_producers(self):
        closed = []

        def producer(tag, items):
            try:
                yield from items
            finally:
                closed.append(tag)

        merged = union_iters(
            [producer("a", [1, 2, 9]), producer("b", [2, 5, 8])]
        )
        assert next(merged) == 1
        merged.close()
        assert sorted(closed) == ["a", "b"]


class TestEnginePredicates:
    def make(self):
        engine = QueryEngine()
        rng = random.Random(5)
        engine.add_column(
            "a", [rng.randrange(10) for _ in range(200)], 10
        )
        engine.add_column("b", [rng.randrange(6) for _ in range(200)], 6)
        return engine

    def oracle(self, engine, pred):
        columns = {
            name: list(col.codes) for name, col in engine.columns.items()
        }
        return pred_oracle(pred, columns)

    def test_random_asts_and_query_forms_agree(self):
        engine = self.make()
        columns = {
            name: sorted(set(col.codes))
            for name, col in engine.columns.items()
        }
        rng = random.Random(11)
        for _ in range(25):
            pred = random_pred(rng, columns, depth=3)
            want = self.oracle(engine, pred)
            assert engine.select(pred) == want
            assert list(engine.select_iter(pred)) == want
            assert engine.query(pred).positions() == want

    def test_disjuncts_share_cached_legs(self):
        engine = self.make()
        leaf = Range("a", 2, 4)
        engine.select(Or(And(leaf, Range("b", 0, 2)), leaf))
        hits_before = engine.cache.hits
        # The shared leaf appears once in the leaf table, so a second
        # predicate reusing it hits the same entry.
        engine.select(And(leaf, Range("b", 3, 5)))
        assert engine.cache.hits > hits_before

    def test_not_reuses_complement_representation(self):
        engine = self.make()
        result = engine.query(Not(Range("a", 7, 7)))
        # The majority answer comes back complement-represented: the
        # stored list is the sparse complement, never the O(n) answer.
        assert result.complemented
        assert len(result.stored_positions()) < result.cardinality
        assert result.positions() == self.oracle(
            engine, Not(Range("a", 7, 7))
        )

    def test_trivial_plans_read_no_index_bits(self):
        engine = self.make()
        before = engine.columns["a"].index.stats.snapshot()
        assert engine.select(Range("a", None, None)) == list(range(200))
        assert engine.select(In("a", [])) == []
        assert (
            engine.columns["a"].index.stats.snapshot() - before
        ).total == 0

    def test_full_coverage_forms_agree_under_delete_holes(self):
        # A pending-compaction hole matches TRUE (position-space
        # semantics); every predicate equivalent to the full range
        # must agree, whichever shape it arrived in.
        engine = QueryEngine()
        engine.add_column(
            "c", [0, 1, 2, 3, 0, 1], 4,
            dynamism="fully_dynamic", require_delete=True,
            backend="deletable",
        )
        engine.delete("c", 2)
        everything = list(range(6))
        assert engine.select(Range("c", 0, 3)) == everything
        assert engine.select(
            Or(Range("c", 0, 1), Range("c", 2, 3))
        ) == everything
        assert engine.select(Not(Range("c", 0, 3))) == []
        assert engine.select(
            And(Not(Range("c", 0, 1)), Not(Range("c", 2, 3)))
        ) == []

    def test_and_short_circuits_empty_leg(self):
        # The generalized §1 empty-dimension short-circuit: once a
        # conjunct is known empty, the remaining legs' indexes are
        # never read.  (And children fold in canonical column order,
        # so the empty leg's column must sort first.)
        engine = self.make()
        engine.add_column("a_gap", [0, 2] * 100, 4)  # code 1 never occurs
        b_stats = engine.columns["b"].index.stats
        before = b_stats.snapshot()
        assert engine.select(And(In("a_gap", []), Range("b", 0, 5))) == []
        assert (b_stats.snapshot() - before).total == 0  # trivial FALSE
        before = b_stats.snapshot()
        assert engine.select(
            And(Range("a_gap", 1, 1), Range("b", 0, 5))
        ) == []
        assert (b_stats.snapshot() - before).total == 0  # leg skipped

    def test_string_form_requires_both_bounds(self):
        engine = self.make()
        with pytest.raises(InvalidParameterError):
            engine.query("a")
        with pytest.raises(InvalidParameterError):
            engine.plan("a", 0)

    def test_validation(self):
        engine = self.make()
        with pytest.raises(QueryError):
            engine.select(Range("missing", 0, 1))
        with pytest.raises(QueryError):
            # Unknown columns are resolved eagerly even when
            # simplification would discard the leaf.
            engine.select(And(In("a", []), Range("missing", 0, 1)))
        with pytest.raises(InvalidParameterError):
            engine.query(Range("a", 1, 2), 0)
        with pytest.raises(QueryError):
            engine.select_iter({"a": "oops"})

    def test_misaligned_columns_serve_positive_but_not_complement(self):
        engine = self.make()
        engine.add_column(
            "grow", [0, 1] * 100, 4, dynamism="semidynamic"
        )
        engine.append("grow", 2)
        positive = And(Range("a", 0, 5), Range("grow", 0, 1))
        assert engine.select(positive) == sorted(
            set(self.oracle(engine, Range("a", 0, 5)))
            & set(i for i in range(200))
        )
        with pytest.raises(QueryError):
            engine.select(And(Range("a", 0, 5), Not(Range("grow", 2, 2))))

    def test_plan_report_round_trips_json(self):
        engine = self.make()
        pred = And(In("a", [1, 2, 7]), Not(Range("b", 2, 4)))
        report = engine.plan(pred)
        assert isinstance(report, PlanReport)
        assert report.kind == "engine" and report.universe == 200
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "engine"
        assert len(payload["leaves"]) == len(report.leaves) == 3
        assert all(leaf["backend"] for leaf in payload["leaves"])
        assert report.estimated_total_bits > 0
        # explain(pred) returns the same typed report; str() renders.
        assert engine.explain(pred) == report
        assert "and" in str(report) and "not" in str(report)
        # Serving the predicate flips the cache state in a fresh plan.
        engine.select(pred)
        served = engine.plan(pred)
        assert all(leaf.cached for leaf in served.leaves)
        assert served.estimated_total_bits == 0.0


class TestMappingAdapter:
    def test_mapping_to_pred_shapes(self):
        pred = mapping_to_pred({"a": (1, 3), "b": (0, 2)})
        assert pred == And(Range("a", 1, 3), Range("b", 0, 2))
        assert mapping_to_pred({"a": (1, 3)}) == Range("a", 1, 3)
        with pytest.raises(QueryError):
            mapping_to_pred({})
        with pytest.raises(QueryError):
            mapping_to_pred({"a": 7})

    def test_adapter_warns_once_per_call_site(self):
        engine = QueryEngine()
        engine.add_column("a", [0, 1, 2, 3], 4)
        reset_warned_call_sites()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(4):
                engine.select({"a": (0, 1)})  # one call site: one warning
            engine.select({"a": (0, 1)})  # a second call site
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
        assert "predicate" in str(deprecations[0].message)

    def test_pred_inputs_do_not_warn(self):
        engine = QueryEngine()
        engine.add_column("a", [0, 1, 2, 3], 4)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.select(Range("a", 0, 1))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


# ----------------------------------------------------------------------
# Leaf alignment (the symmetric universe check)
# ----------------------------------------------------------------------


class TestLeafAlignment:
    """Regression: a leaf universe *smaller* than the plan's used to
    pass unvalidated for non-complemented results; now the check is
    symmetric under Not/TRUE and positive plans explicitly re-anchor.
    """

    def _needs_universe_plan(self):
        return compile_pred(
            And(Range("a", 0, 3), Not(Range("b", 0, 1))),
            SIGMAS.__getitem__,
        )

    def test_evaluate_rejects_smaller_leaf_universe_under_not(self):
        plan = self._needs_universe_plan()
        results = [RangeResult([0, 1], 10), RangeResult([2], 8)]
        with pytest.raises(QueryError):
            evaluate(plan, results, 10)

    def test_evaluate_fetch_rejects_smaller_leaf_universe_under_not(self):
        plan = self._needs_universe_plan()

        def fetch(col, lo, hi):
            return RangeResult([0], 10 if col == "a" else 8)

        with pytest.raises(QueryError):
            evaluate_fetch(plan, fetch, 10)

    def test_larger_leaf_universe_always_rejected(self):
        plan = compile_pred(
            And(Range("a", 0, 3), Range("b", 0, 1)), SIGMAS.__getitem__
        )
        results = [RangeResult([0], 10), RangeResult([1], 12)]
        with pytest.raises(QueryError):
            evaluate(plan, results, 10)

    def test_positive_plans_reanchor_smaller_leaves(self):
        plan = compile_pred(
            And(Range("a", 0, 3), Range("b", 0, 1)), SIGMAS.__getitem__
        )
        # A drifted plain leaf passes through (its positions are
        # already global); a drifted *complemented* leaf expands
        # against its own universe before entering the algebra.
        results = [RangeResult([1, 5, 9], 10), RangeResult([1, 5], 8)]
        assert evaluate(plan, results, 10).positions() == [1, 5]
        results = [
            RangeResult([1, 5, 9], 10),
            RangeResult([0], 8, complemented=True),  # = 1..7 of 8
        ]
        assert evaluate(plan, results, 10).positions() == [1, 5]


# ----------------------------------------------------------------------
# Cost-based And ordering
# ----------------------------------------------------------------------


class TestCostOrderedAnd:
    def _plan(self):
        # Leaf table (sorted): ("a", 0, 3) = 0, ("b", 4, 5) = 1.
        return compile_pred(
            And(Range("a", 0, 3), Range("b", 4, 5)), SIGMAS.__getitem__
        )

    def _recording_fetch(self, fetched):
        def fetch(col, lo, hi):
            fetched.append(col)
            if col == "b":
                return RangeResult([], 10)
            return RangeResult([0, 1], 10)

        return fetch

    def test_canonical_order_without_costs(self):
        fetched = []
        evaluate_fetch(self._plan(), self._recording_fetch(fetched), 10)
        assert fetched == ["a", "b"]

    def test_cheap_empty_leg_first_skips_expensive(self):
        fetched = []
        result = evaluate_fetch(
            self._plan(),
            self._recording_fetch(fetched),
            10,
            leaf_costs=[100.0, 1.0],
        )
        assert fetched == ["b"]  # cheap leg first, empty, "a" skipped
        assert result.positions() == []

    def test_equal_costs_keep_canonical_order(self):
        children = (("leaf", 1), ("leaf", 0))
        assert order_children(children, [5.0, 5.0]) == children
        assert order_children(children, None) == children
        assert order_children(children, [5.0, 1.0]) == (
            ("leaf", 1),
            ("leaf", 0),
        )


# ----------------------------------------------------------------------
# Cardinality-space execution
# ----------------------------------------------------------------------


class TestCountingExecution:
    def _data(self):
        rng = random.Random(23)
        cols = {
            "a": [rng.randrange(10) for _ in range(60)],
            "b": [rng.randrange(6) for _ in range(60)],
        }

        def fetch(col, lo, hi):
            pos = [i for i, c in enumerate(cols[col]) if lo <= c <= hi]
            return RangeResult(pos, 60)

        return cols, fetch

    def test_count_and_exists_match_materialized_random(self):
        cols, fetch = self._data()
        columns = {name: sorted(set(v)) for name, v in cols.items()}
        rng = random.Random(7)
        for _ in range(40):
            pred = random_pred(rng, columns, depth=3)
            plan = compile_pred(pred, SIGMAS.__getitem__)
            want = evaluate_fetch(plan, fetch, 60).positions()
            assert evaluate_count(plan, fetch, 60) == len(want)
            assert evaluate_exists(plan, fetch, 60) == bool(want)

    def test_count_by_matches_per_group_counts(self):
        cols, fetch = self._data()
        pred = Or(Range("a", 0, 4), Not(Range("b", 1, 4)))
        plan = compile_pred(pred, SIGMAS.__getitem__)
        want_rows = evaluate_fetch(plan, fetch, 60).positions()
        group_calls = []

        def group_fetch(code):
            group_calls.append(code)
            return fetch("b", code, code)

        got = evaluate_count_by(
            plan, fetch, 60, sorted(set(cols["b"])), group_fetch
        )
        from collections import Counter

        want = Counter(cols["b"][rid] for rid in want_rows)
        assert got == dict(want)
        # The predicate folded once; one group fetch per group code.
        assert group_calls == sorted(set(cols["b"]))

    def test_count_by_unsatisfiable_pred_skips_group_entirely(self):
        _, fetch = self._data()
        plan = compile_pred(In("a", []), SIGMAS.__getitem__)

        def group_fetch(code):
            raise AssertionError("group column should never be touched")

        assert evaluate_count_by(plan, fetch, 60, [0, 1], group_fetch) == {}

    def test_wide_positive_disjunction_saturates_early(self):
        # Rows 0-4 match the first leg, rows 5-9 the second; the third
        # leg exists in the plan but the counting fold stops the
        # moment the union's *length* reaches the universe — a
        # saturation the select path cannot see (it only recognizes
        # complemented-empty as full) and therefore pays for.
        cols = {
            "a": [0] * 5 + [5] * 5,
            "b": [1] * 5 + [0] * 5,
            "c": [0] * 10,
        }
        sigmas = {"a": 10, "b": 6, "c": 4}

        fetched = []

        def fetch(col, lo, hi):
            fetched.append(col)
            pos = [i for i, c in enumerate(cols[col]) if lo <= c <= hi]
            return RangeResult(pos, 10)

        pred = Or(Range("a", 0, 0), Range("b", 0, 0), Eq("c", 0))
        plan = compile_pred(pred, sigmas.__getitem__)
        assert len(plan.leaves) == 3
        assert evaluate_count(plan, fetch, 10) == 10
        assert fetched == ["a", "b"]  # "c" never fetched
        fetched.clear()
        assert evaluate_fetch(plan, fetch, 10).cardinality == 10
        assert fetched == ["a", "b", "c"]  # the select path reads more

    def test_exists_stops_at_first_nonempty_disjunct(self):
        _, fetch = self._data()
        fetched = []

        def recording(col, lo, hi):
            fetched.append((col, lo, hi))
            return fetch(col, lo, hi)

        pred = Or(Range("a", 0, 8), Range("b", 0, 4))
        plan = compile_pred(pred, SIGMAS.__getitem__)
        assert evaluate_exists(plan, recording, 60)
        assert len(fetched) == 1

    def test_exists_orders_disjuncts_by_cost(self):
        _, fetch = self._data()
        fetched = []

        def recording(col, lo, hi):
            fetched.append(col)
            return fetch(col, lo, hi)

        pred = Or(Range("a", 0, 8), Range("b", 0, 4))
        plan = compile_pred(pred, SIGMAS.__getitem__)
        # Leaf 0 = ("a", 0, 8), leaf 1 = ("b", 0, 4); make b cheaper.
        assert evaluate_exists(plan, recording, 60, leaf_costs=[9.0, 1.0])
        assert fetched == ["b"]

    def test_not_is_counted_as_a_flip(self):
        _, fetch = self._data()
        plan = compile_pred(Not(Range("a", 3, 3)), SIGMAS.__getitem__)
        inner = compile_pred(Range("a", 3, 3), SIGMAS.__getitem__)
        assert (
            evaluate_count(plan, fetch, 60)
            == 60 - evaluate_count(inner, fetch, 60)
        )


# ----------------------------------------------------------------------
# Shard specialization (plan pushdown)
# ----------------------------------------------------------------------


class TestSpecialize:
    def test_identity_translation_keeps_plan(self):
        plan = compile_pred(Not(Range("a", 2, 5)), SIGMAS.__getitem__)
        leaves, root = specialize(plan, lambda col, lo, hi: (lo, hi))
        assert leaves == (("a", 2, 5),)
        assert root == ("not", ("leaf", 0))

    def test_fully_pruned_not_becomes_all(self):
        plan = compile_pred(Not(Range("a", 2, 5)), SIGMAS.__getitem__)
        leaves, root = specialize(plan, lambda col, lo, hi: None)
        assert leaves == ()
        assert root == ("all",)

    def test_fully_pruned_positive_becomes_empty(self):
        plan = compile_pred(
            Or(Range("a", 0, 3), Range("b", 0, 1)), SIGMAS.__getitem__
        )
        leaves, root = specialize(plan, lambda col, lo, hi: None)
        assert leaves == ()
        assert root == ("empty",)

    def test_absorption_and_renumbering(self):
        pred = And(Range("a", 0, 3), Or(Range("b", 0, 1), Range("b", 4, 5)))
        plan = compile_pred(pred, SIGMAS.__getitem__)

        def tr(col, lo, hi):
            return None if (col, lo, hi) == ("b", 0, 1) else (lo, hi)

        leaves, root = specialize(plan, tr)
        # The Or collapses onto its surviving leg; the leaf table
        # compacts and the tree renumbers into it.
        assert leaves == (("a", 0, 3), ("b", 4, 5))
        assert root == ("and", (("leaf", 0), ("leaf", 1)))

    def test_translated_ranges_rewrite_leaf_bounds(self):
        plan = compile_pred(Range("a", 4, 9), SIGMAS.__getitem__)
        leaves, root = specialize(plan, lambda col, lo, hi: (1, 3))
        assert leaves == (("a", 1, 3),)
        assert root == ("leaf", 0)


# ----------------------------------------------------------------------
# Stream utilities
# ----------------------------------------------------------------------


class TestStreamUtilities:
    def test_count_iter_counts_and_closes(self):
        closed = []

        def gen():
            try:
                yield from (1, 2, 3)
            finally:
                closed.append(True)

        assert count_iter(gen()) == 3
        assert closed == [True]
        assert count_iter(iter(())) == 0

    def test_first_pulls_at_most_one_and_closes(self):
        pulled = []
        closed = []

        def gen():
            try:
                for v in (7, 8, 9):
                    pulled.append(v)
                    yield v
            finally:
                closed.append(True)

        assert first(gen()) == 7
        assert pulled == [7]
        assert closed == [True]
        assert first(iter(())) is None


class TestFingerprint:
    """Stable content hashes of normalized predicates and plans."""

    def fp(self, pred, epoch_of=None):
        from repro.query import fingerprint_pred

        return fingerprint_pred(
            pred, SIGMAS.__getitem__, epoch_of=epoch_of
        )

    def test_equivalent_predicates_collide(self):
        a = Range("a", 1, 3) & Range("b", 2, 4)
        b = Range("b", 2, 4) & Range("a", 1, 3)
        assert self.fp(a) == self.fp(b)
        # Double negation and De Morgan land on the same normal form.
        assert self.fp(~~a) == self.fp(a)
        c = ~(Not(Range("a", 1, 3)) | Not(Range("b", 2, 4)))
        assert self.fp(c) == self.fp(a)

    def test_adjacent_intervals_fuse_before_hashing(self):
        assert self.fp(Range("a", 1, 2) | Range("a", 3, 5)) == self.fp(
            Range("a", 1, 5)
        )
        assert self.fp(In("a", [1, 2, 3])) == self.fp(Range("a", 1, 3))
        assert self.fp(Eq("a", 4)) == self.fp(Range("a", 4, 4))

    def test_non_equivalent_predicates_differ(self):
        assert self.fp(Range("a", 1, 3)) != self.fp(Range("a", 1, 4))
        assert self.fp(Range("a", 1, 3)) != self.fp(Range("b", 1, 3))
        assert self.fp(Range("a", 1, 3)) != self.fp(~Range("a", 1, 3))
        assert self.fp(
            Range("a", 1, 3) & Range("b", 2, 4)
        ) != self.fp(Range("a", 1, 3) | Range("b", 2, 4))

    def test_method_form_matches_free_function(self):
        pred = Range("a", 1, 3) & Range("b", 2, 4)
        assert pred.fingerprint(SIGMAS.__getitem__) == self.fp(pred)

    def test_dictionary_epoch_changes_the_hash(self):
        pred = Range("a", 1, 3)
        one = self.fp(pred, epoch_of=lambda name: "epoch-1")
        two = self.fp(pred, epoch_of=lambda name: "epoch-2")
        assert one != two
        assert one != self.fp(pred)  # epoch-blind scope differs too
        # Stable across calls for the same epoch.
        assert one == self.fp(pred, epoch_of=lambda name: "epoch-1")

    def test_plan_fingerprint_tracks_equivalence(self):
        sigma_of = SIGMAS.__getitem__
        a = compile_pred(Range("a", 1, 3) & Range("b", 2, 4), sigma_of)
        b = compile_pred(Range("b", 2, 4) & Range("a", 1, 3), sigma_of)
        c = compile_pred(Range("a", 1, 3) | Range("b", 2, 4), sigma_of)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint(
            epoch_of=lambda name: "x"
        ) != a.fingerprint()

    def test_fingerprint_is_plain_hex(self):
        value = self.fp(Range("a", 0, 9))
        assert isinstance(value, str) and len(value) == 32
        int(value, 16)  # raises if not hex
