"""Universal differential conformance: every registry backend vs the oracle.

One parametrized harness runs *every* index listed in
``repro.engine.registry`` against the brute-force oracle on randomized
workloads — uniform, Zipf, runs-heavy, degenerate alphabets (sigma=1,
sigma=2) — and on the structural edge queries: empty ranges, the
full-universe range, and complement-threshold answers with ``z > n/2``
(§2.1's trick).  A backend registered tomorrow gets this coverage for
free; a backend that diverges from the oracle anywhere fails here
before any engine test can be misled by it.

The same corpus is additionally driven *through* the sharded serving
layer: every backend, pinned under a :class:`repro.cluster.\
ShardedTable` at 1, 2, and 7 shards, must produce RID sets identical
to the single-engine :class:`repro.queries.Table` and the oracle —
the scatter/offset-translate/merge path buys no slack on exactness.

Finally the *shard lifecycle* gets the same treatment: every backend
runs under a ShardedTable sized by a small ``target_shard_rows`` so
that shards split mid-suite — auto-splits under appends for backends
that serve them, explicit splits of the fattest shard for static
ones — and the post-split answers must again match the oracle and a
single-engine table over the identical final data.
"""

import random
import zlib

import pytest

from repro.cluster import ShardedTable
from repro.engine import QueryEngine, all_specs
from repro.model.alphabet import Alphabet
from repro.model.distributions import markov_runs, uniform, zipf
from repro.queries import Table
from repro.query import translate

from tests.conftest import (
    brute_range,
    pred_oracle,
    random_pred,
    random_ranges,
)

N = 400

WORKLOADS = [
    ("uniform", lambda: uniform(N, 32, seed=11), 32),
    ("zipf", lambda: zipf(N, 32, theta=1.2, seed=12), 32),
    ("runs_heavy", lambda: markov_runs(N, 16, stay=0.95, seed=13), 16),
    ("sigma_1", lambda: [0] * N, 1),
    ("sigma_2", lambda: uniform(N, 2, seed=14), 2),
]

SPECS = all_specs()


def spec_id(spec):
    return spec.name


@pytest.fixture(scope="module")
def built_indexes():
    """Every (spec, workload) pair built once for the whole module."""
    cache = {}
    for wname, gen, sigma in WORKLOADS:
        x = gen()
        for spec in SPECS:
            cache[(spec.name, wname)] = (x, sigma, spec.build(x, sigma))
    return cache


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
@pytest.mark.parametrize("wname", [w[0] for w in WORKLOADS])
class TestConformance:
    def test_random_ranges_match_oracle(self, built_indexes, spec, wname):
        x, sigma, idx = built_indexes[(spec.name, wname)]
        rng = random.Random(zlib.crc32(f"{spec.name}:{wname}".encode()))
        for lo, hi in random_ranges(rng, sigma, 12):
            expected = brute_range(x, lo, hi)
            result = idx.range_query(lo, hi)
            assert result.positions() == expected, (
                f"{spec.name} on {wname}: [{lo},{hi}]"
            )
            assert result.cardinality == len(expected)

    def test_full_universe_range(self, built_indexes, spec, wname):
        x, sigma, idx = built_indexes[(spec.name, wname)]
        result = idx.range_query(0, sigma - 1)
        assert result.positions() == list(range(len(x)))
        assert result.cardinality == len(x)

    def test_empty_answer_ranges(self, built_indexes, spec, wname):
        x, sigma, idx = built_indexes[(spec.name, wname)]
        # A character that never occurs yields an empty exact answer.
        missing = [c for c in range(sigma) if c not in set(x)]
        if not missing:
            pytest.skip("every character occurs in this workload")
        c = missing[0]
        result = idx.range_query(c, c)
        assert result.positions() == []
        assert result.cardinality == 0

    def test_complement_threshold_answers(self, built_indexes, spec, wname):
        # Ranges whose z exceeds n/2: structures using §2.1's complement
        # trick must still report exactly the oracle's positions.
        x, sigma, idx = built_indexes[(spec.name, wname)]
        n = len(x)
        hits = []
        for lo in range(sigma):
            for hi in range(lo, sigma):
                z = len(brute_range(x, lo, hi))
                if z > n // 2 and z < n:
                    hits.append((lo, hi))
        if not hits:
            pytest.skip("no strict majority range in this workload")
        for lo, hi in hits[:8]:
            expected = brute_range(x, lo, hi)
            result = idx.range_query(lo, hi)
            assert result.positions() == expected
            assert result.cardinality == len(expected) > n // 2
            # The membership view must agree with the materialized one.
            probe = random.Random(lo * 31 + hi).sample(range(n), min(20, n))
            member = set(expected)
            for p in probe:
                assert (p in result) == (p in member)


SHARD_COUNTS = [1, 2, 7]


@pytest.fixture(scope="module")
def sharded_tables():
    """Every (spec, workload) pair as one single-engine table plus a
    pinned ShardedTable per shard count (and one pinned QueryEngine
    for the code-space differential), built once for the module."""
    cache = {}
    for wname, gen, sigma in WORKLOADS:
        x = gen()
        for spec in SPECS:
            single = Table({"c": x}, factory=spec.build)
            sharded = {
                k: ShardedTable({"c": x}, num_shards=k, backend=spec.name)
                for k in SHARD_COUNTS
            }
            # The pinned engine indexes dictionary codes (like Table
            # does) so value-space predicates translate onto it.
            alphabet = Alphabet(x)
            engine = QueryEngine()
            engine.add_column(
                "c", alphabet.encode(x), alphabet.sigma, backend=spec.name
            )
            cache[(spec.name, wname)] = (x, sigma, single, sharded, engine)
    return cache


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
@pytest.mark.parametrize("wname", [w[0] for w in WORKLOADS])
class TestShardedConformance:
    """The registry contract holds through scatter-gather serving."""

    def test_sharded_select_matches_table_and_oracle(
        self, sharded_tables, spec, wname, num_shards
    ):
        x, sigma, single, sharded, _ = sharded_tables[(spec.name, wname)]
        table = sharded[num_shards]
        rng = random.Random(
            zlib.crc32(f"shard:{spec.name}:{wname}:{num_shards}".encode())
        )
        for lo, hi in random_ranges(rng, sigma, 6):
            expected = brute_range(x, lo, hi)
            got = table.select({"c": (lo, hi)})
            assert got == expected, (
                f"{spec.name} on {wname} at {num_shards} shards: [{lo},{hi}]"
            )
            assert got == single.select({"c": (lo, hi)})

    def test_sharded_majority_answers(
        self, sharded_tables, spec, wname, num_shards
    ):
        # Complement-represented per-shard answers (z > n/2 locally)
        # must offset-translate and merge exactly like any other.
        x, sigma, single, sharded, _ = sharded_tables[(spec.name, wname)]
        table = sharded[num_shards]
        n = len(x)
        hits = [
            (lo, hi)
            for lo in range(sigma)
            for hi in range(lo, sigma)
            if n > len(brute_range(x, lo, hi)) > n // 2
        ]
        if not hits:
            pytest.skip("no strict majority range in this workload")
        for lo, hi in hits[:8]:
            assert table.select({"c": (lo, hi)}) == brute_range(x, lo, hi)

    def test_random_predicate_asts_match_oracle(
        self, sharded_tables, spec, wname, num_shards
    ):
        """The acceptance workload: random Range/Eq/In/And/Or/Not ASTs
        (depth <= 4) bit-identical across the brute oracle, a pinned
        QueryEngine, the factory-built Table, and the ShardedTable —
        materialized and streamed."""
        x, sigma, single, sharded, engine = sharded_tables[
            (spec.name, wname)
        ]
        table = sharded[num_shards]
        alphabet = Alphabet(x)
        columns = {"c": alphabet.values()}
        rng = random.Random(
            zlib.crc32(f"ast:{spec.name}:{wname}:{num_shards}".encode())
        )
        for i in range(6):
            pred = random_pred(rng, columns, depth=4)
            expected = pred_oracle(pred, {"c": x})
            got = table.select(pred)
            assert got == expected, (
                f"{spec.name} on {wname} at {num_shards} shard(s), "
                f"AST #{i}: {pred!r}"
            )
            assert list(table.select_iter(pred)) == expected
            assert single.select(pred) == expected
            code_pred = translate(pred, lambda _name: alphabet)
            assert engine.select(code_pred) == expected
            assert list(engine.select_iter(code_pred)) == expected

    def test_aggregates_match_oracle(
        self, sharded_tables, spec, wname, num_shards
    ):
        """count/exists/count_by agree with the brute oracle through
        every backend and shard count — the cardinality-space folds
        buy no slack over materialize-then-count."""
        from collections import Counter

        x, sigma, single, sharded, _ = sharded_tables[(spec.name, wname)]
        table = sharded[num_shards]
        alphabet = Alphabet(x)
        columns = {"c": alphabet.values()}
        rng = random.Random(
            zlib.crc32(f"agg:{spec.name}:{wname}:{num_shards}".encode())
        )
        for i in range(4):
            pred = random_pred(rng, columns, depth=3)
            expected = pred_oracle(pred, {"c": x})
            want_by = dict(Counter(x[rid] for rid in expected))
            assert table.count(pred) == len(expected), (
                f"{spec.name} on {wname} at {num_shards} shard(s), "
                f"AST #{i}: {pred!r}"
            )
            assert table.exists(pred) == bool(expected)
            assert table.count_by("c", pred) == want_by
            assert single.count(pred) == len(expected)
            assert single.count_by("c", pred) == want_by


LIFECYCLE_TARGET = 48
LIFECYCLE_WORKLOADS = ["uniform", "runs_heavy", "sigma_2"]


@pytest.fixture(scope="module")
def lifecycle_tables():
    """Every backend under a ShardedTable with the auto lifecycle on.

    Backends that serve appends grow 80 rows past the target (several
    auto-splits fire mid-build); static-only backends get the fattest
    shard split explicitly, twice.  Either way every backend's shards
    pass through the split rebuild path before any query runs.
    """
    by_name = {w[0]: w for w in WORKLOADS}
    cache = {}
    for wname in LIFECYCLE_WORKLOADS:
        _, gen, sigma = by_name[wname]
        x = gen()
        for spec in SPECS:
            appendable = spec.serves("semidynamic")
            table = ShardedTable(
                {"c": list(x)},
                target_shard_rows=LIFECYCLE_TARGET,
                backend=spec.name,
                dynamism="semidynamic" if appendable else "static",
                drift_window=None,
            )
            model = list(x)
            if appendable:
                for i in range(80):
                    value = x[(7 * i) % len(x)]
                    table.append_row({"c": value})
                    model.append(value)
            else:
                for _ in range(2):
                    lengths = table.cluster.shard_lengths("c")
                    fattest = max(
                        range(len(lengths)), key=lengths.__getitem__
                    )
                    table.cluster.split_shard(fattest)
            cache[(spec.name, wname)] = (model, sigma, appendable, table)
    return cache


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
@pytest.mark.parametrize("wname", LIFECYCLE_WORKLOADS)
class TestLifecycleConformance:
    """The registry contract survives shard splits and regrowth."""

    def test_splits_fired_and_answers_match_oracle(
        self, lifecycle_tables, spec, wname
    ):
        model, sigma, appendable, table = lifecycle_tables[
            (spec.name, wname)
        ]
        cluster = table.cluster
        if appendable:
            assert cluster.splits, (
                f"{spec.name} on {wname}: appends past "
                f"{LIFECYCLE_TARGET} rows must have split"
            )
            assert max(cluster.shard_lengths("c")) <= LIFECYCLE_TARGET
        else:
            assert len(cluster.splits) == 2
        assert sum(cluster.shard_lengths("c")) == len(model)
        single = Table({"c": model}, factory=spec.build)
        rng = random.Random(
            zlib.crc32(f"lifecycle:{spec.name}:{wname}".encode())
        )
        for lo, hi in random_ranges(rng, sigma, 6):
            expected = brute_range(model, lo, hi)
            got = table.select({"c": (lo, hi)})
            assert got == expected, (
                f"{spec.name} on {wname} post-lifecycle: [{lo},{hi}]"
            )
            assert got == single.select({"c": (lo, hi)})
            assert list(table.select_iter({"c": (lo, hi)})) == expected


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
def test_space_reported(spec):
    """Registry contract: every backend reports a space breakdown."""
    x = uniform(128, 8, seed=5)
    idx = spec.build(x, 8)
    space = idx.space()
    assert space.total_bits > 0
    assert space.payload_bits >= 0 and space.directory_bits >= 0


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
def test_invalid_ranges_rejected(spec):
    from repro.errors import QueryError

    x = uniform(64, 8, seed=6)
    idx = spec.build(x, 8)
    for lo, hi in [(-1, 3), (2, 8), (5, 4)]:
        with pytest.raises(QueryError):
            idx.range_query(lo, hi)


@pytest.fixture(scope="module")
def process_pool():
    """One worker pool shared by every process-conformance table."""
    from repro.cluster import ProcessExecutor

    with ProcessExecutor(max_workers=2) as pool:
        yield pool


PROCESS_WORKLOADS = ["zipf", "sigma_2"]


@pytest.fixture(scope="module")
def process_tables(process_pool):
    """Every backend served serial and process-resident, built once.

    Each pinned backend runs through a ShardedTable twice — serial
    executor and worker-resident ProcessExecutor — over the same
    data, so the pair can be compared result for result and transfer
    for transfer.
    """
    by_name = {w[0]: w for w in WORKLOADS}
    cache = {}
    for wname in PROCESS_WORKLOADS:
        _, gen, sigma = by_name[wname]
        x = gen()
        for spec in SPECS:
            serial = ShardedTable({"c": x}, num_shards=2, backend=spec.name)
            resident = ShardedTable(
                {"c": x}, num_shards=2, backend=spec.name,
                executor=process_pool,
            )
            cache[(spec.name, wname)] = (x, sigma, serial, resident)
    return cache


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
@pytest.mark.parametrize("wname", PROCESS_WORKLOADS)
class TestProcessConformance:
    """The registry contract holds through worker-resident serving.

    The differential claim is total: bit-identical select/query/
    explain output *and* bit-identical aggregated I/O totals — the
    resident replica must be indistinguishable from the serial path
    on every backend.
    """

    def test_process_select_and_io_match_serial(
        self, process_tables, spec, wname
    ):
        x, sigma, serial, resident = process_tables[(spec.name, wname)]
        rng = random.Random(
            zlib.crc32(f"process:{spec.name}:{wname}".encode())
        )
        for lo, hi in random_ranges(rng, sigma, 6):
            expected = brute_range(x, lo, hi)
            got = resident.select({"c": (lo, hi)})
            assert got == expected, (
                f"{spec.name} on {wname} resident: [{lo},{hi}]"
            )
            assert got == serial.select({"c": (lo, hi)})
            # Code-space comparison goes through the shared alphabet
            # (cluster queries speak dense codes, not raw values).
            code_range = serial.column("c").code_range(lo, hi)
            if code_range is None:
                continue
            assert (
                resident.cluster.query("c", *code_range).positions()
                == serial.cluster.query("c", *code_range).positions()
            )
            assert resident.cluster.explain(
                "c", *code_range
            ) == serial.cluster.explain("c", *code_range)
        assert (
            resident.cluster.scatter_io.snapshot()
            == serial.cluster.scatter_io.snapshot()
        )

    def test_process_streamed_gather_matches(
        self, process_tables, spec, wname
    ):
        x, sigma, serial, resident = process_tables[(spec.name, wname)]
        lo, hi = 0, sigma - 1
        assert list(resident.select_iter({"c": (lo, hi)})) == list(
            serial.select_iter({"c": (lo, hi)})
        ) == list(range(len(x)))

    def test_random_predicate_asts_match_serial(
        self, process_tables, spec, wname
    ):
        """Random ASTs served by worker-resident replicas are
        bit-identical to the serial cluster and the brute oracle —
        results *and* aggregated I/O (the batched compiled-leaf fetch
        op buys no slack on accounting)."""
        x, sigma, serial, resident = process_tables[(spec.name, wname)]
        columns = {"c": sorted(set(x))}
        rng = random.Random(
            zlib.crc32(f"ast-proc:{spec.name}:{wname}".encode())
        )
        for i in range(5):
            pred = random_pred(rng, columns, depth=4)
            expected = pred_oracle(pred, {"c": x})
            got = resident.select(pred)
            assert got == expected, (
                f"{spec.name} on {wname} resident, AST #{i}: {pred!r}"
            )
            assert serial.select(pred) == expected
            assert list(resident.select_iter(pred)) == expected
            # The batch-scatter path (worker 'leaves' op) must agree
            # with the streamed one and with the serial cluster.
            code_pred = translate(
                pred, lambda _n, a=serial.column("c").alphabet: a
            )
            assert (
                resident.cluster.query(code_pred).positions()
                == serial.cluster.query(code_pred).positions()
                == expected
            )
        assert (
            resident.cluster.scatter_io.snapshot()
            == serial.cluster.scatter_io.snapshot()
        )

    def test_resident_aggregates_match_serial_without_rid_gather(
        self, process_tables, spec, wname
    ):
        """Aggregates pushed down to worker residents return oracle
        answers while the coordinator gathers zero positions — the
        fold replies carry counts, never row-id lists."""
        from collections import Counter

        x, sigma, serial, resident = process_tables[(spec.name, wname)]
        columns = {"c": sorted(set(x))}
        rng = random.Random(
            zlib.crc32(f"agg-proc:{spec.name}:{wname}".encode())
        )
        rids_before = resident.cluster.gather_rids
        for i in range(4):
            pred = random_pred(rng, columns, depth=3)
            expected = pred_oracle(pred, {"c": x})
            assert resident.count(pred) == len(expected), (
                f"{spec.name} on {wname} resident agg, AST #{i}: {pred!r}"
            )
            assert resident.exists(pred) == bool(expected)
            want_by = dict(Counter(x[rid] for rid in expected))
            assert resident.count_by("c", pred) == want_by
            assert serial.count(pred) == len(expected)
            assert serial.count_by("c", pred) == want_by
        # No gather-side position decode happened on the aggregate
        # path: every scatter reply was an integer or a code->count
        # mapping.
        assert resident.cluster.gather_rids == rids_before


# ----------------------------------------------------------------------
# Snapshot persistence: every backend round-trips through the durable
# *.snap format (repro.persist.snapshot) byte-exactly.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec", SPECS, ids=spec_id)
@pytest.mark.parametrize("wname", [w[0] for w in WORKLOADS])
class TestSnapshotConformance:
    """Differential: engine answers survive a disk round-trip.

    Two layers per (backend, workload) pair: the raw
    :class:`~repro.iomodel.disk.DiskState` wire form must round-trip
    ``pack``/``unpack`` byte-exactly, and a pinned engine written with
    :func:`repro.persist.write_shard_snapshot` and mmap'd back with
    :func:`repro.persist.load_shard_engine` must answer every probe
    range exactly like the original (and the oracle).
    """

    def _engine(self, spec, wname):
        x, sigma = next(
            (gen(), s) for name, gen, s in WORKLOADS if name == wname
        )
        engine = QueryEngine()
        engine.add_column("c", x, sigma, backend=spec.name)
        return x, sigma, engine

    @staticmethod
    def _disks(engine):
        """The column's disks, discovered exactly as the snapshot
        writer discovers them (identity-lifting pickler walk)."""
        import io

        from repro.persist.snapshot import _SkeletonPickler

        pickler = _SkeletonPickler(io.BytesIO())
        pickler.dump(engine.column("c")._index)
        return pickler.disks

    def test_disk_state_pack_unpack_round_trip(self, spec, wname):
        from repro.iomodel.disk import DiskState

        x, sigma, engine = self._engine(spec, wname)
        disks = self._disks(engine)
        assert disks, "every built index owns >= 1 disk"
        for disk in disks:
            state = disk.snapshot_state()
            back = DiskState.unpack(state.pack())
            assert back.block_bits == state.block_bits
            assert back.mem_blocks == state.mem_blocks
            assert back.alloc_bits == state.alloc_bits
            assert back.latency_s == state.latency_s
            assert bytes(back.data) == bytes(state.data)

    def test_snapshot_answers_match_original(self, tmp_path, spec, wname):
        from repro.persist import load_shard_engine, write_shard_snapshot

        x, sigma, engine = self._engine(spec, wname)
        path = str(tmp_path / "shard.snap")
        manifest = write_shard_snapshot(path, engine)
        (entry,) = manifest["columns"]
        assert entry["backend"] == spec.name
        restored = load_shard_engine(path)
        rng = random.Random(
            zlib.crc32(f"snap:{spec.name}:{wname}".encode())
        )
        for lo, hi in random_ranges(rng, sigma, 8):
            expected = brute_range(x, lo, hi)
            assert engine.query("c", lo, hi).positions() == expected
            assert restored.query("c", lo, hi).positions() == expected

    def test_snapshot_disk_pages_byte_exact(self, tmp_path, spec, wname):
        """The section bytes ARE the device pages: loading must not
        re-derive or re-encode anything."""
        from repro.persist import SnapshotFile, write_shard_snapshot

        x, sigma, engine = self._engine(spec, wname)
        path = str(tmp_path / "shard.snap")
        write_shard_snapshot(path, engine)
        states = [disk.snapshot_state() for disk in self._disks(engine)]
        snap = SnapshotFile(path)
        try:
            (entry,) = snap.manifest["columns"]
            assert len(entry["disks"]) == len(states)
            for meta, state in zip(entry["disks"], states):
                assert meta["block_bits"] == state.block_bits
                assert meta["alloc_bits"] == state.alloc_bits
                stored = bytes(snap.section(meta["data"]))
                assert stored == bytes(state.data)
        finally:
            snap.close()
