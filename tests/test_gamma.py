"""Unit tests for Elias gamma/delta codes."""

import pytest

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.gamma import (
    delta_length,
    gamma_length,
    read_delta,
    read_gamma,
    write_delta,
    write_gamma,
)
from repro.errors import InvalidParameterError


def roundtrip_gamma(values):
    w = BitWriter()
    for v in values:
        write_gamma(w, v)
    r = BitReader(w.getvalue(), bit_length=w.bit_length)
    return [read_gamma(r) for _ in values], w.bit_length


def roundtrip_delta(values):
    w = BitWriter()
    for v in values:
        write_delta(w, v)
    r = BitReader(w.getvalue(), bit_length=w.bit_length)
    return [read_delta(r) for _ in values], w.bit_length


class TestGamma:
    def test_known_codewords(self):
        # gamma(1) = "1", gamma(2) = "010", gamma(3) = "011".
        w = BitWriter()
        write_gamma(w, 1)
        assert (w.getvalue(), w.bit_length) == (b"\x80", 1)
        w = BitWriter()
        write_gamma(w, 2)
        assert (w.getvalue()[0] >> 5, w.bit_length) == (0b010, 3)
        w = BitWriter()
        write_gamma(w, 3)
        assert (w.getvalue()[0] >> 5, w.bit_length) == (0b011, 3)

    def test_roundtrip_small(self):
        values = list(range(1, 200))
        decoded, _ = roundtrip_gamma(values)
        assert decoded == values

    def test_roundtrip_powers(self):
        values = [1 << k for k in range(40)] + [(1 << k) - 1 for k in range(1, 40)]
        decoded, _ = roundtrip_gamma(values)
        assert decoded == values

    def test_length_formula(self):
        for v in [1, 2, 3, 4, 7, 8, 100, 65535, 1 << 30]:
            w = BitWriter()
            write_gamma(w, v)
            assert w.bit_length == gamma_length(v)
            assert gamma_length(v) == 2 * v.bit_length() - 1

    def test_paper_length_bound(self):
        # §1.2: run length x encoded in 2*floor(lg(x+1)) + 2 bits suffices;
        # our gamma code for x uses 2*floor(lg x) + 1 <= that bound.
        import math

        for x in range(1, 2000):
            assert gamma_length(x) <= 2 * math.floor(math.log2(x + 1)) + 2

    def test_zero_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            write_gamma(w, 0)
        with pytest.raises(InvalidParameterError):
            gamma_length(0)


class TestDelta:
    def test_roundtrip(self):
        values = list(range(1, 300)) + [1 << 20, (1 << 33) + 7]
        decoded, _ = roundtrip_delta(values)
        assert decoded == values

    def test_length_formula(self):
        for v in [1, 2, 3, 15, 16, 1000, 1 << 25]:
            w = BitWriter()
            write_delta(w, v)
            assert w.bit_length == delta_length(v)

    def test_delta_shorter_for_large_values(self):
        big = 1 << 40
        assert delta_length(big) < gamma_length(big)

    def test_zero_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            write_delta(w, 0)
