"""Aggregate execution: count/exists/count_by/topk at every layer.

The tentpole claim of the aggregate pushdown: every aggregate verb —
on a :class:`QueryEngine`, a :class:`Table`, a :class:`ClusterEngine`,
a :class:`ShardedTable`, serial or worker-resident — agrees with the
brute-force oracle, and at cluster scale only *counts* cross the
shard boundary: the pushdown path never materializes a global row-id
list, which the executor's op counter and the cluster's gather
accounting prove directly.
"""

import random
import zlib
from collections import Counter

import pytest

from repro.cluster import ClusterEngine, ProcessExecutor, ShardedTable
from repro.engine import QueryEngine
from repro.errors import InvalidParameterError, QueryError
from repro.model.distributions import uniform, zipf
from repro.queries import Table
from repro.query import And, Eq, In, Not, Or, Range

from tests.conftest import pred_oracle, random_pred


def brute_count_by(columns, group, rids):
    return dict(Counter(columns[group][rid] for rid in rids))


class TestEngineAggregates:
    """Code-space aggregates on the single-process engine."""

    def make(self):
        engine = QueryEngine()
        rng = random.Random(5)
        engine.add_column(
            "a", [rng.randrange(10) for _ in range(200)], 10
        )
        engine.add_column("b", [rng.randrange(6) for _ in range(200)], 6)
        return engine

    def columns_of(self, engine):
        return {
            name: list(col.codes) for name, col in engine.columns.items()
        }

    def test_random_asts_match_select(self):
        engine = self.make()
        columns = self.columns_of(engine)
        domains = {name: sorted(set(v)) for name, v in columns.items()}
        rng = random.Random(31)
        for _ in range(30):
            pred = random_pred(rng, domains, depth=3)
            want = pred_oracle(pred, columns)
            assert engine.count(pred) == len(want)
            assert engine.exists(pred) == bool(want)
            assert engine.count_by("b", pred) == brute_count_by(
                columns, "b", want
            )

    def test_count_by_without_predicate_is_the_histogram(self):
        engine = self.make()
        columns = self.columns_of(engine)
        assert engine.count_by("b") == dict(Counter(columns["b"]))

    def test_group_column_absent_from_predicate(self):
        # The universe must widen to include the group column even
        # when the predicate never mentions it.
        engine = self.make()
        columns = self.columns_of(engine)
        pred = Range("a", 0, 4)
        want = pred_oracle(pred, columns)
        assert engine.count_by("b", pred) == brute_count_by(
            columns, "b", want
        )

    def test_topk_orders_by_count_then_code(self):
        engine = QueryEngine()
        engine.add_column("g", [2, 2, 0, 0, 1], 3)
        assert engine.topk("g") == [(0, 2), (2, 2), (1, 1)]
        assert engine.topk("g", k=1) == [(0, 2)]
        with pytest.raises(InvalidParameterError):
            engine.topk("g", k=0)

    def test_aggregates_reject_unknown_columns(self):
        engine = self.make()
        with pytest.raises(QueryError):
            engine.count(Range("zzz", 0, 1))
        with pytest.raises(QueryError):
            engine.count_by("zzz")


class TestTableAggregates:
    """Value-space aggregates, engine-backed and factory-backed."""

    def data(self):
        rng = random.Random(17)
        return {
            "city": [rng.choice(["ams", "cph", "rio"]) for _ in range(120)],
            "score": [rng.randrange(20) for _ in range(120)],
        }

    def tables(self):
        from repro.engine import get_spec

        columns = self.data()
        yield columns, Table(columns)
        yield columns, Table(columns, factory=get_spec("bitmap-plain").build)

    def test_aggregates_match_select(self):
        for columns, table in self.tables():
            domains = {k: sorted(set(v)) for k, v in columns.items()}
            rng = random.Random(zlib.crc32(b"table-agg"))
            for _ in range(15):
                pred = random_pred(rng, {"score": domains["score"]}, depth=3)
                want = pred_oracle(pred, columns)
                assert table.count(pred) == len(want)
                assert table.exists(pred) == bool(want)
                assert table.count_by("city", pred) == brute_count_by(
                    columns, "city", want
                )

    def test_count_by_speaks_values(self):
        for columns, table in self.tables():
            assert table.count_by("city") == dict(Counter(columns["city"]))

    def test_topk_tie_breaks_by_value_order(self):
        table = Table({"g": ["b", "b", "a", "a", "c"]})
        assert table.topk("g") == [("a", 2), ("b", 2), ("c", 1)]
        assert table.topk("g", k=2) == [("a", 2), ("b", 2)]
        with pytest.raises(InvalidParameterError):
            table.topk("g", k=-1)

    def test_count_rejects_non_predicate_conditions(self):
        _, table = next(self.tables())
        with pytest.raises(QueryError):
            table.count_by("city", "score > 3")


class TestClusterAggregates:
    """Scatter-fold aggregates against the single-engine truth."""

    def build(self, num_shards, dynamism="static"):
        rng = random.Random(num_shards * 100 + 7)
        columns = {
            "city": [rng.choice(["ams", "cph", "rio"]) for _ in range(150)],
            "score": [rng.randrange(16) for _ in range(150)],
        }
        table = ShardedTable(
            columns, num_shards=num_shards, dynamism=dynamism
        )
        return columns, table

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_sharded_aggregates_match_oracle(self, num_shards):
        columns, table = self.build(num_shards)
        domains = {k: sorted(set(v)) for k, v in columns.items()}
        rng = random.Random(zlib.crc32(f"shard-agg:{num_shards}".encode()))
        for _ in range(12):
            pred = random_pred(rng, {"score": domains["score"]}, depth=3)
            want = pred_oracle(pred, columns)
            assert table.count(pred) == len(want)
            assert table.exists(pred) == bool(want)
            assert table.count_by("city", pred) == brute_count_by(
                columns, "city", want
            )
        assert table.count_by("city") == dict(Counter(columns["city"]))
        assert table.topk("city", k=2) == Table(columns).topk("city", k=2)

    def test_pruned_not_counts_whole_shards(self):
        # "rare" occurs only in the first rows, so on every other
        # shard the Not's inner leaf prunes away entirely —
        # specialization must constant-fold Not(EMPTY) into ALL and
        # count every row of those shards, not skip them.
        values = ["rare"] * 3 + ["common"] * 97
        table = ShardedTable({"c": values}, num_shards=4)
        assert table.count(Not(Eq("c", "rare"))) == 97
        assert table.count(Eq("c", "rare")) == 3
        assert table.exists(Not(Eq("c", "rare")))

    def test_unsatisfiable_predicates_skip_the_scatter(self):
        columns, table = self.build(3)
        io_before = table.cluster.scatter_io.snapshot()
        assert table.count(In("score", [])) == 0
        assert not table.exists(In("score", []))
        assert table.count_by("city", In("score", [])) == {}
        # Every shard's plan folded to EMPTY at the coordinator: no
        # scatter round trips, no index bits.
        assert (
            table.cluster.scatter_io.snapshot() - io_before
        ).total == 0

    def test_tautologies_answer_from_shard_metadata(self):
        columns, table = self.build(3)
        io_before = table.cluster.scatter_io.snapshot()
        n = len(columns["score"])
        assert table.count(Range("score", None, None)) == n
        assert table.exists(Range("score", None, None))
        assert (
            table.cluster.scatter_io.snapshot() - io_before
        ).total == 0

    def test_dynamic_columns_aggregate_after_appends(self):
        columns, table = self.build(2, dynamism="semidynamic")
        for i in range(20):
            row = {
                "city": columns["city"][i * 3 % 150],
                "score": columns["score"][i * 7 % 150],
            }
            table.append_row(row)
            for name in columns:
                columns[name].append(row[name])
        pred = Range("score", 4, 11)
        want = pred_oracle(pred, columns)
        assert table.count(pred) == len(want)
        assert table.count_by("city", pred) == brute_count_by(
            columns, "city", want
        )

    def test_cluster_engine_code_space_aggregates(self):
        cluster = ClusterEngine(num_shards=3)
        x = uniform(90, 8, seed=3)
        g = zipf(90, 5, theta=1.1, seed=4)
        cluster.add_column("c", x, 8)
        cluster.add_column("g", g, 5)
        pred = Or(Range("c", 0, 2), Not(Range("c", 0, 6)))
        want = pred_oracle(pred, {"c": x, "g": g})
        assert cluster.count(pred) == len(want)
        assert cluster.exists(pred) == bool(want)
        assert cluster.count_by("g", pred) == brute_count_by(
            {"c": x, "g": g}, "g", want
        )
        assert cluster.count_by("g") == dict(Counter(g))
        with pytest.raises(InvalidParameterError):
            cluster.topk("g", k=0)


@pytest.fixture(scope="module")
def agg_pool():
    with ProcessExecutor(max_workers=2) as pool:
        yield pool


class TestAggregatePushdownAccounting:
    """The acceptance claim: no global RID list crosses a pipe.

    ``ProcessExecutor.op_counts`` records which worker ops ran and
    ``ClusterEngine.gather_rids`` counts every position a scatter
    reply delivered to the coordinator.  Aggregates must move the
    former only through ``fold`` and the latter not at all.
    """

    def build(self, pool):
        rng = random.Random(99)
        columns = {
            "city": [rng.choice(["ams", "cph", "rio"]) for _ in range(160)],
            "score": [rng.randrange(12) for _ in range(160)],
        }
        serial = ShardedTable(dict(columns), num_shards=2)
        resident = ShardedTable(dict(columns), num_shards=2, executor=pool)
        return columns, serial, resident

    def test_resident_aggregates_ship_counts_not_rids(self, agg_pool):
        columns, serial, resident = self.build(agg_pool)
        pred = Or(Range("score", 0, 3), Not(Range("score", 0, 9)))
        want = pred_oracle(pred, columns)

        agg_pool.op_counts.clear()
        rids_before = resident.cluster.gather_rids
        assert resident.count(pred) == len(want)
        assert resident.exists(pred) == bool(want)
        assert resident.count_by("city", pred) == brute_count_by(
            columns, "city", want
        )
        # Only fold ops crossed the pipes, and not a single row id
        # came back: shards answered in cardinality space.
        assert set(agg_pool.op_counts) == {"fold"}
        assert resident.cluster.gather_rids == rids_before

        # A select over the same predicate *does* gather positions —
        # the counter is live, the aggregate path simply never feeds
        # it.
        assert resident.select(pred) == want
        assert resident.cluster.gather_rids > rids_before

    def test_resident_and_serial_fold_io_agree(self, agg_pool):
        columns, serial, resident = self.build(agg_pool)
        preds = [
            Range("score", 2, 7),
            Not(Eq("city", "rio")),
            And(Range("score", 0, 8), Or(Eq("city", "ams"), Eq("city", "cph"))),
        ]
        for pred in preds:
            assert serial.count(pred) == resident.count(pred)
            assert serial.exists(pred) == resident.exists(pred)
            assert serial.count_by("city", pred) == resident.count_by(
                "city", pred
            )
        # The worker-resident fold reads exactly the bits the serial
        # fold reads: pushdown buys transfer, never accounting slack.
        assert (
            serial.cluster.scatter_io.snapshot()
            == resident.cluster.scatter_io.snapshot()
        )

    def test_fully_pruned_not_answers_at_the_coordinator(self, agg_pool):
        values = ["rare"] * 2 + ["common"] * 98
        resident = ShardedTable(
            {"c": values}, num_shards=2, executor=agg_pool
        )
        # Both shards hold only indexed codes; Eq on a value no shard's
        # range can serve prunes everywhere, so Not folds to ALL on
        # every shard and count/exists come straight from shard row
        # counts — zero fold round trips.
        agg_pool.op_counts.clear()
        assert resident.count(Not(In("c", []))) == 100
        assert resident.exists(Not(In("c", [])))
        assert agg_pool.op_counts.get("fold", 0) == 0
