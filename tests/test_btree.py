"""Unit tests for the external-memory B-tree."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.iomodel import Disk
from repro.trees.btree import BTree


def make_disk():
    return Disk(block_bits=512, mem_blocks=0)


class TestBulkBuild:
    def test_roundtrip_range(self):
        disk = make_disk()
        items = [(k, k * 10) for k in range(0, 500, 2)]
        t = BTree.bulk_build(disk, items, key_bits=16, payload_bits=16)
        assert len(t) == 250
        assert t.range_query(100, 120) == [(k, k * 10) for k in range(100, 121, 2)]
        t.check_invariants()

    def test_empty(self):
        t = BTree.bulk_build(make_disk(), [], key_bits=16)
        assert len(t) == 0
        assert t.range_query(0, 100) == []
        assert t.rank(5) == 0

    def test_unsorted_rejected(self):
        with pytest.raises(InvalidParameterError):
            BTree.bulk_build(make_disk(), [(2, 0), (1, 0)], key_bits=8)

    def test_duplicate_keys_supported(self):
        items = [(5, i) for i in range(30)]
        t = BTree.bulk_build(make_disk(), items, key_bits=8, payload_bits=8)
        assert len(t.range_query(5, 5)) == 30
        t.check_invariants()

    def test_fill_validation(self):
        with pytest.raises(InvalidParameterError):
            BTree.bulk_build(make_disk(), [], key_bits=8, fill=0.01)


class TestQueries:
    def setup_method(self):
        self.disk = make_disk()
        self.keys = sorted(random.Random(1).sample(range(10_000), 800))
        self.t = BTree.bulk_build(
            self.disk, [(k, 0) for k in self.keys], key_bits=16
        )

    def test_contains(self):
        assert self.t.contains(self.keys[0])
        assert self.t.contains(self.keys[-1])
        missing = next(k for k in range(10_000) if k not in set(self.keys))
        assert not self.t.contains(missing)

    def test_range_query_matches_brute_force(self):
        for lo, hi in [(0, 9999), (100, 200), (5000, 5000), (9990, 9999)]:
            expect = [k for k in self.keys if lo <= k <= hi]
            assert [k for k, _ in self.t.range_query(lo, hi)] == expect

    def test_inverted_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.t.range_query(5, 4)

    def test_rank(self):
        import bisect

        for probe in [0, 500, 5000, 9999, self.keys[0], self.keys[-1]]:
            assert self.t.rank(probe) == bisect.bisect_right(self.keys, probe)

    def test_select(self):
        for k in [0, 1, 100, 799]:
            assert self.t.select(k) == self.keys[k]
        with pytest.raises(InvalidParameterError):
            self.t.select(800)
        with pytest.raises(InvalidParameterError):
            self.t.select(-1)

    def test_keys_iterates_sorted(self):
        assert list(self.t.keys()) == self.keys

    def test_range_query_io_cost(self):
        # Descent O(lg_b n) + leaf scan O(z/b): reading everything must
        # touch roughly len/leaf_capacity blocks, not one per key.
        self.disk.stats.reset()
        out = self.t.range_query(0, 9999)
        assert len(out) == 800
        leaf_blocks = 800 / (self.t.leaf_capacity * 0.8) + self.t.height + 2
        assert self.disk.stats.reads <= 2 * leaf_blocks


class TestUpdates:
    def test_insert_then_query(self):
        t = BTree(make_disk(), key_bits=16)
        rng = random.Random(2)
        keys = rng.sample(range(5000), 600)
        for k in keys:
            t.insert(k)
        t.check_invariants()
        assert list(t.keys()) == sorted(keys)
        assert len(t) == 600

    def test_insert_maintains_rank(self):
        t = BTree(make_disk(), key_bits=16)
        inserted = []
        rng = random.Random(3)
        import bisect

        for _ in range(300):
            k = rng.randrange(2000)
            t.insert(k)
            bisect.insort(inserted, k)
        for probe in [0, 100, 1999]:
            assert t.rank(probe) == bisect.bisect_right(inserted, probe)

    def test_delete(self):
        t = BTree(make_disk(), key_bits=16)
        for k in range(100):
            t.insert(k)
        assert t.delete(50)
        assert not t.delete(50)
        assert not t.contains(50)
        assert len(t) == 99
        t.check_invariants()

    def test_interleaved_insert_delete(self):
        t = BTree(make_disk(), key_bits=16)
        rng = random.Random(4)
        shadow: list[int] = []
        import bisect

        for step in range(500):
            if shadow and rng.random() < 0.3:
                k = rng.choice(shadow)
                assert t.delete(k)
                shadow.remove(k)
            else:
                k = rng.randrange(3000)
                t.insert(k)
                bisect.insort(shadow, k)
        assert list(t.keys()) == shadow
        t.check_invariants()

    def test_insert_amortized_io_logarithmic(self):
        disk = make_disk()
        t = BTree(disk, key_bits=16)
        for k in range(500):
            t.insert(k)
        disk.stats.reset()
        for k in range(500, 600):
            t.insert(k)
        per_insert = disk.stats.total / 100
        # O(lg_b n) reads + writes per insert; generous constant.
        assert per_insert <= 6 * t.height

    def test_size_bits_counts_nodes(self):
        disk = make_disk()
        t = BTree.bulk_build(disk, [(k, 0) for k in range(1000)], key_bits=16)
        assert t.size_bits >= 1000 * 16  # at least the keys
        assert t.size_bits % disk.block_bits == 0

    def test_field_width_validation(self):
        with pytest.raises(InvalidParameterError):
            BTree(make_disk(), key_bits=0)
