"""Unit tests for the benchmark harness and workload helpers."""

import os

import pytest

from repro.bench import (
    Report,
    cold_query,
    fmt,
    output_bits_bound,
    prefix_range_for_selectivity,
    random_ranges,
    ratio,
    render_table,
    standard_string,
)
from repro.core import PaghRaoIndex
from repro.errors import InvalidParameterError


class TestFormatting:
    def test_fmt_variants(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"
        assert fmt(0.0) == "0"
        assert fmt(3.14159) == "3.142"
        assert fmt(42.7) == "42.7"
        assert fmt(123456.0) == "123,456"
        assert fmt(123456) == "123,456"
        assert fmt(7) == "7"
        assert fmt("x") == "x"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        # All data lines have equal width.
        assert len(lines[2]) == len(lines[3]) == len(lines[4])
        assert "333" in lines[4]

    def test_render_table_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "== T ==" in text


class TestReport:
    def test_save_roundtrip(self, tmp_path):
        rep = Report("exp", str(tmp_path))
        rep.line("hello")
        rep.table("tbl", ["h"], [[1]], note="n")
        path = rep.save()
        assert os.path.exists(path)
        content = open(path).read()
        assert "hello" in content
        assert "== tbl ==" in content
        assert "note: n" in content


class TestReportJsonRoundTrip:
    def test_write_reload_identical_tables(self, tmp_path):
        rep = Report("exp", str(tmp_path))
        rep.line("preamble")
        rep.table(
            "space",
            ["structure", "bits", "ratio"],
            [["pagh-rao", 12345, 1.07], ["btree", 99999, 8.5]],
            note="smaller is better",
        )
        rep.table("empty", ["h"], [])
        rep.save()

        loaded = Report.load(str(tmp_path), "exp")
        assert loaded.name == rep.name
        assert loaded.lines == rep.lines
        assert loaded.tables == rep.tables

    def test_reload_of_reload_is_stable(self, tmp_path):
        # Save -> load -> save again: neither the JSON nor the rendered
        # text may drift, so recorded benchmark numbers stay citable.
        rep = Report("exp", str(tmp_path))
        rep.line("preamble")
        rep.table("t", ["a"], [[1.23456], [7]], note="n")
        txt_path = rep.save()
        first_json = open(Report.json_path(str(tmp_path), "exp")).read()
        first_txt = open(txt_path).read()

        loaded = Report.load(str(tmp_path), "exp")
        loaded.save()
        assert open(Report.json_path(str(tmp_path), "exp")).read() == first_json
        assert open(txt_path).read() == first_txt

    def test_cells_formatted_like_rendered_table(self, tmp_path):
        rep = Report("exp", str(tmp_path))
        rep.table("t", ["v"], [[123456.0], [True]])
        assert rep.tables[0]["rows"] == [["123,456"], ["yes"]]


class TestMeasurement:
    def test_cold_query_counts(self):
        x = standard_string("uniform", 500, 16, seed=1)
        idx = PaghRaoIndex(x, 16)
        io = cold_query(idx, 3, 9)
        assert io["reads"] >= 1
        assert io["z"] == sum(1 for c in x if 3 <= c <= 9)
        # Cold again: same cost (deterministic).
        assert cold_query(idx, 3, 9)["reads"] == io["reads"]

    def test_output_bits_bound_complement(self):
        assert output_bits_bound(100, 99) == output_bits_bound(100, 1)
        assert output_bits_bound(100, 0) == 1.0
        assert output_bits_bound(1024, 32) > 32 * 5

    def test_ratio_guards_zero(self):
        assert ratio(5, 0) > 0
        assert ratio(10, 5) == 2.0


class TestWorkloads:
    def test_standard_string_dispatch(self):
        x = standard_string("zipf", 200, 8, seed=2, theta=1.0)
        assert len(x) == 200
        with pytest.raises(InvalidParameterError):
            standard_string("nope", 10, 4)

    def test_prefix_range_hits_target(self):
        x = standard_string("sequential", 1024, 64)
        lo, hi = prefix_range_for_selectivity(x, 64, 1 / 4)
        z = sum(1 for c in x if lo <= c <= hi)
        assert lo == 0
        assert abs(z - 256) <= 1024 // 64  # within one character's mass

    def test_prefix_range_full(self):
        x = standard_string("sequential", 128, 8)
        assert prefix_range_for_selectivity(x, 8, 1.0) == (0, 7)

    def test_random_ranges_reproducible(self):
        assert random_ranges(16, 5, seed=3) == random_ranges(16, 5, seed=3)
        for lo, hi in random_ranges(16, 20, seed=4):
            assert 0 <= lo <= hi < 16
