"""Unit tests for the blocked tree layout and node buffers."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.iomodel import Disk
from repro.model import distributions as dist
from repro.trees.blocked_layout import TreeLayout, default_record_bits
from repro.trees.buffers import NodeBuffer
from repro.trees.weighted import WeightedTree


class TestTreeLayout:
    def setup_method(self):
        self.disk = Disk(block_bits=2048, mem_blocks=0)
        x = dist.uniform(8000, 128, seed=1)
        self.tree = WeightedTree.build(x, 128)
        self.layout = TreeLayout(self.tree, self.disk)

    def test_every_node_assigned(self):
        assert set(self.layout.block_of_node) == {
            v.node_id for v in self.tree.iter_nodes()
        }

    def test_block_count_bounded(self):
        per_block = self.layout.records_per_block
        lower = math.ceil(len(self.tree.nodes) / per_block)
        assert lower <= self.layout.num_blocks <= 3 * lower + len(self.tree.nodes)

    def test_descent_faster_than_one_block_per_level(self):
        # The point of the layout: O(lg_b n) blocks per root-to-leaf
        # path, strictly fewer than the tree height when b is large.
        max_blocks = self.layout.max_descent_blocks()
        assert max_blocks <= self.tree.height
        if self.layout.records_per_block >= 8:
            assert max_blocks < self.tree.height

    def test_touch_nodes_deduplicates_blocks(self):
        path = self.tree.path_to(self.tree.leaves[0])
        self.disk.stats.reset()
        self.layout.touch_nodes(path)
        assert self.disk.stats.reads == self.layout.descent_blocks(
            self.tree.leaves[0]
        )

    def test_size_bits(self):
        assert self.layout.size_bits == self.layout.num_blocks * 2048

    def test_record_bits_default(self):
        assert default_record_bits(1 << 16, 256) > 0

    def test_record_bits_validation(self):
        with pytest.raises(InvalidParameterError):
            TreeLayout(self.tree, self.disk, record_bits=0)


class TestNodeBuffer:
    def setup_method(self):
        self.disk = Disk(block_bits=512, mem_blocks=0)

    def test_capacity_from_block(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        assert buf.capacity == 8

    def test_append_and_read(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        buf.append((1, 2))
        buf.append((3, 4))
        assert buf.read() == [(1, 2), (3, 4)]
        assert len(buf) == 2

    def test_append_charges_write(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        self.disk.stats.reset()
        buf.append((1, 2))
        assert self.disk.stats.writes == 1
        buf.append((5, 6), charge=False)  # pinned root buffer
        assert self.disk.stats.writes == 1

    def test_overflow_rejected(self):
        buf = NodeBuffer(self.disk, op_bits=256)  # capacity 2
        buf.append((1,))
        buf.append((2,))
        assert buf.is_full
        with pytest.raises(InvalidParameterError):
            buf.append((3,))

    def test_extend_batch(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        self.disk.stats.reset()
        buf.extend([(1,), (2,), (3,)])
        assert self.disk.stats.writes == 1
        with pytest.raises(InvalidParameterError):
            buf.extend([(0,)] * 10)

    def test_take_for_child_picks_busiest(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        for op in [("a", 1), ("b", 2), ("a", 3), ("a", 4), ("c", 5)]:
            buf.append(op)
        child, batch = buf.take_for_child(lambda op: op[0])
        assert child == "a"
        assert [op[1] for op in batch] == [1, 3, 4]
        assert [op[0] for op in buf.ops] == ["b", "c"]

    def test_take_for_child_empty_rejected(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        with pytest.raises(InvalidParameterError):
            buf.take_for_child(lambda op: 0)

    def test_clear(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        buf.append((1,))
        assert buf.clear() == [(1,)]
        assert len(buf) == 0

    def test_op_bits_validation(self):
        with pytest.raises(InvalidParameterError):
            NodeBuffer(self.disk, op_bits=0)
        with pytest.raises(InvalidParameterError):
            NodeBuffer(self.disk, op_bits=1024)

    def test_size_bits_is_one_block(self):
        buf = NodeBuffer(self.disk, op_bits=64)
        assert buf.size_bits == 512
