"""Tests for the general §1 query families (at-least-k, partial match,
boolean expression plans)."""

import random

import pytest

from repro.core import ApproximatePaghRaoIndex, PaghRaoIndex
from repro.errors import QueryError
from repro.queries import (
    And,
    Cond,
    Not,
    Or,
    at_least_k_approximate,
    at_least_k_exact,
    evaluate_expression,
    partial_match_approximate,
    partial_match_exact,
)

D = 4
N = 800
SIGMA = 16


@pytest.fixture(scope="module")
def data():
    rng = random.Random(3)
    points = [[rng.randrange(SIGMA) for _ in range(D)] for _ in range(N)]
    columns = [[points[i][d] for i in range(N)] for d in range(D)]
    exact = [PaghRaoIndex(columns[d], SIGMA) for d in range(D)]
    approx = [ApproximatePaghRaoIndex(columns[d], SIGMA, seed=d) for d in range(D)]
    return points, exact, approx


BOX = [(3, 7), (2, 9), (5, 12), (0, 4)]


def dims_inside(points, i):
    return sum(1 for d in range(D) if BOX[d][0] <= points[i][d] <= BOX[d][1])


class TestAtLeastK:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_exact_matches_brute_force(self, data, k):
        points, exact, _ = data
        want = [i for i in range(N) if dims_inside(points, i) >= k]
        assert at_least_k_exact(exact, BOX, k) == want

    @pytest.mark.parametrize("k", [2, 4])
    def test_approximate_is_superset(self, data, k):
        points, _, approx = data
        want = set(i for i in range(N) if dims_inside(points, i) >= k)
        got = set(at_least_k_approximate(approx, BOX, k, eps=1 / 8))
        assert want <= got

    def test_k_equals_d_is_intersection(self, data):
        points, exact, _ = data
        got = at_least_k_exact(exact, BOX, D)
        want = [i for i in range(N) if dims_inside(points, i) == D]
        assert got == want

    def test_validation(self, data):
        _, exact, _ = data
        with pytest.raises(QueryError):
            at_least_k_exact(exact, BOX, 0)
        with pytest.raises(QueryError):
            at_least_k_exact(exact, BOX, D + 1)
        with pytest.raises(QueryError):
            at_least_k_exact(exact, BOX[:2], 1)


class TestPartialMatch:
    def test_exact_subset_of_dims(self, data):
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        conds = {0: BOX[0], 2: BOX[2]}
        want = [
            i
            for i in range(N)
            if all(lo <= points[i][d] <= hi for d, (lo, hi) in conds.items())
        ]
        assert partial_match_exact(indexes, conds) == want

    def test_single_dimension(self, data):
        points, exact, _ = data
        got = partial_match_exact({1: exact[1]}, {1: (4, 4)})
        want = [i for i in range(N) if points[i][1] == 4]
        assert got == want

    def test_approximate_superset(self, data):
        points, _, approx = data
        indexes = dict(enumerate(approx))
        conds = {0: BOX[0], 1: BOX[1], 3: BOX[3]}
        want = {
            i
            for i in range(N)
            if all(lo <= points[i][d] <= hi for d, (lo, hi) in conds.items())
        }
        got = set(partial_match_approximate(indexes, conds, eps=1 / 8))
        assert want <= got

    def test_validation(self, data):
        _, exact, _ = data
        with pytest.raises(QueryError):
            partial_match_exact(dict(enumerate(exact)), {})
        with pytest.raises(QueryError):
            partial_match_exact({0: exact[0]}, {5: (0, 1)})


class TestExpressions:
    def brute(self, points, predicate):
        return [i for i in range(N) if predicate(points[i])]

    def test_and(self, data):
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        expr = And((Cond(0, 3, 7), Cond(1, 2, 9)))
        want = self.brute(points, lambda p: 3 <= p[0] <= 7 and 2 <= p[1] <= 9)
        assert evaluate_expression(expr, indexes, N) == want

    def test_or(self, data):
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        expr = Or((Cond(0, 0, 1), Cond(2, 14, 15)))
        want = self.brute(points, lambda p: p[0] <= 1 or p[2] >= 14)
        assert evaluate_expression(expr, indexes, N) == want

    def test_not(self, data):
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        expr = Not(Cond(3, 0, 7))
        want = self.brute(points, lambda p: not (p[3] <= 7))
        assert evaluate_expression(expr, indexes, N) == want

    def test_nested(self, data):
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        # (d0 in [3,7] AND NOT d1 in [0,4]) OR d2 == 9
        expr = Or(
            (
                And((Cond(0, 3, 7), Not(Cond(1, 0, 4)))),
                Cond(2, 9, 9),
            )
        )
        want = self.brute(
            points,
            lambda p: (3 <= p[0] <= 7 and not p[1] <= 4) or p[2] == 9,
        )
        assert evaluate_expression(expr, indexes, N) == want

    def test_de_morgan(self, data):
        # NOT(a OR b) == NOT a AND NOT b — through the evaluator.
        points, exact, _ = data
        indexes = dict(enumerate(exact))
        a, b = Cond(0, 2, 5), Cond(1, 8, 12)
        left = evaluate_expression(Not(Or((a, b))), indexes, N)
        right = evaluate_expression(And((Not(a), Not(b))), indexes, N)
        assert left == right

    def test_validation(self, data):
        _, exact, _ = data
        indexes = dict(enumerate(exact))
        with pytest.raises(QueryError):
            evaluate_expression(And(()), indexes, N)
        with pytest.raises(QueryError):
            evaluate_expression(Or(()), indexes, N)
        with pytest.raises(QueryError):
            evaluate_expression(Cond(9, 0, 1), indexes, N)
        with pytest.raises(QueryError):
            evaluate_expression("nope", indexes, N)
