"""Unit tests for gap-compressed bitmaps."""

import math

import pytest

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.ebitmap import (
    GapCompressedBitmap,
    decode_gaps,
    encode_gaps,
    encoded_length,
    iter_gaps,
)
from repro.errors import InvalidParameterError


class TestGapCodec:
    def test_roundtrip_simple(self):
        positions = [0, 1, 5, 100, 101, 4095]
        w = BitWriter()
        encode_gaps(w, positions)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert decode_gaps(r, len(positions)) == positions

    def test_empty(self):
        w = BitWriter()
        encode_gaps(w, [])
        assert w.bit_length == 0
        r = BitReader(b"", bit_length=0)
        assert decode_gaps(r, 0) == []

    def test_position_zero(self):
        # Gap of p0 + 1 handles position 0 (gamma needs values >= 1).
        w = BitWriter()
        encode_gaps(w, [0])
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert decode_gaps(r, 1) == [0]

    def test_duplicates_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            encode_gaps(w, [3, 3])

    def test_unsorted_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            encode_gaps(w, [5, 2])

    def test_negative_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidParameterError):
            encode_gaps(w, [-1, 2])

    def test_encoded_length_matches(self):
        positions = [2, 3, 17, 200, 10000]
        w = BitWriter()
        encode_gaps(w, positions)
        assert w.bit_length == encoded_length(positions)

    def test_iter_gaps_lazy(self):
        positions = list(range(0, 1000, 7))
        w = BitWriter()
        encode_gaps(w, positions)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        assert list(iter_gaps(r, len(positions))) == positions


class TestGapCompressedBitmap:
    def test_roundtrip(self):
        positions = [1, 2, 3, 500, 777]
        bm = GapCompressedBitmap.from_positions(positions, 1000)
        assert bm.positions() == positions
        assert bm.count == len(positions)
        assert len(bm) == len(positions)
        assert bm.universe == 1000

    def test_iter_positions(self):
        positions = [0, 9, 10, 999]
        bm = GapCompressedBitmap.from_positions(positions, 1000)
        assert list(bm.iter_positions()) == positions

    def test_out_of_universe_rejected(self):
        with pytest.raises(InvalidParameterError):
            GapCompressedBitmap.from_positions([1000], 1000)

    def test_equality_and_hash(self):
        a = GapCompressedBitmap.from_positions([1, 2], 10)
        b = GapCompressedBitmap.from_positions([1, 2], 10)
        c = GapCompressedBitmap.from_positions([1, 3], 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_union_disjoint(self):
        a = GapCompressedBitmap.from_positions([1, 5, 9], 100)
        b = GapCompressedBitmap.from_positions([2, 6], 100)
        c = GapCompressedBitmap.from_positions([50], 100)
        u = GapCompressedBitmap.union_disjoint([a, b, c], 100)
        assert u.positions() == [1, 2, 5, 6, 9, 50]

    def test_dense_set_size_near_information_bound(self):
        # §1.2: a bitmap with m ones in [n] needs ~ lg C(n, m) bits;
        # gamma gap coding is within a constant factor.
        n, m = 4096, 256
        positions = list(range(0, n, n // m))
        bm = GapCompressedBitmap.from_positions(positions, n)
        bound = m * math.log2(n / m) + 2 * m
        assert bm.size_bits <= 2 * bound

    def test_sparse_much_smaller_than_plain(self):
        n = 1 << 16
        positions = [17, 4000, 60000]
        bm = GapCompressedBitmap.from_positions(positions, n)
        assert bm.size_bits < 100 < n

    def test_size_grows_with_cardinality(self):
        n = 1 << 12
        small = GapCompressedBitmap.from_positions(list(range(0, n, 64)), n)
        large = GapCompressedBitmap.from_positions(list(range(0, n, 8)), n)
        assert small.size_bits < large.size_bits
