"""Unit tests for sorted-set algebra."""

import random

from repro.bits.ops import (
    complement_sorted,
    count_aware,
    difference_aware,
    difference_aware_count,
    difference_count,
    difference_sorted,
    intersect_aware,
    intersect_aware_count,
    intersect_count,
    intersect_many,
    intersect_sorted,
    is_strictly_increasing,
    union_aware,
    union_aware_count,
    union_count,
    union_disjoint_sorted,
    union_sorted,
)


class TestUnion:
    def test_union_disjoint(self):
        assert union_disjoint_sorted([[1, 4], [2, 3], [5]]) == [1, 2, 3, 4, 5]

    def test_union_disjoint_empty_inputs(self):
        assert union_disjoint_sorted([]) == []
        assert union_disjoint_sorted([[], []]) == []

    def test_union_disjoint_single_list_copies(self):
        src = [1, 2]
        out = union_disjoint_sorted([src])
        assert out == src
        out.append(3)
        assert src == [1, 2]

    def test_union_dedupes(self):
        assert union_sorted([[1, 2, 5], [2, 3], [5]]) == [1, 2, 3, 5]

    def test_union_of_identical_lists(self):
        assert union_sorted([[1, 2], [1, 2]]) == [1, 2]


class TestIntersection:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5, 7], [3, 4, 5]) == [3, 5]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty(self):
        assert intersect_sorted([], [1]) == []
        assert intersect_sorted([1], []) == []

    def test_many_smallest_first(self):
        lists = [list(range(0, 100)), list(range(0, 100, 2)), [4, 8, 50, 99]]
        assert intersect_many(lists) == [4, 8, 50]

    def test_many_empty_cases(self):
        assert intersect_many([]) == []
        assert intersect_many([[1, 2], []]) == []

    def test_many_single_list_copies(self):
        # Regression: the one-list fast path used to hand back a value
        # the caller could mutate into the source sequence.
        src = [1, 2, 3]
        out = intersect_many([src])
        assert out == src
        out.append(99)
        assert src == [1, 2, 3]

    def test_many_single_list_matches_self_intersection(self):
        # One list behaves exactly like intersecting it with itself —
        # no special-cased semantics at arity one.
        src = [2, 5, 9]
        assert intersect_many([src]) == intersect_many([src, src])


class TestDifferenceComplement:
    def test_difference(self):
        assert difference_sorted([1, 2, 3, 4], [2, 4]) == [1, 3]

    def test_difference_no_overlap(self):
        assert difference_sorted([1, 2], [5]) == [1, 2]

    def test_complement(self):
        assert complement_sorted([1, 3], 5) == [0, 2, 4]

    def test_complement_empty_set(self):
        assert complement_sorted([], 3) == [0, 1, 2]

    def test_complement_full_set(self):
        assert complement_sorted([0, 1, 2], 3) == []

    def test_complement_involution(self):
        s = [0, 4, 5, 9]
        assert complement_sorted(complement_sorted(s, 10), 10) == s


class TestCountingTwins:
    """Each counting twin must agree with its materializing sibling."""

    def test_plain_counts(self):
        assert intersect_count([1, 3, 5, 7], [3, 4, 5]) == 2
        assert intersect_count([], [1]) == 0
        assert union_count([1, 2, 5], [2, 3]) == 4
        assert union_count([], []) == 0
        assert difference_count([1, 2, 3, 4], [2, 4]) == 2
        assert difference_count([1, 2], [5]) == 2

    def test_count_aware(self):
        assert count_aware([1, 3], False, 10) == 2
        assert count_aware([1, 3], True, 10) == 8
        assert count_aware([], True, 10) == 10

    def test_aware_counts_match_materialized_randomized(self):
        rng = random.Random(1234)
        universe = 40
        for _ in range(200):
            a = sorted(rng.sample(range(universe), rng.randrange(universe)))
            b = sorted(rng.sample(range(universe), rng.randrange(universe)))
            for a_comp in (False, True):
                for b_comp in (False, True):
                    for twin, sibling in (
                        (intersect_aware_count, intersect_aware),
                        (union_aware_count, union_aware),
                        (difference_aware_count, difference_aware),
                    ):
                        got = twin(a, a_comp, b, b_comp, universe)
                        stored, comp = sibling(a, a_comp, b, b_comp)
                        want = count_aware(stored, comp, universe)
                        assert got == want, (
                            twin.__name__, a_comp, b_comp, a, b
                        )

    def test_counting_never_materializes_root(self):
        # The whole point: a huge complemented intersection is counted
        # in O(|stored|), which these twins do by never constructing
        # the result — verified indirectly by their exactness above
        # and directly here by the O(1) complement case.
        big = 10**9
        assert intersect_aware_count([1, 2], True, [3], True, big) == big - 3


class TestPredicates:
    def test_strictly_increasing(self):
        assert is_strictly_increasing([])
        assert is_strictly_increasing([5])
        assert is_strictly_increasing([1, 2, 9])
        assert not is_strictly_increasing([1, 1])
        assert not is_strictly_increasing([2, 1])
