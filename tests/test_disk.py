"""Unit tests for the simulated block device and its accounting."""

import pytest

from repro.bits.ebitmap import decode_gaps, encode_gaps
from repro.bits.bitio import BitWriter
from repro.errors import InvalidParameterError, StorageError
from repro.iomodel import Disk, IOStats
from repro.iomodel.cache import LRUBlockCache


class TestAllocation:
    def test_alloc_is_byte_aligned(self):
        d = Disk(block_bits=256, mem_blocks=0)
        a = d.alloc(3)
        b = d.alloc(3)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 3

    def test_alloc_block_aligned(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(10)
        off = d.alloc(10, align_block=True)
        assert off % 256 == 0

    def test_alloc_block(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc_block()
        assert off % 256 == 0
        assert d.size_bits >= 256

    def test_negative_alloc_rejected(self):
        d = Disk()
        with pytest.raises(InvalidParameterError):
            d.alloc(-1)

    def test_block_size_validation(self):
        with pytest.raises(InvalidParameterError):
            Disk(block_bits=100)  # not a multiple of 8
        with pytest.raises(InvalidParameterError):
            Disk(block_bits=0)

    def test_size_blocks(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(257)
        assert d.size_blocks == 2


class TestDataIntegrity:
    def test_store_and_read_roundtrip(self):
        d = Disk(block_bits=256, mem_blocks=0)
        positions = [1, 5, 6, 900, 901]
        w = BitWriter()
        encode_gaps(w, positions)
        ext = d.store(w.getvalue(), w.bit_length)
        r = d.read_extent(ext)
        assert decode_gaps(r, len(positions)) == positions

    def test_many_extents_do_not_interfere(self):
        d = Disk(block_bits=256, mem_blocks=0)
        extents = []
        for k in range(20):
            w = BitWriter()
            encode_gaps(w, [k, 100 + k])
            extents.append(d.store(w.getvalue(), w.bit_length))
        for k, ext in enumerate(extents):
            assert decode_gaps(d.read_extent(ext), 2) == [k, 100 + k]

    def test_read_bits_write_bits_subbyte(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(64)
        d.write_bits(off + 3, 0b1011, 4)
        assert d.read_bits(off + 3, 4) == 0b1011
        # Neighbours untouched.
        assert d.read_bits(off, 3) == 0
        assert d.read_bits(off + 7, 8) == 0

    def test_write_bits_across_block_boundary(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(512)
        d.write_bits(250, (1 << 12) - 1, 12)
        assert d.read_bits(250, 12) == (1 << 12) - 1

    def test_out_of_region_read_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(16)
        with pytest.raises(StorageError):
            d.read_bits(8, 16)

    def test_out_of_region_write_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        with pytest.raises(StorageError):
            d.write_bits(0, 1, 1)

    def test_unaligned_write_bytes_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(64)
        with pytest.raises(StorageError):
            d.write_bytes(4, b"\xff", 8)

    def test_value_too_wide_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(8)
        with pytest.raises(StorageError):
            d.write_bits(0, 256, 8)


class TestAccounting:
    def test_read_counts_blocks_touched(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(1024)
        d.stats.reset()
        d.read_bits(off, 1)
        assert d.stats.reads == 1
        d.read_bits(off + 200, 100)  # crosses into block 1
        assert d.stats.reads == 3

    def test_write_counts_blocks(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(512)
        d.stats.reset()
        d.write_bits(off + 252, 0xFF, 8)  # spans blocks 0 and 1
        assert d.stats.writes == 2

    def test_cache_absorbs_repeated_reads(self):
        d = Disk(block_bits=256, mem_blocks=4)
        off = d.alloc(256)
        d.flush_cache()
        d.stats.reset()
        d.read_bits(off, 8)
        d.read_bits(off, 8)
        d.read_bits(off + 100, 8)
        assert d.stats.reads == 1  # one miss, then hits

    def test_flush_cache_makes_reads_cold(self):
        d = Disk(block_bits=256, mem_blocks=4)
        off = d.alloc(256)
        d.flush_cache()
        d.stats.reset()
        d.read_bits(off, 8)
        d.flush_cache()
        d.read_bits(off, 8)
        assert d.stats.reads == 2

    def test_zero_capacity_cache_never_hits(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(256)
        d.stats.reset()
        d.read_bits(off, 8)
        d.read_bits(off, 8)
        assert d.stats.reads == 2

    def test_touch_range_and_block(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(1024)
        d.stats.reset()
        d.touch_range(0, 600)
        assert d.stats.reads == 3
        d.touch_block(3, write=True)
        assert d.stats.writes == 1

    def test_bits_read_tracks_payload(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(64)
        d.stats.reset()
        d.read_bits(off, 10)
        assert d.stats.bits_read == 10

    def test_measure_context(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(256)
        with d.stats.measure() as m:
            d.read_bits(off, 8)
        assert m.reads == 1
        assert m.total == 1
        # Counters outside the region are unaffected by measuring.
        assert d.stats.reads >= 1

    def test_shared_stats_object(self):
        stats = IOStats()
        d1 = Disk(block_bits=256, mem_blocks=0, stats=stats)
        d2 = Disk(block_bits=256, mem_blocks=0, stats=stats)
        o1, o2 = d1.alloc(256), d2.alloc(256)
        stats.reset()
        d1.read_bits(o1, 8)
        d2.read_bits(o2, 8)
        assert stats.reads == 2


class TestLRUCache:
    def test_eviction_order(self):
        c = LRUBlockCache(2)
        assert not c.access(1)
        assert not c.access(2)
        assert c.access(1)      # refresh 1
        assert not c.access(3)  # evicts 2
        assert not c.access(2)  # 2 was evicted
        assert c.access(3)

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUBlockCache(-1)

    def test_counters(self):
        c = LRUBlockCache(2)
        c.access(1)
        c.access(1)
        assert (c.hits, c.misses) == (1, 1)
        c.reset_counters()
        assert (c.hits, c.misses) == (0, 0)

    def test_clear_and_evict(self):
        c = LRUBlockCache(4)
        c.access(1)
        c.access(2)
        c.evict(1)
        assert 1 not in c and 2 in c
        c.clear()
        assert len(c) == 0
