"""Unit tests for the simulated block device and its accounting."""

import pytest

from repro.bits.ebitmap import decode_gaps, encode_gaps
from repro.bits.bitio import BitWriter
from repro.errors import InvalidParameterError, StorageError
from repro.iomodel import Disk, IOStats
from repro.iomodel.disk import DiskState
from repro.iomodel.cache import LRUBlockCache


class TestAllocation:
    def test_alloc_is_byte_aligned(self):
        d = Disk(block_bits=256, mem_blocks=0)
        a = d.alloc(3)
        b = d.alloc(3)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 3

    def test_alloc_block_aligned(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(10)
        off = d.alloc(10, align_block=True)
        assert off % 256 == 0

    def test_alloc_block(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc_block()
        assert off % 256 == 0
        assert d.size_bits >= 256

    def test_negative_alloc_rejected(self):
        d = Disk()
        with pytest.raises(InvalidParameterError):
            d.alloc(-1)

    def test_block_size_validation(self):
        with pytest.raises(InvalidParameterError):
            Disk(block_bits=100)  # not a multiple of 8
        with pytest.raises(InvalidParameterError):
            Disk(block_bits=0)

    def test_size_blocks(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(257)
        assert d.size_blocks == 2


class TestDataIntegrity:
    def test_store_and_read_roundtrip(self):
        d = Disk(block_bits=256, mem_blocks=0)
        positions = [1, 5, 6, 900, 901]
        w = BitWriter()
        encode_gaps(w, positions)
        ext = d.store(w.getvalue(), w.bit_length)
        r = d.read_extent(ext)
        assert decode_gaps(r, len(positions)) == positions

    def test_many_extents_do_not_interfere(self):
        d = Disk(block_bits=256, mem_blocks=0)
        extents = []
        for k in range(20):
            w = BitWriter()
            encode_gaps(w, [k, 100 + k])
            extents.append(d.store(w.getvalue(), w.bit_length))
        for k, ext in enumerate(extents):
            assert decode_gaps(d.read_extent(ext), 2) == [k, 100 + k]

    def test_read_bits_write_bits_subbyte(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(64)
        d.write_bits(off + 3, 0b1011, 4)
        assert d.read_bits(off + 3, 4) == 0b1011
        # Neighbours untouched.
        assert d.read_bits(off, 3) == 0
        assert d.read_bits(off + 7, 8) == 0

    def test_write_bits_across_block_boundary(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(512)
        d.write_bits(250, (1 << 12) - 1, 12)
        assert d.read_bits(250, 12) == (1 << 12) - 1

    def test_out_of_region_read_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(16)
        with pytest.raises(StorageError):
            d.read_bits(8, 16)

    def test_out_of_region_write_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        with pytest.raises(StorageError):
            d.write_bits(0, 1, 1)

    def test_unaligned_write_bytes_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(64)
        with pytest.raises(StorageError):
            d.write_bytes(4, b"\xff", 8)

    def test_value_too_wide_rejected(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(8)
        with pytest.raises(StorageError):
            d.write_bits(0, 256, 8)


class TestAccounting:
    def test_read_counts_blocks_touched(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(1024)
        d.stats.reset()
        d.read_bits(off, 1)
        assert d.stats.reads == 1
        d.read_bits(off + 200, 100)  # crosses into block 1
        assert d.stats.reads == 3

    def test_write_counts_blocks(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(512)
        d.stats.reset()
        d.write_bits(off + 252, 0xFF, 8)  # spans blocks 0 and 1
        assert d.stats.writes == 2

    def test_cache_absorbs_repeated_reads(self):
        d = Disk(block_bits=256, mem_blocks=4)
        off = d.alloc(256)
        d.flush_cache()
        d.stats.reset()
        d.read_bits(off, 8)
        d.read_bits(off, 8)
        d.read_bits(off + 100, 8)
        assert d.stats.reads == 1  # one miss, then hits

    def test_flush_cache_makes_reads_cold(self):
        d = Disk(block_bits=256, mem_blocks=4)
        off = d.alloc(256)
        d.flush_cache()
        d.stats.reset()
        d.read_bits(off, 8)
        d.flush_cache()
        d.read_bits(off, 8)
        assert d.stats.reads == 2

    def test_zero_capacity_cache_never_hits(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(256)
        d.stats.reset()
        d.read_bits(off, 8)
        d.read_bits(off, 8)
        assert d.stats.reads == 2

    def test_touch_range_and_block(self):
        d = Disk(block_bits=256, mem_blocks=0)
        d.alloc(1024)
        d.stats.reset()
        d.touch_range(0, 600)
        assert d.stats.reads == 3
        d.touch_block(3, write=True)
        assert d.stats.writes == 1

    def test_bits_read_tracks_payload(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(64)
        d.stats.reset()
        d.read_bits(off, 10)
        assert d.stats.bits_read == 10

    def test_measure_context(self):
        d = Disk(block_bits=256, mem_blocks=0)
        off = d.alloc(256)
        with d.stats.measure() as m:
            d.read_bits(off, 8)
        assert m.reads == 1
        assert m.total == 1
        # Counters outside the region are unaffected by measuring.
        assert d.stats.reads >= 1

    def test_shared_stats_object(self):
        stats = IOStats()
        d1 = Disk(block_bits=256, mem_blocks=0, stats=stats)
        d2 = Disk(block_bits=256, mem_blocks=0, stats=stats)
        o1, o2 = d1.alloc(256), d2.alloc(256)
        stats.reset()
        d1.read_bits(o1, 8)
        d2.read_bits(o2, 8)
        assert stats.reads == 2


class TestLRUCache:
    def test_eviction_order(self):
        c = LRUBlockCache(2)
        assert not c.access(1)
        assert not c.access(2)
        assert c.access(1)      # refresh 1
        assert not c.access(3)  # evicts 2
        assert not c.access(2)  # 2 was evicted
        assert c.access(3)

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUBlockCache(-1)

    def test_counters(self):
        c = LRUBlockCache(2)
        c.access(1)
        c.access(1)
        assert (c.hits, c.misses) == (1, 1)
        c.reset_counters()
        assert (c.hits, c.misses) == (0, 0)

    def test_clear_and_evict(self):
        c = LRUBlockCache(4)
        c.access(1)
        c.access(2)
        c.evict(1)
        assert 1 not in c and 2 in c
        c.clear()
        assert len(c) == 0


class TestDiskStateSplit:
    """The picklable-state / runtime-handle split and the latency model."""

    def test_snapshot_state_roundtrip_preserves_bits(self):
        d = Disk(block_bits=256, mem_blocks=2, latency_s=0.0)
        extent = d.store(b"\xde\xad\xbe\xef", 32)
        d.read_bits(extent.offset, 8)  # warm cache, bump counters
        state = d.snapshot_state()
        clone = Disk.from_state(state)
        # Same geometry, same bits at the same offsets.
        assert clone.block_bits == d.block_bits
        assert clone.size_bits == d.size_bits
        assert clone.read_bits(extent.offset, 32) == 0xDEADBEEF
        # Runtime is local: the clone started cold with zero counters
        # (the read above is the clone's own, freshly counted I/O).
        assert clone.stats.reads == 1
        assert d.stats is not clone.stats

    def test_state_pickles(self):
        import pickle

        d = Disk(block_bits=256, mem_blocks=4, latency_s=0.25)
        d.store(b"\x12\x34", 16)
        state = pickle.loads(pickle.dumps(d.snapshot_state()))
        clone = Disk.from_state(state)
        assert clone.latency_s == 0.25
        assert clone.read_bits(0, 16) == 0x1234

    def test_mutating_the_clone_leaves_the_source_alone(self):
        d = Disk(block_bits=256, mem_blocks=0)
        extent = d.store(b"\x00", 8)
        clone = Disk.from_state(d.snapshot_state())
        clone.write_bits(extent.offset, 0xFF, 8)
        assert d.read_bits(extent.offset, 8) == 0x00
        assert clone.read_bits(extent.offset, 8) == 0xFF

    def test_latency_sleeps_per_transfer_only(self):
        import time

        latency = 0.01
        d = Disk(block_bits=256, mem_blocks=1, latency_s=latency)
        offset = d.alloc(256 * 4)
        d.stats.reset()
        t0 = time.perf_counter()
        d.touch_range(offset, 256 * 4)  # 4 transfers
        elapsed = time.perf_counter() - t0
        assert d.stats.reads == 4
        assert elapsed >= 4 * latency * 0.9
        # Cache-resident touches are internal-memory accesses: free
        # and instant (1 block resident; touch it alone).
        t0 = time.perf_counter()
        d.touch_range(offset + 3 * 256, 256)
        assert time.perf_counter() - t0 < latency
        assert d.stats.reads == 4

    def test_negative_latency_rejected(self):
        with pytest.raises(InvalidParameterError):
            Disk(latency_s=-0.1)



class TestDiskStatePacking:
    """The flat header + raw pages wire form used by shared memory."""

    def test_pack_unpack_roundtrip(self):
        d = Disk(block_bits=256, mem_blocks=3, latency_s=0.125)
        extent = d.store(b"\xca\xfe\xba\xbe", 32)
        state = d.snapshot_state()
        packed = state.pack()
        assert isinstance(packed, bytes)
        rehydrated = DiskState.unpack(packed)
        assert rehydrated.block_bits == state.block_bits
        assert rehydrated.mem_blocks == state.mem_blocks
        assert rehydrated.alloc_bits == state.alloc_bits
        assert rehydrated.latency_s == state.latency_s
        assert bytes(rehydrated.data) == bytes(state.data)
        clone = Disk.from_state(rehydrated)
        assert clone.read_bits(extent.offset, 32) == 0xCAFEBABE

    def test_unpack_is_zero_copy_but_from_state_copies(self):
        d = Disk(block_bits=256, mem_blocks=0)
        extent = d.store(b"\x41", 8)
        buf = bytearray(d.snapshot_state().pack())
        rehydrated = DiskState.unpack(buf)
        assert isinstance(rehydrated.data, memoryview)
        clone = Disk.from_state(rehydrated)
        # The clone owns its pages: scribbling on the source buffer
        # afterwards must not reach through.
        buf[-1] ^= 0xFF
        assert clone.read_bits(extent.offset, 8) == 0x41

    def test_unpack_rejects_short_header(self):
        with pytest.raises(StorageError):
            DiskState.unpack(b"\x00" * 8)

    def test_unpack_rejects_truncated_pages(self):
        d = Disk(block_bits=256, mem_blocks=1)
        d.store(b"\x55" * 8, 64)
        packed = d.snapshot_state().pack()
        with pytest.raises(StorageError):
            DiskState.unpack(packed[:-1])

    def test_empty_disk_packs(self):
        d = Disk(block_bits=512, mem_blocks=2)
        clone = Disk.from_state(DiskState.unpack(d.snapshot_state().pack()))
        assert clone.block_bits == 512
        assert clone.size_bits == d.size_bits

class TestMergeableStats:
    def test_snapshot_addition(self):
        from repro.iomodel import Snapshot

        a = Snapshot(reads=1, writes=2, bits_read=10, bits_written=20)
        b = Snapshot(reads=3, writes=4, bits_read=30, bits_written=40)
        total = a + b
        assert (total.reads, total.writes) == (4, 6)
        assert (total.bits_read, total.bits_written) == (40, 60)
        assert total.total == 10

    def test_iostats_add_folds_worker_deltas(self):
        from repro.iomodel import Snapshot

        total = IOStats()
        total.add(Snapshot(reads=2, bits_read=16))
        other = IOStats()
        other.writes = 5
        other.bits_written = 50
        total.add(other)
        assert total.snapshot() == Snapshot(
            reads=2, writes=5, bits_read=16, bits_written=50
        )
