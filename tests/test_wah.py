"""Unit tests for WAH-compressed bitmaps."""

from repro.bits.wah import GROUP_BITS, WahBitmap


class TestWahBitmap:
    def test_empty(self):
        bm = WahBitmap.from_positions([], 1000)
        assert bm.positions() == []
        assert bm.count == 0
        # A single zero-fill word suffices for an empty bitmap.
        assert len(bm.words) <= 1

    def test_single_position(self):
        bm = WahBitmap.from_positions([500], 10_000)
        assert bm.positions() == [500]

    def test_dense_roundtrip(self):
        positions = list(range(0, 300, 2))
        bm = WahBitmap.from_positions(positions, 300)
        assert bm.positions() == positions

    def test_long_zero_run_compresses(self):
        n = 31 * 100_000
        bm = WahBitmap.from_positions([0, n - 1], n)
        # two literals + one zero fill word: far below n bits.
        assert bm.size_bits <= 5 * 32

    def test_all_ones_run_compresses(self):
        n = 31 * 1000
        positions = list(range(n))
        bm = WahBitmap.from_positions(positions, n)
        assert bm.size_bits <= 3 * 32
        assert bm.positions() == positions

    def test_mixed_fills_and_literals(self):
        positions = (
            list(range(0, 62))           # two all-ones groups
            + [100]                       # literal
            + list(range(31 * 50, 31 * 52))  # ones after a zero fill
        )
        positions = sorted(set(positions))
        bm = WahBitmap.from_positions(positions, 31 * 60)
        assert bm.positions() == positions

    def test_universe_not_multiple_of_group(self):
        n = GROUP_BITS * 3 + 7
        positions = [0, GROUP_BITS * 3 + 6]
        bm = WahBitmap.from_positions(positions, n)
        assert bm.positions() == positions

    def test_trailing_partial_group_of_ones_is_literal(self):
        # The last 7 positions all set; group is partial so it must be a
        # literal, not an all-ones fill.
        n = GROUP_BITS + 7
        positions = list(range(GROUP_BITS, n))
        bm = WahBitmap.from_positions(positions, n)
        assert bm.positions() == positions

    def test_equality(self):
        a = WahBitmap.from_positions([1, 2], 100)
        b = WahBitmap.from_positions([1, 2], 100)
        assert a == b
        assert hash(a) == hash(b)

    def test_iter_matches_positions(self):
        positions = [0, 30, 31, 61, 62, 1000, 2000]
        bm = WahBitmap.from_positions(positions, 2048)
        assert list(bm.iter_positions()) == positions

    def test_wah_larger_than_gamma_on_sparse_random(self):
        # WAH trades compression for alignment: on scattered positions it
        # spends >= 32 bits per run, gamma-RLE spends ~2 lg(gap).
        import random

        from repro.bits.ebitmap import GapCompressedBitmap

        rng = random.Random(7)
        n = 1 << 16
        positions = sorted(rng.sample(range(n), 400))
        wah = WahBitmap.from_positions(positions, n)
        gamma = GapCompressedBitmap.from_positions(positions, n)
        assert wah.size_bits > gamma.size_bits
