"""Tests for Theorem 4 (§4.1) — append-only dynamization."""

import math
import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.core import AppendableIndex
from repro.errors import InvalidParameterError
from repro.model import distributions as dist


class TestCorrectness:
    def test_appends_match_oracle(self):
        sigma = 24
        x0 = dist.uniform(500, sigma, seed=1)
        idx = AppendableIndex(x0, sigma)
        x = list(x0)
        rng = random.Random(0)
        for step in range(900):
            ch = rng.randrange(sigma)
            idx.append(ch)
            x.append(ch)
            if step % 111 == 0:
                lo, hi = sorted((rng.randrange(sigma), rng.randrange(sigma)))
                assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_append_to_empty(self):
        idx = AppendableIndex([], 4)
        for ch in [2, 0, 2, 3]:
            idx.append(ch)
        assert idx.range_query(2, 2).positions() == [0, 2]
        assert idx.n == 4

    def test_unseen_character_triggers_rebuild(self):
        idx = AppendableIndex([0] * 100, 4)
        before = idx.rebuilds
        idx.append(3)  # 3 never occurred
        assert idx.rebuilds == before + 1
        assert idx.range_query(3, 3).positions() == [100]

    def test_rebuild_on_doubling(self):
        idx = AppendableIndex([0, 1] * 50, 2, rebuild_factor=2.0)
        for _ in range(110):
            idx.append(0)
        assert idx.rebuilds >= 1
        assert idx.n == 210

    def test_count_range_tracks_appends(self):
        sigma = 8
        idx = AppendableIndex(dist.uniform(200, sigma, seed=2), sigma)
        x = list(dist.uniform(200, sigma, seed=2))
        for ch in [3, 3, 3, 7]:
            idx.append(ch)
            x.append(ch)
        assert idx.count_range(3, 3) == x.count(3)
        assert idx.count_range(0, 7) == len(x)

    def test_complement_after_appends(self):
        sigma = 4
        idx = AppendableIndex([0, 1, 2, 3] * 50, sigma)
        x = [0, 1, 2, 3] * 50
        for _ in range(60):
            idx.append(1)
            x.append(1)
        r = idx.range_query(0, 2)
        assert r.positions() == brute_range(x, 0, 2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AppendableIndex([0], 1, rebuild_factor=1.0)
        with pytest.raises(InvalidParameterError):
            AppendableIndex([5], 4)
        idx = AppendableIndex([0], 2)
        with pytest.raises(InvalidParameterError):
            idx.append(2)


class TestIOBounds:
    def test_append_io_near_lg_lg_n(self):
        # Theorem 4: amortized O(lg lg n) I/Os per append.  Between
        # rebuilds each append writes one block per materialized level.
        sigma = 32
        n0 = 4000
        idx = AppendableIndex(
            dist.uniform(n0, sigma, seed=3), sigma, rebuild_factor=4.0
        )
        idx.stats.reset()
        appends = 400
        rng = random.Random(1)
        for _ in range(appends):
            idx.append(rng.randrange(sigma))
        per_append = idx.stats.writes / appends
        # lg lg n ~ 3.6; materialized levels + leaf => a few writes.
        assert per_append <= 3 * (math.log2(math.log2(idx.n)) + 2)

    def test_query_io_matches_static_shape(self):
        # Queries after appends stay within a constant of the static
        # structure's cost on the same string.
        from repro.core import PaghRaoIndex

        sigma = 32
        x = dist.uniform(3000, sigma, seed=4)
        dyn = AppendableIndex(x[:2000], sigma, rebuild_factor=10.0)
        for ch in x[2000:]:
            dyn.append(ch)
        static = PaghRaoIndex(x, sigma)
        for lo, hi in [(3, 3), (4, 11), (0, 15)]:
            dyn.disk.flush_cache()
            dyn.stats.reset()
            dyn.range_query(lo, hi)
            dyn_reads = dyn.stats.reads
            static.disk.flush_cache()
            static.stats.reset()
            static.range_query(lo, hi)
            static_reads = static.stats.reads
            assert dyn_reads <= 12 * static_reads + 64
