"""Every structure under extreme block-size and alphabet regimes.

The theorems assume ``B >= lg n`` and ``b >= 2`` (§1.4); these tests pin
behaviour near those floors and at generous block sizes, plus non-
integer alphabets through the full stack.
"""

import random

import pytest

from tests.conftest import brute_range, random_ranges
from repro.baselines import CompressedBitmapIndex
from repro.core import (
    AppendableIndex,
    BufferedAppendableIndex,
    BufferedBitmapIndex,
    DynamicSecondaryIndex,
    PaghRaoIndex,
    UniformTreeIndex,
)
from repro.iomodel import Disk
from repro.model import Alphabet
from repro.model import distributions as dist


class TestTinyBlocks:
    """B = 128 bits — near the B >= 4 lg n floor of §4.2."""

    @pytest.mark.parametrize(
        "cls",
        [UniformTreeIndex, PaghRaoIndex, CompressedBitmapIndex],
    )
    def test_static_structures(self, cls):
        sigma = 16
        x = dist.uniform(600, sigma, seed=1)
        idx = cls(x, sigma, block_bits=128, mem_blocks=2)
        rng = random.Random(0)
        for lo, hi in random_ranges(rng, sigma, 10):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_appendable(self):
        sigma = 8
        x = dist.uniform(300, sigma, seed=2)
        idx = AppendableIndex(x, sigma, block_bits=128, mem_blocks=2)
        x = list(x)
        rng = random.Random(1)
        for _ in range(200):
            ch = rng.randrange(sigma)
            idx.append(ch)
            x.append(ch)
        for lo, hi in random_ranges(rng, sigma, 6):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_buffered_appendable(self):
        sigma = 8
        x = dist.uniform(300, sigma, seed=3)
        idx = BufferedAppendableIndex(x, sigma, block_bits=128, mem_blocks=2)
        x = list(x)
        rng = random.Random(2)
        for _ in range(200):
            ch = rng.randrange(sigma)
            idx.append(ch)
            x.append(ch)
        for lo, hi in random_ranges(rng, sigma, 6):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)

    def test_buffered_bitmap(self):
        disk = Disk(block_bits=128, mem_blocks=2)
        idx = BufferedBitmapIndex(disk, 4, [[], [], [], []])
        shadow = [set() for _ in range(4)]
        rng = random.Random(3)
        for _ in range(600):
            k = rng.randrange(4)
            if shadow[k] and rng.random() < 0.4:
                p = rng.choice(sorted(shadow[k]))
                idx.delete(k, p)
                shadow[k].discard(p)
            else:
                p = rng.randrange(4000)
                idx.insert(k, p)
                shadow[k].add(p)
        for k in range(4):
            assert idx.point_query(k) == sorted(shadow[k])
        idx.check_invariants()

    def test_fully_dynamic(self):
        sigma = 8
        x = dist.uniform(250, sigma, seed=4)
        idx = DynamicSecondaryIndex(x, sigma, block_bits=128, mem_blocks=2)
        x = list(x)
        rng = random.Random(4)
        for _ in range(300):
            if rng.random() < 0.5:
                i = rng.randrange(len(x))
                ch = rng.randrange(sigma)
                idx.change(i, ch)
                x[i] = ch
            else:
                ch = rng.randrange(sigma)
                idx.append(ch)
                x.append(ch)
        for lo, hi in random_ranges(rng, sigma, 6):
            assert idx.range_query(lo, hi).positions() == brute_range(x, lo, hi)


class TestLargeBlocks:
    def test_whole_index_in_one_block_region(self):
        # B = 64K bits: everything fits in a handful of blocks; queries
        # cost O(1) reads.
        sigma = 16
        x = dist.uniform(500, sigma, seed=5)
        idx = PaghRaoIndex(x, sigma, block_bits=65536, mem_blocks=0)
        idx.disk.flush_cache()
        idx.stats.reset()
        assert idx.range_query(3, 9).positions() == brute_range(x, 3, 9)
        assert idx.stats.reads <= 6


class TestValueAlphabets:
    """Non-integer ordered values through the full stack."""

    def test_string_values(self):
        values = ["cherry", "apple", "fig", "apple", "date", "cherry"] * 30
        alphabet = Alphabet(values)
        idx = PaghRaoIndex(alphabet.encode(values), alphabet.sigma)
        lo, hi = alphabet.code_range("banana", "date")
        got = idx.range_query(lo, hi).positions()
        want = [i for i, v in enumerate(values) if "banana" <= v <= "date"]
        assert got == want

    def test_float_values(self):
        rng = random.Random(6)
        values = [round(rng.uniform(0, 10), 1) for _ in range(400)]
        alphabet = Alphabet(values)
        idx = PaghRaoIndex(alphabet.encode(values), alphabet.sigma)
        code_range = alphabet.code_range(2.05, 7.95)
        assert code_range is not None
        got = idx.range_query(*code_range).positions()
        want = [i for i, v in enumerate(values) if 2.05 <= v <= 7.95]
        assert got == want

    def test_negative_ints(self):
        values = [-5, 3, -2, 0, -5, 7, -2] * 20
        alphabet = Alphabet(values)
        idx = PaghRaoIndex(alphabet.encode(values), alphabet.sigma)
        lo, hi = alphabet.code_range(-3, 3)
        got = idx.range_query(lo, hi).positions()
        want = [i for i, v in enumerate(values) if -3 <= v <= 3]
        assert got == want
