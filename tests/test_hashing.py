"""Unit tests for universal hashing and the XOR-fold family of §3."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.hashing import AffineHash, MultiplyShiftHash, XorFoldHash


class TestMultiplyShift:
    def test_range(self):
        rng = random.Random(0)
        h = MultiplyShiftHash.sample(rng, 8)
        assert h.range_size == 256
        for x in range(1000):
            assert 0 <= h(x) < 256

    def test_deterministic_given_params(self):
        h1 = MultiplyShiftHash(12345, 10)
        h2 = MultiplyShiftHash(12345, 10)
        assert [h1(x) for x in range(50)] == [h2(x) for x in range(50)]

    def test_zero_out_bits(self):
        h = MultiplyShiftHash(3, 0)
        assert h(123) == 0

    def test_even_multiplier_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(2, 8)

    def test_out_bits_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(3, 65)

    def test_collision_rate_near_universal(self):
        # Empirical pairwise collision probability should be ~ 2/m for
        # multiply-shift (2-approximate universality).
        rng = random.Random(42)
        m_bits = 10
        pairs = [(rng.randrange(1 << 30), rng.randrange(1 << 30)) for _ in range(300)]
        pairs = [(x, y) for x, y in pairs if x != y]
        collisions = 0
        trials = 200
        for _ in range(trials):
            h = MultiplyShiftHash.sample(rng, m_bits)
            collisions += sum(1 for x, y in pairs if h(x) == h(y))
        rate = collisions / (trials * len(pairs))
        assert rate <= 4.0 / (1 << m_bits)


class TestAffine:
    def test_range(self):
        rng = random.Random(1)
        h = AffineHash.sample(rng, 1000)
        assert h.range_size == 1000
        assert all(0 <= h(x) < 1000 for x in range(500))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AffineHash(0, 0, 10)
        with pytest.raises(InvalidParameterError):
            AffineHash(1, 0, 0)


class TestXorFold:
    def test_range(self):
        rng = random.Random(2)
        h = XorFoldHash.sample(rng, 6)
        assert h.range_size == 64
        assert all(0 <= h(i) < 64 for i in range(4096))

    def test_inner_range_must_match(self):
        with pytest.raises(InvalidParameterError):
            XorFoldHash(4, MultiplyShiftHash(3, 5))

    def test_preimage_one_exactly_inverts(self):
        rng = random.Random(3)
        h = XorFoldHash.sample(rng, 5)
        universe = 1000
        for s in [0, 7, 31]:
            pre = list(h.preimage_one(s, universe))
            # Exactly the positions hashing to s.
            brute = [i for i in range(universe) if h(i) == s]
            assert pre == brute

    def test_preimage_set(self):
        rng = random.Random(4)
        h = XorFoldHash.sample(rng, 4)
        universe = 300
        hashed = {1, 9, 14}
        pre = list(h.preimage(hashed, universe))
        brute = [i for i in range(universe) if h(i) in hashed]
        assert pre == brute

    def test_preimage_sorted(self):
        rng = random.Random(5)
        h = XorFoldHash.sample(rng, 3)
        pre = list(h.preimage({0, 1, 5}, 500))
        assert pre == sorted(pre)

    def test_preimage_empty(self):
        rng = random.Random(6)
        h = XorFoldHash.sample(rng, 3)
        assert list(h.preimage(set(), 100)) == []

    def test_preimage_size_bound(self):
        rng = random.Random(7)
        h = XorFoldHash.sample(rng, 4)
        universe = 1000
        hashed = {2, 3}
        assert len(list(h.preimage(hashed, universe))) <= h.preimage_size(
            len(hashed), universe
        )

    def test_membership_consistency(self):
        # i in preimage(S)  <=>  h(i) in S — the filtering identity the
        # approximate index relies on.
        rng = random.Random(8)
        h = XorFoldHash.sample(rng, 6)
        universe = 2000
        hashed = {h(i) for i in [17, 450, 1999]}
        pre = set(h.preimage(hashed, universe))
        for i in range(universe):
            assert (i in pre) == (h(i) in hashed)

    def test_false_positive_rate_universal(self):
        # For i not in S, Pr[h(i) in h(S)] <= |S| / 2^fold  over the
        # family draw (§3's universality argument).
        universe = 1 << 14
        S = list(range(0, universe, 1024))  # 16 members
        probe = [i for i in range(0, universe, 97) if i not in set(S)][:100]
        fold = 10
        trials = 150
        fp = 0
        rng = random.Random(9)
        for _ in range(trials):
            h = XorFoldHash.sample(rng, fold)
            hashed = {h(i) for i in S}
            fp += sum(1 for i in probe if h(i) in hashed)
        rate = fp / (trials * len(probe))
        # Universality bound |S|/2^fold = 16/1024; allow 3x slack for the
        # 2-approximate family and sampling noise.
        assert rate <= 3 * len(S) / (1 << fold)

    def test_high_parts(self):
        rng = random.Random(10)
        h = XorFoldHash.sample(rng, 4)
        assert h.high_parts(0) == 0
        assert h.high_parts(16) == 1
        assert h.high_parts(17) == 2
