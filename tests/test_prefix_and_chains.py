"""Unit tests for the prefix-count array (§2.1) and block chains (§4.1)."""

import pytest

from repro.core.chains import BlockChain
from repro.core.prefix import PrefixCounts
from repro.errors import InvalidParameterError, QueryError, UpdateError
from repro.iomodel import Disk


class TestPrefixCounts:
    def make(self, counts, block_bits=256):
        disk = Disk(block_bits=block_bits, mem_blocks=0)
        offsets = [0]
        for c in counts:
            offsets.append(offsets[-1] + c)
        return disk, PrefixCounts(disk, offsets)

    def test_range_count(self):
        _, pc = self.make([5, 0, 3, 7])
        assert pc.range_count(0, 3) == 15
        assert pc.range_count(1, 1) == 0
        assert pc.range_count(2, 3) == 10
        assert pc.char_count(3) == 7

    def test_entries_on_disk(self):
        disk, pc = self.make([5, 3])
        disk.stats.reset()
        assert pc.entry(0) == 0
        assert pc.entry(2) == 8
        assert disk.stats.reads >= 1  # probes really hit the device

    def test_o1_probes_per_query(self):
        disk, pc = self.make([10] * 64)
        disk.flush_cache()
        disk.stats.reset()
        pc.range_count(5, 40)
        assert disk.stats.reads <= 2  # two probes, at most two blocks

    def test_validation(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        with pytest.raises(InvalidParameterError):
            PrefixCounts(disk, [0])
        with pytest.raises(InvalidParameterError):
            PrefixCounts(disk, [0, 5, 3])
        _, pc = self.make([1, 1])
        with pytest.raises(QueryError):
            pc.range_count(1, 0)
        with pytest.raises(QueryError):
            pc.entry(3)

    def test_size_bits(self):
        _, pc = self.make([100] * 10)
        assert pc.size_bits == 11 * (1000).bit_length()


class TestBlockChain:
    def test_build_and_read(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        positions = list(range(0, 3000, 7))
        chain = BlockChain.build(disk, positions)
        assert chain.read_positions() == positions
        assert chain.count == len(positions)
        assert chain.last_pos == positions[-1]

    def test_empty_chain(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        chain = BlockChain.build(disk, [])
        assert chain.read_positions() == []
        assert chain.num_blocks == 0

    def test_append_grows(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        chain = BlockChain.build(disk, [1, 5])
        for p in [9, 10, 500, 501]:
            chain.append(p)
        assert chain.read_positions() == [1, 5, 9, 10, 500, 501]

    def test_append_from_empty(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        chain = BlockChain(disk)
        chain.append(0)
        chain.append(7)
        assert chain.read_positions() == [0, 7]

    def test_append_allocates_blocks_when_full(self):
        disk = Disk(block_bits=64, mem_blocks=0)  # tiny blocks
        chain = BlockChain(disk)
        for p in range(0, 400, 3):
            chain.append(p)
        assert chain.num_blocks > 1
        assert chain.read_positions() == list(range(0, 400, 3))

    def test_append_io_is_constant(self):
        disk = Disk(block_bits=1024, mem_blocks=0)
        chain = BlockChain.build(disk, list(range(100)))
        disk.stats.reset()
        chain.append(100)
        assert disk.stats.writes <= 2  # last block (+ a fresh one at worst)
        assert disk.stats.reads == 0

    def test_non_increasing_append_rejected(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        chain = BlockChain.build(disk, [10])
        with pytest.raises(UpdateError):
            chain.append(10)
        with pytest.raises(UpdateError):
            chain.append(3)

    def test_unsorted_build_rejected(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        with pytest.raises(InvalidParameterError):
            BlockChain.build(disk, [5, 4])

    def test_read_io_proportional_to_blocks(self):
        disk = Disk(block_bits=256, mem_blocks=0)
        chain = BlockChain.build(disk, list(range(0, 5000, 3)))
        disk.stats.reset()
        chain.read_positions()
        assert disk.stats.reads == chain.num_blocks

    def test_space_at_most_double_used(self):
        # §4.2: re-blocking at most doubles the space for B >= 4 lg n.
        disk = Disk(block_bits=1024, mem_blocks=0)
        chain = BlockChain.build(disk, list(range(0, 60000, 4)))
        assert chain.size_bits <= 2 * chain.used_bits + disk.block_bits
