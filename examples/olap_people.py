"""The paper's motivating query: "find all married men of age 33" (§1).

A table with one secondary index per attribute, conjunctive range
queries answered by RID intersection, and the Theorem-3 approximate
variant whose filters cost O(z lg(1/eps)) bits per dimension and whose
false candidates die off as eps^(d-k).

Run:  python examples/olap_people.py
"""

import random

from repro import Table, approximate_factory

ROWS = 5000
rng = random.Random(2009)  # the year of the paper

print(f"building a {ROWS}-row people table with 3 indexed attributes...")
columns = {
    "age": [rng.randrange(18, 85) for _ in range(ROWS)],
    "sex": [rng.choice(["f", "m"]) for _ in range(ROWS)],
    "status": [
        rng.choice(["divorced", "married", "single", "widowed"])
        for _ in range(ROWS)
    ],
}

# ----------------------------------------------------------------------
# Exact RID intersection with Theorem-2 indexes per column.
# ----------------------------------------------------------------------
table = Table(columns)
conditions = {
    "age": (33, 33),
    "sex": ("m", "m"),
    "status": ("married", "married"),
}
matches = table.select(conditions)
print(f"\nexact:  {len(matches)} married men of age 33")
print(f"first rows: {[table.row(rid) for rid in matches[:3]]}")

# Each dimension alone is low-selectivity; the intersection is tiny —
# exactly the regime where §1 argues secondary-index cost dominates.
for name, (lo, hi) in conditions.items():
    col = table.column(name)
    z = len(col.index.range_query(*col.code_range(lo, hi)))
    print(f"  dimension {name!r}: {z} matching rows on its own")

# ----------------------------------------------------------------------
# Approximate filtering (§3): trade false positives for fewer bits read.
# ----------------------------------------------------------------------
approx_table = Table(columns, factory=approximate_factory(seed=7))
eps = 1 / 16
candidates = approx_table.select_approximate(conditions, eps=eps, verify=False)
verified = approx_table.select_approximate(conditions, eps=eps, verify=True)
print(f"\napproximate (eps = 1/16):")
print(f"  candidates after intersecting 3 filters: {len(candidates)}")
print(f"  after verification against the table:    {len(verified)}")
assert verified == matches, "verification must recover the exact answer"
print("  verified answer matches the exact plan  ✓")

# A row matching k of d=3 conditions survives the filters with
# probability <= eps^(3-k) — count survivors per k to see it.
survival = {k: [0, 0] for k in range(4)}
cand_set = set(candidates)
for rid in range(ROWS):
    k = sum(
        1
        for name, (lo, hi) in conditions.items()
        if lo <= columns[name][rid] <= hi
    )
    survival[k][0] += 1
    if rid in cand_set:
        survival[k][1] += 1
print("\n  survival by #conditions matched (paper: <= eps^(d-k)):")
for k, (total, survived) in sorted(survival.items()):
    if total:
        print(
            f"    k={k}: {survived}/{total} rows survived "
            f"(bound {eps ** (3 - k):.4f})"
        )
