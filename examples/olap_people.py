"""The paper's motivating application, grown into a star-style query.

§1 opens with "find all married men of age 33" — a conjunction of
secondary-index range queries combined by RID intersection.  Real
warehouse queries compose further: IN-lists over dimension columns,
disjunctions of segments, and negations carving out exclusions.  The
predicate algebra (:mod:`repro.query`) expresses all of it as one
AST, planned into a DAG of index range queries and combined by
complement-aware set algebra.

Run:  python examples/olap_people.py
"""

import random

from repro import And, Eq, In, Not, Or, Range, Table, approximate_factory

ROWS = 5000
rng = random.Random(2009)  # the year of the paper

print(f"building a {ROWS}-row people table with 4 indexed attributes...")
columns = {
    "age": [rng.randrange(18, 85) for _ in range(ROWS)],
    "sex": [rng.choice(["f", "m"]) for _ in range(ROWS)],
    "status": [
        rng.choice(["divorced", "married", "single", "widowed"])
        for _ in range(ROWS)
    ],
    "city": [rng.choice("abcdefghij") for _ in range(ROWS)],
}
table = Table(columns)

# ----------------------------------------------------------------------
# The classic §1 conjunction, now one composable predicate.
# ----------------------------------------------------------------------
married_men_33 = And(Eq("age", 33), Eq("sex", "m"), Eq("status", "married"))
matches = table.select(married_men_33)
print(f"\nexact:  {len(matches)} married men of age 33")
print(f"first rows: {[table.row(rid) for rid in matches[:2]]}")

# ----------------------------------------------------------------------
# A star-style query: IN-list + disjunction + negation, one AST.
#
#   working-age people in the big-city markets (a, b, c) OR any
#   widowed customer — but never the divorced segment.
# ----------------------------------------------------------------------
star = And(
    Range("age", 25, 64),
    Or(In("city", ["a", "b", "c"]), Eq("status", "widowed")),
    Not(Eq("status", "divorced")),
)
rids = table.select(star)


def matches_star(rid):
    return (
        25 <= columns["age"][rid] <= 64
        and (columns["city"][rid] in "abc" or columns["status"][rid] == "widowed")
        and columns["status"][rid] != "divorced"
    )


assert rids == [rid for rid in range(ROWS) if matches_star(rid)]
print(f"\nstar query: {len(rids)} rows "
      "(age 25-64 AND (city IN (a,b,c) OR widowed) AND NOT divorced)")

# The plan is typed and JSON-serializable: every unique leaf interval,
# its backend verdict, predicted bits, and cache state.
report = table.explain(star)
print("\nthe compiled plan:")
print(report)

# IN-lists compile to *interval runs* via the dictionary: cities
# a, b, c are adjacent codes, so the three-member list costs ONE range
# query, and the whole disjunction shares legs with later queries.
in_leaves = [leaf for leaf in report.leaves if leaf.column == "city"]
print(f"\ncity IN (a,b,c) compiled to {len(in_leaves)} leaf fetch(es)")

# Negation is complement-aware: Not(divorced) never materializes the
# ~75% complement list — the sparse 'divorced' answer is fetched and
# subtracted (or kept complement-represented, §2.1) instead.
not_answer = table.select(Not(Eq("status", "divorced")))
print(f"NOT divorced matches {len(not_answer)} of {ROWS} rows, served "
      "from the sparse leaf")

# Open-ended ranges: either bound may be None.
seniors = table.select(Range("age", 65, None))
print(f"age >= 65: {len(seniors)} rows")

# ----------------------------------------------------------------------
# Approximate filtering (§3) still composes with the classic plan.
# ----------------------------------------------------------------------
approx_table = Table(
    {k: columns[k] for k in ("age", "sex", "status")},
    factory=approximate_factory(seed=7),
)
conditions = {
    "age": (33, 33),
    "sex": ("m", "m"),
    "status": ("married", "married"),
}
eps = 1 / 16
candidates = approx_table.select_approximate(conditions, eps=eps, verify=False)
verified = approx_table.select_approximate(conditions, eps=eps, verify=True)
print(f"\napproximate (eps = 1/16): {len(candidates)} candidates, "
      f"{len(verified)} after verification")
assert verified == matches, "verification must recover the exact answer"
print("verified answer matches the exact plan  ✓")
