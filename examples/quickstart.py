"""Quickstart: index one column, run range queries, inspect the I/O bill.

Run:  python examples/quickstart.py
"""

from repro import Alphabet, PaghRaoIndex

# A column of ages, as a relational secondary index would see it: the
# value at position i belongs to row i, and the index must return *row
# ids* (positions), not the values themselves.
ages = [33, 41, 33, 27, 58, 33, 41, 19, 64, 33, 27, 58, 45, 33, 41, 72]

# 1. Map the occurring values onto the dense alphabet [0, sigma).
alphabet = Alphabet(ages)
print(f"alphabet: {alphabet.values()}  (sigma = {alphabet.sigma})")

# 2. Build the Theorem-2 index (space ~ nH0, queries ~ output size).
index = PaghRaoIndex(alphabet.encode(ages), alphabet.sigma)

# 3. Range query in *value* space: all rows with age in [30, 45].
code_range = alphabet.code_range(30, 45)
result = index.range_query(*code_range)
print(f"rows with age in [30, 45]: {result.positions()}")
print(f"answer cardinality z = {result.cardinality}")

# 4. Point query: every row with age exactly 33.
lo, hi = alphabet.code_range(33, 33)
print(f"rows with age == 33: {index.range_query(lo, hi).positions()}")

# 5. The I/O bill.  The index lives on a simulated block device; every
#    block transfer a query performs is counted — this is the quantity
#    Theorem 2 bounds by O(z lg(n/z)/B + lg_b n + lg lg n).
index.disk.flush_cache()  # start cold
with index.stats.measure() as m:
    index.range_query(*code_range)
print(f"cold query cost: {m.reads} block reads, {m.bits_read} bits")

# 6. The space bill, split the way the paper states it: compressed
#    bitmap payload (the O(nH0 + n) term) vs directory (O(sigma lg^2 n)).
space = index.space()
print(
    f"space: {space.payload_bits} payload bits + "
    f"{space.directory_bits} directory bits"
)
