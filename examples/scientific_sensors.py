"""Scientific data analysis: range queries over sensor readings (§1, [16]).

Bitmap indexes shine on scientific/OLAP data; this example bins a
floating-point sensor signal into an ordered alphabet, compares the
paper's index against the classic structures on the same data, and
shows the selectivity sweep where each one breaks down.

Run:  python examples/scientific_sensors.py
"""

import math
import random

from repro import Alphabet, PaghRaoIndex
from repro.baselines import (
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    MultiResolutionBitmapIndex,
    UncompressedBitmapIndex,
)
from repro.bench.harness import render_table

N = 8192
rng = random.Random(42)

# A bursty temperature-like signal: slow drift plus occasional spikes.
print(f"synthesizing {N} sensor readings...")
readings = []
level = 20.0
for _ in range(N):
    level += rng.gauss(0, 0.4)
    level = min(max(level, 0.0), 40.0)
    spike = rng.random() < 0.01
    readings.append(round(level + (15 if spike else 0), 0))

# Bin to an ordered alphabet (0.5-degree bins are the distinct values).
alphabet = Alphabet(readings)
codes = alphabet.encode(readings)
sigma = alphabet.sigma
print(f"alphabet of {sigma} distinct binned values")

structures = {
    "PaghRao (Thm 2)": PaghRaoIndex(codes, sigma),
    "B-tree": BTreeSecondaryIndex(codes, sigma),
    "bitmap gamma-RLE": CompressedBitmapIndex(codes, sigma),
    "bitmap plain": UncompressedBitmapIndex(codes, sigma),
    "multires w=4": MultiResolutionBitmapIndex(codes, sigma, bin_width=4),
}

# ----------------------------------------------------------------------
# Space.
# ----------------------------------------------------------------------
rows = []
for name, idx in structures.items():
    s = idx.space()
    rows.append([name, s.payload_bits, s.directory_bits, s.total_bits])
print()
print(render_table("index space (bits)", ["structure", "payload", "directory", "total"], rows))

# ----------------------------------------------------------------------
# Query cost sweep: "readings in [lo, hi]" at several widths.
# ----------------------------------------------------------------------
queries = [
    ("spike hunt: >= 45", (45.0, 99.0)),
    ("narrow band 20±1", (19.0, 21.0)),
    ("wide band 10..30", (10.0, 30.0)),
    ("everything", (0.0, 99.0)),
]
rows = []
for label, (lo_v, hi_v) in queries:
    code_range = alphabet.code_range(lo_v, hi_v)
    if code_range is None:
        continue
    row = [label]
    z = None
    for name, idx in structures.items():
        idx.disk.flush_cache()
        with idx.stats.measure() as m:
            result = idx.range_query(*code_range)
        z = result.cardinality
        row.append(m.reads)
    row.insert(1, z)
    rows.append(row)
print()
print(
    render_table(
        "cold query cost (block reads)",
        ["query", "z"] + list(structures),
        rows,
    )
)
print(
    "\nshape to notice: the plain bitmap pays per value in the range, the\n"
    "B-tree pays lg(n) bits per matching row, and the Theorem-2 index\n"
    "tracks z lg(n/z)/B everywhere — %d-bit blocks, n=%d."
    % (structures["PaghRao (Thm 2)"].disk.block_bits, N)
)

# Sanity: all structures agree.
code_range = alphabet.code_range(19.0, 21.0)
answers = {
    name: idx.range_query(*code_range).positions()
    for name, idx in structures.items()
}
baseline = next(iter(answers.values()))
assert all(a == baseline for a in answers.values())
print(f"\nall {len(structures)} structures agree on the narrow band ✓")
