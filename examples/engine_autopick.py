"""The query engine picks each column's index — and explains itself.

The paper's point is that one interface admits many structures with
different space/time trade-offs, and the right one depends on the
column: cardinality, entropy, and update pattern.  The engine measures
each column, consults the registry's declared cost bounds, builds the
winner, and serves cached conjunctive queries.

Run:  python examples/engine_autopick.py
"""

import random

from repro import QueryEngine

rng = random.Random(7)
N = 2000

# Three columns with very different characters:
#  * status  — 4 distinct values (low cardinality -> bitmap family)
#  * user_id — 256 distinct values, near-maximal entropy, still well
#    below n (high entropy -> Pagh-Rao family)
#  * event   — append-heavy log column (needs a dynamic structure)
status = [rng.randrange(4) for _ in range(N)]
user_id = [rng.randrange(256) for _ in range(N)]
event = [rng.randrange(8) for _ in range(N)]

engine = QueryEngine(cache_size=128)
engine.add_column("status", status, 4)
engine.add_column("user_id", user_id, 256)
engine.add_column("event", event, 8, dynamism="semidynamic")

# 1. What did the advisor decide, and why?
print(engine.explain())
print()
print(engine.explain("status"))
print()

# 2. plan() reports which index and bound serves a query — no I/O yet.
plan = engine.plan("user_id", 50, 150)
print("plan:", plan.describe())

# 3. Batched conjunctive select: status=2 AND user_id in [50, 150].
rids = engine.select({"status": (2, 2), "user_id": (50, 150)})
print(f"matching rows: {len(rids)} (first five: {rids[:5]})")

# 4. Ask again: every dimension now comes from the LRU result cache.
engine.select({"status": (2, 2), "user_id": (50, 150)})
print(f"cache after repeat: {engine.cache.hits} hits, "
      f"{engine.cache.misses} misses")
print("plan now:", engine.plan("user_id", 50, 150).describe())

# 5. Updates invalidate exactly the touched column's cached results.
before = engine.query("event", 3, 3).cardinality
engine.append("event", 3)
after = engine.query("event", 3, 3).cardinality
print(f"event==3 before append: {before}, after: {after}")
assert after == before + 1  # never a stale cached answer
