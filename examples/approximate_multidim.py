"""Approximate high-dimensional range search (§1, §3).

Beyond conjunctions, one-dimensional secondary indexes answer queries
multi-dimensional structures cannot touch at d >> 3 (§1): *approximate
range search* ("in range in at least d1 of d dimensions") and *partial
match*.  This example runs both over Theorem-3 filters, where every
dimension costs only O(z lg(1/eps)) bits.

Run:  python examples/approximate_multidim.py
"""

import random

from repro import ApproximatePaghRaoIndex, ApproximateResult

D = 6          # dimensions — beyond range trees' comfort zone (§1)
N = 4000       # points
SIGMA = 64     # per-dimension alphabet
EPS = 1 / 16

rng = random.Random(13)
print(f"{N} points in {D} dimensions, alphabet {SIGMA} per dimension")

# Random points; a planted cluster guarantees interesting answers.
points = [[rng.randrange(SIGMA) for _ in range(D)] for _ in range(N)]
for i in range(50):
    points[i] = [8 + rng.randrange(4) for _ in range(D)]

columns = [[points[i][d] for i in range(N)] for d in range(D)]
indexes = [
    ApproximatePaghRaoIndex(columns[d], SIGMA, seed=d) for d in range(D)
]
box = [(7, 12)] * D  # the query box around the cluster


def dims_inside(i):
    return sum(1 for d in range(D) if box[d][0] <= points[i][d] <= box[d][1])


# One approximate filter per dimension.
filters = []
for d in range(D):
    r = indexes[d].approx_range_query(box[d][0], box[d][1], EPS)
    filters.append(r)
engaged = sum(isinstance(r, ApproximateResult) for r in filters)
print(f"filters built: {engaged}/{D} used the hashed (cheap) path")


def might(d, i):
    r = filters[d]
    return r.might_contain(i) if isinstance(r, ApproximateResult) else i in r


# ----------------------------------------------------------------------
# 1. Full-box query (all d dimensions), verified.
# ----------------------------------------------------------------------
candidates = [i for i in range(N) if all(might(d, i) for d in range(D))]
truth = [i for i in range(N) if dims_inside(i) == D]
verified = [i for i in candidates if dims_inside(i) == D]
print(f"\nfull box: {len(truth)} true matches, "
      f"{len(candidates)} candidates, verified -> {len(verified)}")
assert set(truth) <= set(candidates) and verified == truth

# ----------------------------------------------------------------------
# 2. Approximate range search: inside in >= d1 of d dimensions (§1).
# ----------------------------------------------------------------------
d1 = 4
candidates = [
    i for i in range(N) if sum(might(d, i) for d in range(D)) >= d1
]
truth = [i for i in range(N) if dims_inside(i) >= d1]
print(f"\n'>= {d1} of {D} dims' search: {len(truth)} true, "
      f"{len(candidates)} candidates "
      f"({len(set(candidates) - set(truth))} false)")
assert set(truth) <= set(candidates)

# ----------------------------------------------------------------------
# 3. Partial match: conditions on d1 << d given dimensions (§1).
# ----------------------------------------------------------------------
chosen = [0, 3]
candidates = [i for i in range(N) if all(might(d, i) for d in chosen)]
truth = [
    i
    for i in range(N)
    if all(box[d][0] <= points[i][d] <= box[d][1] for d in chosen)
]
print(f"\npartial match on dims {chosen}: {len(truth)} true, "
      f"{len(candidates)} candidates")
assert set(truth) <= set(candidates)

print("\nall three §1 query families answered from the same 1-D filters ✓")
