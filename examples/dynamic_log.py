"""An append-mostly event log with updates and deletions (§4).

OLAP data is "typically read and append only" (§4.1); this example
drives the semi-dynamic (Theorem 4), buffered (Theorem 5), and fully
dynamic (Theorem 7) indexes through a day of log events, then uses the
deletion wrapper (∞ character + counted B-tree) to retract rows.

Run:  python examples/dynamic_log.py
"""

import random

from repro import (
    AppendableIndex,
    BufferedAppendableIndex,
    DeletableIndex,
    DynamicSecondaryIndex,
)

SEVERITIES = ["debug", "info", "notice", "warning", "error", "critical"]
SIGMA = len(SEVERITIES)
rng = random.Random(7)


def severity_stream(k):
    return [rng.choices(range(SIGMA), weights=[40, 30, 12, 10, 6, 2])[0] for _ in range(k)]


# ----------------------------------------------------------------------
# Theorem 4 vs Theorem 5: the cost of appends.
# ----------------------------------------------------------------------
initial = severity_stream(4000)
events = severity_stream(2000)

for name, cls in (("Theorem 4 (direct)", AppendableIndex),
                  ("Theorem 5 (buffered)", BufferedAppendableIndex)):
    idx = cls(initial, SIGMA, mem_blocks=4)
    idx.stats.reset()
    for ev in events:
        idx.append(ev)
    per_op = idx.stats.total / len(events)
    print(f"{name}: {per_op:.3f} block I/Os per append "
          f"({idx.stats.total} total for {len(events)} events)")

idx = BufferedAppendableIndex(initial, SIGMA, mem_blocks=4)
for ev in events:
    idx.append(ev)
lo, hi = 4, 5  # error..critical
alerts = idx.range_query(lo, hi)
print(f"\nalerts (error or critical): {alerts.cardinality} events; "
      f"latest at positions {alerts.positions()[-5:]}")

# ----------------------------------------------------------------------
# Theorem 7: fix mislabelled events in place.
# ----------------------------------------------------------------------
dyn = DynamicSecondaryIndex(initial + events, SIGMA)
mislabelled = dyn.range_query(5, 5).positions()[:20]
print(f"\nreclassifying {len(mislabelled)} 'critical' events as 'warning'...")
for pos in mislabelled:
    dyn.change(pos, 3)
print(f"critical events now: {dyn.count_range(5, 5)}")
print(f"warning events now:  {dyn.count_range(3, 3)}")

# ----------------------------------------------------------------------
# Deletions: retract debug noise, keep positions stable, translate ids.
# ----------------------------------------------------------------------
dele = DeletableIndex(initial[:2000], SIGMA)
debug_rows = dele.range_query(0, 0).positions()
print(f"\nretracting {len(debug_rows[:300])} of {len(debug_rows)} debug rows...")
for pos in debug_rows[:300]:
    dele.delete(pos)
print(f"live rows: {dele.live_count()} of {dele.n} physical positions")
remaining = dele.range_query(0, 0)
print(f"debug rows still visible to queries: {remaining.cardinality}")
# Logical <-> physical translation through the counted B-tree of §4.
logical = 100
physical = dele.logical_to_physical(logical)
print(f"logical row {logical} lives at physical position {physical} "
      f"(round-trip: {dele.physical_to_logical(physical)})")
