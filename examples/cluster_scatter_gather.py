"""Sharded serving: one table, many engines, one shared cache.

The single-process engine picks one backend per column; the cluster
goes further — it splits every column into contiguous RID-range
shards, lets the advisor judge *each shard's slice* (so one column may
be served by different structures in different shards), scatters every
query across shards, and gathers offset-translated global row ids.
Both layers serve the same predicate algebra (:mod:`repro.query`):
any Range/Eq/In/And/Or/Not tree compiles once and executes through
one shared plan path, with per-leaf answers cached per shard in the
versioned shared result cache.

Run:  python examples/cluster_scatter_gather.py
"""

import random

from repro import And, In, Not, Or, Range, Table

rng = random.Random(42)
N = 4000

# A "people" table whose income column changes character halfway
# through: the first half of the rows comes from a legacy system that
# bucketed incomes into 4 bands, the second half stores exact dollars.
incomes = [25_000 * (1 + rng.randrange(4)) for _ in range(N // 2)] + [
    20_000 + 500 * rng.randrange(256) for _ in range(N // 2)
]
cities = [rng.choice("abcdefgh") for _ in range(N)]

table = Table.sharded(
    {"income": incomes, "city": cities}, num_shards=2, dynamism="static"
)

# 1. Each shard was measured on its own slice: one column, possibly
#    two backends.
print(table.explain("income"))
print()

# 2. Scatter-gather select over one composable predicate: mid-income
#    rows in the coastal markets, or any top earner outside market h —
#    IN-lists, a disjunction, and a negation in a single AST.
pred = And(
    Or(
        And(Range("income", 25_000, 60_000), In("city", ["a", "b"])),
        Range("income", 120_000, None),
    ),
    Not(In("city", ["h"])),
)
rids = table.select(pred)
print(f"{len(rids)} rows match the star predicate; first 10: {rids[:10]}")
print()

# 3. Repeats hit the shared result cache — per leaf, per shard, per
#    version — and disjuncts share cached legs with later queries.
table.select(pred)
cache = table.cluster.shared_cache
print(f"shared cache: {cache.hits} hits / {cache.misses} misses "
      f"({cache.hit_rate:.0%})")
table.select(Range("income", 25_000, 60_000))  # a leg the OR already paid
print(f"reused a cached leg: now {cache.hits} hits")
print()

# 4. The same predicate, explained end to end: one typed,
#    JSON-serializable PlanReport — operator tree, per-leaf shard
#    fan-out, backend verdicts, predicted bits, cache state.
report = table.explain(pred)
print(report)
print()
import json  # noqa: E402

payload = json.dumps(report.to_dict())
print(f"…and the same report as {len(payload)} bytes of JSON")
print()

# 5. Huge answers stream: the plan's gather pipeline yields global row
#    ids one at a time, holding at most one shard's answer per leaf.
#    (A fully open range would fold to TRUE and skip the indexes
#    entirely; ask for a real majority range instead.)
first_ten = []
for rid in table.select_iter(Range("income", 25_000, None)):
    first_ten.append(rid)
    if len(first_ten) == 10:
        break  # the remaining shards are never even fetched
print(f"streamed the first 10 of a huge answer: {first_ten}")
peak = table.cluster.gather_stats.peak_rids
print(f"peak buffered row ids while streaming: {peak} (of {N} rows)")
print()

# 6. Growth management: rebalance the same data to a row target —
#    shards split in place, the advisor re-judges every new slice,
#    and answers are bit-identical before and after.
before = table.select(pred)
ops = table.cluster.rebalance(target_shard_rows=500)
assert table.select(pred) == before
print(f"rebalanced with {ops} lifecycle op(s) -> "
      f"{table.cluster.num_shards} shards; answers unchanged")
print()

# 7. The same table, served by worker-resident shard engines: each
#    shard's engine lives in a worker process (built once from a
#    shipped snapshot, kept in sync by batched routed deltas), and a
#    predicate's leaves ship per shard as ONE compiled-leaf fetch
#    message — bit-identical to the serial run.
from repro.cluster import ProcessExecutor, ShardedTable  # noqa: E402

with ProcessExecutor(max_workers=2) as pool:
    resident = ShardedTable(
        {"income": incomes, "city": cities}, num_shards=4, executor=pool
    )
    assert resident.select(pred) == table.select(pred)
    io = resident.cluster.scatter_io
    print(f"process-parallel predicate select matches; scatter read "
          f"{io.bits_read} bits across 2 workers")
    resident.cluster.close()
