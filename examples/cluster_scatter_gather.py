"""Sharded serving: one table, many engines, one shared cache.

The single-process engine picks one backend per column; the cluster
goes further — it splits every column into contiguous RID-range
shards, lets the advisor judge *each shard's slice* (so one column may
be served by different structures in different shards), scatters every
query across shards, and gathers offset-translated global row ids.
Updates route to a single shard and invalidate only that shard's
entries in the shared result cache; when a shard's data drifts, its
backend is re-fit online; when a shard outgrows its target it is
split in place, and huge answers stream out of a k-way merge instead
of being materialized per dimension.

Run:  python examples/cluster_scatter_gather.py
"""

import random

from repro import Table

rng = random.Random(42)
N = 4000

# A "people" table whose income column changes character halfway
# through: the first half of the rows comes from a legacy system that
# bucketed incomes into 4 bands, the second half stores exact dollars.
incomes = [25_000 * (1 + rng.randrange(4)) for _ in range(N // 2)] + [
    20_000 + 500 * rng.randrange(256) for _ in range(N // 2)
]
cities = [rng.choice("abcdefgh") for _ in range(N)]

table = Table.sharded(
    {"income": incomes, "city": cities}, num_shards=2, dynamism="static"
)

# 1. Each shard was measured on its own slice: the 4-band half goes to
#    a bitmap variant, the exact half to the entropy-bounded Theorem-2
#    structure — one column, two backends.
print(table.explain("income"))
print()

# 2. Scatter-gather select: global row ids, identical to a single
#    engine's answer.
conds = {"income": (25_000, 60_000), "city": ("a", "b")}
rids = table.select(conds)
print(f"{len(rids)} rows with income 25k..60k in cities a-b; "
      f"first 10: {rids[:10]}")
print()

# 3. Repeats hit the shared result cache — per shard, per version.
table.select(conds)
cache = table.cluster.shared_cache
print(f"shared cache: {cache.hits} hits / {cache.misses} misses "
      f"({cache.hit_rate:.0%})")
print()

# 4. The same query, explained end to end — value ranges in, the
#    per-shard plan of every dimension out.
print(table.explain(conds))
print()

# 5. Huge answers stream: the k-way gather yields global row ids one
#    at a time, holding at most one shard's answer per dimension.
first_ten = []
for rid in table.select_iter({"income": (20_000, 150_000)}):
    first_ten.append(rid)
    if len(first_ten) == 10:
        break  # the remaining shards are never even fetched
print(f"streamed the first 10 of a huge answer: {first_ten}")
peak = table.cluster.gather_stats.peak_rids
print(f"peak buffered row ids while streaming: {peak} (of {N} rows)")
print()

# 6. Growth management: rebalance the same data to a row target —
#    shards split in place, the advisor re-judges every new slice,
#    and answers are bit-identical before and after.
before = table.select(conds)
ops = table.cluster.rebalance(target_shard_rows=500)
assert table.select(conds) == before
print(f"rebalanced with {ops} lifecycle op(s) -> "
      f"{table.cluster.num_shards} shards; answers unchanged")
print(table.explain("income"))
print()

# 7. The same table, served by worker-resident shard engines: each
#    shard's engine lives in a worker process (built once from a
#    shipped snapshot, kept in sync by routed deltas), queries
#    scatter across cores, and the per-worker I/O folds back into
#    cluster totals — bit-identical to the serial run.
from repro.cluster import ProcessExecutor, ShardedTable  # noqa: E402

with ProcessExecutor(max_workers=2) as pool:
    resident = ShardedTable(
        {"income": incomes, "city": cities}, num_shards=4, executor=pool
    )
    assert resident.select(conds) == table.select(conds)
    io = resident.cluster.scatter_io
    print(f"process-parallel select matches; scatter read "
          f"{io.bits_read} bits across 2 workers")
    resident.cluster.close()
