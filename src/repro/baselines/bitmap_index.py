"""Per-character bitmap indexes — the other extreme of §1.3.

Two variants:

* :class:`UncompressedBitmapIndex` — the "obvious" bitmap index of
  §1.2: an explicit ``n``-bit vector per character, ``n * sigma`` bits
  total, optimal only for constant-size alphabets;
* :class:`CompressedBitmapIndex` — each bitmap gap/gamma-compressed,
  ``O(n lg sigma)`` bits total (compressing the bitmaps independently
  is within a constant of the string itself, §1.2), but a range query
  still reads the bitmap of *every* character in the range — the
  ``Omega(lg sigma / lg(sigma/l))``-factor overhead the paper's
  example exhibits, which Theorems 1-2 remove.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_disjoint_sorted
from ..bits.plain import PlainBitmap
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


def _per_char_positions(x: Sequence[int], sigma: int) -> list[list[int]]:
    per_char: list[list[int]] = [[] for _ in range(sigma)]
    for pos, ch in enumerate(x):
        if ch < 0 or ch >= sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {sigma})"
            )
        per_char[ch].append(pos)
    return per_char


class CompressedBitmapIndex(SecondaryIndex):
    """Gamma-RLE bitmap per character; queries scan the range's bitmaps."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        per_char = _per_char_positions(x, sigma)
        # All bitmaps concatenated into one extent, character order.
        writer = BitWriter()
        self._entries: list[tuple[int, int, int]] = []
        for positions in per_char:
            start = writer.bit_length
            encode_gaps(writer, positions)
            self._entries.append(
                (start, writer.bit_length - start, len(positions))
            )
        self._extent: Extent = self._disk.store(writer.getvalue(), writer.bit_length)
        self._payload_bits = writer.bit_length

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        # Directory: (offset, length, count) per character.
        entry_bits = 3 * max(1, max(self._n, 2).bit_length())
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=self._sigma * entry_bits,
        )

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        # One contiguous read: bitmaps of the range are adjacent.
        first_entry = self._entries[char_lo]
        last_entry = self._entries[char_hi]
        start = first_entry[0]
        end = last_entry[0] + last_entry[1]
        reader = self._disk.reader(self._extent.offset + start, end - start)
        lists: list[list[int]] = []
        for ch in range(char_lo, char_hi + 1):
            _, _, count = self._entries[ch]
            if count:
                lists.append(decode_gaps(reader, count))
        return RangeResult(union_disjoint_sorted(lists), self._n)


class UncompressedBitmapIndex(SecondaryIndex):
    """Plain n-bit vector per character (n * sigma bits)."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        per_char = _per_char_positions(x, sigma)
        self._extents: list[Extent] = []
        for positions in per_char:
            bm = PlainBitmap.from_positions(positions, self._n)
            self._extents.append(self._disk.store(bm.to_bytes(), self._n))
        self._counts = [len(p) for p in per_char]

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._n * self._sigma,
            directory_bits=self._sigma * max(1, max(self._n, 2).bit_length()),
        )

    def _read_plain(self, ch: int) -> PlainBitmap:
        reader = self._disk.read_extent(self._extents[ch])
        nbytes = (self._n + 7) // 8
        raw = bytearray(nbytes)
        for bi in range(nbytes):
            take = min(8, self._n - bi * 8)
            raw[bi] = reader.read_bits(take) << (8 - take)
        return PlainBitmap(self._n, bytes(raw))

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        combined: PlainBitmap | None = None
        for ch in range(char_lo, char_hi + 1):
            bm = self._read_plain(ch)  # every bitmap in the range is scanned
            combined = bm if combined is None else (combined | bm)
        if combined is None:  # pragma: no cover - range is never empty
            return RangeResult.empty(self._n)
        return RangeResult(combined.positions(), self._n)
