"""Interval encoding (references [9, 10], Chan & Ioannidis).

Store ``sigma - m + 1`` bitmaps ``I_k`` for the sliding intervals
``[a_k, a_(k+m-1)]`` with ``m = ceil(sigma / 2)``.  Any range query is
answered with at most two of them:

* ``[l, r]`` with width <= m: ``I_l AND NOT I_(r+1)`` when both exist,
  else ``I_l AND I_(r-m+1)`` (right edge), else
  ``I_(r-m+1) AND NOT I_(l-m)`` (both ends near the right border);
* wider ranges: the complement of the two flanking (narrow) ranges.

Half the space of range encoding (~``n sigma / 2`` bits uncompressed),
same O(1)-scan query cost — still in the ``n sigma^(1-o(1))`` space
family of §1.2.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.plain import PlainBitmap
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


class IntervalEncodedBitmapIndex(SecondaryIndex):
    """Sliding-interval bitmaps; <= 2 bitmap scans per query."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._m = max(1, -(-sigma // 2))  # interval width ceil(sigma/2)
        for ch in x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
        self._extents: list[Extent] = []
        num_intervals = self._sigma - self._m + 1
        for k in range(num_intervals):
            bm = PlainBitmap(self._n)
            lo, hi = k, k + self._m - 1
            for pos, ch in enumerate(x):
                if lo <= ch <= hi:
                    bm.set(pos)
            self._extents.append(self._disk.store(bm.to_bytes(), self._n))

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def interval_width(self) -> int:
        return self._m

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._n * len(self._extents),
            directory_bits=len(self._extents)
            * max(1, max(self._n, 2).bit_length()),
        )

    def _read_plain(self, k: int) -> PlainBitmap:
        reader = self._disk.read_extent(self._extents[k])
        nbytes = (self._n + 7) // 8
        raw = bytearray(nbytes)
        for bi in range(nbytes):
            take = min(8, self._n - bi * 8)
            raw[bi] = reader.read_bits(take) << (8 - take)
        return PlainBitmap(self._n, bytes(raw))

    def _narrow(self, lo: int, hi: int) -> PlainBitmap:
        """[lo, hi] with width <= m as at most two bitmap operations."""
        m = self._m
        last_k = self._sigma - m  # largest valid interval index
        if lo <= last_k and hi + 1 <= last_k:
            return self._read_plain(lo).and_not(self._read_plain(hi + 1))
        if lo <= last_k:
            # Right edge: I_lo covers [lo, lo+m-1] ⊇ [lo, hi]; intersect
            # with the interval ending exactly at hi.
            return self._read_plain(lo) & self._read_plain(hi - m + 1)
        # Both ends to the right of the last interval start.
        return self._read_plain(hi - m + 1).and_not(self._read_plain(lo - m))

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        width = char_hi - char_lo + 1
        if width <= self._m:
            return RangeResult(
                self._narrow(char_lo, char_hi).positions(), self._n
            )
        # Wide range: complement of the two flanks (each narrow, since
        # flank widths sum to sigma - width < sigma - m <= m).
        flanks = PlainBitmap(self._n)
        if char_lo > 0:
            flanks = flanks | self._narrow(0, char_lo - 1)
        if char_hi < self._sigma - 1:
            flanks = flanks | self._narrow(char_hi + 1, self._sigma - 1)
        return RangeResult(flanks.positions(), self._n, complemented=True)
