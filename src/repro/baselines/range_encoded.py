"""Range encoding (reference [14], O'Neil & Quass).

For every character ``a`` store the bitmap ``C_a`` of positions with
``x_i <= a``.  Any range query is then two bitmap operations:
``I[al; ar] = C_ar AND NOT C_(al-1)`` — O(1) bitmap scans regardless of
the range length.  The price is space: the cumulative bitmaps are
dense, ``n * sigma`` bits uncompressed — the ``n sigma^(1-o(1))``-bit
family the paper cites as the precomputation extreme (§1.2).
"""

from __future__ import annotations

from typing import Sequence

from ..bits.plain import PlainBitmap
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


class RangeEncodedBitmapIndex(SecondaryIndex):
    """Cumulative (<= a) bitmaps; 2 bitmap scans per query, nσ bits."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        cumulative = PlainBitmap(self._n)
        per_char: list[list[int]] = [[] for _ in range(sigma)]
        for pos, ch in enumerate(x):
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
            per_char[ch].append(pos)
        self._extents: list[Extent] = []
        for ch in range(sigma):
            for pos in per_char[ch]:
                cumulative.set(pos)
            self._extents.append(
                self._disk.store(cumulative.to_bytes(), self._n)
            )

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._n * self._sigma,
            directory_bits=self._sigma * max(1, max(self._n, 2).bit_length()),
        )

    def _read_plain(self, ch: int) -> PlainBitmap:
        reader = self._disk.read_extent(self._extents[ch])
        nbytes = (self._n + 7) // 8
        raw = bytearray(nbytes)
        for bi in range(nbytes):
            take = min(8, self._n - bi * 8)
            raw[bi] = reader.read_bits(take) << (8 - take)
        return PlainBitmap(self._n, bytes(raw))

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        upper = self._read_plain(char_hi)
        if char_lo == 0:
            return RangeResult(upper.positions(), self._n)
        lower = self._read_plain(char_lo - 1)
        return RangeResult(upper.and_not(lower).positions(), self._n)
