"""A WAH-compressed bitmap index (reference [18], Wu, Otoo & Shoshani).

The practical comparator: per-character bitmaps compressed with
Word-Aligned Hybrid coding instead of gamma run-length coding.  The
paper notes such schemes "take into account the computational effort
... with some reduction in worst-case compression rate" (§1.2); E10
quantifies that compression gap while the query algorithm (scan every
bitmap in the range) matches :class:`CompressedBitmapIndex`.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.ops import union_disjoint_sorted
from ..bits.wah import WahBitmap
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


class WahBitmapIndex(SecondaryIndex):
    """WAH-compressed bitmap per character."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        per_char: list[list[int]] = [[] for _ in range(sigma)]
        for pos, ch in enumerate(x):
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
            per_char[ch].append(pos)
        self._extents: list[Extent] = []
        self._words: list[tuple[int, ...]] = []
        self._counts: list[int] = []
        self._payload_bits = 0
        for positions in per_char:
            bm = WahBitmap.from_positions(positions, self._n)
            data = b"".join(w.to_bytes(4, "big") for w in bm.words)
            self._extents.append(self._disk.store(data, bm.size_bits))
            self._words.append(bm.words)
            self._counts.append(len(positions))
            self._payload_bits += bm.size_bits

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=self._sigma * max(1, max(self._n, 2).bit_length()),
        )

    def _read_wah(self, ch: int) -> WahBitmap:
        extent = self._extents[ch]
        reader = self._disk.read_extent(extent)
        nwords = extent.nbits // 32
        words = tuple(reader.read_bits(32) for _ in range(nwords))
        return WahBitmap(words, self._n, self._counts[ch])

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        lists = []
        for ch in range(char_lo, char_hi + 1):
            bm = self._read_wah(ch)
            if bm.count:
                lists.append(bm.positions())
        return RangeResult(union_disjoint_sorted(lists), self._n)
