"""Baseline secondary indexes the paper positions itself against."""

from .binned import BinnedBitmapIndex
from .bitmap_index import CompressedBitmapIndex, UncompressedBitmapIndex
from .btree_index import BTreeSecondaryIndex
from .interval_encoded import IntervalEncodedBitmapIndex
from .multires import MultiResolutionBitmapIndex
from .range_encoded import RangeEncodedBitmapIndex
from .wah_index import WahBitmapIndex

__all__ = [
    "BTreeSecondaryIndex",
    "BinnedBitmapIndex",
    "CompressedBitmapIndex",
    "IntervalEncodedBitmapIndex",
    "MultiResolutionBitmapIndex",
    "RangeEncodedBitmapIndex",
    "UncompressedBitmapIndex",
    "WahBitmapIndex",
]
