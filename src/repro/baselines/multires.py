"""Multi-resolution bitmap indexes (§1.2, reference [16]).

Binning applied recursively: level 0 stores per-character bitmaps,
level k a bitmap per bin of ``w^k`` characters.  A range is covered
greedily by maximal aligned bins, so fewer than ``l/w + 2w`` bitmaps
are combined and no candidate checks are needed.  The paper derives
the worst-case space ``Theta(n lg^2(sigma) / lg w)`` bits and notes the
inherent time-space trade-off ("one can never simultaneously achieve
optimal space ... and optimal query time") that Theorem 2 eliminates;
experiment E8 measures exactly that trade-off.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_disjoint_sorted
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


class MultiResolutionBitmapIndex(SecondaryIndex):
    """Bitmaps for bins of w^0, w^1, w^2, ... characters."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        bin_width: int = 4,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        if bin_width < 2:
            raise InvalidParameterError("bin_width must be >= 2")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._w = bin_width
        per_char: list[list[int]] = [[] for _ in range(sigma)]
        for pos, ch in enumerate(x):
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
            per_char[ch].append(pos)
        # Resolution levels: level 0 = characters; level k bins w^k chars.
        self._levels: list[list[tuple[int, int, int]]] = []
        self._extents: list[Extent] = []
        self._payload_bits = 0
        current = per_char
        while True:
            writer = BitWriter()
            entries = []
            for positions in current:
                start = writer.bit_length
                encode_gaps(writer, positions)
                entries.append((start, writer.bit_length - start, len(positions)))
            self._extents.append(
                self._disk.store(writer.getvalue(), writer.bit_length)
            )
            self._levels.append(entries)
            self._payload_bits += writer.bit_length
            if len(current) == 1:
                break
            nxt: list[list[int]] = []
            for i in range(0, len(current), bin_width):
                group = current[i : i + bin_width]
                merged: list[int] = []
                for g in group:
                    merged.extend(g)
                merged.sort()
                nxt.append(merged)
            current = nxt

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        entry_bits = 3 * max(1, max(self._n, 2).bit_length())
        num_entries = sum(len(lvl) for lvl in self._levels)
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=num_entries * entry_bits,
        )

    def _read_bin(self, level: int, idx: int) -> list[int]:
        start, nbits, count = self._levels[level][idx]
        if count == 0:
            return []
        reader = self._disk.reader(self._extents[level].offset + start, nbits)
        return decode_gaps(reader, count)

    def _cover(self, char_lo: int, char_hi: int) -> list[tuple[int, int]]:
        """Greedy cover of [char_lo, char_hi] by maximal aligned bins."""
        out: list[tuple[int, int]] = []
        w = self._w
        at = char_lo
        while at <= char_hi:
            level = 0
            span = 1
            # Grow while aligned and still inside the range.
            while (
                level + 1 < len(self._levels)
                and at % (span * w) == 0
                and at + span * w - 1 <= char_hi
            ):
                level += 1
                span *= w
            out.append((level, at // span))
            at += span
        return out

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        lists = [
            positions
            for level, idx in self._cover(char_lo, char_hi)
            if (positions := self._read_bin(level, idx))
        ]
        return RangeResult(union_disjoint_sorted(lists), self._n)
