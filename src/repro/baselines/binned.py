"""Binning (§1.2, reference [16]) with candidate checks.

"In its simplest form the idea is to divide Σ into bins of w characters
and represent a compressed bitmap for each bin."  A range query unions
the bitmaps of fully covered bins; the two *edge* bins only bound the
answer, so their members are candidate-checked against the base data —
the classic candidate-check cost that makes plain binning unattractive
at low selectivity, and the reason multi-resolution indexes exist.

The base string is stored on disk as a fixed-width array; each
candidate check reads one character (one block I/O when unlucky).
"""

from __future__ import annotations

from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_disjoint_sorted
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent


class BinnedBitmapIndex(SecondaryIndex):
    """One compressed bitmap per bin of ``bin_width`` characters."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        bin_width: int = 8,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        if bin_width <= 0:
            raise InvalidParameterError("bin_width must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._w = bin_width
        self._num_bins = -(-sigma // bin_width)
        per_bin: list[list[int]] = [[] for _ in range(self._num_bins)]
        for pos, ch in enumerate(x):
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
            per_bin[ch // bin_width].append(pos)
        writer = BitWriter()
        self._entries: list[tuple[int, int, int]] = []
        for positions in per_bin:
            start = writer.bit_length
            encode_gaps(writer, positions)
            self._entries.append((start, writer.bit_length - start, len(positions)))
        self._extent: Extent = self._disk.store(writer.getvalue(), writer.bit_length)
        self._payload_bits = writer.bit_length
        # Base data for candidate checks: fixed-width character array.
        self._char_bits = max(1, (sigma - 1).bit_length())
        self._base_offset = self._disk.alloc(max(1, self._n) * self._char_bits)
        for pos, ch in enumerate(x):
            self._disk.write_bits(
                self._base_offset + pos * self._char_bits, ch, self._char_bits
            )
        self.candidate_checks = 0  # diagnostics for E8

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def bin_width(self) -> int:
        return self._w

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        # The base array is the data, not the index; report the index.
        entry_bits = 3 * max(1, max(self._n, 2).bit_length())
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=self._num_bins * entry_bits,
        )

    def _read_bin(self, b: int) -> list[int]:
        start, nbits, count = self._entries[b]
        if count == 0:
            return []
        reader = self._disk.reader(self._extent.offset + start, nbits)
        return decode_gaps(reader, count)

    def _check_candidate(self, pos: int, char_lo: int, char_hi: int) -> bool:
        """Read x[pos] from the base data (the candidate check I/O)."""
        self.candidate_checks += 1
        ch = self._disk.read_bits(
            self._base_offset + pos * self._char_bits, self._char_bits
        )
        return char_lo <= ch <= char_hi

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        w = self._w
        first_bin, last_bin = char_lo // w, char_hi // w
        inner: list[list[int]] = []
        candidates: list[int] = []
        for b in range(first_bin, last_bin + 1):
            bin_lo, bin_hi = b * w, min(self._sigma, (b + 1) * w) - 1
            positions = self._read_bin(b)
            if char_lo <= bin_lo and bin_hi <= char_hi:
                inner.append(positions)  # fully covered bin
            else:
                candidates.extend(positions)  # edge bin: verify
        verified = [
            p for p in candidates if self._check_candidate(p, char_lo, char_hi)
        ]
        verified.sort()
        lists = inner + ([verified] if verified else [])
        return RangeResult(union_disjoint_sorted(lists), self._n)
