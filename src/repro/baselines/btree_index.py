"""The B-tree secondary index — one extreme of §1.3.

The classic database secondary index: a B-tree over ``(character,
position)`` pairs.  Queries are I/O-optimal *in explicit references* —
``O(lg_b n + z lg(n)/B)`` — but each reported position costs
``Theta(lg n)`` bits, up to a ``lg n`` factor more than the compressed
output the paper's structures read (§1.3: "up to a factor lg n less
than the time needed to read the explicit list of positions").
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InvalidParameterError
from ..iomodel.disk import Disk
from ..trees.btree import BTree
from ..core.interface import RangeResult, SecondaryIndex, SpaceBreakdown


class BTreeSecondaryIndex(SecondaryIndex):
    """A bulk-loaded B-tree over (character, position) composite keys."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._pos_bits = max(1, (max(self._n - 1, 1)).bit_length())
        self._char_bits = max(1, (sigma - 1).bit_length())
        key_bits = self._char_bits + self._pos_bits
        # Composite key (char << pos_bits) | pos keeps (char, pos) order.
        items = sorted(
            ((ch << self._pos_bits) | pos, 0) for pos, ch in enumerate(x)
        )
        for ch in x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
        self._tree = BTree.bulk_build(self._disk, items, key_bits=key_bits)

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        # The whole structure is key storage: call it payload.
        return SpaceBreakdown(payload_bits=self._tree.size_bits, directory_bits=0)

    def insert_append(self, ch: int) -> None:
        """Dynamic append for the update benchmarks: O(lg_b n) I/Os."""
        if ch < 0 or ch >= self._sigma:
            raise InvalidParameterError("character outside the alphabet")
        pos = self._n
        self._n += 1
        self._tree.insert((ch << self._pos_bits) | pos)

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        lo_key = char_lo << self._pos_bits
        hi_key = ((char_hi + 1) << self._pos_bits) - 1
        pairs = self._tree.range_query(lo_key, hi_key)
        mask = (1 << self._pos_bits) - 1
        positions = sorted(key & mask for key, _ in pairs)
        return RangeResult(positions, self._n)
