"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its documented domain."""


class StorageError(ReproError):
    """The simulated block device was used incorrectly.

    Typical causes: reading past the end of an allocated extent, or
    writing to an address that was never allocated.
    """


class CodecError(ReproError):
    """A bit-level codec was asked to decode malformed data."""


class PersistenceError(StorageError):
    """The durable persistence tier hit an unusable on-disk artifact."""


class CorruptSnapshot(PersistenceError):
    """A snapshot file failed validation and must not be served.

    Raised on a bad magic/version, a manifest that fails its checksum,
    or a section whose CRC32 does not match its manifest entry.  The
    contract is *never silent wrong answers*: a flipped bit in an
    index page is rejected at restore time, not decoded into a
    plausible-looking index.
    """


class CorruptWAL(PersistenceError):
    """A write-ahead log record failed validation mid-file.

    A *torn tail* — a partially written final record — is expected
    after a crash and is truncated cleanly, not raised.  This error
    means something worse: a fully present record whose CRC does not
    match (bit rot, manual tampering) or a corrupt frame in a segment
    that is not the last.  Replaying past it could apply garbage, so
    recovery refuses.
    """


class QueryError(ReproError, ValueError):
    """A query was malformed (e.g. an empty or inverted alphabet range)."""


class UpdateError(ReproError):
    """A dynamic operation (append/change/delete) was invalid.

    Examples: changing a position that does not exist, appending a
    character outside the index alphabet when growth is disabled, or
    deleting an already-deleted position.
    """


class Overloaded(ReproError):
    """The serving front-end refused a request to protect its tail latency.

    Raised by :class:`~repro.serve.FrontEnd` under the reject-newest
    admission policy when the number of in-flight requests has reached
    ``max_concurrency + queue_depth``.  Clients should back off and
    retry; the request was never dispatched.
    """

    def __init__(self, inflight: int, capacity: int) -> None:
        super().__init__(
            f"front-end overloaded: {inflight} requests in flight "
            f"(capacity {capacity}); request shed"
        )
        self.inflight = inflight
        self.capacity = capacity


class RequestTimeout(ReproError):
    """A front-end request exceeded its per-request deadline.

    The deadline covers queue wait plus service time.  The underlying
    scatter (shared by any coalesced requests) is not cancelled — it
    runs to completion on the worker bridge and settles its own
    bookkeeping — only this caller gives up waiting.
    """

    def __init__(self, op: str, timeout_s: float) -> None:
        super().__init__(f"{op} request exceeded its {timeout_s}s deadline")
        self.op = op
        self.timeout_s = timeout_s


class WorkerDiedError(StorageError):
    """A shard worker process died with requests still outstanding.

    Raised coordinator-side by the process executor when a worker's
    pipe breaks — mid delta-batch flush, mid shared-memory attach, or
    mid query — instead of hanging on the dead pipe.  ``worker_index``
    names the worker; ``uid`` is the shard the failed request was
    addressed to (``None`` for pool-wide requests such as ``stats``).
    """

    def __init__(self, worker_index: int, uid: "int | None" = None) -> None:
        target = f"shard uid {uid}" if uid is not None else "a pool-wide request"
        super().__init__(
            f"worker {worker_index} died with {target} outstanding"
        )
        self.worker_index = worker_index
        self.uid = uid

    def __reduce__(self):
        return (type(self), (self.worker_index, self.uid))
