"""Index selection and serving layer on top of the paper's structures.

The paper's interface — alphabet range queries over ``x ∈ Sigma^n`` —
admits many structures with different space/time trade-offs (B-trees,
bitmap variants, the Theorem 2/3/5/7 indexes).  This subsystem makes
the choice instead of the caller:

* :mod:`registry` enumerates every :class:`~repro.core.interface.\
SecondaryIndex` implementation with its declared cost profile;
* :mod:`advisor` picks a backend per column from measured workload
  statistics under an explicit, overridable cost model;
* :mod:`engine` serves batched conjunctive range queries through an
  LRU result cache with a ``plan()``/``explain()`` API.

See README.md in this directory for the architecture and the registry
contract.
"""

from .advisor import Advisor, CostModel, WorkloadStats
from .cache import LRUCache
from .engine import EngineColumn, QueryEngine, QueryPlan
from .registry import (
    CostProfile,
    IndexSpec,
    all_specs,
    get_spec,
    register,
    specs,
)

__all__ = [
    "Advisor",
    "CostModel",
    "CostProfile",
    "EngineColumn",
    "IndexSpec",
    "LRUCache",
    "QueryEngine",
    "QueryPlan",
    "WorkloadStats",
    "all_specs",
    "get_spec",
    "register",
    "specs",
]
