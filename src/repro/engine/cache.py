"""A small LRU cache for query results.

Keys are ``(column, version, lo, hi)`` tuples: the engine bumps a
column's version on every update, so entries written under an older
version can never be returned again.  :meth:`LRUCache.invalidate`
additionally evicts them eagerly, keeping capacity for live entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..errors import InvalidParameterError


class LRUCache:
    """Least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise InvalidParameterError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry if full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def invalidate(
        self, predicate: Callable[[Hashable], bool] | None = None
    ) -> int:
        """Drop entries matching ``predicate`` (all when ``None``)."""
        if predicate is None:
            dropped = len(self._data)
            self._data.clear()
            return dropped
        doomed = [k for k in self._data if predicate(k)]
        for k in doomed:
            del self._data[k]
        return len(doomed)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
