"""The query engine: advisor-built columns behind one cached front door.

``QueryEngine`` owns a set of named columns.  Each column is built by
the :class:`~repro.engine.advisor.Advisor` (or pinned to a registry
backend by name), serves alphabet range queries through a shared
:class:`~repro.engine.cache.LRUCache`, and exposes the update verbs its
backend supports (``append``/``change``/``delete``), every one of which
bumps the column's version and so invalidates its cached results.

Composed queries speak the predicate algebra of :mod:`repro.query`:
:meth:`QueryEngine.query`, :meth:`QueryEngine.select` and
:meth:`QueryEngine.select_iter` accept any ``Range``/``Eq``/``In``/
``And``/``Or``/``Not`` tree in code space, compile it once
(:func:`repro.query.compile_pred`), fetch every *unique* leaf interval
through the LRU cache — disjuncts sharing a leaf share its cache
entry — and fold the answers with complement-aware set algebra (a
``Not`` reuses §2.1 complement-threshold representations instead of
materializing).  :meth:`QueryEngine.plan` / :meth:`QueryEngine.explain`
answer predicates with the typed, JSON-serializable
:class:`~repro.query.PlanReport`; the single-leaf ``(name, lo, hi)``
forms keep returning :class:`QueryPlan` / strings.  The legacy
``{column: (lo, hi)}`` conjunction mapping still works everywhere as a
deprecated adapter.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..core.interface import RangeResult, SecondaryIndex
from ..bits.ops import intersect_many
from ..errors import InvalidParameterError, QueryError, UpdateError
from ..iomodel.stats import Snapshot
from ..obs import (
    CacheTierStats,
    ColumnStats,
    EngineStats,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
)
from ..query import (
    LeafPlan,
    Plan,
    PlanReport,
    Pred,
    compile_pred,
    evaluate_count,
    evaluate_count_by,
    evaluate_exists,
    evaluate_fetch,
    evaluate_iter,
    mapping_to_pred,
    resolve_universe,
    warn_mapping_adapter,
)
from ..query.stream import intersect_iters
from .advisor import Advisor, CostModel, WorkloadStats
from .cache import LRUCache
from .registry import IndexSpec, get_spec


def conjunctive_select(
    query, conditions: Mapping[str, tuple[int, int]]
) -> list[int]:
    """The §1 conjunctive plan over any range-query callable.

    One range query per dimension through ``query(name, lo, hi)`` —
    each individually cacheable by whatever serves it — short-circuits
    as soon as one dimension comes back empty, then intersects the
    sorted RID lists.  Shared by the single-process engine and the
    cluster's scatter-gather path so the two can never diverge.
    """
    if not conditions:
        raise QueryError("select requires at least one condition")
    per_dim: list[list[int]] = []
    for name, (lo, hi) in conditions.items():
        result = query(name, lo, hi)
        if result.cardinality == 0:
            return []
        per_dim.append(result.positions())
    return intersect_many(per_dim)


def conjunctive_select_iter(query_iter, conditions):
    """The streaming §1 conjunctive plan over sorted RID iterators.

    ``query_iter(name, lo, hi)`` must return an iterator of strictly
    increasing global RIDs.  The returned generator performs the k-way
    intersection in lockstep — every dimension holds one cursor, the
    laggards are advanced to the current frontier, and a RID is emitted
    only when all cursors agree — so the answer is produced one RID at
    a time and nothing is materialized beyond what the per-dimension
    iterators themselves buffer.  Exhausting any dimension ends the
    whole select (the streaming form of the empty-dimension
    short-circuit); abandoned iterators are closed so producers can
    release their buffers deterministically.

    Conditions are validated eagerly — the per-dimension iterators are
    constructed (and their producers validate columns and ranges)
    before the generator is ever advanced, mirroring
    :func:`conjunctive_select`'s fail-fast behavior.  The merge itself
    is :func:`repro.query.stream.intersect_iters`, the same combinator
    every ``And`` plan node compiles into.
    """
    if not conditions:
        raise QueryError("select requires at least one condition")
    iters = [
        query_iter(name, lo, hi) for name, (lo, hi) in conditions.items()
    ]
    return intersect_iters(iters)


@dataclass(frozen=True)
class QueryPlan:
    """How one range query will be served (produced without running it)."""

    column: str
    char_lo: int
    char_hi: int
    spec: IndexSpec
    estimated_cost_bits: float
    cached: bool

    def describe(self) -> str:
        via = "cache" if self.cached else f"index {self.spec.name!r}"
        return (
            f"{self.column}[{self.char_lo}..{self.char_hi}] via {via} "
            f"[{self.spec.family}/{self.spec.dynamism}"
            f"{'' if self.spec.exact else '/approx'}]  "
            f"space: {self.spec.cost.space_bound};  "
            f"query: {self.spec.cost.query_bound};  "
            f"est {self.estimated_cost_bits:,.0f} bits"
        )


class EngineColumn:
    """One engine-managed column: codes, stats, backend, version.

    ``codes`` mirrors the backend's logical string through every
    update: deleted positions hold ``None`` until the backend compacts
    its position space, at which point the mirror compacts with it.

    A column may be *deferred* (``index=None``): the advisor's verdict
    and the codes are held, but no index structure exists until
    something touches :attr:`index` — the control-plane mode a cluster
    coordinator uses for worker-resident shards, where the replica
    that serves queries lives in another process and the coordinator
    needs only codes + stats for planning, routing, and rebuilds.  The
    first local query or update forces the build (from codes identical
    to the shipped snapshot, so a forced replica stays bit-identical
    to its worker twin); latency/metrics applied while deferred stick
    and take effect at force time.
    """

    def __init__(
        self,
        name: str,
        codes: Sequence[int],
        spec: IndexSpec,
        index: "SecondaryIndex | None",
        stats: WorkloadStats,
    ) -> None:
        self.name = name
        self.codes = list(codes)
        self.spec = spec
        self._index = index
        self.stats = stats
        self.version = 0
        self._pending_latency: float | None = None
        self._pending_metrics = None

    @property
    def deferred(self) -> bool:
        """True while no index structure has been built."""
        return self._index is None

    @property
    def index(self) -> SecondaryIndex:
        if self._index is None:
            self._force_build()
        return self._index

    @index.setter
    def index(self, value: SecondaryIndex) -> None:
        self._index = value

    def _force_build(self) -> None:
        live = [c for c in self.codes if c is not None]
        self._index = self.spec.build(live, self.stats.sigma)
        if len(live) != len(self.codes):
            self.codes = live
        disk = getattr(self._index, "disk", None)
        if disk is not None:
            if self._pending_latency is not None:
                disk.latency_s = self._pending_latency
            if self._pending_metrics is not None:
                disk.metrics = self._pending_metrics

    @property
    def sigma(self) -> int:
        if self._index is None:
            return self.stats.sigma
        return self._index.sigma

    @property
    def n(self) -> int:
        if self._index is None:
            return len(self.codes)
        return self._index.n

    def io_snapshot(self) -> "Snapshot":
        """This column's device counters; zero while deferred."""
        if self._index is None:
            return Snapshot()
        return self._index.stats.snapshot()

    def apply_latency(self, latency_s: float) -> None:
        """Set the disk latency model without forcing a deferred build."""
        if self._index is None:
            self._pending_latency = latency_s
            return
        disk = getattr(self._index, "disk", None)
        if disk is not None:
            disk.latency_s = latency_s

    def apply_metrics(self, metrics) -> None:
        """Attach a metrics registry without forcing a deferred build."""
        if self._index is None:
            self._pending_metrics = metrics
            return
        disk = getattr(self._index, "disk", None)
        if disk is not None:
            disk.metrics = metrics

    def flush_disk_cache(self) -> None:
        """Drop the device block cache; a no-op while deferred."""
        if self._index is None:
            return
        disk = getattr(self._index, "disk", None)
        if disk is not None:
            disk.flush_cache()

    def _bump(self) -> None:
        self.version += 1

    def restat(self) -> WorkloadStats:
        """Re-measure :class:`WorkloadStats` from the current codes.

        ``add_column`` measures once; after heavy update traffic the
        recorded cardinality/entropy drift away from the live column.
        This refreshes the measured fields (``n``, ``h0``) while
        preserving the *declared* workload contract (``sigma``,
        dynamism, selectivity, exactness, deletions) — the advisor can
        then be re-consulted with honest numbers (the cluster's drift
        detector does exactly that before migrating a shard).
        """
        old = self.stats
        live = [c for c in self.codes if c is not None]
        if live:
            self.stats = WorkloadStats.measure(
                live,
                sigma=old.sigma,
                dynamism=old.dynamism,
                expected_selectivity=old.expected_selectivity,
                require_exact=old.require_exact,
                require_delete=old.require_delete,
            )
        else:
            self.stats = old.with_(n=0, h0=0.0)
        return self.stats

    def rebuild(self, spec: IndexSpec) -> None:
        """Swap this column onto a different backend, in place.

        The new index is built from the live codes; pending deleted
        slots (``None`` holes) are compacted away exactly as a backend
        compaction would, so positions after a rebuild are the same as
        after any other global rebuild.  The version bump makes every
        previously cached result for this column unreachable.
        """
        if not spec.serves(self.stats.dynamism, self.stats.require_delete):
            raise InvalidParameterError(
                f"backend {spec.name!r} cannot serve dynamism="
                f"{self.stats.dynamism!r} "
                f"require_delete={self.stats.require_delete}"
            )
        if self.stats.require_exact and not spec.exact:
            raise InvalidParameterError(
                f"backend {spec.name!r} is approximate; column "
                f"{self.name!r} declares require_exact=True"
            )
        live = [c for c in self.codes if c is not None]
        if self._index is None:
            # Deferred rebuild: record the new verdict and compact the
            # mirror exactly as the built path would; the column stays
            # deferred (the worker replica does the real rebuild).
            self.spec = spec
            self.codes = live
            self._bump()
            return
        old_disk = getattr(self.index, "disk", None)
        self.index = spec.build(live, self.stats.sigma)
        new_disk = getattr(self.index, "disk", None)
        if new_disk is not None and old_disk is not None:
            # Observability survives backend swaps: the replacement
            # device reports into whatever registry the old one did.
            new_disk.metrics = getattr(old_disk, "metrics", None)
        self.spec = spec
        self.codes = live
        self._bump()

    def append(self, ch: int) -> None:
        if not hasattr(self.index, "append"):
            raise UpdateError(
                f"column {self.name!r} uses static backend "
                f"{self.spec.name!r}; declare dynamism='semidynamic' or "
                "stronger when adding the column"
            )
        self.index.append(ch)
        self.codes.append(ch)
        self._bump()

    def change(self, pos: int, ch: int) -> None:
        if not hasattr(self.index, "change"):
            raise UpdateError(
                f"column {self.name!r} uses backend {self.spec.name!r} "
                "without change support; declare dynamism='fully_dynamic'"
            )
        self.index.change(pos, ch)
        self.codes[pos] = ch
        self._bump()

    def delete(self, pos: int) -> None:
        if not hasattr(self.index, "delete"):
            raise UpdateError(
                f"column {self.name!r} uses backend {self.spec.name!r} "
                "without delete support; declare require_delete=True"
            )
        compactions_before = getattr(self.index, "compactions", None)
        self.index.delete(pos)
        self.codes[pos] = None
        if (
            compactions_before is not None
            and self.index.compactions != compactions_before
        ):
            # The backend rewrote its position space; drop the deleted
            # slots so the mirror's positions match the new RIDs.
            self.codes = [c for c in self.codes if c is not None]
        self._bump()


class QueryEngine:
    """Builds, serves, and caches every column's secondary index."""

    def __init__(
        self,
        advisor: Advisor | None = None,
        cost_model: CostModel | None = None,
        cache_size: int = 1024,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | None = None,
    ) -> None:
        if advisor is not None and cost_model is not None:
            raise InvalidParameterError(
                "pass either an advisor or a cost_model, not both"
            )
        if advisor is None:
            advisor = Advisor(cost_model=cost_model)
        self.advisor = advisor
        self.cache = LRUCache(cache_size)
        self.columns: dict[str, EngineColumn] = {}
        # Observability hooks (repro.obs).  All three default off; the
        # serving hot path guards on them with attribute checks only,
        # so an engine without observers runs today's exact code.
        self.tracer = tracer
        self.metrics = metrics
        self.slow_log = slow_log
        self._active_trace = None
        self._op_depth = 0

    # ------------------------------------------------------------------
    # Column management
    # ------------------------------------------------------------------

    def add_column(
        self,
        name: str,
        codes: Sequence[int],
        sigma: int | None = None,
        dynamism: str = "static",
        expected_selectivity: float = 0.1,
        require_exact: bool = True,
        require_delete: bool = False,
        backend: str | None = None,
        defer_index: bool = False,
    ) -> EngineColumn:
        """Build a column, letting the advisor choose the backend.

        ``backend`` pins a registry entry by name, bypassing the
        advisor (the explicit override of the cost model's verdict).
        ``require_exact=False`` admits approximate (Theorem 3) backends
        to the ranking, where their false-positive verification cost is
        scored against exact structures' larger answer reads.

        ``defer_index=True`` records the verdict and the codes but
        builds no index structure until first local use — the
        control-plane mode for coordinators whose resident worker
        replicas do the serving.
        """
        if name in self.columns:
            raise InvalidParameterError(f"column {name!r} already exists")
        if not len(codes):
            raise InvalidParameterError(f"column {name!r} is empty")
        stats = WorkloadStats.measure(
            codes,
            sigma=sigma,
            dynamism=dynamism,
            expected_selectivity=expected_selectivity,
            require_exact=require_exact,
            require_delete=require_delete,
        )
        if backend is not None:
            spec = get_spec(backend)
            if not spec.serves(dynamism, require_delete):
                raise InvalidParameterError(
                    f"backend {backend!r} cannot serve dynamism="
                    f"{dynamism!r} require_delete={require_delete}"
                )
        else:
            spec = self.advisor.pick(stats)
        index = None if defer_index else spec.build(list(codes), stats.sigma)
        column = EngineColumn(name, codes, spec, index, stats)
        if self.metrics is not None:
            column.apply_metrics(self.metrics)
        self.columns[name] = column
        return column

    def column(self, name: str) -> EngineColumn:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(f"unknown column {name!r}") from None

    def drop_column(self, name: str) -> None:
        self.column(name)  # raise on unknown
        del self.columns[name]
        self.cache.invalidate(lambda key: key[0] == name)

    # ------------------------------------------------------------------
    # Updates (all invalidate the column's cached results)
    # ------------------------------------------------------------------

    def append(self, name: str, ch: int) -> None:
        col = self.column(name)
        col.append(ch)
        self._invalidate(name)

    def change(self, name: str, pos: int, ch: int) -> None:
        col = self.column(name)
        col.change(pos, ch)
        self._invalidate(name)

    def delete(self, name: str, pos: int) -> None:
        col = self.column(name)
        col.delete(pos)
        self._invalidate(name)

    def _invalidate(self, name: str) -> None:
        # Version bumps already make stale keys unreachable; eager
        # eviction keeps them from squatting on cache capacity.
        self.cache.invalidate(lambda key: key[0] == name)

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    @contextmanager
    def _observed(self, op: str, report_fn=None):
        """Frame one top-level operation for tracing/metrics/slow-log.

        Only the *outermost* entry (depth 0) begins a trace, observes
        latency metrics, and feeds the slow-query log; nested entries
        (``topk`` → ``count_by``, predicate folds → leaf ``query``)
        yield the already-active trace so their spans stitch into one
        tree and nothing is double-counted.  ``report_fn`` builds the
        :class:`~repro.query.PlanReport` lazily — only queries that
        actually cross the slow threshold pay for it.
        """
        if self._op_depth:
            self._op_depth += 1
            try:
                yield self._active_trace
            finally:
                self._op_depth -= 1
            return
        tracer = self.tracer
        trace = (
            tracer.begin(op)
            if tracer is not None and tracer.enabled
            else None
        )
        clock = tracer.clock if tracer is not None else time.monotonic
        self._active_trace = trace
        self._op_depth = 1
        t0 = clock()
        try:
            yield trace
        finally:
            elapsed = clock() - t0
            self._op_depth = 0
            self._active_trace = None
            if trace is not None:
                tracer.finish(trace)
            metrics = self.metrics
            if metrics is not None:
                metrics.inc("query.count")
                metrics.observe("query.latency_s", elapsed)
            slow_log = self.slow_log
            if slow_log is not None:
                slow_log.observe(
                    op, elapsed, trace=trace, report_fn=report_fn
                )

    def _query_leaf_observed(
        self, name: str, col: EngineColumn, char_lo: int, char_hi: int
    ) -> RangeResult:
        """The instrumented twin of the leaf-query hot path.

        Identical cache/index behavior (one ``cache.get`` per call, so
        the LRU's own hit/miss counters match the fast path exactly),
        plus a ``leaf_fetch`` span with a nested ``cache_lookup``, the
        per-tier cache counters, and bits-read attribution.
        """
        with self._observed("query") as trace:
            key = (name, col.version, char_lo, char_hi)
            metrics = self.metrics
            if trace is None:
                cached = self.cache.get(key)
                if metrics is not None:
                    metrics.inc(
                        "cache.engine.hits"
                        if cached is not None
                        else "cache.engine.misses"
                    )
                if cached is not None:
                    return cached
                io_stats = col.index.stats
                before = io_stats.snapshot()
                result = col.index.range_query(char_lo, char_hi)
                if metrics is not None:
                    io = io_stats.snapshot() - before
                    metrics.inc("query.bits_read", io.bits_read)
                self.cache.put(key, result)
                return result
            with trace.span(
                "leaf_fetch",
                column=name,
                char_lo=char_lo,
                char_hi=char_hi,
                backend=col.spec.name,
            ) as span:
                # Peek first (__contains__ skips the counters), so the
                # span can tag the verdict while the real get() below
                # still charges the LRU's hit/miss stats exactly once.
                hit = key in self.cache
                with trace.span("cache_lookup", tier="engine", hit=hit):
                    cached = self.cache.get(key)
                if metrics is not None:
                    metrics.inc(
                        "cache.engine.hits" if hit else "cache.engine.misses"
                    )
                if cached is not None:
                    span.tags.update(cache="hit", bits_read=0)
                    return cached
                io_stats = col.index.stats
                before = io_stats.snapshot()
                result = col.index.range_query(char_lo, char_hi)
                io = io_stats.snapshot() - before
                span.tags.update(
                    cache="miss",
                    bits_read=io.bits_read,
                    reads=io.reads,
                    rids=result.cardinality,
                )
                if metrics is not None:
                    metrics.inc("query.bits_read", io.bits_read)
                self.cache.put(key, result)
                return result

    def stats(self) -> EngineStats:
        """One typed, JSON-serializable snapshot of the whole engine.

        Embeds the per-column backend verdicts, the LRU tier's
        hit/miss accounting, the summed device
        :class:`~repro.iomodel.stats.Snapshot` across columns, the
        metrics registry (when attached), and the slow-query count —
        ``stats().to_dict()`` is directly ``json.dumps``-able.
        """
        io = Snapshot()
        for col in self.columns.values():
            io = io + col.io_snapshot()
        return EngineStats(
            columns=tuple(
                ColumnStats(
                    name=col.name,
                    backend=col.spec.name,
                    family=col.spec.family,
                    n=col.n,
                    sigma=col.sigma,
                    version=col.version,
                )
                for col in self.columns.values()
            ),
            cache=CacheTierStats(
                tier="engine",
                hits=self.cache.hits,
                misses=self.cache.misses,
                size=len(self.cache),
                capacity=self.cache.capacity,
                evictions=self.cache.evictions,
            ),
            io=io,
            metrics=(
                self.metrics.to_dict() if self.metrics is not None else None
            ),
            slow_queries=(
                len(self.slow_log) if self.slow_log is not None else 0
            ),
        )

    # ------------------------------------------------------------------
    # Predicate compilation (the shared repro.query path)
    # ------------------------------------------------------------------

    def _compile_pred(self, pred: Pred) -> tuple[Plan, int]:
        """Compile a code-space predicate against this engine's columns.

        Raises eagerly for unknown columns (every leaf is resolved,
        even ones normalization discards).  A predicate mentioning no
        column has no universe to answer against and is rejected;
        columns whose position spaces drifted apart under
        single-column updates serve positive plans against the widest
        universe but reject ``Not``/``TRUE`` (see
        :func:`repro.query.planner.resolve_universe`).
        """
        plan = compile_pred(pred, lambda name: self.column(name).sigma)
        return plan, resolve_universe(
            plan, lambda name: self.column(name).n
        )

    def _leaf_costs(self, plan: Plan) -> list[float]:
        """The advisor's predicted bits per unique leaf, zero if cached.

        The cost vector ``evaluate_fetch`` and the counting folds
        order ``And`` legs with: cached leaves sort first (they cost
        nothing to probe), then cold leaves cheapest-first, so a
        selective leg can empty the conjunction before the expensive
        ones are fetched.
        """
        costs = []
        for col, lo, hi in plan.leaves:
            leaf = self.plan(col, lo, hi)
            costs.append(0.0 if leaf.cached else leaf.estimated_cost_bits)
        return costs

    def _query_pred(self, pred: Pred, op: str = "select") -> RangeResult:
        # Lazy fold: each unique leaf fetched (and cached) at most
        # once, on demand, And legs cost-ordered — an And that goes
        # empty skips the rest of its legs, the generalized
        # empty-dimension short-circuit, and the cheap legs go first.
        with self._observed(
            op, report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is None:
                plan, universe = self._compile_pred(pred)
            else:
                with trace.span("plan", predicate=repr(pred)):
                    plan, universe = self._compile_pred(pred)
            return evaluate_fetch(
                plan, self.query, universe, self._leaf_costs(plan)
            )

    # ------------------------------------------------------------------
    # Aggregates (cardinality-space execution; no RID materialization)
    # ------------------------------------------------------------------

    def count(self, pred: "Pred | Mapping[str, tuple[int, int]]") -> int:
        """How many rows match, folded in cardinality space.

        Same compiled plan, same lazy cached leaf fetches as
        :meth:`select` — but the fold combines at the root with the
        counting twins of the set algebra, so the answer RID list is
        never built, a complement-represented majority answer is
        counted as ``universe - len(stored)`` in O(1), and a wide
        ``Or`` stops fetching the moment its union saturates the
        universe.
        """
        if not isinstance(pred, Pred):
            warn_mapping_adapter("QueryEngine.count")
            pred = mapping_to_pred(pred)
        with self._observed(
            "count", report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is None:
                plan, universe = self._compile_pred(pred)
            else:
                with trace.span("plan", predicate=repr(pred)):
                    plan, universe = self._compile_pred(pred)
            return evaluate_count(
                plan, self.query, universe, self._leaf_costs(plan)
            )

    def exists(self, pred: "Pred | Mapping[str, tuple[int, int]]") -> bool:
        """Does at least one row match?  Stops at the first evidence.

        ``Or`` disjuncts are probed cheapest-predicted-first and the
        scan ends at the first non-empty fold; other shapes reduce to
        a short-circuiting count.
        """
        if not isinstance(pred, Pred):
            warn_mapping_adapter("QueryEngine.exists")
            pred = mapping_to_pred(pred)
        with self._observed(
            "exists", report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is None:
                plan, universe = self._compile_pred(pred)
            else:
                with trace.span("plan", predicate=repr(pred)):
                    plan, universe = self._compile_pred(pred)
            return evaluate_exists(
                plan, self.query, universe, self._leaf_costs(plan)
            )

    def count_by(
        self, group: str, pred: "Pred | None" = None
    ) -> dict[int, int]:
        """Matching-row counts per code of ``group`` (zeros omitted).

        The predicate folds once; each occurring group code then costs
        one equality leaf on the group column (LRU-cached like any
        leaf) plus a counting intersection.  ``pred=None`` counts
        every row by group.  Equivalent to
        ``{c: count(pred & Eq(group, c))}`` but with the predicate
        evaluated a single time.
        """
        group_col = self.column(group)
        group_codes = sorted(
            {c for c in group_col.codes if c is not None}
        )
        group_fetch = lambda code: self.query(group, code, code)  # noqa: E731
        report_fn = (
            (lambda: self._plan_report(pred)) if pred is not None else None
        )
        with self._observed("count_by", report_fn=report_fn) as trace:
            if pred is None:
                return evaluate_count_by(
                    None, self.query, group_col.n, group_codes, group_fetch
                )
            if trace is None:
                plan = compile_pred(
                    pred, lambda name: self.column(name).sigma
                )
            else:
                with trace.span("plan", predicate=repr(pred)):
                    plan = compile_pred(
                        pred, lambda name: self.column(name).sigma
                    )
            # The group column joins the universe resolution: its
            # equality leaves execute in the same position space as the
            # predicate.
            widened = replace(
                plan, columns=tuple(sorted(set(plan.columns) | {group}))
            )
            universe = resolve_universe(
                widened, lambda name: self.column(name).n
            )
            return evaluate_count_by(
                plan,
                self.query,
                universe,
                group_codes,
                group_fetch,
                self._leaf_costs(plan),
            )

    def topk(
        self, group: str, pred: "Pred | None" = None, k: int = 10
    ) -> list[tuple[int, int]]:
        """The ``k`` most frequent group codes among matching rows.

        ``(code, count)`` pairs, count-descending with code ascending
        as the deterministic tie-break.
        """
        if k <= 0:
            raise InvalidParameterError("topk requires k >= 1")
        counts = self.count_by(group, pred)
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def _plan_report(self, pred: Pred) -> PlanReport:
        plan, universe = self._compile_pred(pred)
        leaves = []
        for col, lo, hi in plan.leaves:
            leaf = self.plan(col, lo, hi)
            leaves.append(
                LeafPlan(
                    column=col,
                    char_lo=lo,
                    char_hi=hi,
                    backend=leaf.spec.name,
                    family=leaf.spec.family,
                    estimated_cost_bits=(
                        0.0 if leaf.cached else leaf.estimated_cost_bits
                    ),
                    cached=leaf.cached,
                )
            )
        return PlanReport(
            kind="engine",
            predicate=repr(plan.normalized),
            universe=universe,
            root=plan.root,
            leaves=tuple(leaves),
            estimated_total_bits=sum(
                leaf.estimated_cost_bits for leaf in leaves
            ),
        )

    def plan(
        self,
        name: str | Pred,
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> "QueryPlan | PlanReport":
        """How a query would be served, without executing it.

        With a predicate, the typed :class:`~repro.query.PlanReport`
        (tree of leaf plans, per-leaf backend verdict, predicted bits,
        cache state); with ``(name, char_lo, char_hi)``, the
        single-leaf :class:`QueryPlan`.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate plan takes no range arguments"
                )
            return self._plan_report(name)
        if char_lo is None or char_hi is None:
            raise InvalidParameterError(
                "plan(name, char_lo, char_hi) requires both bounds; "
                "pass a predicate for composed queries"
            )
        col = self.column(name)
        stats = col.stats
        est = col.spec.cost.query_cost(
            col.n, col.sigma, stats.h0, stats.expected_z
        )
        key = (name, col.version, char_lo, char_hi)
        return QueryPlan(
            column=name,
            char_lo=char_lo,
            char_hi=char_hi,
            spec=col.spec,
            estimated_cost_bits=est,
            cached=key in self.cache,
        )

    def query(
        self,
        name: str | Pred,
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> RangeResult:
        """One query through the LRU cache: a leaf range or a predicate.

        With a predicate, every unique leaf interval of the compiled
        plan is fetched through this same method (so each is
        individually cached and disjuncts share legs) and the answers
        fold via complement-aware set algebra into one
        :class:`RangeResult` — possibly complement-represented, never
        expanded.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate query takes no range arguments"
                )
            return self._query_pred(name, op="query")
        if char_lo is None or char_hi is None:
            raise InvalidParameterError(
                "query(name, char_lo, char_hi) requires both bounds; "
                "pass a predicate for composed queries"
            )
        col = self.column(name)
        tracer = self.tracer
        if (
            self._active_trace is None
            and (tracer is None or not tracer.enabled)
            and self.metrics is None
            and self.slow_log is None
        ):
            # The fast path: no observer attached (or the tracer is
            # disabled) costs exactly these attribute checks on top of
            # the uninstrumented engine — the < 3% contract E17a holds
            # us to.
            key = (name, col.version, char_lo, char_hi)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            result = col.index.range_query(char_lo, char_hi)
            self.cache.put(key, result)
            return result
        return self._query_leaf_observed(name, col, char_lo, char_hi)

    def query_measured(
        self, name: str, char_lo: int, char_hi: int
    ) -> tuple[RangeResult, Snapshot]:
        """:meth:`query` plus the I/O it cost, as a mergeable snapshot.

        The delta is taken on the serving column's shared
        :class:`~repro.iomodel.stats.IOStats` (stable across a
        backend's internal device swaps), so a result served from the
        LRU cache honestly reports zero transfers.  This is the
        per-task currency of the cluster's scatter phase: each shard
        task — wherever it runs, including a worker process — returns
        its answer together with one of these, and the coordinator
        folds them into cluster totals.
        """
        stats = self.column(name).index.stats
        before = stats.snapshot()
        result = self.query(name, char_lo, char_hi)
        return result, stats.snapshot() - before

    def query_iter(self, name: str, char_lo: int, char_hi: int):
        """One range query as a sorted position iterator.

        The answer still flows through the LRU cache (the cache stores
        the :class:`RangeResult`, not a materialized list), but the
        positions stream out via :meth:`RangeResult.iter_positions` —
        a complemented majority answer is never expanded into its O(z)
        list.
        """
        return self.query(name, char_lo, char_hi).iter_positions()

    def select(
        self, conditions: "Pred | Mapping[str, tuple[int, int]]"
    ) -> list[int]:
        """RIDs matching a predicate (or a legacy conjunction mapping).

        The materialized form of :meth:`query` over a predicate:
        every unique leaf runs (or is served from cache) once, the
        plan folds with complement-aware set algebra, and the final
        answer materializes as a sorted RID list.  A
        ``{column: (char_lo, char_hi)}`` mapping still works as a
        deprecated adapter for the old conjunctive signature.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("QueryEngine.select")
            conditions = mapping_to_pred(conditions)
        return self._query_pred(conditions).positions()

    def select_iter(
        self, conditions: "Pred | Mapping[str, tuple[int, int]]"
    ):
        """Streaming select: matching RIDs yielded one at a time.

        The iterator form of :meth:`select` — same answers, but the
        compiled plan becomes a pipeline of streaming combinators
        (``And`` merge-intersects, ``Or`` merge-unions, negated
        children subtract), so huge answers are emitted in bounded
        memory instead of being materialized per leaf.  Predicates are
        validated and compiled eagerly, before the first RID is drawn.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("QueryEngine.select_iter")
            conditions = mapping_to_pred(conditions)
        # Engine-level streaming fetches leaves eagerly (query_iter
        # serves from the LRU), so the observed window closes here and
        # the returned iterator only re-orders already-fetched bits.
        with self._observed(
            "select_iter",
            report_fn=lambda: self._plan_report(conditions),
        ) as trace:
            if trace is None:
                plan, universe = self._compile_pred(conditions)
            else:
                with trace.span("plan", predicate=repr(conditions)):
                    plan, universe = self._compile_pred(conditions)
            return evaluate_iter(plan, self.query_iter, universe)

    def explain(
        self,
        name: "str | Pred | None" = None,
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> "str | PlanReport":
        """Report a plan: a predicate, one column, or every column.

        With a predicate, the typed :class:`~repro.query.PlanReport`
        (JSON-serializable via ``to_dict()``, printable via ``str``).
        With a range, describes the concrete :class:`QueryPlan`; with a
        column only, reprints the advisor's ranked verdict; with no
        arguments, summarizes every column and the cache.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate explain takes no range arguments"
                )
            return self._plan_report(name)
        if name is not None and char_lo is not None and char_hi is not None:
            return self.plan(name, char_lo, char_hi).describe()
        if name is not None:
            col = self.column(name)
            header = (
                f"column {name!r}: backend {col.spec.name!r} "
                f"({col.spec.theorem or col.spec.family}), "
                f"version {col.version}"
            )
            return header + "\n" + self.advisor.explain(col.stats)
        lines = [
            f"engine: {len(self.columns)} column(s), cache "
            f"{len(self.cache)}/{self.cache.capacity} entries, "
            f"hit rate {self.cache.hit_rate:.1%}"
        ]
        for col in self.columns.values():
            lines.append(
                f"  {col.name}: n={col.n} sigma={col.sigma} -> "
                f"{col.spec.name} [{col.spec.family}/{col.spec.dynamism}]"
            )
        return "\n".join(lines)
