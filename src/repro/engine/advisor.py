"""Backend selection from measured workload statistics.

The paper's message (§1.3) is that the right structure depends on the
column: low-cardinality attributes want bitmap variants, high-entropy
attributes want the entropy-bounded Theorem-2 structure, and update
patterns dictate the static/semidynamic/fully-dynamic axis.  The
advisor makes that choice explicit:

* :class:`WorkloadStats` measures a column (length, cardinality,
  ``H0`` via :mod:`repro.model.entropy`, update pattern, expected
  selectivity);
* :class:`CostModel` turns a registered backend's declared estimators
  into one comparable score — every weight is a constructor argument,
  so callers can re-balance space against query traffic or pin the
  block size.  Approximate (Theorem 3) backends are *scored*, not just
  filter-relaxed: their declared false-positive rate is charged as
  base-data verification traffic (§1.1's "false positives can be
  filtered away when accessing the associated data" is not free);
* :meth:`CostModel.from_reports` calibrates per-family weights from
  recorded benchmark reports (``benchmarks/results/*.json``), so the
  coarse analytic estimators can be corrected by measurement;
* :class:`Advisor` filters the registry by hard requirements (dynamism,
  deletions, exactness) and returns the cheapest backend, with a
  ranked table available from :meth:`Advisor.explain`.
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..errors import InvalidParameterError
from ..model.entropy import h0 as _h0
from . import registry
from .registry import IndexSpec

#: Environment escape hatch for the default calibration: set to
#: ``off``/``0``/``none`` to force the analytic model, or to a path to
#: load a different weights file.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: The checked-in calibration (E11e's measured per-family weights,
#: shipped as package data) that ``CostModel()`` loads by default.
PACKAGED_WEIGHTS_PATH = os.path.join(
    os.path.dirname(__file__), "data", "e11_family_weights.json"
)


def _parse_weights_file(path: str) -> tuple[tuple[str, float], ...]:
    """Read a compact ``{"family_weights": {...}}`` artifact."""
    with open(path) as f:
        data = json.load(f)
    raw = data.get("family_weights") if isinstance(data, dict) else None
    if not isinstance(raw, dict) or not raw:
        raise InvalidParameterError(
            f"{path}: family_weights must be a non-empty mapping"
        )
    weights = []
    for family, weight in raw.items():
        weight = float(weight)
        if not weight > 0:
            raise InvalidParameterError(
                f"{path}: family {family!r} has non-positive "
                f"weight {weight}"
            )
        weights.append((str(family), weight))
    return tuple(sorted(weights))


#: Parsed calibration files by absolute path.  Default construction
#: happens once per engine/shard/worker replica; the packaged file is
#: immutable in a running process, so one parse serves them all
#: (:meth:`CostModel.load_calibrated` still reads fresh — it is the
#: explicit I/O verb).
_WEIGHTS_CACHE: dict[str, tuple[tuple[str, float], ...]] = {}


def _cached_weights(path: str) -> tuple[tuple[str, float], ...]:
    resolved = os.path.abspath(path)
    if resolved not in _WEIGHTS_CACHE:
        _WEIGHTS_CACHE[resolved] = _parse_weights_file(resolved)
    return _WEIGHTS_CACHE[resolved]


@dataclass(frozen=True)
class WorkloadStats:
    """What the advisor knows about one column's workload."""

    n: int
    sigma: int
    h0: float
    dynamism: str = "static"
    expected_selectivity: float = 0.1
    require_exact: bool = True
    require_delete: bool = False

    def __post_init__(self) -> None:
        if self.n < 0:
            raise InvalidParameterError("n must be >= 0")
        if self.sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        if not 0.0 < self.expected_selectivity <= 1.0:
            raise InvalidParameterError(
                "expected_selectivity must be in (0, 1]"
            )
        if self.dynamism not in registry.DYNAMISM_LEVELS:
            raise InvalidParameterError(
                f"dynamism must be one of {registry.DYNAMISM_LEVELS}, "
                f"got {self.dynamism!r}"
            )

    @property
    def expected_z(self) -> int:
        """Expected answer cardinality for one range query."""
        return max(1, round(self.expected_selectivity * self.n))

    @classmethod
    def measure(
        cls,
        codes: Sequence[int],
        sigma: int | None = None,
        **overrides,
    ) -> "WorkloadStats":
        """Measure a column of dense codes.

        ``sigma`` defaults to ``max(codes) + 1`` (the dense-alphabet
        convention); keyword overrides pass through to the constructor.
        """
        if sigma is None:
            sigma = (max(codes) + 1) if len(codes) else 1
        return cls(n=len(codes), sigma=sigma, h0=_h0(codes), **overrides)

    def with_(self, **overrides) -> "WorkloadStats":
        """A copy with some fields replaced."""
        return replace(self, **overrides)


def _parse_report_number(cell: object) -> float:
    """A table cell back into a number (``fmt`` adds thousands commas)."""
    if isinstance(cell, (int, float)):
        return float(cell)
    return float(str(cell).replace(",", ""))


@dataclass(frozen=True)
class CostModel:
    """Weights turning a :class:`~repro.engine.registry.CostProfile`
    into one score.

    ``score = family_weight * (space_weight * space_bits
            + queries_per_build * (query_cost(expected_z) + fp_bits))``

    with every term in bits; ``queries_per_build`` is how many range
    queries the column is expected to serve per (re)build — raise it
    for hot read paths, lower it for archival columns.

    ``fp_bits`` charges approximate (Theorem 3) backends for their
    false positives: each of the expected ``eps * (n - z)`` spurious
    candidates costs ``fp_verify_bits`` of base-data access to filter
    out.  Exact backends pay nothing, so with ``require_exact=False``
    the advisor weighs cheaper approximate reads against the
    verification traffic instead of treating both answer kinds as
    equals.

    ``family_weights`` are measured correction factors per backend
    family (see :meth:`from_reports`); families absent from the table
    keep weight 1.0.  The model is a frozen dataclass: pass a
    replacement to :class:`Advisor` (or ``QueryEngine``) to override
    the economics globally.

    **The calibrated model is the default.**  A plain ``CostModel()``
    loads the checked-in measured weights (E11e's
    ``e11_family_weights.json``, shipped as package data) so every
    advisor ranks under measured economics out of the box.  Escape
    hatches: ``CostModel(calibration=None)`` is the pure analytic
    model, ``CostModel(calibration=path)`` loads a specific weights
    file, and the ``REPRO_CALIBRATION`` environment variable overrides
    the ``"auto"`` default process-wide (``off``/``0``/``none`` to
    disable, or a path).  Explicit ``family_weights`` always win over
    any calibration source.
    """

    space_weight: float = 1.0
    queries_per_build: float = 64.0
    block_bits: int = 1024
    fp_verify_bits: float = 512.0
    family_weights: tuple[tuple[str, float], ...] = ()
    calibration: str | None = "auto"

    def __post_init__(self) -> None:
        if self.family_weights:
            return  # explicit weights always govern
        path = self._calibration_path()
        if path is not None:
            object.__setattr__(
                self, "family_weights", _cached_weights(path)
            )

    def _calibration_path(self) -> str | None:
        source = self.calibration
        if source is None:
            return None
        if source == "auto":
            env = os.environ.get(CALIBRATION_ENV)
            if env is not None:
                if env.strip().lower() in ("", "off", "0", "none"):
                    return None
                return env  # an explicit env path must exist: loud I/O
            return (
                PACKAGED_WEIGHTS_PATH
                if os.path.exists(PACKAGED_WEIGHTS_PATH)
                else None
            )
        return source  # an explicit kwarg path must exist: loud I/O

    def family_weight(self, family: str) -> float:
        """The measured correction factor for one family (1.0 default)."""
        for name, weight in self.family_weights:
            if name == family:
                return weight
        return 1.0

    def score(self, spec: IndexSpec, stats: WorkloadStats) -> float:
        space = spec.cost.space_bits(stats.n, stats.sigma, stats.h0)
        query = spec.cost.query_cost(
            stats.n, stats.sigma, stats.h0, stats.expected_z
        )
        if not spec.exact:
            expected_fp = spec.cost.false_positive_rate * max(
                stats.n - stats.expected_z, 0
            )
            query += expected_fp * self.fp_verify_bits
        raw = self.space_weight * space + self.queries_per_build * query
        return self.family_weight(spec.family) * raw

    @classmethod
    def from_reports(
        cls,
        paths: Iterable[str],
        base: "CostModel | None" = None,
        **overrides,
    ) -> "CostModel":
        """Fit per-family weights from recorded benchmark reports.

        Scans each report JSON (the :class:`repro.bench.Report` format)
        for *calibration tables*: tables whose headers contain
        ``backend``, ``family``, ``est_bits`` and ``measured_bits``
        columns (``benchmarks/bench_e11_engine.py`` emits one per run).
        The weight of a family is the *median* of its backends'
        measured/estimated ratios — a single backend with a
        pathological estimator must not drag down the correction
        applied to its accurate siblings — so families whose analytic
        estimators flatter them get proportionally penalized the next
        time the advisor ranks them.

        ``base`` supplies the remaining weights (a default model when
        omitted); keyword overrides pass through to :func:`replace`.
        """
        ratios_by_family: dict[str, list[float]] = {}
        for path in paths:
            with open(path) as f:
                data = json.load(f)
            for entry in data.get("entries", []):
                if entry.get("kind") != "table":
                    continue
                headers = [str(h).strip().lower() for h in entry["headers"]]
                needed = ("backend", "family", "est_bits", "measured_bits")
                if not all(col in headers for col in needed):
                    continue
                fam_i = headers.index("family")
                est_i = headers.index("est_bits")
                meas_i = headers.index("measured_bits")
                for row in entry["rows"]:
                    family = str(row[fam_i])
                    est = _parse_report_number(row[est_i])
                    measured = _parse_report_number(row[meas_i])
                    if est <= 0 or measured <= 0:
                        continue
                    ratios_by_family.setdefault(family, []).append(
                        measured / est
                    )
        weights = tuple(
            sorted(
                (family, statistics.median(ratios))
                for family, ratios in ratios_by_family.items()
            )
        )
        model = base if base is not None else cls()
        return replace(model, family_weights=weights, **overrides)

    @classmethod
    def load_calibrated(
        cls,
        path: str,
        base: "CostModel | None" = None,
        **overrides,
    ) -> "CostModel":
        """Load measured per-family weights back into a model.

        The feedback half of the calibration loop: E11e
        (``benchmarks/bench_e11_engine.py``) emits both a full report
        (parsed by :meth:`from_reports`) and a compact weights file
        ``{"family_weights": {family: weight, ...}}`` — this accepts
        either, so a deployment can hand ``Table``/``ShardedTable`` a
        ``CostModel.load_calibrated(path)`` and serve under measured
        economics instead of the analytic defaults.
        """
        with open(path) as f:
            data = json.load(f)
        if isinstance(data, dict) and "family_weights" in data:
            model = base if base is not None else cls()
            return replace(
                model,
                family_weights=_parse_weights_file(path),
                **overrides,
            )
        return cls.from_reports([path], base=base, **overrides)


class Advisor:
    """Ranks registered backends for a workload and picks the cheapest."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        candidates: Sequence[IndexSpec] | None = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._candidates = (
            tuple(candidates) if candidates is not None else None
        )

    def _pool(self) -> tuple[IndexSpec, ...]:
        if self._candidates is not None:
            return self._candidates
        return registry.all_specs()

    def rank(self, stats: WorkloadStats) -> list[tuple[IndexSpec, float]]:
        """Eligible backends with scores, cheapest first."""
        scored = [
            (spec, self.cost_model.score(spec, stats))
            for spec in self._pool()
            if spec.serves(stats.dynamism, stats.require_delete)
            and (spec.exact or not stats.require_exact)
        ]
        scored.sort(key=lambda pair: (pair[1], pair[0].name))
        return scored

    def pick(self, stats: WorkloadStats) -> IndexSpec:
        """The cheapest eligible backend for this workload."""
        ranked = self.rank(stats)
        if not ranked:
            raise InvalidParameterError(
                f"no registered index serves dynamism={stats.dynamism!r} "
                f"require_delete={stats.require_delete} "
                f"require_exact={stats.require_exact}"
            )
        return ranked[0][0]

    def explain(self, stats: WorkloadStats) -> str:
        """A human-readable ranking for this workload."""
        lines = [
            f"workload: n={stats.n} sigma={stats.sigma} "
            f"H0={stats.h0:.3f} dynamism={stats.dynamism} "
            f"sel={stats.expected_selectivity:g} "
            f"(expected z={stats.expected_z})"
        ]
        ranked = self.rank(stats)
        for rank, (spec, score) in enumerate(ranked, start=1):
            marker = "->" if rank == 1 else "  "
            lines.append(
                f"{marker} #{rank} {spec.name} [{spec.family}] "
                f"score={score:,.0f}  space: {spec.cost.space_bound}; "
                f"query: {spec.cost.query_bound}"
            )
        if not ranked:
            lines.append("   (no eligible backend)")
        return "\n".join(lines)
