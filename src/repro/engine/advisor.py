"""Backend selection from measured workload statistics.

The paper's message (§1.3) is that the right structure depends on the
column: low-cardinality attributes want bitmap variants, high-entropy
attributes want the entropy-bounded Theorem-2 structure, and update
patterns dictate the static/semidynamic/fully-dynamic axis.  The
advisor makes that choice explicit:

* :class:`WorkloadStats` measures a column (length, cardinality,
  ``H0`` via :mod:`repro.model.entropy`, update pattern, expected
  selectivity);
* :class:`CostModel` turns a registered backend's declared estimators
  into one comparable score — every weight is a constructor argument,
  so callers can re-balance space against query traffic or pin the
  block size;
* :class:`Advisor` filters the registry by hard requirements (dynamism,
  deletions, exactness) and returns the cheapest backend, with a
  ranked table available from :meth:`Advisor.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..errors import InvalidParameterError
from ..model.entropy import h0 as _h0
from . import registry
from .registry import IndexSpec


@dataclass(frozen=True)
class WorkloadStats:
    """What the advisor knows about one column's workload."""

    n: int
    sigma: int
    h0: float
    dynamism: str = "static"
    expected_selectivity: float = 0.1
    require_exact: bool = True
    require_delete: bool = False

    def __post_init__(self) -> None:
        if self.n < 0:
            raise InvalidParameterError("n must be >= 0")
        if self.sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        if not 0.0 < self.expected_selectivity <= 1.0:
            raise InvalidParameterError(
                "expected_selectivity must be in (0, 1]"
            )
        if self.dynamism not in registry.DYNAMISM_LEVELS:
            raise InvalidParameterError(
                f"dynamism must be one of {registry.DYNAMISM_LEVELS}, "
                f"got {self.dynamism!r}"
            )

    @property
    def expected_z(self) -> int:
        """Expected answer cardinality for one range query."""
        return max(1, round(self.expected_selectivity * self.n))

    @classmethod
    def measure(
        cls,
        codes: Sequence[int],
        sigma: int | None = None,
        **overrides,
    ) -> "WorkloadStats":
        """Measure a column of dense codes.

        ``sigma`` defaults to ``max(codes) + 1`` (the dense-alphabet
        convention); keyword overrides pass through to the constructor.
        """
        if sigma is None:
            sigma = (max(codes) + 1) if len(codes) else 1
        return cls(n=len(codes), sigma=sigma, h0=_h0(codes), **overrides)

    def with_(self, **overrides) -> "WorkloadStats":
        """A copy with some fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CostModel:
    """Weights turning a :class:`~repro.engine.registry.CostProfile`
    into one score.

    ``score = space_weight * space_bits
            + queries_per_build * query_cost(expected_z)``

    with both terms in bits; ``queries_per_build`` is how many range
    queries the column is expected to serve per (re)build — raise it
    for hot read paths, lower it for archival columns.  The model is a
    frozen dataclass: pass a replacement to :class:`Advisor` (or
    ``QueryEngine``) to override the economics globally.
    """

    space_weight: float = 1.0
    queries_per_build: float = 64.0
    block_bits: int = 1024

    def score(self, spec: IndexSpec, stats: WorkloadStats) -> float:
        space = spec.cost.space_bits(stats.n, stats.sigma, stats.h0)
        query = spec.cost.query_cost(
            stats.n, stats.sigma, stats.h0, stats.expected_z
        )
        return self.space_weight * space + self.queries_per_build * query


class Advisor:
    """Ranks registered backends for a workload and picks the cheapest."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        candidates: Sequence[IndexSpec] | None = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._candidates = (
            tuple(candidates) if candidates is not None else None
        )

    def _pool(self) -> tuple[IndexSpec, ...]:
        if self._candidates is not None:
            return self._candidates
        return registry.all_specs()

    def rank(self, stats: WorkloadStats) -> list[tuple[IndexSpec, float]]:
        """Eligible backends with scores, cheapest first."""
        scored = [
            (spec, self.cost_model.score(spec, stats))
            for spec in self._pool()
            if spec.serves(stats.dynamism, stats.require_delete)
            and (spec.exact or not stats.require_exact)
        ]
        scored.sort(key=lambda pair: (pair[1], pair[0].name))
        return scored

    def pick(self, stats: WorkloadStats) -> IndexSpec:
        """The cheapest eligible backend for this workload."""
        ranked = self.rank(stats)
        if not ranked:
            raise InvalidParameterError(
                f"no registered index serves dynamism={stats.dynamism!r} "
                f"require_delete={stats.require_delete} "
                f"require_exact={stats.require_exact}"
            )
        return ranked[0][0]

    def explain(self, stats: WorkloadStats) -> str:
        """A human-readable ranking for this workload."""
        lines = [
            f"workload: n={stats.n} sigma={stats.sigma} "
            f"H0={stats.h0:.3f} dynamism={stats.dynamism} "
            f"sel={stats.expected_selectivity:g} "
            f"(expected z={stats.expected_z})"
        ]
        ranked = self.rank(stats)
        for rank, (spec, score) in enumerate(ranked, start=1):
            marker = "->" if rank == 1 else "  "
            lines.append(
                f"{marker} #{rank} {spec.name} [{spec.family}] "
                f"score={score:,.0f}  space: {spec.cost.space_bound}; "
                f"query: {spec.cost.query_bound}"
            )
        if not ranked:
            lines.append("   (no eligible backend)")
        return "\n".join(lines)
