"""The index registry: every backend, one contract, declared costs.

Each :class:`IndexSpec` names one :class:`~repro.core.interface.\
SecondaryIndex` implementation from :mod:`repro.core` or
:mod:`repro.baselines` together with

* a uniform builder ``(codes, sigma) -> SecondaryIndex``;
* its *family* (``pagh-rao``, ``bitmap``, ``btree``, ``tree``) — the
  coarse taxonomy of §1.3;
* its *dynamism* level (``static`` < ``semidynamic`` <
  ``fully_dynamic``) and whether it supports deletions;
* whether answers are exact (Theorem 3's filters are the exception);
* a :class:`CostProfile`: the paper's stated space/query bounds as
  strings for ``explain()``, plus evaluable estimators the advisor's
  cost model scores.

The registry contract (also in README.md): a backend listed here must
(1) build from dense codes in ``[0, sigma)`` via ``spec.build``,
(2) answer ``range_query`` exactly like the brute-force oracle, and
(3) report ``space()``.  ``tests/test_conformance.py`` enforces (2)
for every entry, so registering a new backend buys it oracle coverage
for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..baselines import (
    BinnedBitmapIndex,
    BTreeSecondaryIndex,
    CompressedBitmapIndex,
    IntervalEncodedBitmapIndex,
    MultiResolutionBitmapIndex,
    RangeEncodedBitmapIndex,
    UncompressedBitmapIndex,
    WahBitmapIndex,
)
from ..core import (
    ApproximatePaghRaoIndex,
    AppendableIndex,
    BufferedAppendableIndex,
    DeletableIndex,
    DynamicSecondaryIndex,
    PaghRaoIndex,
    SecondaryIndex,
    UniformTreeIndex,
)
from ..errors import InvalidParameterError

Builder = Callable[[Sequence[int], int], SecondaryIndex]

#: Dynamism levels, weakest to strongest; a backend at level k serves
#: every workload requiring level <= k.
DYNAMISM_LEVELS = ("static", "semidynamic", "fully_dynamic")


def _lg(v: float) -> float:
    return math.log2(max(v, 2.0))


@dataclass(frozen=True)
class CostProfile:
    """Declared bounds (for humans) plus estimators (for the advisor).

    ``space_bits(n, sigma, h0)`` estimates the structure's footprint;
    ``query_cost(n, sigma, h0, z)`` estimates one range query answering
    ``z`` positions, in bits transferred (the I/O model's currency,
    divided by ``B`` downstream).  ``false_positive_rate`` is the
    per-position probability ``eps`` that an approximate (Theorem 3)
    answer admits a non-match — 0.0 for exact structures — which the
    cost model converts into base-data verification traffic.
    Estimators are deliberately coarse — they only need the *ordering*
    between backends right, and the cost model's weights are
    overridable when they are not.
    """

    space_bound: str
    query_bound: str
    space_bits: Callable[[int, int, float], float]
    query_cost: Callable[[int, int, float, int], float]
    false_positive_rate: float = 0.0


@dataclass(frozen=True)
class IndexSpec:
    """One registered backend and everything the advisor knows about it."""

    name: str
    family: str
    dynamism: str
    exact: bool
    build: Builder
    cost: CostProfile
    theorem: str | None = None
    supports_delete: bool = False

    @property
    def dynamism_level(self) -> int:
        return DYNAMISM_LEVELS.index(self.dynamism)

    def serves(self, required_dynamism: str, require_delete: bool = False) -> bool:
        """True when this backend can host the required update pattern."""
        if require_delete and not self.supports_delete:
            return False
        required = DYNAMISM_LEVELS.index(required_dynamism)
        return self.dynamism_level >= required


_REGISTRY: dict[str, IndexSpec] = {}


def register(spec: IndexSpec) -> IndexSpec:
    """Add a backend to the registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise InvalidParameterError(f"index {spec.name!r} already registered")
    if spec.dynamism not in DYNAMISM_LEVELS:
        raise InvalidParameterError(
            f"dynamism must be one of {DYNAMISM_LEVELS}, got {spec.dynamism!r}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> IndexSpec:
    """Look up one backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown index {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def all_specs() -> tuple[IndexSpec, ...]:
    """Every registered backend, in registration order."""
    return tuple(_REGISTRY.values())


def specs(
    family: str | None = None,
    dynamism: str | None = None,
    exact: bool | None = None,
) -> list[IndexSpec]:
    """Registered backends filtered by family / required dynamism / exactness."""
    out = []
    for spec in _REGISTRY.values():
        if family is not None and spec.family != family:
            continue
        if dynamism is not None and not spec.serves(dynamism):
            continue
        if exact is not None and spec.exact != exact:
            continue
        out.append(spec)
    return out


# ----------------------------------------------------------------------
# Cost estimators
#
# All in bits; n = string length, sigma = alphabet size, h0 = empirical
# entropy (bits/symbol), z = answer cardinality.  The output term
# z lg(n/z) is shared by every structure that emits compressed answers.
# ----------------------------------------------------------------------


def _output_bits(n: int, z: int) -> float:
    z = min(z, max(n - z, 0))
    if z <= 0 or n <= 0:
        return 1.0
    return z * _lg(n / z) + 2 * z


def _pagh_rao_space(n: int, sigma: int, h0: float) -> float:
    # Theorem 2: nH0 + O(n) payload + O(sigma lg^2 n) directory.
    return n * (h0 + 2.0) + sigma * _lg(n) ** 2


def _pagh_rao_query(n: int, sigma: int, h0: float, z: int) -> float:
    # O(z lg(n/z)/B + lg_b n + lg lg n) I/Os; directory descent charged
    # as lg n block touches.
    return _output_bits(n, z) + _lg(n) * 64


#: Operating false-positive rate assumed for Theorem-3 answers when the
#: advisor scores the approximate structure (callers pick their own eps
#: per query; this is the planning-time default).
APPROX_EPS = 1.0 / 16.0


def _pagh_rao_approx_query(n: int, sigma: int, h0: float, z: int) -> float:
    # Theorem 3: the filter representation is read in O(z lg(1/eps))
    # bits instead of z lg(n/z) — the whole point of approximation —
    # plus the same directory descent as Theorem 2.  The cost model
    # separately charges eps*(n-z) false-positive verifications.
    return z * _lg(1.0 / APPROX_EPS) + 2 * z + _lg(n) * 64


def _uniform_tree_space(n: int, sigma: int, h0: float) -> float:
    # Theorem 1: O(n lg^2 sigma) regardless of entropy.
    return n * max(_lg(sigma), 1.0) ** 2 + sigma * _lg(n)


def _bitmap_scan_query(n: int, sigma: int, h0: float, z: int) -> float:
    # One compressed bitmap per character in the range; a range of
    # width w decodes w bitmaps, each costing a directory touch on top
    # of the emitted positions.  Expected width for z matches under a
    # roughly uniform character distribution: w ~ z * sigma / n.
    width = max(1.0, z * sigma / max(n, 1))
    return _output_bits(n, z) + width * 64


@dataclass(frozen=True)
class _B:
    """Shorthand container so the table below stays readable."""

    name: str
    family: str
    dynamism: str
    build: Builder
    space_bound: str
    query_bound: str
    space_bits: Callable[[int, int, float], float]
    query_cost: Callable[[int, int, float, int], float]
    theorem: str | None = None
    exact: bool = True
    supports_delete: bool = False
    false_positive_rate: float = 0.0


_BUILTINS = [
    # ------------------------------------------------------ core (the paper)
    _B(
        "pagh-rao",
        "pagh-rao",
        "static",
        lambda codes, sigma: PaghRaoIndex(codes, sigma),
        "nH0 + O(n) + O(sigma lg^2 n)",
        "O(z lg(n/z)/B + lg_b n + lg lg n)",
        _pagh_rao_space,
        _pagh_rao_query,
        theorem="Theorem 2",
    ),
    _B(
        "uniform-tree",
        "tree",
        "static",
        lambda codes, sigma: UniformTreeIndex(codes, sigma),
        "O(n lg^2 sigma)",
        "O(z lg(n/z)/B + lg sigma)",
        _uniform_tree_space,
        lambda n, sigma, h0, z: _output_bits(n, z) + _lg(sigma) * 64,
        theorem="Theorem 1",
    ),
    _B(
        "pagh-rao-approx",
        "pagh-rao",
        "static",
        lambda codes, sigma: ApproximatePaghRaoIndex(codes, sigma),
        "nH0 + O(n) + hash directories",
        "O(z lg(1/eps)/B) approximate / Thm-2 exact",
        lambda n, sigma, h0: _pagh_rao_space(n, sigma, h0) * 1.25,
        _pagh_rao_approx_query,
        theorem="Theorem 3",
        exact=False,
        false_positive_rate=APPROX_EPS,
    ),
    _B(
        "appendable",
        "pagh-rao",
        "semidynamic",
        lambda codes, sigma: AppendableIndex(codes, sigma),
        "O(nH0 + n) with doubling rebuilds",
        "Thm-2 query; append O(lg n) amortized",
        lambda n, sigma, h0: _pagh_rao_space(n, sigma, h0) * 1.5,
        lambda n, sigma, h0, z: _pagh_rao_query(n, sigma, h0, z) * 1.2,
        theorem="Theorem 4 (semidynamic)",
    ),
    _B(
        "buffered-appendable",
        "pagh-rao",
        "semidynamic",
        lambda codes, sigma: BufferedAppendableIndex(codes, sigma),
        "Thm-4 + O(sigma lg n (B + lg n)) buffers",
        "Thm-2 query; append O(lg n / b) amortized",
        lambda n, sigma, h0: _pagh_rao_space(n, sigma, h0) * 1.5
        + sigma * _lg(n) * 64,
        lambda n, sigma, h0, z: _pagh_rao_query(n, sigma, h0, z) * 1.3,
        theorem="Theorem 5",
    ),
    _B(
        "fully-dynamic",
        "pagh-rao",
        "fully_dynamic",
        lambda codes, sigma: DynamicSecondaryIndex(codes, sigma),
        "O(nH0 + n) with global rebuilds",
        "Thm-2 query x O(1); change/append O(lg n) amortized",
        lambda n, sigma, h0: _pagh_rao_space(n, sigma, h0) * 2.5,
        lambda n, sigma, h0, z: _pagh_rao_query(n, sigma, h0, z) * 1.6,
        theorem="Theorem 7",
    ),
    _B(
        "deletable",
        "pagh-rao",
        "fully_dynamic",
        lambda codes, sigma: DeletableIndex(codes, sigma),
        "Thm-7 over Sigma+{inf} + deletion tracker",
        "Thm-7 query + deletion filter",
        lambda n, sigma, h0: _pagh_rao_space(n, sigma + 1, h0) * 2.5 + n,
        lambda n, sigma, h0, z: _pagh_rao_query(n, sigma, h0, z) * 1.8,
        theorem="Theorem 7 + deletions",
        supports_delete=True,
    ),
    # ------------------------------------------------------ baselines (§1.3)
    _B(
        "btree",
        "btree",
        "static",
        lambda codes, sigma: BTreeSecondaryIndex(codes, sigma),
        "O(n lg n) key/rid pairs",
        "O(lg_B n + z lg n / B)",
        lambda n, sigma, h0: n * (_lg(n) + _lg(sigma)) + sigma * _lg(n),
        lambda n, sigma, h0, z: z * _lg(n) + _lg(n) * 64,
    ),
    _B(
        "bitmap-gamma",
        "bitmap",
        "static",
        lambda codes, sigma: CompressedBitmapIndex(codes, sigma),
        "nH0 + O(n) (gamma-RLE per character)",
        "O(z lg(n/z)/B + w) for range width w",
        lambda n, sigma, h0: n * (h0 + 2.0) + sigma * _lg(n),
        _bitmap_scan_query,
    ),
    _B(
        "bitmap-plain",
        "bitmap",
        "static",
        lambda codes, sigma: UncompressedBitmapIndex(codes, sigma),
        "n * sigma verbatim bitmaps",
        "O(w n / B) for range width w",
        lambda n, sigma, h0: float(n) * sigma,
        # w raw bitmaps of n bits each are scanned end to end.
        lambda n, sigma, h0, z: max(1.0, z * sigma / max(n, 1)) * n,
    ),
    _B(
        "bitmap-binned",
        "bitmap",
        "static",
        lambda codes, sigma: BinnedBitmapIndex(codes, sigma),
        "~ n(H0(bins) + 2) + base-data probe bits",
        "covered bins + O(edge candidates) probes",
        lambda n, sigma, h0: n * (max(h0 - 3.0, 0.5) + 2.0) + sigma * _lg(n),
        # Two edge bins of ~ bin_width*n/sigma candidates, each verified
        # with a random-access base-data read (charged a partial block).
        lambda n, sigma, h0, z: _output_bits(n, z)
        + 2 * (8.0 * n / max(sigma, 1)) * 128,
    ),
    _B(
        "bitmap-multires",
        "bitmap",
        "static",
        lambda codes, sigma: MultiResolutionBitmapIndex(codes, sigma),
        "O(nH0 log_w sigma)",
        "O(z lg(n/z)/B + w log_w sigma)",
        lambda n, sigma, h0: n * (h0 + 2.0) * max(_lg(sigma) / 2.0, 1.0),
        lambda n, sigma, h0, z: _output_bits(n, z) + 4 * _lg(sigma) * 32,
    ),
    _B(
        "bitmap-range-encoded",
        "bitmap",
        "static",
        lambda codes, sigma: RangeEncodedBitmapIndex(codes, sigma),
        "O(n sigma) cumulative bitmaps",
        "<= 2 bitmap reads per query",
        lambda n, sigma, h0: float(n) * sigma / 2,
        # The two cumulative bitmaps each hold up to n positions.
        lambda n, sigma, h0, z: _output_bits(n, z) + 2.0 * n,
    ),
    _B(
        "bitmap-interval-encoded",
        "bitmap",
        "static",
        lambda codes, sigma: IntervalEncodedBitmapIndex(codes, sigma),
        "~ n sigma / 2 interval bitmaps",
        "<= 2 bitmap reads per query",
        lambda n, sigma, h0: float(n) * sigma / 2,
        lambda n, sigma, h0, z: _output_bits(n, z) + 2.0 * n,
    ),
    _B(
        "bitmap-wah",
        "bitmap",
        "static",
        lambda codes, sigma: WahBitmapIndex(codes, sigma),
        "word-aligned-hybrid RLE per character",
        "O(runs in range / B)",
        lambda n, sigma, h0: n * (h0 + 4.0) + sigma * _lg(n),
        _bitmap_scan_query,
    ),
]

for _b in _BUILTINS:
    register(
        IndexSpec(
            name=_b.name,
            family=_b.family,
            dynamism=_b.dynamism,
            exact=_b.exact,
            build=_b.build,
            cost=CostProfile(
                space_bound=_b.space_bound,
                query_bound=_b.query_bound,
                space_bits=_b.space_bits,
                query_cost=_b.query_cost,
                false_positive_rate=_b.false_positive_rate,
            ),
            theorem=_b.theorem,
            supports_delete=_b.supports_delete,
        )
    )
del _b
