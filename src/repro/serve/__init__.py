"""The asyncio serving tier: front-end coordination over clusters.

Two pieces, composable and independently usable:

* :class:`FrontEnd` — an asyncio coordinator that accepts concurrent
  read requests and multiplexes them onto one or more
  :class:`~repro.cluster.engine.ClusterEngine` s through a bounded
  worker-thread bridge, with single-flight coalescing (keyed by the
  normalized-plan fingerprint, fenced by the engines' mutation
  counters), reject-newest admission control with typed
  :class:`~repro.errors.Overloaded` / :class:`~repro.errors.\
RequestTimeout`, and per-outcome metrics.
* :class:`ReplicaSet` — up to N RAM-resident, version-fenced read
  replicas of the hottest shards, attached via
  :meth:`ClusterEngine.attach_replicas`, kept in sync by the same
  routed-delta stream the resident executor rides, and consulted by
  the scatter path after a shared-cache miss.

See ``README.md`` in this package for architecture, knobs, and
failure modes.
"""

from .frontend import FrontEnd
from .replicas import ReplicaSet

__all__ = ["FrontEnd", "ReplicaSet"]
