"""Hot-shard read replicas: RAM-resident twins consulted on cache miss.

A :class:`ReplicaSet` keeps up to ``capacity`` read-only replicas of a
cluster's hottest shards, built from the same picklable snapshots the
resident executor ships (:meth:`ClusterEngine._shard_payload`) and
kept in sync by the same routed-delta stream
(:meth:`ClusterEngine._ship_delta` / :meth:`_ship_retire`).  Two
deliberate divergences from a worker replica:

* the disk-latency model is forced to zero — a replica is a RAM copy,
  so serving from it is genuinely cheaper than the primary under any
  configured ``io_latency_s`` (``set_latency`` deltas are ignored for
  the same reason);
* every read is *version fenced*: the scatter path passes the
  primary column's current ``version`` and the replica answers only
  when its synced version matches exactly, so a replica can never
  serve a stale answer — at worst it abstains and the primary serves.

Synced versions are recorded from the primary *after* each applied
delta (the cluster mutates itself first, then ships), so the fence is
exact, not heuristic.  A delta that fails to apply drops the replica
rather than leaving it silently diverged.

Membership is heat-driven and explicit: :meth:`refresh` re-picks the
top-``capacity`` shards by combined primary update heat
(:meth:`ClusterEngine.shard_heat`) and replica read heat, retiring
and building to match.  The front end can drive this periodically
(``replica_refresh_every``); nothing rebuilds mid-scatter.

Locking: the set has one internal mutex — fetches arrive from
executor pool threads while deltas arrive from the coordinator.
:meth:`refresh` additionally takes the cluster's serve lock *first*
(cluster → replica order everywhere), so membership churn serializes
against scatters and updates without deadlock.
"""

from __future__ import annotations

import threading

from ..cluster.worker import ShardHost, evaluate_shard_fold
from ..errors import InvalidParameterError
from ..iomodel.stats import Snapshot
from ..obs.stats import ReplicaSetStats

__all__ = ["ReplicaSet"]


class ReplicaSet:
    """Up to ``capacity`` version-fenced RAM replicas of hot shards."""

    def __init__(self, capacity: int = 2, metrics=None) -> None:
        if capacity < 1:
            raise InvalidParameterError("ReplicaSet capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._host = ShardHost()
        self._cluster = None
        self._lock = threading.Lock()
        # uid -> {column: primary version at last applied sync}
        self._synced: dict[int, dict[str, int]] = {}
        # uid -> replica reads served (the set's own heat signal)
        self._reads: dict[int, int] = {}
        self.hits = 0
        self.stale = 0
        self.absent = 0
        self.builds = 0
        self.retires = 0
        self.refreshes = 0
        self.deltas = 0

    # -- lifecycle (driven by ClusterEngine.attach_replicas) -----------

    def bind(self, cluster) -> None:
        """Adopt a cluster and seed the initial hot set.

        Called by :meth:`ClusterEngine.attach_replicas` under the
        cluster's serve lock; seeding reuses :meth:`refresh`.
        """
        if self._cluster is not None:
            raise InvalidParameterError(
                "this ReplicaSet is already bound to a cluster"
            )
        self._cluster = cluster
        self.refresh()

    def unbind(self) -> None:
        """Drop every replica and release the cluster."""
        with self._lock:
            for uid in list(self._synced):
                self._retire_locked(uid)
            self._cluster = None

    def close(self) -> None:
        """Tear down: forwarded from :meth:`ClusterEngine.close`."""
        self.unbind()

    # -- the routed-delta stream (called under the cluster lock) -------

    def retire(self, uid: int) -> None:
        with self._lock:
            if uid in self._synced:
                self._retire_locked(uid)

    def _retire_locked(self, uid: int) -> None:
        self._host.retire(uid)
        self._synced.pop(uid, None)
        self._reads.pop(uid, None)
        self.retires += 1

    def on_delta(self, uid: int, delta: tuple) -> None:
        """Apply one routed delta to the replica, then re-fence.

        ``set_latency`` is ignored — replicas are RAM copies and never
        model disk latency.  A delta that fails to apply drops the
        replica: the primary stays authoritative, never the twin.
        """
        with self._lock:
            if uid not in self._synced:
                return
            if delta[0] == "set_latency":
                return
            try:
                self._host.delta(uid, delta)
            except Exception:
                self._retire_locked(uid)
                return
            self.deltas += 1
            self._resync_locked(uid)

    def _resync_locked(self, uid: int) -> None:
        # The cluster mutates itself before shipping, so the primary's
        # per-column versions read here are exactly what fetches will
        # fence against.
        shard_id = self._cluster.shard_uids.index(uid)
        shard = self._cluster.shards[shard_id]
        self._synced[uid] = {
            name: column.version for name, column in shard.columns.items()
        }

    def drop_caches(self) -> None:
        with self._lock:
            self._host.drop_caches_all()

    # -- the read path (called from scatter / executor threads) --------

    def fetch(
        self, uid: int, name: str, lo: int, hi: int, version: int
    ) -> "tuple[tuple, Snapshot] | None":
        """One version-fenced range read, or ``None`` to fall back."""
        with self._lock:
            synced = self._synced.get(uid)
            if synced is None:
                self.absent += 1
                self._count("serve.replica.absent")
                return None
            if synced.get(name) != version:
                self.stale += 1
                self._count("serve.replica.stale")
                return None
            engine = self._host.engines[uid]
            result, io = engine.query_measured(name, lo, hi)
            self._note_hit(uid)
            return result.positions(), io

    def fold(
        self, uid: int, payload: tuple, versions: dict[str, int]
    ) -> "tuple[object, Snapshot] | None":
        """One version-fenced aggregate fold, or ``None`` to fall back.

        ``versions`` carries the primary's current version for every
        column the shard-local plan touches; one mismatch abstains.
        """
        with self._lock:
            synced = self._synced.get(uid)
            if synced is None:
                self.absent += 1
                self._count("serve.replica.absent")
                return None
            for name, version in versions.items():
                if synced.get(name) != version:
                    self.stale += 1
                    self._count("serve.replica.stale")
                    return None
            engine = self._host.engines[uid]
            value, io = evaluate_shard_fold(engine, payload)
            self._note_hit(uid)
            return value, io

    def _note_hit(self, uid: int) -> None:
        self.hits += 1
        self._reads[uid] = self._reads.get(uid, 0) + 1
        self._count("serve.replica.hits")

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    # -- heat-driven membership ----------------------------------------

    def refresh(self) -> tuple[int, ...]:
        """Re-pick the top-``capacity`` shards by heat; returns them.

        Combined heat is the primary's update traffic
        (:meth:`ClusterEngine.shard_heat`) plus this set's own read
        counts; ties break toward the lowest shard position so the
        pick is deterministic.  Takes the cluster's serve lock first
        (then the set's own), so membership never churns mid-scatter.
        """
        cluster = self._cluster
        if cluster is None:
            raise InvalidParameterError(
                "refresh requires a bound cluster (attach_replicas first)"
            )
        with cluster._serve_lock:
            with self._lock:
                ranked = sorted(
                    range(cluster.num_shards),
                    key=lambda sid: (
                        -(
                            cluster.shard_heat(sid)
                            + self._reads.get(cluster.shard_uids[sid], 0)
                        ),
                        sid,
                    ),
                )
                want = [
                    cluster.shard_uids[sid]
                    for sid in ranked[: self.capacity]
                ]
                want_set = set(want)
                for uid in list(self._synced):
                    if uid not in want_set:
                        self._retire_locked(uid)
                for sid, uid in zip(ranked, want):
                    if uid not in self._synced:
                        if not self._rehydrate_locked(cluster, uid):
                            payload = cluster._shard_payload(sid)
                            cache_size, _latency, columns = payload
                            self._host.build(uid, (cache_size, 0.0, columns))
                        self._resync_locked(uid)
                        self.builds += 1
                self.refreshes += 1
                return tuple(want)

    def _rehydrate_locked(self, cluster, uid: int) -> bool:
        """Adopt a replica from its restore-time snapshot, if still valid.

        A just-restored cluster records each shard's snapshot path in
        ``_snap_sources`` — dropped again at the first delta or
        retirement touching the shard (:meth:`ClusterEngine.\
_ship_delta`), because a stale snapshot would wrongly pass the
        version fence ``_resync_locked`` records.  While the entry
        survives, the snapshot *is* the primary's state, and loading
        it (mmap, no index construction) beats a payload rebuild.
        """
        source = cluster._snap_sources.get(uid)
        if source is None:
            return False
        try:
            self._host.rehydrate(
                uid, source, cluster.cache_size, 0.0,
                {name: meta.epoch for name, meta in cluster.columns.items()},
            )
        except Exception:
            # Whatever went wrong (file gone, corrupt), the payload
            # build below reproduces the same state from memory.
            self._count("serve.replica.rehydrate_failed")
            return False
        self._count("serve.replica.rehydrated")
        return True

    # -- introspection --------------------------------------------------

    def stats(self) -> ReplicaSetStats:
        with self._lock:
            return ReplicaSetStats(
                capacity=self.capacity,
                resident=tuple(sorted(self._synced)),
                hits=self.hits,
                stale=self.stale,
                absent=self.absent,
                builds=self.builds,
                retires=self.retires,
                refreshes=self.refreshes,
                deltas=self.deltas,
            )
