"""The asyncio serving front end: coalesce, admit, bridge, gather.

:class:`FrontEnd` accepts concurrent read requests (``query`` /
``select`` / ``count`` / ``exists`` / ``count_by`` / ``topk`` over
:class:`~repro.query.Pred` ASTs) and multiplexes them onto one or
more :class:`~repro.cluster.engine.ClusterEngine` instances without
blocking the event loop — every engine call crosses a bounded
worker-thread bridge (``loop.run_in_executor``), and the engines'
internal serve lock makes the concurrent bridge calls safe.

Three independently switchable mechanisms, each metered:

**Single-flight coalescing** (``coalesce=True``).  Requests are keyed
by ``(op, plan fingerprint, extras, mutation fence)`` — the
fingerprint is the stable content hash of the *normalized* predicate
(:meth:`Pred.fingerprint`), so syntactically different but equivalent
predicates (``a & b`` vs ``b & a``) coalesce.  The first request
(the *leader*) executes; concurrent duplicates (*followers*) await
the leader's future, bypass admission, count into
``serve.coalesced`` and tag the leader's trace.  The key embeds every
engine's monotone ``mutations`` counter, so the coalescing window
closes at each write: a request arriving after an update can never be
served a pre-update answer.

**Admission control** (``max_inflight``).  Leaders occupy execution
slots; when all slots are taken new leaders are shed *immediately*
(reject-newest) with a typed :class:`~repro.errors.Overloaded`.
Followers ride their leader's slot.  A per-request deadline
(``timeout_s``, per-call overridable) turns into a typed
:class:`~repro.errors.RequestTimeout`; the leader's work is shielded,
so a follower's timeout or disconnect never cancels the shared
execution.

**Hot-shard read replicas** (``replica_refresh_every``).  Engines
with an attached :class:`~repro.serve.ReplicaSet` get their replica
membership refreshed every N completed executions, keeping the
replicated set tracking the observed heat.

Every admitted request resolves exactly once — a value or a typed
error — and ``drain()`` / ``close()`` settle all in-flight work, so
no future or trace span outlives the front end.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import InvalidParameterError, Overloaded, RequestTimeout
from ..obs.stats import FrontEndStats
from ..query import Pred

__all__ = ["FrontEnd"]


def _swallow(future) -> None:
    # Retrieve the terminal state so abandoned shared futures never
    # log "exception was never retrieved".
    if not future.cancelled():
        future.exception()


class _Entry:
    """One single-flight group: the shared future + the leader's trace."""

    __slots__ = ("future", "trace", "followers")

    def __init__(self, future, trace) -> None:
        self.future = future
        self.trace = trace
        self.followers = 0


class FrontEnd:
    """Asyncio coordinator over one or more ``ClusterEngine`` s."""

    def __init__(
        self,
        engines,
        *,
        max_inflight: int = 64,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        coalesce: bool = True,
        metrics=None,
        tracer=None,
        replica_refresh_every: int | None = None,
    ) -> None:
        engines = (
            [engines] if not isinstance(engines, (list, tuple))
            else list(engines)
        )
        if not engines:
            raise InvalidParameterError("FrontEnd requires >= 1 engine")
        if max_inflight < 1:
            raise InvalidParameterError("max_inflight must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise InvalidParameterError("timeout_s must be > 0")
        if replica_refresh_every is not None and replica_refresh_every < 1:
            raise InvalidParameterError(
                "replica_refresh_every must be >= 1"
            )
        self.engines = engines
        self.max_inflight = max_inflight
        self.timeout_s = timeout_s
        self.coalesce = coalesce
        self.metrics = metrics
        self.tracer = tracer
        self.replica_refresh_every = replica_refresh_every
        self._pool = ThreadPoolExecutor(
            max_workers=(
                max_workers
                if max_workers is not None
                else min(8, 2 * len(engines) + 2)
            ),
            thread_name_prefix="repro-serve",
        )
        self._singleflight: dict[tuple, _Entry] = {}
        self._tasks: set[asyncio.Task] = set()
        self._engine_load = [0] * len(engines)
        self._since_refresh = 0
        self._closed = False
        self.requests = 0
        self.admitted = 0
        self.completed = 0
        self.coalesced = 0
        self.shed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.errors = 0
        self.inflight = 0
        self.inflight_peak = 0

    # -- public ops ------------------------------------------------------

    async def query(self, pred: Pred, *, timeout_s: float | None = None):
        """A predicate scatter: the engine's ``RangeResult`` answer."""
        return await self._request(
            "query", pred, (), lambda e: e.query(pred), timeout_s
        )

    async def select(self, pred: Pred, *, timeout_s: float | None = None):
        """Matching global RIDs, materialized."""
        return await self._request(
            "select", pred, (), lambda e: e.select(pred), timeout_s
        )

    async def count(self, pred: Pred, *, timeout_s: float | None = None):
        return await self._request(
            "count", pred, (), lambda e: e.count(pred), timeout_s
        )

    async def exists(self, pred: Pred, *, timeout_s: float | None = None):
        return await self._request(
            "exists", pred, (), lambda e: e.exists(pred), timeout_s
        )

    async def count_by(
        self,
        group: str,
        pred: "Pred | None" = None,
        *,
        timeout_s: float | None = None,
    ):
        return await self._request(
            "count_by",
            pred,
            (group,),
            lambda e: e.count_by(group, pred),
            timeout_s,
        )

    async def topk(
        self,
        group: str,
        pred: "Pred | None" = None,
        k: int = 10,
        *,
        timeout_s: float | None = None,
    ):
        return await self._request(
            "topk",
            pred,
            (group, k),
            lambda e: e.topk(group, pred, k),
            timeout_s,
        )

    # -- the request path ------------------------------------------------

    def _key(self, op: str, pred: "Pred | None", extra: tuple):
        if not self.coalesce:
            return None
        engine = self.engines[0]
        fingerprint = (
            pred.fingerprint(
                lambda name: engine._meta(name).sigma,
                epoch_of=lambda name: engine._meta(name).epoch,
            )
            if pred is not None
            else None
        )
        # The mutation fence: any write to any engine changes the key,
        # so coalescing never spans a visible state change.
        fence = tuple(e.mutations for e in self.engines)
        return (op, fingerprint, extra, fence)

    async def _request(self, op, pred, extra, call, timeout_s):
        if self._closed:
            raise InvalidParameterError("this FrontEnd is closed")
        self.requests += 1
        self._count("serve.requests")
        loop = asyncio.get_running_loop()
        # The key (and the coalesce lookup below) is computed
        # synchronously — no await — so every duplicate issued in one
        # event-loop tick deterministically joins the leader.
        key = self._key(op, pred, extra)
        if key is not None:
            entry = self._singleflight.get(key)
            if entry is not None:
                self.coalesced += 1
                entry.followers += 1
                self._count("serve.coalesced")
                if entry.trace is not None:
                    entry.trace.root.tags["coalesced"] = entry.followers
                return await self._await_result(op, entry.future, timeout_s)
        if self.inflight >= self.max_inflight:
            self.shed += 1
            self._count("serve.shed")
            raise Overloaded(self.inflight, self.max_inflight)
        self.inflight += 1
        self.inflight_peak = max(self.inflight_peak, self.inflight)
        self.admitted += 1
        self._count("serve.admitted")
        trace = (
            self.tracer.begin(f"serve.{op}", coalesce_key=key and key[1])
            if self.tracer is not None
            else None
        )
        future = loop.create_future()
        future.add_done_callback(_swallow)
        if key is not None:
            self._singleflight[key] = _Entry(future, trace)
        task = loop.create_task(
            self._execute(key, future, trace, call)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await self._await_result(op, future, timeout_s)

    async def _execute(self, key, future, trace, call) -> None:
        loop = asyncio.get_running_loop()
        index = min(
            range(len(self.engines)), key=lambda i: (self._engine_load[i], i)
        )
        self._engine_load[index] += 1
        engine = self.engines[index]
        try:
            value = await loop.run_in_executor(
                self._pool, lambda: call(engine)
            )
            error = None
        except BaseException as exc:  # typed errors ride the future
            value, error = None, exc
        finally:
            self._engine_load[index] -= 1
            self.inflight -= 1
            # Pop the single-flight entry *before* resolving, so a
            # request arriving after resolution starts a fresh flight
            # rather than adopting a settled one.
            if key is not None and self._singleflight.get(key) is not None:
                if self._singleflight[key].future is future:
                    del self._singleflight[key]
            if trace is not None:
                self.tracer.finish(trace)
        if error is not None:
            self.errors += 1
            self._count("serve.errors")
            future.set_exception(error)
        else:
            future.set_result(value)
            await self._maybe_refresh_replicas(loop)

    async def _await_result(self, op, future, timeout_s):
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        t0 = time.monotonic()
        try:
            # Shield: a caller's timeout or disconnect abandons *its*
            # await, never the shared execution other callers ride.
            if timeout is None:
                value = await asyncio.shield(future)
            else:
                value = await asyncio.wait_for(
                    asyncio.shield(future), timeout
                )
        except asyncio.TimeoutError:
            self.timeouts += 1
            self._count("serve.timeouts")
            raise RequestTimeout(op, timeout) from None
        except asyncio.CancelledError:
            self.cancelled += 1
            self._count("serve.cancelled")
            raise
        self.completed += 1
        self._count("serve.completed")
        if self.metrics is not None:
            self.metrics.observe("serve.latency_s", time.monotonic() - t0)
        return value

    async def _maybe_refresh_replicas(self, loop) -> None:
        if self.replica_refresh_every is None:
            return
        self._since_refresh += 1
        if self._since_refresh < self.replica_refresh_every:
            return
        self._since_refresh = 0
        for engine in self.engines:
            replicas = engine.replicas
            if replicas is not None:
                await loop.run_in_executor(self._pool, replicas.refresh)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    # -- durability ------------------------------------------------------

    def _engine_dir(self, directory: str, index: int) -> str:
        """Where engine ``index`` checkpoints: the directory itself for
        a single-engine front end, ``engine-<i>/`` subdirectories for a
        fleet (the layout :meth:`restore` scans)."""
        if len(self.engines) == 1:
            return directory
        return os.path.join(directory, f"engine-{index:02d}")

    async def checkpoint(self, directory: str, **kwargs):
        """Checkpoint every engine, off the event loop; returns infos.

        Each engine checkpoints under its own serve lock (queries to
        the *other* engines proceed; the checkpointing one pauses its
        own writes, not its mmap'd reads), bridged through the same
        worker pool the request path uses.
        """
        if self._closed:
            raise InvalidParameterError("this FrontEnd is closed")
        loop = asyncio.get_running_loop()
        infos = []
        for index, engine in enumerate(self.engines):
            target = self._engine_dir(directory, index)
            infos.append(
                await loop.run_in_executor(
                    self._pool,
                    lambda e=engine, t=target: e.checkpoint(t, **kwargs),
                )
            )
        return infos

    @classmethod
    def restore(
        cls,
        directory: str,
        *,
        restore_kwargs: "dict | None" = None,
        **front_kwargs,
    ) -> "FrontEnd":
        """Cold-start a front end from a :meth:`checkpoint` directory.

        A root-level ``CURRENT`` means one engine; otherwise every
        ``engine-*/`` subdirectory restores one engine each (sorted,
        so replica indexes are stable).  ``restore_kwargs`` forwards
        to :func:`repro.persist.restore_cluster` per engine —
        multi-engine fleets are read replicas of one logical dataset,
        so they share whatever executor/advisor is passed there —
        while ``front_kwargs`` configures the front end itself.
        """
        from ..cluster import ClusterEngine
        from ..persist import read_current

        restore_kwargs = dict(restore_kwargs or {})
        if read_current(directory) is not None:
            sources = [directory]
        else:
            sources = sorted(
                os.path.join(directory, name)
                for name in os.listdir(directory)
                if name.startswith("engine-")
                and os.path.isdir(os.path.join(directory, name))
            )
            if not sources:
                raise InvalidParameterError(
                    f"{directory!r} holds neither a checkpoint nor "
                    "engine-*/ subdirectories"
                )
        engines = []
        try:
            for source in sources:
                engines.append(
                    ClusterEngine.restore(source, **restore_kwargs)
                )
        except BaseException:
            for engine in engines:
                engine.close()
            raise
        return cls(engines, **front_kwargs)

    # -- lifecycle -------------------------------------------------------

    async def drain(self) -> None:
        """Settle every in-flight execution (results *and* errors)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain, then release the worker-thread bridge.

        Idempotent; new requests raise once closing starts.
        """
        if self._closed:
            return
        self._closed = True
        await self.drain()
        self._pool.shutdown(wait=True)

    # -- introspection ---------------------------------------------------

    def stats(self) -> FrontEndStats:
        return FrontEndStats(
            requests=self.requests,
            admitted=self.admitted,
            completed=self.completed,
            coalesced=self.coalesced,
            shed=self.shed,
            timeouts=self.timeouts,
            cancelled=self.cancelled,
            errors=self.errors,
            inflight=self.inflight,
            inflight_peak=self.inflight_peak,
            max_inflight=self.max_inflight,
        )
