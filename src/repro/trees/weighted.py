"""The pruned weight-balanced tree of §2.2.

The optimal structure replaces §2.1's complete binary tree over the
alphabet with a *weight-balanced* tree over the multiset of characters
occurring in ``x``: conceptually one leaf per occurrence, ordered
primarily by character and secondarily by position, built with
branching parameter ``c > 4`` so that a node ``i`` levels below the
root has weight ``Theta(n / c^i)``.  The tree is then *pruned*: a
maximal subtree whose leaves all carry the same character collapses
into a single (mono-character) leaf.  After pruning each character
contributes O(1) leaves per level, so the tree has ``O(sigma lg n)``
nodes.

This module builds that tree *statically* (a bottom-up rebuild is also
how the dynamic versions of §4 restore balance), computes the canonical
decomposition of an alphabet range into ``O(lg n)`` disjoint subtrees,
and resolves the *materialized frontier* — the nearest descendants that
carry explicitly-stored bitmaps (§2.2's space improvement keeps bitmaps
only on levels ``1, 2, 4, 8, ...`` and at the leaves).

Representation choice: instead of materializing ``n`` conceptual
leaves, nodes store half-open ranges ``[occ_lo, occ_hi)`` into the
occurrence array (all positions of ``x`` sorted by ``(character,
position)``).  A node's bitmap is exactly the sorted set of positions
in its range.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, Sequence

from ..errors import InvalidParameterError, QueryError

DEFAULT_BRANCHING = 8


class WNode:
    """One node of the pruned weight-balanced tree.

    Attributes
    ----------
    level:
        Depth from the root; the root is at level 1 (paper convention).
    char_lo, char_hi:
        Inclusive range of character codes covered by the subtree.
        Equal on mono-character leaves.
    occ_lo, occ_hi:
        Half-open range into the occurrence array.  ``weight`` is its
        length — the cardinality of the node's bitmap.
    children:
        Child nodes in left-to-right (character, position) order; empty
        for leaves.
    """

    __slots__ = (
        "level",
        "char_lo",
        "char_hi",
        "occ_lo",
        "occ_hi",
        "children",
        "parent",
        "node_id",
    )

    def __init__(
        self,
        level: int,
        char_lo: int,
        char_hi: int,
        occ_lo: int,
        occ_hi: int,
    ) -> None:
        self.level = level
        self.char_lo = char_lo
        self.char_hi = char_hi
        self.occ_lo = occ_lo
        self.occ_hi = occ_hi
        self.children: list["WNode"] = []
        self.parent: "WNode | None" = None
        self.node_id = -1

    @property
    def weight(self) -> int:
        """Number of occurrences below this node (the paper's weight)."""
        return self.occ_hi - self.occ_lo

    @property
    def is_leaf(self) -> bool:
        """True for pruned (mono-character) leaves."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"deg{len(self.children)}"
        return (
            f"WNode(id={self.node_id}, lvl={self.level}, "
            f"chars=[{self.char_lo},{self.char_hi}], w={self.weight}, {kind})"
        )


def materialized_level_set(height: int) -> frozenset[int]:
    """Levels ``1, 2, 4, 8, ...`` up to ``height`` (§2.2's O(lg h) levels)."""
    levels = set()
    j = 1
    while j <= height:
        levels.add(j)
        j *= 2
    levels.add(1)
    return frozenset(levels)


class WeightedTree:
    """The pruned weight-balanced tree over a string's character multiset."""

    def __init__(
        self,
        root: WNode,
        char_offsets: list[int],
        occ_positions: list[int],
        branching: int,
        sigma: int,
    ) -> None:
        self.root = root
        # char_offsets[c] = first occurrence-array index of character c;
        # char_offsets[sigma] = n.  Doubles as the prefix-count array A
        # of §2.1 (A[c] = char_offsets[c]).
        self.char_offsets = char_offsets
        self.occ_positions = occ_positions
        self.branching = branching
        self.sigma = sigma
        self.nodes: list[WNode] = []
        self.levels: list[list[WNode]] = []
        self.leaves: list[WNode] = []
        self._index_nodes()
        self.materialized_levels = materialized_level_set(self.height)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        x: Sequence[int],
        sigma: int,
        branching: int = DEFAULT_BRANCHING,
        split_heavy: bool = True,
    ) -> "WeightedTree":
        """Build the tree for string ``x`` over alphabet ``[0, sigma)``.

        The paper requires a constant branching parameter ``c > 4``.
        With ``split_heavy=False`` a character heavier than the
        per-child budget stays a single leaf instead of being split
        into chunks; the fully dynamic structure of §4.3 uses this so
        that each character maps to exactly one leaf (weight balance
        degrades gracefully for heavy characters — see DESIGN.md).
        """
        if branching <= 4:
            raise InvalidParameterError("branching parameter must exceed 4 (§2.2)")
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        counts = [0] * sigma
        for ch in x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
            counts[ch] += 1
        char_offsets = [0] * (sigma + 1)
        for c in range(sigma):
            char_offsets[c + 1] = char_offsets[c] + counts[c]
        # Occurrence array: positions sorted by (character, position).
        occ_positions = [0] * len(x)
        cursor = char_offsets[:-1].copy()
        for pos, ch in enumerate(x):
            occ_positions[cursor[ch]] = pos
            cursor[ch] += 1
        root = _build_subtree(char_offsets, 0, len(x), 1, branching, split_heavy)
        return cls(root, char_offsets, occ_positions, branching, sigma)

    def _index_nodes(self) -> None:
        """Assign BFS ids, collect per-level node lists and the leaves."""
        self.nodes = []
        self.levels = [[]]  # level 0 unused; levels are 1-based
        self.leaves = []
        queue = [self.root]
        while queue:
            next_queue: list[WNode] = []
            for node in queue:
                node.node_id = len(self.nodes)
                self.nodes.append(node)
                while len(self.levels) <= node.level:
                    self.levels.append([])
                self.levels[node.level].append(node)
                if node.is_leaf:
                    self.leaves.append(node)
                else:
                    next_queue.extend(node.children)
            queue = next_queue
        # Leaves in left-to-right order: BFS collects them per level; we
        # need (char, position) order instead.
        self.leaves.sort(key=lambda v: v.occ_lo)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """String length."""
        return self.char_offsets[-1]

    @property
    def height(self) -> int:
        """Deepest level (root = 1)."""
        return len(self.levels) - 1

    def node_positions(self, node: WNode) -> list[int]:
        """The sorted position set of a node (its bitmap's 1s)."""
        chunk = self.occ_positions[node.occ_lo : node.occ_hi]
        # Within one character the occurrence array is position-sorted;
        # across characters it is not, so sort the (short) slice.
        if node.char_lo != node.char_hi:
            chunk.sort()
        return chunk

    def char_count(self, char: int) -> int:
        """Occurrences of ``char`` (from the prefix array)."""
        return self.char_offsets[char + 1] - self.char_offsets[char]

    def range_count(self, char_lo: int, char_hi: int) -> int:
        """`|I[al;ar]|` from the prefix-count array (§2.1's array A)."""
        if char_lo < 0 or char_hi >= self.sigma or char_lo > char_hi:
            raise QueryError(f"invalid character range [{char_lo}, {char_hi}]")
        return self.char_offsets[char_hi + 1] - self.char_offsets[char_lo]

    def char_of_occ(self, occ_index: int) -> int:
        """Character of the ``occ_index``-th entry of the occurrence array."""
        return bisect.bisect_right(self.char_offsets, occ_index) - 1

    # ------------------------------------------------------------------
    # Query-side navigation
    # ------------------------------------------------------------------

    def canonical_cover(
        self, char_lo: int, char_hi: int
    ) -> tuple[list[WNode], list[WNode]]:
        """Decompose ``[char_lo, char_hi]`` into canonical subtrees.

        Returns ``(canonical, visited)``: the maximal nodes whose
        character range lies inside the query (their position sets
        partition the answer), and the straddling nodes expanded along
        the way (the two root-to-boundary paths, whose directory blocks
        a query must touch).  The paper shows there are O(1) canonical
        nodes per level, hence O(lg n) in total.
        """
        if char_lo < 0 or char_hi >= self.sigma or char_lo > char_hi:
            raise QueryError(f"invalid character range [{char_lo}, {char_hi}]")
        canonical: list[WNode] = []
        visited: list[WNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.char_lo > char_hi or node.char_hi < char_lo:
                continue
            if char_lo <= node.char_lo and node.char_hi <= char_hi:
                canonical.append(node)
                continue
            # A straddling node is never a leaf: a leaf's range is a
            # single character, which cannot partially overlap a range.
            visited.append(node)
            stack.extend(reversed(node.children))
        canonical.sort(key=lambda v: v.occ_lo)
        return canonical, visited

    def materialized_frontier(
        self, node: WNode, is_materialized: Callable[[WNode], bool] | None = None
    ) -> tuple[list[WNode], list[WNode]]:
        """Nearest materialized descendants of ``node`` (§2.2 queries).

        Returns ``(frontier, skipped)``: the materialized nodes whose
        bitmaps together represent ``node``'s position set, in
        left-to-right order, and the non-materialized internal nodes
        between ``node`` and the frontier (Theorem 5 queries must read
        the buffers of those).  If ``node`` itself is materialized the
        frontier is ``[node]``.
        """
        if is_materialized is None:
            mat = self.materialized_levels

            def is_materialized(v: WNode) -> bool:
                return v.is_leaf or v.level in mat

        frontier: list[WNode] = []
        skipped: list[WNode] = []
        stack = [node]
        while stack:
            v = stack.pop()
            if is_materialized(v):
                frontier.append(v)
            else:
                skipped.append(v)
                stack.extend(reversed(v.children))
        frontier.sort(key=lambda v: v.occ_lo)
        return frontier, skipped

    def iter_nodes(self) -> Iterator[WNode]:
        """All nodes in BFS (level) order."""
        return iter(self.nodes)

    def leaf_for_char_last(self, char: int) -> WNode:
        """The leaf holding the *last* occurrence chunk of ``char``.

        Appends of ``char`` land here (§4.1 keeps per-character pointer
        arrays for exactly this purpose).
        """
        end = self.char_offsets[char + 1]
        if end == self.char_offsets[char]:
            raise QueryError(f"character {char} does not occur")
        # The leaf containing occurrence index end-1.
        node = self.root
        while not node.is_leaf:
            for child in node.children:
                if child.occ_lo <= end - 1 < child.occ_hi:
                    node = child
                    break
            else:  # pragma: no cover - structural invariant
                raise QueryError("occurrence index not covered by any child")
        return node

    def path_to(self, node: WNode) -> list[WNode]:
        """Root-to-node path, inclusive."""
        path = []
        v: WNode | None = node
        while v is not None:
            path.append(v)
            v = v.parent
        path.reverse()
        return path

    def check_invariants(self) -> None:
        """Validate structural invariants; raises ``AssertionError``.

        Used by the property-based tests:

        * children partition the parent's occurrence range, in order;
        * character ranges are consistent and ordered;
        * leaves are mono-character (pruning happened);
        * no internal node has a single child;
        * node weights decay geometrically with depth (weight balance):
          a node at level ``i`` has weight <= n / (c/4)^(i-1).
        """
        n = self.n
        c = self.branching
        stack = [self.root]
        assert self.root.occ_lo == 0 and self.root.occ_hi == n
        while stack:
            v = stack.pop()
            assert 0 <= v.char_lo <= v.char_hi < self.sigma
            if v.is_leaf:
                assert v.char_lo == v.char_hi, "leaf spans several characters"
                assert v.weight > 0
            else:
                assert len(v.children) >= 2, "internal node with < 2 children"
                assert len(v.children) <= 4 * c + 2, "degree above 4c"
                cursor = v.occ_lo
                for ch in v.children:
                    assert ch.occ_lo == cursor, "children do not partition parent"
                    assert ch.parent is v
                    assert ch.level == v.level + 1
                    assert v.char_lo <= ch.char_lo <= ch.char_hi <= v.char_hi
                    cursor = ch.occ_hi
                assert cursor == v.occ_hi
                for a, b in zip(v.children, v.children[1:]):
                    assert a.char_hi <= b.char_lo, "children out of character order"
                stack.extend(v.children)
            if v.level > 1:
                bound = n / ((c / 4.0) ** (v.level - 1))
                assert v.weight <= max(1.0, 2.0 * bound), (
                    f"weight {v.weight} too large at level {v.level}"
                )


def _build_subtree(
    char_offsets: list[int],
    occ_lo: int,
    occ_hi: int,
    level: int,
    branching: int,
    split_heavy: bool = True,
) -> WNode:
    """Recursively build a weight-balanced subtree over an occurrence range."""
    char_lo = bisect.bisect_right(char_offsets, occ_lo) - 1
    char_hi = bisect.bisect_right(char_offsets, occ_hi - 1) - 1
    node = WNode(level, char_lo, char_hi, occ_lo, occ_hi)
    weight = occ_hi - occ_lo
    if char_lo == char_hi:
        return node  # pruned mono-character leaf
    target = -(-weight // branching)  # ceil(weight / c): per-child budget

    groups: list[tuple[int, int]] = []
    cur_start = occ_lo
    cur_weight = 0
    for ch in range(char_lo, char_hi + 1):
        start = max(occ_lo, char_offsets[ch])
        end = min(occ_hi, char_offsets[ch + 1])
        clen = end - start
        if clen == 0:
            continue
        if clen > target:
            # Heavy character: close the running group, then either
            # split the chunk into near-equal mono-character pieces of
            # <= target, or keep it whole (one leaf per character).
            if cur_weight:
                groups.append((cur_start, start))
            if split_heavy:
                npieces = -(-clen // target)
                piece = -(-clen // npieces)
                at = start
                while at < end:
                    piece_end = min(end, at + piece)
                    groups.append((at, piece_end))
                    at = piece_end
            else:
                groups.append((start, end))
            cur_start = end
            cur_weight = 0
        else:
            if cur_weight and cur_weight + clen > target:
                groups.append((cur_start, start))
                cur_start = start
                cur_weight = 0
            cur_weight += clen
    if cur_weight:
        groups.append((cur_start, occ_hi))

    if len(groups) == 1:
        # Cannot happen for multi-character nodes given target < weight,
        # but guard against a degenerate split producing a unary chain.
        lo, hi = groups[0]
        mid_char = (char_lo + char_hi) // 2
        split = min(max(char_offsets[mid_char + 1], lo + 1), hi - 1)
        groups = [(lo, split), (split, hi)]

    for lo, hi in groups:
        child = _build_subtree(char_offsets, lo, hi, level + 1, branching, split_heavy)
        child.parent = node
        node.children.append(child)
    return node
