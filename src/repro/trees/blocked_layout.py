"""Blocked on-disk layout of the tree directory (§2.2).

The paper lays the tree structure out "such that any root-to-leaf path
can be traversed using O(lg_b n) I/Os": the top ``Theta(lg b)`` levels
of a subtree share one block, with pointers to the subtrees hanging
below, recursively.  This module reproduces that layout: it assigns
every node a directory block, and a query charges one block transfer
per *distinct* block its descent touches (through the disk's cache and
counters).

Each node record holds its character range, weight, level, bitmap
extent pointer and child pointers — ``record_bits`` in total; a block
holds ``block_bits / record_bits`` records.  Fragments are carved by
breadth-first expansion from a subtree top until the block is full, so
a fragment always contains complete top levels of its subtree and a
descent through it advances ``Theta(lg b)`` levels per block.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..iomodel.disk import Disk
from .weighted import WeightedTree, WNode


def default_record_bits(n: int, sigma: int) -> int:
    """Directory record width: O(lg n) bits per node (§2.2).

    Char range (2 lg sigma) + occurrence range (2 lg n) + bitmap extent
    pointer (2 lg n) + child pointer (lg n) + bookkeeping.
    """
    lg_n = max(1, (max(n, 2) - 1).bit_length())
    lg_sigma = max(1, (max(sigma, 2) - 1).bit_length())
    return 2 * lg_sigma + 5 * lg_n + 16


class TreeLayout:
    """Maps tree nodes onto directory blocks and charges descent I/Os."""

    def __init__(
        self,
        tree: WeightedTree,
        disk: Disk,
        record_bits: int | None = None,
    ) -> None:
        if record_bits is None:
            record_bits = default_record_bits(tree.n, tree.sigma)
        if record_bits <= 0:
            raise InvalidParameterError("record_bits must be positive")
        self.tree = tree
        self.disk = disk
        self.record_bits = record_bits
        self.records_per_block = max(1, disk.block_bits // record_bits)
        self.block_of_node: dict[int, int] = {}
        self.num_blocks = 0
        self._base_block = 0
        self._pack()
        self._reserve()

    def _pack(self) -> None:
        """Carve the tree into connected fragments of <= records_per_block
        nodes by breadth-first expansion from each fragment top."""
        cap = self.records_per_block
        fragment_tops = [self.tree.root]
        block_id = 0
        while fragment_tops:
            next_tops: list[WNode] = []
            for top in fragment_tops:
                members: list[WNode] = []
                frontier = [top]
                while frontier and len(members) < cap:
                    take = min(cap - len(members), len(frontier))
                    layer, frontier = frontier[:take], frontier[take:]
                    members.extend(layer)
                    expansion: list[WNode] = []
                    for v in layer:
                        expansion.extend(v.children)
                    # Children of accepted nodes join the frontier after
                    # the current layer (BFS keeps fragments level-complete).
                    frontier = frontier + expansion
                for v in members:
                    self.block_of_node[v.node_id] = block_id
                # Whatever did not fit starts new fragments below.
                next_tops.extend(frontier)
                block_id += 1
            fragment_tops = next_tops
        self.num_blocks = block_id

    def _reserve(self) -> None:
        """Allocate the directory extent on disk (space accounting)."""
        first = self.disk.alloc(self.num_blocks * self.disk.block_bits, align_block=True)
        self._base_block = first // self.disk.block_bits

    @property
    def size_bits(self) -> int:
        """Directory footprint: whole blocks, as the paper stores them."""
        return self.num_blocks * self.disk.block_bits

    def touch_nodes(self, nodes: list[WNode], *, write: bool = False) -> None:
        """Charge the I/O for visiting ``nodes`` (deduplicating blocks)."""
        seen: set[int] = set()
        for v in nodes:
            bid = self.block_of_node[v.node_id]
            if bid not in seen:
                seen.add(bid)
                self.disk.touch_block(self._base_block + bid, write=write)

    def descent_blocks(self, node: WNode) -> int:
        """Number of distinct blocks on the root-to-node path."""
        blocks = {
            self.block_of_node[v.node_id] for v in self.tree.path_to(node)
        }
        return len(blocks)

    def max_descent_blocks(self) -> int:
        """Worst root-to-leaf path length in blocks (should be O(lg_b n))."""
        return max((self.descent_blocks(leaf) for leaf in self.tree.leaves), default=1)
