"""Tree substrates: weight-balanced trees, blocked layout, B-trees, buffers."""

from .blocked_layout import TreeLayout, default_record_bits
from .btree import BTree
from .buffers import NodeBuffer
from .weighted import (
    DEFAULT_BRANCHING,
    WeightedTree,
    WNode,
    materialized_level_set,
)

__all__ = [
    "BTree",
    "DEFAULT_BRANCHING",
    "NodeBuffer",
    "TreeLayout",
    "WNode",
    "WeightedTree",
    "default_record_bits",
    "materialized_level_set",
]
