"""B-bit node buffers for the buffered structures of §4.

Sections 4.1.1 and 4.2 attach a buffer of ``B`` bits to every internal
tree node: updates trickle down in batches of ``Theta(b)``, so each
update pays amortized ``O(lg(n)/b)`` I/Os instead of a full root-to-leaf
write per operation (the buffer-tree idea of Arge, reference [3]).

A buffer owns one disk block for space/IO accounting.  The pending
operations are kept as Python tuples alongside; their number is capped
by the block capacity ``block_bits // op_bits``, so the accounting is
identical to serializing them (the content is a fixed-width record
list; see DESIGN.md substitution note 4).

Flushing policy, per §4.1.1: when a buffer fills, pick the child that
is the destination of the most pending operations ("a child v of u on
which at least a (fixed) constant fraction of these updates have to be
performed" — with bounded degree, the busiest child qualifies) and move
exactly those operations down.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Sequence

from ..errors import InvalidParameterError
from ..iomodel.disk import Disk


class NodeBuffer:
    """A block-sized buffer of pending update operations."""

    __slots__ = ("disk", "block", "op_bits", "capacity", "ops")

    def __init__(self, disk: Disk, op_bits: int) -> None:
        if op_bits <= 0:
            raise InvalidParameterError("op_bits must be positive")
        if op_bits > disk.block_bits:
            raise InvalidParameterError("an operation must fit in one block")
        self.disk = disk
        self.op_bits = op_bits
        self.capacity = disk.block_bits // op_bits
        self.block = disk.alloc_block() // disk.block_bits
        self.ops: list[tuple] = []

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def is_full(self) -> bool:
        return len(self.ops) >= self.capacity

    @property
    def size_bits(self) -> int:
        """Footprint: the whole reserved block (§4.1.1's space term)."""
        return self.disk.block_bits

    def append(self, op: tuple, *, charge: bool = True) -> None:
        """Add one operation; charges one block write unless ``charge=False``.

        The root buffer is "always kept in the internal memory" (§4.1.1),
        so the structure passes ``charge=False`` for it.
        """
        if len(self.ops) >= self.capacity:
            raise InvalidParameterError("buffer overflow: flush before appending")
        self.ops.append(op)
        if charge:
            self.disk.touch_block(self.block, write=True)

    def extend(self, ops: Sequence[tuple], *, charge: bool = True) -> None:
        """Add a batch arriving from a parent flush: one write total."""
        if len(self.ops) + len(ops) > self.capacity:
            raise InvalidParameterError("buffer overflow: flush before extending")
        self.ops.extend(ops)
        if charge and ops:
            self.disk.touch_block(self.block, write=True)

    def read(self, *, charge: bool = True) -> list[tuple]:
        """Return the pending operations; charges one block read."""
        if charge:
            self.disk.touch_block(self.block, write=False)
        return list(self.ops)

    def take_for_child(
        self, child_of: Callable[[tuple], Hashable]
    ) -> tuple[Hashable, list[tuple]]:
        """Remove and return the ops of the busiest destination child.

        ``child_of`` maps an operation to a routing token identifying
        the child it must descend into.  Charges one write (the buffer
        block is rewritten without the removed batch).
        """
        if not self.ops:
            raise InvalidParameterError("cannot flush an empty buffer")
        by_child: dict[Hashable, list[tuple]] = defaultdict(list)
        for op in self.ops:
            by_child[child_of(op)].append(op)
        target = max(by_child, key=lambda k: len(by_child[k]))
        batch = by_child[target]
        batch_set = set(map(id, batch))
        self.ops = [op for op in self.ops if id(op) not in batch_set]
        self.disk.touch_block(self.block, write=True)
        return target, batch

    def clear(self, *, charge: bool = True) -> list[tuple]:
        """Empty the buffer (used by rebuilds); returns what it held."""
        ops, self.ops = self.ops, []
        if charge and ops:
            self.disk.touch_block(self.block, write=True)
        return ops
