"""An external-memory B-tree with subtree counts.

Two roles in the reproduction:

* the classic *B-tree secondary index* baseline the title positions the
  paper against (store ``(character, position)`` pairs; a range query
  walks the leaf level, reading ``Theta(lg n)`` bits per reported
  position);
* the B-tree over deleted positions of §4 ("maintain a B-tree over the
  deleted positions with subtree sizes maintained in all nodes"), whose
  rank/select operations translate between logical and physical
  positions.

Every node owns one disk block; visiting a node charges one block
transfer through the device's cache, and structural updates charge
writes along the path, so measured costs match the textbook
``O(lg_b n)`` descent plus ``O(z / b)`` leaf scan.

Keys are ``(key, payload)`` integer pairs with fixed bit widths; the
node capacity is derived from the block size exactly as the I/O model
prescribes (``b = Theta(B / lg n)`` entries per block).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

from ..errors import InvalidParameterError, UpdateError
from ..iomodel.disk import Disk

_POINTER_BITS = 48  # child pointer + subtree count share the record


class _Node:
    __slots__ = ("keys", "payloads", "children", "counts", "block", "next_leaf")

    def __init__(self, block: int) -> None:
        self.keys: list[int] = []
        self.payloads: list[int] = []
        self.children: list["_Node"] = []
        self.counts: list[int] = []
        self.block = block
        self.next_leaf: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def count(self) -> int:
        return len(self.keys) if self.is_leaf else sum(self.counts)


class BTree:
    """A counted external B-tree over integer keys.

    Parameters
    ----------
    disk:
        The block device; each node occupies one block.
    key_bits, payload_bits:
        Fixed widths of the stored fields; the leaf capacity is
        ``block_bits // (key_bits + payload_bits)``.
    """

    def __init__(
        self,
        disk: Disk,
        key_bits: int,
        payload_bits: int = 0,
    ) -> None:
        if key_bits <= 0 or payload_bits < 0:
            raise InvalidParameterError("field widths must be positive")
        self.disk = disk
        self.key_bits = key_bits
        self.payload_bits = payload_bits
        self.leaf_capacity = max(2, disk.block_bits // (key_bits + payload_bits))
        self.internal_capacity = max(
            2, disk.block_bits // (key_bits + _POINTER_BITS)
        )
        self._root = self._new_node()
        self._height = 1
        self._num_nodes = 1
        self._size = 0

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    def _new_node(self) -> _Node:
        block = self.disk.alloc_block() // self.disk.block_bits
        self._num_nodes = getattr(self, "_num_nodes", 0) + 1
        return _Node(block)

    def _read(self, node: _Node) -> None:
        self.disk.touch_block(node.block, write=False)

    def _write(self, node: _Node) -> None:
        self.disk.touch_block(node.block, write=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def size_bits(self) -> int:
        """Footprint: one block per node."""
        return self._num_nodes * self.disk.block_bits

    # ------------------------------------------------------------------
    # Bulk build
    # ------------------------------------------------------------------

    @classmethod
    def bulk_build(
        cls,
        disk: Disk,
        items: Sequence[tuple[int, int]],
        key_bits: int,
        payload_bits: int = 0,
        fill: float = 0.8,
    ) -> "BTree":
        """Build from ``(key, payload)`` pairs sorted by key.

        Leaves are packed to a ``fill`` fraction (0.8 by default, a
        conventional bulk-load fill factor), charging one write per
        node — the build cost of scanning the input once.
        """
        if not 0.1 <= fill <= 1.0:
            raise InvalidParameterError("fill must be in [0.1, 1.0]")
        tree = cls(disk, key_bits, payload_bits)
        if not items:
            return tree
        for a, b in zip(items, items[1:]):
            if b[0] < a[0]:
                raise InvalidParameterError("bulk_build requires key-sorted items")
        per_leaf = max(2, int(tree.leaf_capacity * fill))
        leaves: list[_Node] = []
        for start in range(0, len(items), per_leaf):
            node = tree._new_node()
            chunk = items[start : start + per_leaf]
            node.keys = [k for k, _ in chunk]
            node.payloads = [p for _, p in chunk]
            tree._write(node)
            if leaves:
                leaves[-1].next_leaf = node
            leaves.append(node)
        level: list[_Node] = leaves
        per_internal = max(2, int(tree.internal_capacity * fill))
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), per_internal):
                group = level[start : start + per_internal]
                parent = tree._new_node()
                parent.children = group
                # Routing key of a child: the max key in its subtree.
                parent.keys = [_max_key(child) for child in group]
                parent.counts = [child.count() for child in group]
                tree._write(parent)
                parents.append(parent)
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        tree._size = len(items)
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _descend_to_leaf(self, key: int) -> list[_Node]:
        """Path from root to the leaf whose range contains ``key``."""
        path = [self._root]
        node = self._root
        self._read(node)
        while not node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx == len(node.children):
                idx -= 1
            node = node.children[idx]
            self._read(node)
            path.append(node)
        return path

    def contains(self, key: int) -> bool:
        """Membership test in O(lg_b n) I/Os."""
        if self._size == 0:
            return False
        leaf = self._descend_to_leaf(key)[-1]
        idx = bisect.bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """All ``(key, payload)`` with ``lo <= key <= hi``, key-sorted.

        Costs the descent plus one read per leaf scanned — the B-tree
        extreme of §1.3: optimal I/O count in *blocks of explicit
        references*, i.e. Theta(lg n) bits per result.
        """
        if hi < lo:
            raise InvalidParameterError("inverted range")
        if self._size == 0:
            return []
        leaf = self._descend_to_leaf(lo)[-1]
        out: list[tuple[int, int]] = []
        node: _Node | None = leaf
        first = True
        while node is not None:
            if not first:
                self._read(node)
            first = False
            for i, k in enumerate(node.keys):
                if k < lo:
                    continue
                if k > hi:
                    return out
                out.append((k, node.payloads[i]))
            node = node.next_leaf
        return out

    def rank(self, key: int) -> int:
        """Number of stored keys ``<= key`` in O(lg_b n) I/Os."""
        if self._size == 0:
            return 0
        node = self._root
        self._read(node)
        acc = 0
        while not node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx == len(node.children):
                idx -= 1
            acc += sum(node.counts[:idx])
            node = node.children[idx]
            self._read(node)
        return acc + bisect.bisect_right(node.keys, key)

    def select(self, k: int) -> int:
        """The ``k``-th smallest key (0-based) in O(lg_b n) I/Os."""
        if k < 0 or k >= self._size:
            raise InvalidParameterError(f"select index {k} out of range")
        node = self._root
        self._read(node)
        while not node.is_leaf:
            for idx, cnt in enumerate(node.counts):
                if k < cnt:
                    node = node.children[idx]
                    break
                k -= cnt
            else:  # pragma: no cover - counts are maintained invariants
                raise UpdateError("subtree counts inconsistent")
            self._read(node)
        return node.keys[k]

    def keys(self) -> Iterator[int]:
        """All keys in sorted order (leaf-chain walk, counted)."""
        if self._size == 0:
            return
        node: _Node | None = self._descend_to_leaf(self._min_key())[-1]
        while node is not None:
            yield from node.keys
            node = node.next_leaf
            if node is not None:
                self._read(node)

    def _min_key(self) -> int:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, key: int, payload: int = 0) -> None:
        """Insert a key in amortized O(lg_b n) I/Os (path writes + splits)."""
        path = self._descend_to_leaf(key)
        leaf = path[-1]
        idx = bisect.bisect_left(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.payloads.insert(idx, payload)
        self._size += 1
        self._write(leaf)
        # Update counts (and routing keys for a new max) up the path.
        for parent, child in zip(path[-2::-1], path[:0:-1]):
            ci = parent.children.index(child)
            parent.counts[ci] += 1
            if key > parent.keys[ci]:
                parent.keys[ci] = key
            self._write(parent)
        self._split_up(path)

    def delete(self, key: int) -> bool:
        """Delete one instance of ``key``; returns whether it was present.

        Underflowed nodes are tolerated (classic lazy deletion); the
        deletion tracker of §4 performs global rebuilds instead, so
        rebalancing on delete is unnecessary here.
        """
        path = self._descend_to_leaf(key)
        leaf = path[-1]
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        leaf.keys.pop(idx)
        leaf.payloads.pop(idx)
        self._size -= 1
        self._write(leaf)
        for parent, child in zip(path[-2::-1], path[:0:-1]):
            ci = parent.children.index(child)
            parent.counts[ci] -= 1
            self._write(parent)
        return True

    def _split_up(self, path: list[_Node]) -> None:
        """Split overfull nodes bottom-up along ``path``."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            cap = self.leaf_capacity if node.is_leaf else self.internal_capacity
            if len(node.keys) <= cap:
                break
            mid = len(node.keys) // 2
            right = self._new_node()
            right.keys = node.keys[mid:]
            node.keys = node.keys[:mid]
            if node.is_leaf:
                right.payloads = node.payloads[mid:]
                node.payloads = node.payloads[:mid]
                right.next_leaf = node.next_leaf
                node.next_leaf = right
            else:
                right.children = node.children[mid:]
                node.children = node.children[:mid]
                right.counts = node.counts[mid:]
                node.counts = node.counts[:mid]
            self._write(node)
            self._write(right)
            if depth == 0:
                new_root = self._new_node()
                new_root.children = [node, right]
                new_root.keys = [_max_key(node), _max_key(right)]
                new_root.counts = [node.count(), right.count()]
                self._write(new_root)
                self._root = new_root
                self._height += 1
            else:
                parent = path[depth - 1]
                ci = parent.children.index(node)
                parent.children.insert(ci + 1, right)
                parent.keys[ci] = _max_key(node)
                parent.keys.insert(ci + 1, _max_key(right))
                total = parent.counts[ci]
                parent.counts[ci] = node.count()
                parent.counts.insert(ci + 1, total - node.count())
                self._write(parent)

    def check_invariants(self) -> None:
        """Validate ordering, counts and leaf chaining (for tests)."""
        collected: list[int] = []

        def walk(node: _Node) -> int:
            if node.is_leaf:
                assert node.keys == sorted(node.keys)
                collected.extend(node.keys)
                return len(node.keys)
            assert len(node.children) == len(node.keys) == len(node.counts)
            total = 0
            for i, child in enumerate(node.children):
                got = walk(child)
                assert got == node.counts[i], "stale subtree count"
                assert _max_key(child) <= node.keys[i]
                total += got
            return total

        total = walk(self._root)
        assert total == self._size
        assert collected == sorted(collected)


def _max_key(node: _Node) -> int:
    while not node.is_leaf:
        node = node.children[-1]
    return node.keys[-1]
