"""A file-backed :class:`~repro.cluster.cache.CacheStore`.

:class:`FileCacheStore` closes the PR 4 seam: the shared result cache
grew an external-protocol ``store`` hook (get/put/invalidate-by-prefix)
with only in-memory implementations behind it.  This one persists
decoded range results under the snapshot directory, so a restarted
cluster — or a freshly forked worker process — answers repeat queries
from files instead of re-decoding index pages.

Layout (content-addressed on the cache key)::

    <dir>/obj/<sha1(column)[:16]>/<shard uid>/<epoch>.<version>.<lo>.<hi>.entry

Each entry is ``[u32 crc32][u32 count][count x int64 positions]``.  A
short or CRC-failing entry is treated as a miss and unlinked — a cache
never has license to return wrong positions, so corruption degrades to
a decode, not an error.  Puts are atomic (tmp + rename) so readers in
other processes never observe a half-written entry.

The store is picklable by construction (``__reduce__`` re-opens the
directory), which is what lets the coordinator ship one to every
worker with ``ProcessExecutor.attach_cache_store``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import struct
import zlib
from array import array
from typing import Iterable, Sequence

from ..cluster.cache import CacheStore, SharedKey

_ENTRY_HEADER = struct.Struct("<II")
_SUFFIX = ".entry"


def _column_dir(root: str, column: str) -> str:
    digest = hashlib.sha1(column.encode("utf-8")).hexdigest()[:16]
    return os.path.join(root, "obj", digest)


class FileCacheStore(CacheStore):
    """Durable second-level cache over a directory of entry files."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(os.path.join(directory, "obj"), exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __reduce__(self):
        return (FileCacheStore, (self.directory,))

    # -- key layout -----------------------------------------------------

    def _path(self, key: SharedKey) -> str:
        column, shard_id, epoch, version, lo, hi = key
        name = f"{epoch}.{version}.{lo}.{hi}{_SUFFIX}"
        return os.path.join(
            _column_dir(self.directory, column), str(shard_id), name
        )

    # -- CacheStore protocol --------------------------------------------

    def get(self, key: SharedKey) -> "Sequence[int] | None":
        try:
            with open(self._path(key), "rb") as fh:
                blob = fh.read()
        except (FileNotFoundError, NotADirectoryError):
            self.misses += 1
            return None
        positions = self._decode(blob)
        if positions is None:
            # Corrupt or truncated: drop it and fall through to a decode.
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return positions

    def put(self, key: SharedKey, positions: Iterable[int]) -> None:
        body = array("q", positions)
        payload = _ENTRY_HEADER.pack(zlib.crc32(body.tobytes()), len(body))
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.write(body.tobytes())
        os.replace(tmp, path)

    def invalidate_prefix(self, prefix: tuple) -> int:
        """Drop every entry under ``prefix``; returns files removed.

        Prefixes mirror :class:`InMemorySharedCache.invalidate`: ``()``
        clears everything, ``(column,)`` one column's subtree, and
        ``(column, shard_id)`` a single shard's entries.
        """
        if not prefix:
            target = os.path.join(self.directory, "obj")
        elif len(prefix) == 1:
            target = _column_dir(self.directory, prefix[0])
        else:
            target = os.path.join(
                _column_dir(self.directory, prefix[0]), str(prefix[1])
            )
        removed = 0
        for _dirpath, _dirnames, filenames in os.walk(target):
            removed += sum(1 for f in filenames if f.endswith(_SUFFIX))
        shutil.rmtree(target, ignore_errors=True)
        if not prefix:
            os.makedirs(target, exist_ok=True)
        return removed

    def __contains__(self, key: SharedKey) -> bool:
        return os.path.exists(self._path(key))

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _decode(blob: bytes) -> "tuple[int, ...] | None":
        if len(blob) < _ENTRY_HEADER.size:
            return None
        crc32, count = _ENTRY_HEADER.unpack(blob[: _ENTRY_HEADER.size])
        body = blob[_ENTRY_HEADER.size :]
        if len(body) != count * 8 or zlib.crc32(body) != crc32:
            return None
        return tuple(array("q", body))

    def entry_count(self) -> int:
        total = 0
        for _dirpath, _dirnames, filenames in os.walk(
            os.path.join(self.directory, "obj")
        ):
            total += sum(1 for f in filenames if f.endswith(_SUFFIX))
        return total
