"""The snapshot store: one versioned, checksummed ``*.snap`` per shard.

A snapshot is the durable form of one shard's
:class:`~repro.engine.engine.QueryEngine` — every column's codes,
measured stats, backend verdict, version, and the *built index
structure itself* as flat device pages.  Restoring a snapshot is a
deserialization, never a rebuild: the advisor is not consulted, no
index is constructed, and the paper's structures come back as the
exact bits they were checkpointed as.

File layout (all little-endian, sections 8-byte aligned)::

    +--------------------------------------------------------------+
    | header: magic "RSNP", format u16, flags u16,                 |
    |         manifest_off u64, manifest_len u64, manifest_crc u32 |
    +--------------------------------------------------------------+
    | section 0 | section 1 | ...          (raw bytes, CRC'd)      |
    +--------------------------------------------------------------+
    | manifest: JSON                                               |
    +--------------------------------------------------------------+

The manifest carries a ``sections`` table of ``[offset, length,
crc32]`` triples; everything else references sections by index.  Per
column three kinds of section exist:

``codes``
    The column's logical string as a flat ``int64`` page (``None``
    holes encoded as ``-1``) — the same flattening the PR 8
    shared-memory transport uses.
``skeleton``
    The index structure pickled with every :class:`Disk` and
    :class:`IOStats` object *extracted* by reference
    (``persistent_id``), so the pickle holds only the pure-Python
    skeleton — directories, offsets, per-run metadata — while the
    device pages live in their own sections.
``disk data``
    One section per extracted device: its raw page bytes, with the
    geometry (``block_bits``, ``mem_blocks``, ``alloc_bits``,
    ``latency_s``) in the manifest.

Loading opens the file with ``mmap`` and rehydrates each device via
``Disk.from_state(..., copy=False)``: the page bytes stay a zero-copy
view into the mapping and fault in on demand, while the simulated
device keeps charging the exact same transfer counts.  Because
``index.stats`` and ``disk.stats`` may alias one :class:`IOStats`
(and do, for every registry backend), stats objects are extracted and
re-linked by identity too — the aliasing survives the round trip,
with counters restarting cold exactly like a shipped ``DiskState``.

Atomicity: writers emit to ``<path>.tmp``, ``fsync`` it, and
``rename`` over the destination, then ``fsync`` the directory — a
crash mid-write leaves either the old snapshot or none, never a torn
one.  Validation: the header checks magic/format, the manifest checks
its CRC, and ``verify=True`` (the default on restore paths) CRC32s
every section before anything is deserialized; any mismatch raises
:class:`repro.errors.CorruptSnapshot`.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import pickle
import struct
import zlib
from array import array
from dataclasses import asdict

from ..engine.advisor import WorkloadStats
from ..engine.engine import EngineColumn, QueryEngine
from ..engine.registry import get_spec
from ..errors import CorruptSnapshot, InvalidParameterError
from ..iomodel.disk import Disk, DiskState
from ..iomodel.stats import IOStats

MAGIC = b"RSNP"
FORMAT_VERSION = 1

#: magic, format version, flags, manifest offset, manifest length,
#: manifest CRC32.
_HEADER = struct.Struct("<4sHHQQI")

_PICKLE_PROTOCOL = 4


def _crc(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def fsync_dir(path: str) -> None:
    """Flush a directory entry (required after rename for durability)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def flatten_codes(codes) -> bytes:
    """Codes as one flat ``int64`` page; ``None`` holes become ``-1``."""
    return array(
        "q", (-1 if c is None else c for c in codes)
    ).tobytes()


def unflatten_codes(buf) -> list:
    """Invert :func:`flatten_codes` (accepts any buffer)."""
    flat = array("q")
    flat.frombytes(bytes(buf))
    return [None if c < 0 else c for c in flat]


# ----------------------------------------------------------------------
# Skeleton extraction: pickle the structure, section the pages
# ----------------------------------------------------------------------


class _SkeletonPickler(pickle.Pickler):
    """Pickles an index with devices and counters lifted out by id.

    Each first-seen :class:`Disk` is appended to :attr:`disks` and
    replaced by ``("disk", i)``; each first-seen :class:`IOStats` by
    ``("stats", j)``.  A disk's own ``stats`` object registers with
    the same table, so the common ``index.stats is disk.stats``
    aliasing round-trips by construction.
    """

    def __init__(self, buf) -> None:
        super().__init__(buf, protocol=_PICKLE_PROTOCOL)
        self.disks: list[Disk] = []
        self.disk_stats: list[int] = []  # disks[i].stats -> stats key
        self.stats: list[IOStats] = []
        self._disk_ids: dict[int, int] = {}
        self._stats_ids: dict[int, int] = {}

    def _register_stats(self, obj: IOStats) -> int:
        key = self._stats_ids.get(id(obj))
        if key is None:
            key = len(self.stats)
            self._stats_ids[id(obj)] = key
            self.stats.append(obj)
        return key

    def persistent_id(self, obj):
        if isinstance(obj, Disk):
            i = self._disk_ids.get(id(obj))
            if i is None:
                i = len(self.disks)
                self._disk_ids[id(obj)] = i
                self.disks.append(obj)
                self.disk_stats.append(self._register_stats(obj.stats))
            return ("disk", i)
        if isinstance(obj, IOStats):
            return ("stats", self._register_stats(obj))
        return None


class _SkeletonUnpickler(pickle.Unpickler):
    """Re-links extracted devices and counters while unpickling.

    ``states`` maps disk index to its rehydrated :class:`DiskState`;
    ``stats_keys`` maps disk index to its stats-table key.  Both
    caches are per-load, so however many references the skeleton
    holds, each identity is rebuilt exactly once — aliasing is
    restored order-independently.
    """

    def __init__(self, buf, states, stats_keys, lazy: bool) -> None:
        super().__init__(buf)
        self._states = states
        self._stats_keys = stats_keys
        self._lazy = lazy
        self._disks: dict[int, Disk] = {}
        self._stats: dict[int, IOStats] = {}

    def persistent_load(self, pid):
        try:
            kind, key = pid
        except Exception:
            raise CorruptSnapshot(f"unknown persistent id {pid!r}") from None
        if kind == "stats":
            stats = self._stats.get(key)
            if stats is None:
                stats = self._stats[key] = IOStats()
            return stats
        if kind == "disk":
            disk = self._disks.get(key)
            if disk is None:
                try:
                    state = self._states[key]
                    stats = self.persistent_load(
                        ("stats", self._stats_keys[key])
                    )
                except (IndexError, KeyError):
                    raise CorruptSnapshot(
                        f"skeleton references missing device {key}"
                    ) from None
                disk = Disk.from_state(state, stats=stats, copy=not self._lazy)
                self._disks[key] = disk
            return disk
        raise CorruptSnapshot(f"unknown persistent id kind {kind!r}")


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


class _SectionWriter:
    """Appends 8-aligned sections to an open file, tracking refs."""

    def __init__(self, fh) -> None:
        self._fh = fh
        self.sections: list[list[int]] = []

    def add(self, data) -> int:
        """Write one section; returns its index in the table."""
        fh = self._fh
        pad = (-fh.tell()) % 8
        if pad:
            fh.write(b"\x00" * pad)
        offset = fh.tell()
        view = memoryview(data)
        fh.write(view)
        self.sections.append([offset, len(view), _crc(view)])
        return len(self.sections) - 1


def _column_entry(column: EngineColumn, writer: _SectionWriter) -> dict:
    entry: dict = {
        "name": column.name,
        "backend": column.spec.name,
        "version": column.version,
        "stats": asdict(column.stats),
        "codes": writer.add(flatten_codes(column.codes)),
        "deferred": column.deferred,
        "skeleton": None,
        "disks": [],
    }
    if column.deferred:
        return entry
    buf = io.BytesIO()
    pickler = _SkeletonPickler(buf)
    pickler.dump(column._index)
    entry["skeleton"] = writer.add(buf.getvalue())
    entry["n_stats"] = len(pickler.stats)
    for disk, stats_key in zip(pickler.disks, pickler.disk_stats):
        state = disk.snapshot_state()
        entry["disks"].append(
            {
                "block_bits": state.block_bits,
                "mem_blocks": state.mem_blocks,
                "alloc_bits": state.alloc_bits,
                "latency_s": state.latency_s,
                "stats_key": stats_key,
                "data": writer.add(state.data),
            }
        )
    return entry


def write_shard_snapshot(
    path: str,
    engine: QueryEngine,
    *,
    io_latency_s: float = 0.0,
    cache_size: int | None = None,
    fsync: bool = True,
) -> dict:
    """Write one shard engine to ``path`` atomically; returns the manifest.

    Every column is captured as codes + stats + verdict + version,
    plus the built index's skeleton and device pages (deferred columns
    persist codes and verdict only — their restored twin stays
    deferred and builds lazily if ever touched locally).
    """
    if cache_size is None:
        cache_size = engine.cache.capacity
    manifest: dict = {
        "format": FORMAT_VERSION,
        "kind": "shard-engine",
        "cache_size": cache_size,
        "io_latency_s": io_latency_s,
        "columns": [],
        "sections": [],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(b"\x00" * _HEADER.size)
        writer = _SectionWriter(fh)
        for column in engine.columns.values():
            manifest["columns"].append(_column_entry(column, writer))
        manifest["sections"] = writer.sections
        pad = (-fh.tell()) % 8
        if pad:
            fh.write(b"\x00" * pad)
        manifest_off = fh.tell()
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
        fh.write(manifest_bytes)
        fh.seek(0)
        fh.write(
            _HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                0,
                manifest_off,
                len(manifest_bytes),
                _crc(manifest_bytes),
            )
        )
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_dir(os.path.dirname(os.path.abspath(path)))
    return manifest


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


class SnapshotFile:
    """An ``mmap``-backed reader over one ``*.snap`` file.

    The header and manifest are validated on open; ``verify=True``
    additionally CRC32s every section up front (one sequential pass
    over the mapping — still far cheaper than a rebuild), which is
    what turns a flipped bit anywhere in the file into a typed
    :class:`CorruptSnapshot` instead of a wrong answer.  Section
    views are zero-copy into the mapping; the mapping stays alive as
    long as any view (or rehydrated disk) references it.
    """

    def __init__(self, path: str, verify: bool = True) -> None:
        self.path = path
        try:
            with open(path, "rb") as fh:
                self._mm = mmap.mmap(
                    fh.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as exc:
            raise CorruptSnapshot(
                f"cannot open snapshot {path!r}: {exc}"
            ) from None
        view = memoryview(self._mm)
        if len(view) < _HEADER.size:
            raise CorruptSnapshot(f"{path!r} is shorter than its header")
        magic, fmt, _flags, man_off, man_len, man_crc = _HEADER.unpack(
            view[: _HEADER.size]
        )
        if magic != MAGIC:
            raise CorruptSnapshot(f"{path!r} has bad magic {magic!r}")
        if fmt != FORMAT_VERSION:
            raise CorruptSnapshot(
                f"{path!r} is format {fmt}; this build reads "
                f"{FORMAT_VERSION}"
            )
        if man_off + man_len > len(view):
            raise CorruptSnapshot(f"{path!r} manifest extends past EOF")
        manifest_bytes = view[man_off : man_off + man_len]
        if _crc(manifest_bytes) != man_crc:
            raise CorruptSnapshot(f"{path!r} manifest failed its checksum")
        try:
            self.manifest = json.loads(bytes(manifest_bytes))
        except ValueError:
            raise CorruptSnapshot(
                f"{path!r} manifest is not valid JSON"
            ) from None
        if verify:
            self.verify()

    def section(self, index: int) -> memoryview:
        """A zero-copy view of one section by table index."""
        try:
            offset, length, _crc32 = self.manifest["sections"][index]
        except (KeyError, IndexError, TypeError, ValueError):
            raise CorruptSnapshot(
                f"{self.path!r} has no section {index}"
            ) from None
        view = memoryview(self._mm)
        if offset + length > len(view):
            raise CorruptSnapshot(
                f"{self.path!r} section {index} extends past EOF"
            )
        return view[offset : offset + length]

    def close(self) -> None:
        """Release the mapping if nothing references it anymore.

        A no-op (deliberately) while rehydrated disks still hold
        zero-copy views into the mapping — their pages must stay
        valid; the mapping is reclaimed when the last view goes.
        """
        try:
            self._mm.close()
        except BufferError:
            pass

    def verify(self) -> None:
        """CRC32 every section; raises :class:`CorruptSnapshot` on any
        mismatch."""
        for index, (offset, length, crc32) in enumerate(
            self.manifest.get("sections", [])
        ):
            view = memoryview(self._mm)
            if offset + length > len(view):
                raise CorruptSnapshot(
                    f"{self.path!r} section {index} extends past EOF"
                )
            if _crc(view[offset : offset + length]) != crc32:
                raise CorruptSnapshot(
                    f"{self.path!r} section {index} failed its CRC32"
                )


def load_shard_engine(
    path: str,
    *,
    advisor=None,
    cache_size: int | None = None,
    defer: bool = False,
    verify: bool = True,
    lazy: bool = True,
) -> QueryEngine:
    """Rebuild one shard :class:`QueryEngine` from a snapshot file.

    No index is rebuilt and no advisor is consulted: each column comes
    back on the exact backend, version, and device bits it was
    checkpointed with.  ``lazy=True`` (the default) keeps device pages
    as zero-copy views into the mapping; ``defer=True`` skips skeleton
    deserialization entirely and restores control-plane columns only
    (codes + stats + verdict) — the mode a resident-executor
    coordinator wants, whose worker twins rehydrate the full index
    from the same file.
    """
    snap = SnapshotFile(path, verify=verify)
    manifest = snap.manifest
    if manifest.get("kind") != "shard-engine":
        raise CorruptSnapshot(
            f"{path!r} is a {manifest.get('kind')!r} snapshot, not a "
            "shard engine"
        )
    if cache_size is None:
        cache_size = manifest["cache_size"]
    engine = QueryEngine(advisor=advisor, cache_size=cache_size)
    for entry in manifest["columns"]:
        codes = unflatten_codes(snap.section(entry["codes"]))
        try:
            stats = WorkloadStats(**entry["stats"])
            spec = get_spec(entry["backend"])
        except (TypeError, InvalidParameterError) as exc:
            raise CorruptSnapshot(
                f"{path!r} column {entry.get('name')!r}: {exc}"
            ) from None
        index = None
        if not defer and not entry["deferred"]:
            states = []
            stats_keys = []
            for disk_entry in entry["disks"]:
                states.append(
                    DiskState(
                        block_bits=disk_entry["block_bits"],
                        mem_blocks=disk_entry["mem_blocks"],
                        data=snap.section(disk_entry["data"]),
                        alloc_bits=disk_entry["alloc_bits"],
                        latency_s=disk_entry["latency_s"],
                    )
                )
                stats_keys.append(disk_entry["stats_key"])
            buf = io.BytesIO(bytes(snap.section(entry["skeleton"])))
            try:
                index = _SkeletonUnpickler(
                    buf, states, stats_keys, lazy
                ).load()
            except CorruptSnapshot:
                raise
            except Exception as exc:
                raise CorruptSnapshot(
                    f"{path!r} column {entry['name']!r} skeleton failed "
                    f"to deserialize: {exc}"
                ) from None
        column = EngineColumn(entry["name"], codes, spec, index, stats)
        column.version = entry["version"]
        engine.columns[entry["name"]] = column
    return engine
