"""Cluster checkpoint, cold restore, and the background checkpoint policy.

A durable cluster directory looks like::

    <dir>/
      CURRENT             -> "ckpt-00000003"   (atomic pointer file)
      ckpt-00000003/
        MANIFEST.json     (checksummed cluster manifest)
        shard-0000.snap   (one snapshot per shard; see snapshot.py)
        shard-0001.snap
      wal/
        wal-...log        (delta log segments; see wal.py)

Checkpoints are **versioned, never in-place**: a new ``ckpt-<id>/`` is
fully written and fsynced before ``CURRENT`` flips to it (tmp + rename
+ directory fsync), so a crash at any byte leaves either the old
checkpoint or the new one — never a half-written hybrid.  Only after
``CURRENT`` is durable does the WAL rotate and the previous checkpoint
directory get reclaimed.

The manifest records ``applied_seq`` — the WAL sequence the snapshot
state already contains.  Recovery replays only records *after* it, so
a crash between the ``CURRENT`` flip and the WAL rotation (old records
still on disk) double-applies nothing.

Restore rebuilds the control plane from the manifest (shard plan,
per-column metadata, pins, epochs, drift counters), mmap-loads each
shard snapshot (zero-copy: index pages fault in on demand through the
simulated-disk accounting), replays the WAL tail through the normal
public operations — re-deriving any advisor-driven auto-splits and
auto-migrations exactly as the live cluster did, which is why derived
work is never logged — and only then attaches the log for new writes.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import zlib
from dataclasses import dataclass

from ..errors import (
    CorruptSnapshot,
    CorruptWAL,
    InvalidParameterError,
    PersistenceError,
)
from .snapshot import fsync_dir, load_shard_engine, write_shard_snapshot
from .wal import DeltaLog, wal_segments

MANIFEST_NAME = "MANIFEST.json"
CURRENT_NAME = "CURRENT"
WAL_DIRNAME = "wal"
_CKPT_PREFIX = "ckpt-"

CLUSTER_FORMAT = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """What one checkpoint wrote, as returned by ``checkpoint_cluster``."""

    checkpoint_id: int
    path: str
    applied_seq: int
    num_shards: int
    seconds: float


def _checkpoint_dirs(directory: str) -> list[str]:
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(n for n in names if n.startswith(_CKPT_PREFIX))


def _write_current(directory: str, ckpt_name: str, fsync: bool) -> None:
    tmp = os.path.join(directory, CURRENT_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(ckpt_name + "\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, os.path.join(directory, CURRENT_NAME))
    if fsync:
        fsync_dir(directory)


def read_current(directory: str) -> "str | None":
    """The active checkpoint directory name, or ``None`` when fresh."""
    try:
        with open(
            os.path.join(directory, CURRENT_NAME), encoding="utf-8"
        ) as fh:
            name = fh.read().strip()
    except FileNotFoundError:
        return None
    if not name or os.sep in name or not name.startswith(_CKPT_PREFIX):
        raise PersistenceError(
            f"CURRENT names an implausible checkpoint {name!r}"
        )
    return name


def write_manifest(path: str, manifest: dict, fsync: bool = True) -> None:
    """Write a checksummed JSON manifest atomically."""
    body = json.dumps(manifest, sort_keys=True)
    document = json.dumps(
        {"crc32": zlib.crc32(body.encode("utf-8")), "manifest": manifest},
        sort_keys=True,
        indent=1,
    )
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(document)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_manifest(path: str) -> dict:
    """Read and checksum-verify a manifest written by ``write_manifest``."""
    try:
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
    except FileNotFoundError:
        raise PersistenceError(f"no manifest at {path!r}") from None
    except (OSError, ValueError) as exc:
        raise CorruptSnapshot(f"unreadable manifest {path!r}: {exc}") from None
    try:
        declared = document["crc32"]
        manifest = document["manifest"]
    except (KeyError, TypeError):
        raise CorruptSnapshot(f"manifest {path!r} missing crc32 envelope")
    body = json.dumps(manifest, sort_keys=True)
    if zlib.crc32(body.encode("utf-8")) != declared:
        raise CorruptSnapshot(f"manifest {path!r} failed its checksum")
    return manifest


def current_manifest(directory: str) -> "dict | None":
    """The active checkpoint's verified manifest (``None`` when fresh)."""
    name = read_current(directory)
    if name is None:
        return None
    return read_manifest(os.path.join(directory, name, MANIFEST_NAME))


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------


def _shard_snap_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.snap"


def checkpoint_cluster(
    cluster,
    directory: str,
    *,
    fsync: bool = True,
    extra: "dict | None" = None,
) -> CheckpointInfo:
    """Write one complete, crash-safe checkpoint of a cluster.

    Runs under the cluster's ``_serve_lock`` — the same mutation fence
    the serving path takes — so the snapshot set is a consistent cut:
    no update lands between shard 0's snapshot and shard N's.  Under a
    resident executor the *workers* write their shards' snapshots
    (they hold the built indexes; the coordinator's are deferred),
    after pending delta batches are flushed.

    ``extra`` is an opaque JSON-serializable dict stored in the
    manifest for higher tiers (``ShardedTable`` keeps its value
    dictionaries there).
    """
    started = time.perf_counter()
    os.makedirs(directory, exist_ok=True)
    with cluster._serve_lock:
        previous = read_current(directory)
        previous_id = (
            int(previous[len(_CKPT_PREFIX):]) if previous is not None else 0
        )
        ckpt_id = previous_id + 1
        ckpt_name = f"{_CKPT_PREFIX}{ckpt_id:08d}"
        ckpt_dir = os.path.join(directory, ckpt_name)
        shutil.rmtree(ckpt_dir, ignore_errors=True)  # a torn predecessor
        os.makedirs(ckpt_dir)
        resident = cluster._resident
        snap_via_worker = resident and hasattr(cluster.executor, "snap_shard")
        if resident and hasattr(cluster.executor, "flush_deltas"):
            cluster.executor.flush_deltas()
        for shard_id in range(cluster.num_shards):
            path = os.path.join(ckpt_dir, _shard_snap_name(shard_id))
            if snap_via_worker:
                cluster.executor.snap_shard(
                    cluster.shard_uids[shard_id], path
                )
            else:
                write_shard_snapshot(
                    path, cluster.shards[shard_id], fsync=fsync
                )
        manifest = {
            "kind": "cluster",
            "format": CLUSTER_FORMAT,
            "applied_seq": cluster.wal.last_seq if cluster.wal else 0,
            "num_shards": cluster.num_shards,
            "cache_size": cluster.cache_size,
            "io_latency_s": cluster.io_latency_s,
            "target_shard_rows": cluster._target_shard_rows,
            "auto_split": cluster._auto_split,
            "min_shard_rows": cluster._min_shard_rows,
            "drift_window": cluster.drift_window,
            "heat_tolerance": cluster.heat_tolerance,
            "shards": [
                _shard_snap_name(s) for s in range(cluster.num_shards)
            ],
            "columns": {
                name: _meta_entry(meta)
                for name, meta in cluster.columns.items()
            },
            "extra": extra if extra is not None else {},
        }
        write_manifest(
            os.path.join(ckpt_dir, MANIFEST_NAME), manifest, fsync=fsync
        )
        if fsync:
            fsync_dir(ckpt_dir)
        # The commit point: after this rename+fsync the new checkpoint
        # is the one recovery will load, whatever happens next.
        _write_current(directory, ckpt_name, fsync)
        if cluster.wal is not None:
            cluster.wal.rotate()
        for stale in _checkpoint_dirs(directory):
            if stale != ckpt_name:
                shutil.rmtree(
                    os.path.join(directory, stale), ignore_errors=True
                )
        elapsed = time.perf_counter() - started
        if cluster.metrics is not None:
            cluster.metrics.counter("persist.checkpoint.count").inc()
            cluster.metrics.histogram("persist.checkpoint.seconds").observe(
                elapsed
            )
        return CheckpointInfo(
            checkpoint_id=ckpt_id,
            path=ckpt_dir,
            applied_seq=manifest["applied_seq"],
            num_shards=cluster.num_shards,
            seconds=elapsed,
        )


def _meta_entry(meta) -> dict:
    return {
        "sigma": meta.sigma,
        "dynamism": meta.dynamism,
        "expected_selectivity": meta.expected_selectivity,
        "require_exact": meta.require_exact,
        "require_delete": meta.require_delete,
        "backend": meta.backend,
        "shard_pins": {str(k): v for k, v in meta.shard_pins.items()},
        "epoch": meta.epoch,
        "updates_since_stat": {
            str(k): v for k, v in meta.updates_since_stat.items()
        },
        "domains": {str(k): v for k, v in meta.domains.items()},
    }


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def restore_cluster(
    directory: str,
    *,
    executor=None,
    advisor=None,
    cost_model=None,
    shared_cache=None,
    tracer=None,
    metrics=None,
    slow_log=None,
    prefetch_depth=None,
    wal_sync: str = "flush",
    attach_wal: bool = True,
    lazy: bool = True,
    verify: bool = True,
):
    """Cold-start a :class:`~repro.cluster.ClusterEngine` from disk.

    Loads the ``CURRENT`` checkpoint (shard snapshots are mmap'd, not
    materialized, when ``lazy``), rebuilds the cluster control plane
    from the manifest, replays the WAL tail past ``applied_seq``
    through the normal public operations, and — unless ``attach_wal``
    is disabled — leaves the log attached so new mutations keep being
    journaled.

    The advisor must match the one the WAL was written under: replay
    re-derives drift auto-migrations and auto-splits rather than
    reading them from the log, and a different cost model could reach
    different verdicts.  (The default advisor is deterministic, so the
    default configuration always round-trips.)
    """
    from ..cluster.engine import ClusterEngine

    name = read_current(directory)
    if name is None:
        raise PersistenceError(
            f"{directory!r} has no CURRENT checkpoint to restore from"
        )
    ckpt_dir = os.path.join(directory, name)
    manifest = read_manifest(os.path.join(ckpt_dir, MANIFEST_NAME))
    if manifest.get("kind") != "cluster":
        raise CorruptSnapshot(
            f"manifest kind {manifest.get('kind')!r} is not a cluster"
        )
    if manifest.get("format", 0) > CLUSTER_FORMAT:
        raise CorruptSnapshot(
            f"checkpoint format {manifest.get('format')} is newer than "
            f"this build ({CLUSTER_FORMAT})"
        )
    cluster = ClusterEngine(
        target_shard_rows=manifest["target_shard_rows"],
        executor=executor,
        shared_cache=shared_cache,
        advisor=advisor,
        cost_model=cost_model,
        cache_size=manifest["cache_size"],
        drift_window=manifest["drift_window"],
        auto_split=manifest["auto_split"],
        min_shard_rows=manifest["min_shard_rows"],
        prefetch_depth=prefetch_depth,
        heat_tolerance=manifest["heat_tolerance"],
        io_latency_s=manifest["io_latency_s"],
        tracer=tracer,
        metrics=metrics,
        slow_log=slow_log,
    )
    resident = cluster._resident
    snap_paths: list[str] = []
    for shard_id, snap_name in enumerate(manifest["shards"]):
        path = os.path.join(ckpt_dir, snap_name)
        snap_paths.append(path)
        engine = load_shard_engine(
            path,
            advisor=cluster.advisor,
            cache_size=cluster.cache_size,
            # Under a resident executor the worker replica serves every
            # query; the coordinator keeps control-plane state only.
            defer=resident,
            lazy=lazy,
            verify=verify,
        )
        if cluster.metrics is not None:
            for column in engine.columns.values():
                column.apply_metrics(cluster.metrics)
        cluster.shards.append(engine)
        cluster.shard_uids.append(cluster._new_uid())
    cluster.columns = {
        col_name: _meta_from_entry(col_name, entry)
        for col_name, entry in manifest["columns"].items()
    }
    if cluster.columns:
        cluster._refresh_plan()
    rehydrate_via_worker = resident and hasattr(
        cluster.executor, "rehydrate_shard"
    )
    for shard_id, path in enumerate(snap_paths):
        uid = cluster.shard_uids[shard_id]
        if rehydrate_via_worker:
            epochs = {
                col_name: meta.epoch
                for col_name, meta in cluster.columns.items()
            }
            cluster.executor.rehydrate_shard(
                uid, path, cluster.cache_size, cluster.io_latency_s, epochs
            )
        elif resident:
            cluster._ship_build(shard_id)
        # Replicas can rehydrate from the same snapshot — until the
        # first delta or retirement touches the shard, at which point
        # the source goes stale and is dropped (see _ship_delta).
        cluster._snap_sources[uid] = path
    applied_seq = manifest["applied_seq"]
    log, records = DeltaLog.open(
        os.path.join(directory, WAL_DIRNAME), sync=wal_sync
    )
    replayed = 0
    for seq, record in records:
        if seq <= applied_seq:
            continue  # fenced: already baked into the snapshot state
        _apply_record(cluster, record)
        replayed += 1
    if metrics is not None:
        metrics.counter("persist.restore.count").inc()
        metrics.counter("persist.restore.replayed_records").inc(replayed)
    if attach_wal:
        cluster.attach_wal(log)
    else:
        log.close()
    return cluster


def _meta_from_entry(name: str, entry: dict):
    from ..cluster.engine import ColumnMeta

    return ColumnMeta(
        name=name,
        sigma=entry["sigma"],
        dynamism=entry["dynamism"],
        expected_selectivity=entry["expected_selectivity"],
        require_exact=entry["require_exact"],
        require_delete=entry["require_delete"],
        backend=entry["backend"],
        shard_pins={int(k): v for k, v in entry["shard_pins"].items()},
        epoch=entry["epoch"],
        updates_since_stat={
            int(k): v for k, v in entry["updates_since_stat"].items()
        },
        domains={int(k): v for k, v in entry["domains"].items()},
    )


def _apply_record(cluster, record: tuple) -> None:
    """Replay one logical WAL record through the public operations.

    Going through the public API (not some private fast path) is the
    point: replay re-ships deltas to workers, re-invalidates caches,
    and re-derives auto-splits/auto-migrations exactly as the live
    cluster did when the record was first acknowledged.
    """
    try:
        op = record[0]
        if op == "append":
            cluster.append(record[1], record[2])
        elif op == "change":
            cluster.change(record[1], record[2], record[3])
        elif op == "delete":
            cluster.delete(record[1], record[2])
        elif op == "add_column":
            (_, name, codes, sigma, dynamism, selectivity, exact,
             delete, backend) = record
            cluster.add_column(
                name, codes, sigma, dynamism, selectivity, exact,
                delete, backend,
            )
        elif op == "drop_column":
            cluster.drop_column(record[1])
        elif op == "migrate":
            cluster.migrate(record[1], record[2], record[3], record[4])
        elif op == "unpin":
            cluster.unpin(record[1], record[2])
        elif op == "split":
            cluster.split_shard(record[1])
        elif op == "merge":
            cluster.merge_shards(record[1])
        elif op == "rebalance":
            cluster.rebalance(record[1])
        elif op == "set_latency":
            cluster.set_io_latency(record[1])
        else:
            raise CorruptWAL(f"unknown WAL record kind {op!r}")
    except CorruptWAL:
        raise
    except Exception as exc:
        raise CorruptWAL(
            f"WAL record {record[:2]!r} failed to replay: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Persistence bootstrap + background checkpoint policy
# ----------------------------------------------------------------------


def init_persistence(
    cluster,
    directory: str,
    *,
    sync: str = "flush",
    fsync: bool = True,
    extra: "dict | None" = None,
) -> CheckpointInfo:
    """Make a live cluster durable: baseline checkpoint + attached WAL.

    After this returns, every acknowledged mutation is journaled; a
    process that dies restores via :func:`restore_cluster` with no
    acknowledged write lost (up to the chosen ``sync`` mode's
    guarantee).
    """
    with cluster._serve_lock:
        if cluster.wal is not None:
            raise PersistenceError(
                "a WAL is already attached; checkpoint instead"
            )
        info = checkpoint_cluster(
            cluster, directory, fsync=fsync, extra=extra
        )
        log, _records = DeltaLog.open(
            os.path.join(directory, WAL_DIRNAME), sync=sync
        )
        cluster.attach_wal(log)
        return info


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the background checkpointer should write a new snapshot.

    ``every_mutations`` counts acknowledged answer-changing operations
    since the last checkpoint; ``every_wal_bytes`` bounds the current
    WAL segment (and so the replay work a crash could cost).  Either
    may be ``None``; a policy with both ``None`` never fires on its
    own (manual :meth:`Checkpointer.checkpoint_now` still works).
    """

    every_mutations: "int | None" = None
    every_wal_bytes: "int | None" = None

    def __post_init__(self) -> None:
        for field in ("every_mutations", "every_wal_bytes"):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise InvalidParameterError(f"{field} must be >= 1")


class Checkpointer:
    """Background checkpoint driver riding the cluster's WAL stream.

    Installs itself as ``cluster.wal_listener``; every acknowledged
    record checks the policy and, when due, wakes a daemon thread that
    checkpoints under the cluster's ``_serve_lock`` — the serving path
    observes a pause (measured by E20), never a torn cut.  Triggers
    are single-flight: records arriving while a checkpoint is running
    coalesce into at most one follow-up.
    """

    def __init__(
        self,
        cluster,
        directory: str,
        policy: CheckpointPolicy,
        *,
        fsync: bool = True,
        extra_fn=None,
    ) -> None:
        self.cluster = cluster
        self.directory = directory
        self.policy = policy
        self.fsync = fsync
        self._extra_fn = extra_fn
        self.checkpoints = 0
        self.last_info: "CheckpointInfo | None" = None
        self._mutations_at_last = cluster.mutations
        self._wake = threading.Event()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpointer", daemon=True
        )
        cluster.wal_listener = self._on_record
        self._thread.start()

    # The listener runs inside ``_log`` (under the serve lock): it
    # must only *decide*, never checkpoint inline.
    def _on_record(self, seq: int) -> None:
        if self.due():
            self._wake.set()

    def due(self) -> bool:
        policy, cluster = self.policy, self.cluster
        if (
            policy.every_mutations is not None
            and cluster.mutations - self._mutations_at_last
            >= policy.every_mutations
        ):
            return True
        if (
            policy.every_wal_bytes is not None
            and cluster.wal is not None
            and cluster.wal.segment_bytes >= policy.every_wal_bytes
        ):
            return True
        return False

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._stopped:
                return
            self._wake.clear()
            try:
                self.checkpoint_now()
            except Exception:
                if self.cluster.metrics is not None:
                    self.cluster.metrics.counter(
                        "persist.checkpoint.errors"
                    ).inc()

    def checkpoint_now(self) -> CheckpointInfo:
        extra = self._extra_fn() if self._extra_fn is not None else None
        info = checkpoint_cluster(
            self.cluster, self.directory, fsync=self.fsync, extra=extra
        )
        self._mutations_at_last = self.cluster.mutations
        self.checkpoints += 1
        self.last_info = info
        return info

    def close(self) -> None:
        """Detach from the cluster and stop the background thread."""
        self._stopped = True
        self._wake.set()
        self._thread.join(timeout=10)
        if self.cluster.wal_listener == self._on_record:
            self.cluster.wal_listener = None
