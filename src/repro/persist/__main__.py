"""``python -m repro.persist inspect <dir>`` — audit a durable directory.

Prints the ``CURRENT`` checkpoint's manifest (columns, backends,
per-section sizes and CRC verdicts, page counts) and the WAL's
segments (record counts, byte lengths, tail state) without modifying
anything on disk — unlike recovery, a torn WAL tail is *reported*,
never truncated, and a corrupt snapshot section is listed rather than
raised.  Exit status is 0 when every checksum verifies, 1 otherwise.
"""

from __future__ import annotations

import os
import pickle
import sys
import zlib

from ..errors import PersistenceError, ReproError
from .checkpoint import MANIFEST_NAME, WAL_DIRNAME, read_current, read_manifest
from .snapshot import SnapshotFile
from .wal import _FRAME, _SEG_HEADER, WAL_MAGIC, wal_segments


def _inspect_snapshot(path: str) -> bool:
    """Print one snapshot's audit; returns True when it verifies."""
    name = os.path.basename(path)
    try:
        snap = SnapshotFile(path)
    except ReproError as exc:
        print(f"  {name}: CORRUPT ({exc})")
        return False
    ok = True
    try:
        sections = snap.manifest["sections"]
        print(
            f"  {name}: {os.path.getsize(path)} bytes, "
            f"{len(snap.manifest['columns'])} column(s), "
            f"{len(sections)} section(s)"
        )
        for entry in snap.manifest["columns"]:
            n_pages = sum(
                (disk["alloc_bits"] + disk["block_bits"] - 1)
                // disk["block_bits"]
                for disk in entry["disks"]
            )
            kind = "deferred" if entry.get("deferred") else "indexed"
            print(
                f"    column {entry['name']!r}: backend={entry['backend']} "
                f"{kind}, {len(entry['disks'])} disk(s), "
                f"{n_pages} page(s)"
            )
        for index, (offset, length, crc) in enumerate(sections):
            try:
                actual = zlib.crc32(bytes(snap.section(index)))
                verdict = "OK" if actual == crc else "CRC MISMATCH"
            except ReproError as exc:
                verdict = f"UNREADABLE ({exc})"
            if verdict != "OK":
                ok = False
            print(
                f"    section {index}: offset={offset} "
                f"length={length} crc32={crc:#010x} {verdict}"
            )
    finally:
        snap.close()
    return ok


def _inspect_wal(directory: str) -> bool:
    """Read-only WAL audit; returns True when no corruption is found."""
    segments = wal_segments(directory)
    if not segments:
        print("  (no WAL segments)")
        return True
    ok = True
    for position, seg_name in enumerate(segments):
        last = position == len(segments) - 1
        path = os.path.join(directory, seg_name)
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < _SEG_HEADER.size:
            print(f"  {seg_name}: torn before its header ({len(data)} bytes)")
            ok = ok and last
            continue
        magic, fmt, _flags, base_seq = _SEG_HEADER.unpack(
            data[: _SEG_HEADER.size]
        )
        if magic != WAL_MAGIC:
            print(f"  {seg_name}: BAD MAGIC {magic!r}")
            ok = False
            continue
        records = 0
        tail = "clean"
        offset = _SEG_HEADER.size
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                tail = f"torn frame header at byte {offset}"
                break
            length, crc = _FRAME.unpack(data[offset : offset + _FRAME.size])
            start = offset + _FRAME.size
            if start + length > len(data):
                tail = f"torn payload at byte {offset}"
                break
            payload = data[start : start + length]
            if zlib.crc32(payload) != crc:
                if last and start + length == len(data):
                    tail = f"torn final frame at byte {offset}"
                else:
                    tail = f"CRC MISMATCH at record {base_seq + records}"
                    ok = False
                break
            try:
                pickle.loads(payload)
            except Exception:
                tail = f"undecodable record {base_seq + records}"
                ok = False
                break
            records += 1
            offset = start + length
        if tail.startswith("torn") and not last:
            ok = False
        print(
            f"  {seg_name}: base_seq={base_seq} format={fmt} "
            f"{records} record(s), {len(data)} bytes, tail: {tail}"
        )
    return ok


def inspect(directory: str) -> int:
    print(f"durable directory: {directory}")
    try:
        current = read_current(directory)
    except PersistenceError as exc:
        print(f"CURRENT: CORRUPT ({exc})")
        return 1
    ok = True
    if current is None:
        print("CURRENT: (none — no checkpoint yet)")
    else:
        print(f"CURRENT: {current}")
        ckpt_dir = os.path.join(directory, current)
        try:
            manifest = read_manifest(os.path.join(ckpt_dir, MANIFEST_NAME))
        except ReproError as exc:
            print(f"manifest: CORRUPT ({exc})")
            return 1
        print(
            f"manifest: kind={manifest['kind']} "
            f"format={manifest['format']} "
            f"applied_seq={manifest['applied_seq']} "
            f"shards={manifest['num_shards']}"
        )
        for col_name, entry in sorted(manifest["columns"].items()):
            pin = entry["backend"] if entry["backend"] else "(advisor)"
            print(
                f"  column {col_name!r}: sigma={entry['sigma']} "
                f"dynamism={entry['dynamism']} backend={pin} "
                f"epoch={entry['epoch'][:8]}…"
            )
        print("snapshots:")
        for snap_name in manifest["shards"]:
            ok = _inspect_snapshot(os.path.join(ckpt_dir, snap_name)) and ok
    print("write-ahead log:")
    ok = _inspect_wal(os.path.join(directory, WAL_DIRNAME)) and ok
    print("verdict:", "all checksums OK" if ok else "CORRUPTION DETECTED")
    return 0 if ok else 1


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2 or argv[0] != "inspect":
        print("usage: python -m repro.persist inspect <dir>", file=sys.stderr)
        return 2
    if not os.path.isdir(argv[1]):
        print(f"not a directory: {argv[1]}", file=sys.stderr)
        return 2
    return inspect(argv[1])


if __name__ == "__main__":
    raise SystemExit(main())
