"""The write-ahead delta log: logical cluster mutations, CRC-framed.

A :class:`DeltaLog` records every answer-changing *logical* operation
a cluster performs — the same routed-delta vocabulary the
``ProcessExecutor`` and ``ReplicaSet`` already speak, lifted to
cluster scope (global positions, column DDL, lifecycle ops).  Derived
work is deliberately **not** logged: drift auto-migrations and
auto-splits are deterministic functions of the logical stream given
the same advisor, so replay re-derives them — the log stays small and
a replayed cluster converges to the identical shard set and backend
verdicts.

Wire format, one file per segment::

    segment header:  magic "RWAL", format u16, flags u16, base_seq u64
    frame:           length u32 | crc32 u32 | payload (pickled record)
    frame:           ...

Record ``seq`` numbers are implicit — ``base_seq + frame index`` — so
they survive rotation without being stored.  Frames are written
length-and-CRC first... no: the *frame header* precedes the payload,
and the whole frame is flushed before the mutation is acknowledged
(``sync="fsync"`` additionally fsyncs per record for crash-of-OS
durability; the default ``"flush"`` survives process crashes).

Recovery semantics (:meth:`DeltaLog.open`):

* a **torn tail** — a frame header cut short, a declared length
  running past EOF, or a CRC mismatch on the very last frame of the
  last segment — is the expected residue of a crash mid-append; it is
  physically truncated away and recovery proceeds with every fully
  acknowledged record;
* a bad frame anywhere *else* — mid-file, or in a non-final
  segment — cannot be a torn write and means corruption; recovery
  refuses with :class:`repro.errors.CorruptWAL` rather than replay
  garbage or silently drop acknowledged history.

At checkpoint the log :meth:`rotate`\\ s: a fresh segment starts at
``last_seq + 1`` and the old segments are deleted only after the
checkpoint's ``CURRENT`` pointer is durable.  If the process dies
between those two steps the old records simply replay as no-ops —
the checkpoint manifest's ``applied_seq`` fences them out.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from ..errors import CorruptWAL, InvalidParameterError

WAL_MAGIC = b"RWAL"
WAL_FORMAT = 1

_SEG_HEADER = struct.Struct("<4sHHQ")
_FRAME = struct.Struct("<II")

_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".log"

_SYNC_MODES = ("none", "flush", "fsync")


def _segment_name(base_seq: int) -> str:
    return f"{_SEG_PREFIX}{base_seq:020d}{_SEG_SUFFIX}"


def wal_segments(directory: str) -> list[str]:
    """The directory's WAL segment filenames, oldest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        n
        for n in names
        if n.startswith(_SEG_PREFIX) and n.endswith(_SEG_SUFFIX)
    )


class DeltaLog:
    """An append-only, CRC-framed log of logical cluster records."""

    def __init__(self, directory: str, sync: str = "flush") -> None:
        if sync not in _SYNC_MODES:
            raise InvalidParameterError(
                f"sync must be one of {_SYNC_MODES}, got {sync!r}"
            )
        self.directory = directory
        self.sync = sync
        self._fh = None
        self._segment_path: str | None = None
        self._base_seq = 1
        self._count = 0  # frames in the current segment
        self.records_written = 0
        self.bytes_written = 0

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls, directory: str, sync: str = "flush"
    ) -> "tuple[DeltaLog, list[tuple[int, tuple]]]":
        """Open (or create) a directory's log; returns ``(log, records)``.

        ``records`` is every fully acknowledged ``(seq, record)`` pair
        across all segments, oldest first, with any torn tail already
        truncated away.  The returned log appends after the last good
        record.
        """
        os.makedirs(directory, exist_ok=True)
        log = cls(directory, sync=sync)
        records: list[tuple[int, tuple]] = []
        segments = wal_segments(directory)
        for position, name in enumerate(segments):
            last = position == len(segments) - 1
            path = os.path.join(directory, name)
            records.extend(log._scan_segment(path, truncate_tail=last))
        if segments:
            last_path = os.path.join(directory, segments[-1])
            log._adopt_segment(last_path)
        else:
            log._start_segment(1)
        return log, records

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- appending ------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The highest acknowledged record seq (0 when empty)."""
        return self._base_seq + self._count - 1

    @property
    def segment_bytes(self) -> int:
        """Bytes in the current segment (header included)."""
        return self._fh.tell() if self._fh is not None else 0

    def append(self, record: tuple) -> int:
        """Frame, write, and flush one record; returns its seq."""
        if self._fh is None:
            raise InvalidParameterError("the log is closed")
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.write(frame)
        if self.sync != "none":
            self._fh.flush()
            if self.sync == "fsync":
                os.fsync(self._fh.fileno())
        self._count += 1
        self.records_written += 1
        self.bytes_written += len(frame)
        return self.last_seq

    def rotate(self) -> None:
        """Start a fresh segment at ``last_seq + 1``; drop old segments.

        Called after a checkpoint's ``CURRENT`` pointer is durable:
        every record up to ``last_seq`` is baked into the snapshot, so
        the old segments are dead weight (and were they to survive a
        crash here, ``applied_seq`` fencing replays them as no-ops).
        """
        next_base = self.last_seq + 1
        old = [
            os.path.join(self.directory, name)
            for name in wal_segments(self.directory)
        ]
        self.close()
        self._start_segment(next_base)
        for path in old:
            if path != self._segment_path:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- internals ------------------------------------------------------

    def _start_segment(self, base_seq: int) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, _segment_name(base_seq))
        fh = open(path, "wb")
        fh.write(_SEG_HEADER.pack(WAL_MAGIC, WAL_FORMAT, 0, base_seq))
        fh.flush()
        if self.sync == "fsync":
            os.fsync(fh.fileno())
        self._fh = fh
        self._segment_path = path
        self._base_seq = base_seq
        self._count = 0

    def _adopt_segment(self, path: str) -> None:
        """Continue appending to a recovered (already scanned) segment."""
        fh = open(path, "r+b")
        header = fh.read(_SEG_HEADER.size)
        _magic, _fmt, _flags, base_seq = _SEG_HEADER.unpack(header)
        count = 0
        while True:
            frame_header = fh.read(_FRAME.size)
            if len(frame_header) < _FRAME.size:
                break
            length, _crc32 = _FRAME.unpack(frame_header)
            fh.seek(length, os.SEEK_CUR)
            count += 1
        self._fh = fh
        self._segment_path = path
        self._base_seq = base_seq
        self._count = count

    def _scan_segment(
        self, path: str, truncate_tail: bool
    ) -> list[tuple[int, tuple]]:
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < _SEG_HEADER.size:
            if truncate_tail:
                # A segment creation torn before its header landed.
                os.truncate(path, 0)
                with open(path, "r+b") as fh:
                    fh.write(
                        _SEG_HEADER.pack(WAL_MAGIC, WAL_FORMAT, 0, 1)
                    )
                return []
            raise CorruptWAL(f"{path!r} is shorter than its header")
        magic, fmt, _flags, base_seq = _SEG_HEADER.unpack(
            data[: _SEG_HEADER.size]
        )
        if magic != WAL_MAGIC:
            raise CorruptWAL(f"{path!r} has bad magic {magic!r}")
        if fmt != WAL_FORMAT:
            raise CorruptWAL(
                f"{path!r} is format {fmt}; this build reads {WAL_FORMAT}"
            )
        records: list[tuple[int, tuple]] = []
        offset = _SEG_HEADER.size
        index = 0
        while offset < len(data):
            torn_at: int | None = None
            reason = ""
            if offset + _FRAME.size > len(data):
                torn_at, reason = offset, "frame header cut short"
            else:
                length, crc32 = _FRAME.unpack(
                    data[offset : offset + _FRAME.size]
                )
                start = offset + _FRAME.size
                if start + length > len(data):
                    torn_at, reason = offset, "payload runs past EOF"
                else:
                    payload = data[start : start + length]
                    if zlib.crc32(payload) != crc32:
                        if truncate_tail and start + length == len(data):
                            # The last frame of the last segment: a
                            # torn payload write, not corruption.
                            torn_at, reason = offset, "final-frame CRC"
                        else:
                            raise CorruptWAL(
                                f"{path!r} record {base_seq + index} "
                                "failed its CRC32 mid-file"
                            )
                    else:
                        try:
                            record = pickle.loads(payload)
                        except Exception:
                            raise CorruptWAL(
                                f"{path!r} record {base_seq + index} "
                                "is undecodable despite a valid CRC32"
                            ) from None
                        records.append((base_seq + index, record))
                        index += 1
                        offset = start + length
                        continue
            # A torn tail: physically truncate the residue away so the
            # next recovery (and any raw reader) sees a clean log.
            if not truncate_tail:
                raise CorruptWAL(
                    f"{path!r} is torn at byte {torn_at} ({reason}) but "
                    "is not the final segment"
                )
            os.truncate(path, torn_at)
            break
        return records
