"""Durable persistence: snapshots, write-ahead log, crash-safe restart.

The paper's structures are persistence-friendly by construction — the
§1.1 dictionary + code sequence and the §2.1 bitmap/index pages are
flat, offset-addressable byte ranges — so this tier stores them as
exactly that: checksummed sections in a versioned ``*.snap`` file,
mmap'd back in on restore so index pages fault in on demand through
the simulated-:class:`~repro.iomodel.disk.Disk` accounting.

Three cooperating pieces:

* :mod:`~repro.persist.snapshot` — the per-shard snapshot format
  (atomic writes, CRC'd sections, zero-copy loads);
* :mod:`~repro.persist.wal` — the logical write-ahead delta log
  (CRC-framed records, torn-tail truncation, rotation at checkpoint);
* :mod:`~repro.persist.checkpoint` — cluster checkpoint/restore,
  ``applied_seq`` replay fencing, and the background
  :class:`Checkpointer` policy.

Plus :class:`FileCacheStore`, the durable implementation of the
shared result cache's external-store protocol.

``python -m repro.persist inspect <dir>`` prints a human-readable
audit of a durable directory (manifest, per-snapshot sections, WAL
length, checksum verdicts).
"""

from .checkpoint import (
    CheckpointInfo,
    CheckpointPolicy,
    Checkpointer,
    checkpoint_cluster,
    current_manifest,
    init_persistence,
    read_current,
    read_manifest,
    restore_cluster,
    write_manifest,
)
from .snapshot import (
    SnapshotFile,
    flatten_codes,
    load_shard_engine,
    unflatten_codes,
    write_shard_snapshot,
)
from .store import FileCacheStore
from .wal import DeltaLog, wal_segments

__all__ = [
    "CheckpointInfo",
    "CheckpointPolicy",
    "Checkpointer",
    "DeltaLog",
    "FileCacheStore",
    "SnapshotFile",
    "checkpoint_cluster",
    "current_manifest",
    "flatten_codes",
    "init_persistence",
    "load_shard_engine",
    "read_current",
    "read_manifest",
    "restore_cluster",
    "unflatten_codes",
    "wal_segments",
    "write_shard_snapshot",
    "write_manifest",
]
