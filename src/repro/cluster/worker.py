"""The worker-process half of :class:`~repro.cluster.executor.\
ProcessExecutor`: resident shard runtimes.

Each worker process owns a set of shard runtimes — one
:class:`~repro.engine.engine.QueryEngine` per resident shard uid —
built *once* from the picklable snapshot the coordinator ships
(``("build", uid, payload)``) and thereafter kept in sync by routed
deltas, never by re-pickling engine state:

==================  ====================================================
delta               effect on the resident engine
==================  ====================================================
``append``          ``engine.append(name, ch)`` (LRU invalidation included)
``change``          ``engine.change(name, pos, ch)``
``delete``          ``engine.delete(name, pos)`` (mirror compaction too)
``set_contract``    re-declare a column's dynamism / delete requirement
``rebuild``         swap the column onto a named backend, in place
``add_column``      build one more column into the resident engine
``drop_column``     drop a column
``set_latency``     (re)apply the disk latency model to every column
``drop_caches``     flush engine LRU + every disk's block cache
==================  ====================================================

Coalescable deltas (``append``/``change``) may arrive wholesale as one
``("delta_batch", uid, [delta, ...])`` message — the coordinator's
round-trip amortization under write-heavy load — applied strictly in
list order.

Bulk payloads ride shared memory, not the pipe.  A large build
arrives as ``("build_shm", uid, segment, cache_size, latency_s,
metas)`` — the codes of every column packed as one flat ``int64``
array in a :mod:`multiprocessing.shared_memory` segment (``None``
encoded as ``-1``), with only names and per-column counts on the
pipe; a long coalescable batch arrives as ``("delta_batch_shm", uid,
segment, count, names)`` with each delta packed as an ``int64`` quad.
The worker attaches, copies the payload out, closes its mapping, and
replies — the coordinator owns the unlink, tied to the resolution of
the request that shipped the segment, so segment lifetime is bounded
by the request round-trip.  The query side speaks four ops: ``query`` (one range),
``query_multi`` (a grouped scatter: every range the coordinator wants
from this worker's shards in one message, answered as a list of
per-request replies in order),
``leaves`` (the compiled-leaf fetch op: every interval a predicate
plan needs from one column, answered as a list of
``(positions, Snapshot)`` pairs in order — one round-trip per shard
per column however wide the IN-list), and ``fold`` (the
aggregate-pushdown op: a whole shard-local compiled plan evaluated
resident-side in cardinality space, answered as one
``(count | exists-bit | {group code: count}, Snapshot)`` — positions
never cross the pipe).

Because the coordinator applies the *same* operations to its own
replica in the same order, and every build pins the backend the
coordinator's advisor already chose, the resident engine is a
bit-identical twin: queries return identical positions and identical
I/O counter deltas, which is exactly what the conformance suite
asserts.

The wire protocol is strict request/reply in FIFO order — one
``("ok", payload)`` or ``("err", exception)`` per request — which is
what lets the parent pipeline many queries down one pipe and resolve
them with a plain deque.
"""

from __future__ import annotations

import time
from array import array
from multiprocessing import resource_tracker, shared_memory

from ..engine.engine import QueryEngine
from ..engine.registry import get_spec
from ..errors import InvalidParameterError
from ..iomodel.stats import Snapshot
from ..obs.tracer import Span
from ..query import (
    Plan,
    evaluate_count,
    evaluate_count_by,
    evaluate_exists,
    resolve_universe,
)
from .cache import shared_key

#: Fold payload: (mode, columns, leaves, root, group) — a shard-local
#: compiled plan (leaves already translated onto this shard's
#: alphabets) plus the aggregate mode to fold it in.  The reply is
#: ``(value, Snapshot)``: an int (count), bool (exists) or
#: ``{local group code: count}`` dict — never a RID list.


def evaluate_shard_fold(
    engine: QueryEngine, payload: tuple
) -> tuple["int | bool | dict[int, int]", Snapshot]:
    """Fold one shard-local plan in cardinality space, resident-side.

    Shared verbatim by the worker's ``fold`` op and the coordinator's
    serial/threaded path (:meth:`~repro.cluster.engine.ClusterEngine.\
_fold_shard_local`), so the aggregate a shard reports — value *and*
    measured I/O — is executor-independent.  Deliberately bypasses the
    shared result cache (workers do not hold it); only the engine's
    own LRU serves repeats, keeping the two paths' I/O identical.
    """
    mode, columns, leaves, root, group = payload
    plan = Plan(
        normalized=None,
        leaves=tuple(leaves),
        root=root,
        columns=tuple(columns),
    )
    universe = resolve_universe(plan, lambda name: engine.column(name).n)
    total = Snapshot()

    def fetch(col: str, lo: int, hi: int):
        nonlocal total
        result, io = engine.query_measured(col, lo, hi)
        total = total + io
        return result

    costs = engine._leaf_costs(plan)
    if mode == "count":
        value: "int | bool | dict[int, int]" = evaluate_count(
            plan, fetch, universe, costs
        )
    elif mode == "exists":
        value = evaluate_exists(plan, fetch, universe, costs)
    elif mode == "count_by":
        group_col = engine.column(group)
        group_codes = sorted(
            {c for c in group_col.codes if c is not None}
        )

        def group_fetch(code: int):
            return fetch(group, code, code)

        value = evaluate_count_by(
            plan, fetch, universe, group_codes, group_fetch, costs
        )
    else:
        raise InvalidParameterError(f"unknown fold mode {mode!r}")
    return value, total

#: Build payload: (cache_size, io_latency_s, [column payload, ...]).
#: Column payload: (name, codes, sigma, dynamism, expected_selectivity,
#: require_exact, require_delete, backend_name[, epoch]).  The optional
#: trailing epoch is the column's cluster-level incarnation stamp —
#: durable cache-store keys carry it; payloads without one (older
#: producers, tests) default to "" and simply never match a store.


def _apply_latency(engine: QueryEngine, latency_s: float) -> None:
    for column in engine.columns.values():
        column.index.disk.latency_s = latency_s


def _add_column(engine: QueryEngine, column_payload: tuple) -> str:
    """Build one payload column into ``engine``; returns its epoch."""
    (
        name,
        codes,
        sigma,
        dynamism,
        expected_selectivity,
        require_exact,
        require_delete,
        backend,
        *rest,
    ) = column_payload
    engine.add_column(
        name,
        codes,
        sigma,
        dynamism=dynamism,
        expected_selectivity=expected_selectivity,
        require_exact=require_exact,
        require_delete=require_delete,
        backend=backend,
    )
    return rest[0] if rest else ""


class ShardHost:
    """The resident runtimes of one worker process (testable in-process).

    ``clock`` times worker-side spans when a request carries a trace
    id; injectable so in-process tests get deterministic durations.
    """

    def __init__(self, clock=None, cache_store=None) -> None:
        self.engines: dict[int, QueryEngine] = {}
        self.latencies: dict[int, float] = {}
        #: Per-shard column epochs (incarnation stamps): durable
        #: cache-store keys carry them, so a re-added or re-epoched
        #: column can never read a predecessor's persisted results.
        self.epochs: dict[int, dict[str, str]] = {}
        #: Optional durable result store
        #: (:class:`repro.persist.FileCacheStore` or any
        #: :class:`~repro.cluster.cache.CacheStore`): consulted on the
        #: untraced query path *before* decoding index pages, fed on
        #: every miss.  Version-stamped keys make staleness impossible
        #: — a mutated column's old entries simply stop matching.
        self.cache_store = cache_store
        self.clock = clock if clock is not None else time.monotonic

    def _engine(self, uid: int) -> QueryEngine:
        try:
            return self.engines[uid]
        except KeyError:
            raise InvalidParameterError(
                f"shard uid {uid} is not resident in this worker"
            ) from None

    def build(self, uid: int, payload: tuple) -> None:
        cache_size, latency_s, columns = payload
        engine = QueryEngine(cache_size=cache_size)
        epochs: dict[str, str] = {}
        for column_payload in columns:
            epochs[column_payload[0]] = _add_column(engine, column_payload)
        _apply_latency(engine, latency_s)
        self.engines[uid] = engine
        self.latencies[uid] = latency_s
        self.epochs[uid] = epochs

    def retire(self, uid: int) -> None:
        self.engines.pop(uid, None)
        self.latencies.pop(uid, None)
        self.epochs.pop(uid, None)

    def snap(self, uid: int, path: str) -> int:
        """Write one resident shard's snapshot to ``path`` (checkpoint).

        The worker holds the *built* indexes (the coordinator's are
        deferred under a resident executor), so it writes the snapshot
        — over the shared filesystem — and the restore's rehydrate op
        gets real index pages to mmap rather than a rebuild.  Returns
        the column count as a cheap success token.
        """
        from ..persist.snapshot import write_shard_snapshot  # late: cycle

        engine = self._engine(uid)
        write_shard_snapshot(path, engine)
        return len(engine.columns)

    def rehydrate(
        self,
        uid: int,
        path: str,
        cache_size: int,
        latency_s: float,
        epochs: dict,
    ) -> None:
        """Adopt a shard from its snapshot file — no index rebuild.

        The mirror image of :meth:`build` for restores: the engine is
        mmap-loaded from ``path`` (index pages fault in on demand), so
        bringing a worker back costs file opens, not construction.
        ``epochs`` carries the restored columns' incarnation stamps so
        durable cache-store entries from before the restart keep
        matching.
        """
        from ..persist.snapshot import load_shard_engine  # late: cycle

        engine = load_shard_engine(path, cache_size=cache_size)
        for column in engine.columns.values():
            # Not _apply_latency: that touches column.index.disk,
            # which would force-build any deferred column; the
            # column-level setter is deferred-safe.
            column.apply_latency(latency_s)
        self.engines[uid] = engine
        self.latencies[uid] = latency_s
        self.epochs[uid] = dict(epochs)

    def delta(self, uid: int, delta: tuple) -> None:
        engine = self._engine(uid)
        op = delta[0]
        if op == "append":
            engine.append(delta[1], delta[2])
        elif op == "change":
            engine.change(delta[1], delta[2], delta[3])
        elif op == "delete":
            engine.delete(delta[1], delta[2])
        elif op == "set_contract":
            _, name, dynamism, require_delete = delta
            column = engine.column(name)
            column.stats = column.stats.with_(
                dynamism=dynamism, require_delete=require_delete
            )
        elif op == "rebuild":
            _, name, backend = delta
            engine.column(name).rebuild(get_spec(backend))
            engine.cache.invalidate(lambda key: key[0] == name)
            _apply_latency(engine, self.latencies.get(uid, 0.0))
        elif op == "add_column":
            epoch = _add_column(engine, delta[1])
            self.epochs.setdefault(uid, {})[delta[1][0]] = epoch
            _apply_latency(engine, self.latencies.get(uid, 0.0))
        elif op == "drop_column":
            engine.drop_column(delta[1])
            self.epochs.get(uid, {}).pop(delta[1], None)
        elif op == "set_latency":
            self.latencies[uid] = delta[1]
            _apply_latency(engine, delta[1])
        elif op == "drop_caches":
            engine.cache.invalidate()
            for column in engine.columns.values():
                column.index.disk.flush_cache()
        else:
            raise InvalidParameterError(f"unknown shard delta {op!r}")

    def delta_batch(self, uid: int, deltas: list[tuple]) -> None:
        """Apply one coalesced shipment of routed deltas, in order."""
        for delta in deltas:
            self.delta(uid, delta)

    def drop_caches_all(self) -> None:
        """Flush every resident engine's caches, one broadcast message.

        The per-shard ``drop_caches`` delta stays for targeted drops;
        this is the whole-worker form, so a cluster-wide cache drop
        costs one message per worker instead of one per shard.
        """
        for engine in self.engines.values():
            engine.cache.invalidate()
            for column in engine.columns.values():
                column.index.disk.flush_cache()

    def _worker_span(
        self, kind: str, trace: str, uid: int, engine: QueryEngine, fn
    ) -> tuple[object, Snapshot, dict]:
        """Run one traced shard op; returns (value, io, span dict).

        The span's ``bits_read`` tag is taken from the *same*
        :class:`Snapshot` the reply ships back — the one the
        coordinator folds into ``scatter_io`` — so summed span bits
        always equal the scatter accounting exactly.
        """
        t0 = self.clock()
        value, io = fn()
        span = Span(kind, t0=t0, t1=self.clock())
        span.tags.update(
            trace_id=trace,
            shard_uid=uid,
            bits_read=io.bits_read,
            reads=io.reads,
        )
        return value, io, span.to_dict()

    def _store_key(self, uid: int, engine: QueryEngine, name, lo, hi):
        epoch = self.epochs.get(uid, {}).get(name)
        if not epoch:
            # No incarnation stamp means no safe durable key: the
            # payload predates epochs, or the column is local-only.
            return None
        return shared_key(name, epoch, uid, engine.column(name).version, lo, hi)

    def _store_get(self, uid, engine, name, lo, hi):
        if self.cache_store is None:
            return None
        key = self._store_key(uid, engine, name, lo, hi)
        if key is None:
            return None
        cached = self.cache_store.get(key)
        return list(cached) if cached is not None else None

    def _store_put(self, uid, engine, name, lo, hi, positions) -> None:
        if self.cache_store is None:
            return
        key = self._store_key(uid, engine, name, lo, hi)
        if key is not None:
            self.cache_store.put(key, positions)

    def query(
        self,
        uid: int,
        name: str,
        char_lo: int,
        char_hi: int,
        trace: str | None = None,
    ) -> tuple:
        """One measured range query; traced replies carry a span dict.

        The untraced reply shape ``(positions, Snapshot)`` is
        unchanged; a request carrying a trace id (the optional sixth
        message element) widens it to
        ``(positions, Snapshot, span dict)``.
        """
        engine = self._engine(uid)
        if trace is None:
            cached = self._store_get(uid, engine, name, char_lo, char_hi)
            if cached is not None:
                return cached, Snapshot()
            result, io = engine.query_measured(name, char_lo, char_hi)
            positions = result.positions()
            self._store_put(uid, engine, name, char_lo, char_hi, positions)
            return positions, io
        col = engine.column(name)
        # Peek before the query: __contains__ skips the LRU counters,
        # so tagging the verdict never perturbs the stats the real
        # lookup records.
        hit = (name, col.version, char_lo, char_hi) in engine.cache
        positions, io, span = self._worker_span(
            "worker_query",
            trace,
            uid,
            engine,
            lambda: (
                lambda r, s: (r.positions(), s)
            )(*engine.query_measured(name, char_lo, char_hi)),
        )
        span["tags"].update(
            column=name,
            char_lo=char_lo,
            char_hi=char_hi,
            backend=col.spec.name,
            cache="hit" if hit else "miss",
            rids=len(positions),
        )
        return positions, io, span

    def leaves(
        self,
        uid: int,
        name: str,
        intervals: list[tuple[int, int]],
        trace: str | None = None,
    ) -> "list | tuple":
        """The compiled-leaf fetch op: many measured queries, one reply.

        Untraced: a list of ``(positions, Snapshot)`` pairs, one per
        interval in order.  Traced: ``(pairs, [span dicts])`` with one
        ``worker_query`` span per interval.
        """
        engine = self._engine(uid)
        if trace is None:
            out = []
            for char_lo, char_hi in intervals:
                cached = self._store_get(
                    uid, engine, name, char_lo, char_hi
                )
                if cached is not None:
                    out.append((cached, Snapshot()))
                    continue
                result, io = engine.query_measured(name, char_lo, char_hi)
                positions = result.positions()
                self._store_put(
                    uid, engine, name, char_lo, char_hi, positions
                )
                out.append((positions, io))
            return out
        col = engine.column(name)
        pairs = []
        spans = []
        for char_lo, char_hi in intervals:
            hit = (name, col.version, char_lo, char_hi) in engine.cache
            positions, io, span = self._worker_span(
                "worker_query",
                trace,
                uid,
                engine,
                lambda lo=char_lo, hi=char_hi: (
                    lambda r, s: (r.positions(), s)
                )(*engine.query_measured(name, lo, hi)),
            )
            span["tags"].update(
                column=name,
                char_lo=char_lo,
                char_hi=char_hi,
                backend=col.spec.name,
                cache="hit" if hit else "miss",
                rids=len(positions),
            )
            pairs.append((positions, io))
            spans.append(span)
        return pairs, spans

    def fold(
        self, uid: int, payload: tuple, trace: str | None = None
    ) -> tuple:
        """The aggregate-pushdown op: evaluate a plan, ship a number.

        The whole shard-local plan executes against the resident
        engine and only the fold — count, existence bit, or per-group
        counts — crosses the pipe with its I/O snapshot; positions
        never do.  Traced replies widen to
        ``(value, Snapshot, span dict)``.
        """
        engine = self._engine(uid)
        if trace is None:
            return evaluate_shard_fold(engine, payload)
        value, io, span = self._worker_span(
            "worker_fold",
            trace,
            uid,
            engine,
            lambda: evaluate_shard_fold(engine, payload),
        )
        span["tags"]["mode"] = payload[0]
        return value, io, span

    def io_totals(self) -> Snapshot:
        total = Snapshot()
        for engine in self.engines.values():
            for column in engine.columns.values():
                total = total + column.index.stats.snapshot()
        return total


# ----------------------------------------------------------------------
# Shared-memory transport (the worker half)
# ----------------------------------------------------------------------
#
# Large build snapshots and long delta batches arrive as flat
# ``array('q')`` payloads in a coordinator-created shared-memory
# segment; the pipe message carries only the segment name plus
# metadata.  The worker attaches read-only, copies what it needs, and
# closes immediately — the *coordinator* owns the unlink, tied to the
# resolution of the request that shipped the segment.


def _tracker_is_inherited() -> bool:
    # Forked workers inherit the coordinator's resource-tracker fd
    # (the executor starts the tracker before forking); spawned
    # workers import fresh and lazily start a tracker of their own.
    return getattr(resource_tracker._resource_tracker, "_fd", None) is not None


#: Fixed at worker startup, before any segment is attached.
_SHARED_TRACKER = True


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the segment with the resource tracker
    # (CPython <= 3.12 behavior).  With the coordinator's inherited
    # tracker that register is an idempotent set-add balanced by the
    # coordinator's unlink, and unregistering here would strip the
    # parent's own registration.  A spawn-mode worker runs its own
    # tracker, which never sees the unlink — balance the attach
    # registration locally or the worker warns about (and
    # double-unlinks) segments it never owned.
    shm = shared_memory.SharedMemory(name=name)
    if not _SHARED_TRACKER:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return shm


def _unpack_build_shm(
    name: str, cache_size: int, latency_s: float, metas: list
) -> tuple:
    """Rebuild a ``build`` payload from its flat-codes segment."""
    shm = _attach_segment(name)
    try:
        codes = array("q")
        total = sum(meta[1] for meta in metas)
        codes.frombytes(bytes(shm.buf[: total * codes.itemsize]))
    finally:
        shm.close()
    columns = []
    offset = 0
    for (col_name, count, sigma, dyn, sel, exact, delete, backend,
         *rest) in metas:
        col_codes = [
            None if c < 0 else c for c in codes[offset : offset + count]
        ]
        offset += count
        columns.append(
            (col_name, col_codes, sigma, dyn, sel, exact, delete, backend,
             *rest)
        )
    return (cache_size, latency_s, columns)


def _unpack_delta_batch_shm(
    name: str, count: int, names: tuple
) -> list[tuple]:
    """Rebuild a delta batch from its int64-quad segment."""
    shm = _attach_segment(name)
    try:
        packed = array("q")
        packed.frombytes(bytes(shm.buf[: count * 4 * packed.itemsize]))
    finally:
        shm.close()
    deltas: list[tuple] = []
    for i in range(0, 4 * count, 4):
        op, idx, a, b = packed[i : i + 4]
        if op == 0:
            deltas.append(("append", names[idx], a))
        else:
            deltas.append(("change", names[idx], a, b))
    return deltas


def shard_worker_main(conn) -> None:
    """The worker loop: one reply per request, FIFO, until ``close``."""
    from .executor import ship_exception  # late: avoid an import cycle

    global _SHARED_TRACKER
    _SHARED_TRACKER = _tracker_is_inherited()
    host = ShardHost()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died; nothing left to serve
            return
        op = message[0]
        if op == "drop_caches_all":
            # The one *silent* op: shipped fire-and-forget, so no
            # reply may be sent — not even an error — or the FIFO
            # reply pipe desynchronizes.  Cache drops cannot fail in
            # a way the coordinator could act on.
            try:
                host.drop_caches_all()
            except Exception:
                pass
            continue
        try:
            if op == "close":
                conn.send(("ok", None))
                return
            if op == "build":
                host.build(message[1], message[2])
                reply = None
            elif op == "build_shm":
                host.build(message[1], _unpack_build_shm(*message[2:]))
                reply = None
            elif op == "retire":
                host.retire(message[1])
                reply = None
            elif op == "delta":
                host.delta(message[1], message[2])
                reply = None
            elif op == "delta_batch":
                host.delta_batch(message[1], message[2])
                reply = None
            elif op == "delta_batch_shm":
                host.delta_batch(
                    message[1], _unpack_delta_batch_shm(*message[2:])
                )
                reply = None
            elif op == "query":
                reply = host.query(*message[1:])
            elif op == "query_multi":
                # message: (op, first_uid, [(uid, name, lo, hi), ...])
                # with an optional trailing trace id; one reply per
                # request, in order.
                trace = message[3:4]
                reply = [
                    host.query(*request, *trace) for request in message[2]
                ]
            elif op == "leaves":
                reply = host.leaves(*message[1:])
            elif op == "fold":
                reply = host.fold(*message[1:])
            elif op == "stats":
                reply = host.io_totals()
            elif op == "snap":
                reply = host.snap(message[1], message[2])
            elif op == "rehydrate":
                host.rehydrate(*message[1:])
                reply = None
            elif op == "cache_store":
                host.cache_store = message[1]
                reply = None
            else:
                raise InvalidParameterError(f"unknown worker op {op!r}")
            conn.send(("ok", reply))
        except BaseException as exc:  # ship it back; the loop survives
            conn.send(("err", ship_exception(exc)))
