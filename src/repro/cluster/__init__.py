"""Sharded scatter-gather serving on top of the query engine.

The single-process :class:`~repro.engine.engine.QueryEngine` answers
the paper's conjunctive range queries behind one LRU cache; this
package scales that design out.  Columns are partitioned into
contiguous RID-range shards (:mod:`.sharding`), each shard runs its
own engine — so the advisor may pick different backends per shard as
local statistics differ — and queries scatter across shards through a
pluggable executor (:mod:`.executor`), consult a versioned shared
result cache (:mod:`.cache`), and gather by offset translation and
ordered merge (:mod:`.engine`).  Update traffic is routed to single
shards, invalidates only their cache entries, and past a drift
threshold triggers online backend migration.  :mod:`.table` wraps it
all in the value-space ``Table`` interface.

See README.md in this directory for the architecture diagram and the
invalidation protocol.
"""

from .cache import (
    CacheStore,
    DictStore,
    InMemorySharedCache,
    SharedResultCache,
    TTLStore,
    shared_key,
)
from .engine import (
    ClusterEngine,
    ClusterStats,
    ColumnMeta,
    GatherStats,
    Migration,
    ShardMerge,
    ShardSplit,
    ShardStats,
)
from .executor import ProcessExecutor, SerialExecutor, ThreadedExecutor
from .sharding import (
    ShardPlan,
    locate,
    offsets_of,
    plan_from_lengths,
    plan_shards,
)
from .table import ShardedColumn, ShardedTable

__all__ = [
    "CacheStore",
    "ClusterEngine",
    "ClusterStats",
    "ColumnMeta",
    "DictStore",
    "GatherStats",
    "InMemorySharedCache",
    "Migration",
    "ProcessExecutor",
    "SerialExecutor",
    "TTLStore",
    "ShardMerge",
    "ShardPlan",
    "ShardSplit",
    "ShardStats",
    "ShardedColumn",
    "ShardedTable",
    "SharedResultCache",
    "ThreadedExecutor",
    "locate",
    "offsets_of",
    "plan_from_lengths",
    "plan_shards",
    "shared_key",
]
