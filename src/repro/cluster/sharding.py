"""Partitioning a column's RID space into contiguous shards.

The conjunctive-range workload of §1 is embarrassingly partitionable by
RID range: every shard answers the same alphabet range query over its
slice of the string, and the global answer is the offset-translated
concatenation (shard *i*'s positions all precede shard *i+1*'s).  This
module computes the static split — balanced contiguous ranges — and
the dynamic routing of a global position to its shard once per-shard
lengths start drifting under appends, changes, and compactions.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import InvalidParameterError, QueryError


@dataclass(frozen=True)
class ShardPlan:
    """Balanced contiguous RID ranges covering ``[0, n)`` at build time.

    ``starts`` holds each shard's first global RID; shard ``i`` covers
    ``[starts[i], starts[i+1])`` (the last one up to ``n``).  The plan
    is only authoritative at build time: afterwards shard lengths
    evolve independently and routing goes through live prefix sums
    (:func:`locate`).
    """

    n: int
    starts: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.starts)

    def bounds(self, shard_id: int) -> tuple[int, int]:
        """The build-time global range ``[start, stop)`` of one shard."""
        if shard_id < 0 or shard_id >= self.num_shards:
            raise InvalidParameterError(
                f"shard {shard_id} outside [0, {self.num_shards})"
            )
        stop = (
            self.starts[shard_id + 1]
            if shard_id + 1 < self.num_shards
            else self.n
        )
        return self.starts[shard_id], stop

    def slices(self) -> list[tuple[int, int]]:
        """All build-time ``[start, stop)`` ranges, in shard order."""
        return [self.bounds(i) for i in range(self.num_shards)]


def plan_shards(
    n: int,
    num_shards: int | None = None,
    target_shard_rows: int | None = None,
) -> ShardPlan:
    """Split ``[0, n)`` into balanced contiguous shards.

    Exactly one sizing knob applies: an explicit shard count, or a
    target rows-per-shard from which the count is derived.  The count
    is clamped to ``n`` so no shard starts empty (every backend
    requires a non-empty string to build from).
    """
    if n <= 0:
        raise InvalidParameterError("cannot shard an empty RID space")
    if num_shards is not None and target_shard_rows is not None:
        raise InvalidParameterError(
            "pass either num_shards or target_shard_rows, not both"
        )
    if target_shard_rows is not None:
        if target_shard_rows <= 0:
            raise InvalidParameterError("target_shard_rows must be >= 1")
        num_shards = -(-n // target_shard_rows)  # ceil division
    if num_shards is None:
        num_shards = 1
    if num_shards <= 0:
        raise InvalidParameterError("num_shards must be >= 1")
    num_shards = min(num_shards, n)
    base, extra = divmod(n, num_shards)
    starts = []
    offset = 0
    for i in range(num_shards):
        starts.append(offset)
        offset += base + (1 if i < extra else 0)
    return ShardPlan(n=n, starts=tuple(starts))


def plan_from_lengths(lengths: list[int]) -> ShardPlan:
    """Re-derive the authoritative plan from live per-shard lengths.

    Shard lifecycle operations (splits, merges) change the shard set
    after build time; this rebuilds a :class:`ShardPlan` whose
    ``slices()`` describe the *current* contiguous boundaries, so plan
    consumers keep seeing the live layout.  Zero-length shards are
    legal here (a column may have been emptied by deletions) even
    though :func:`plan_shards` never creates one at build time.
    """
    if not lengths:
        raise InvalidParameterError("cannot derive a plan from no shards")
    if any(length < 0 for length in lengths):
        raise InvalidParameterError("shard lengths must be >= 0")
    return ShardPlan(n=sum(lengths), starts=tuple(offsets_of(list(lengths))))


def offsets_of(lengths: list[int]) -> list[int]:
    """Prefix sums: each shard's current first global RID."""
    offsets = []
    acc = 0
    for length in lengths:
        offsets.append(acc)
        acc += length
    return offsets


def locate(offsets: list[int], total: int, global_pos: int) -> tuple[int, int]:
    """Route a global position to ``(shard_id, local_pos)``.

    ``offsets`` are the live prefix sums (:func:`offsets_of`); a
    position past the current end is a query error, mirroring what a
    single-engine backend would raise.
    """
    if global_pos < 0 or global_pos >= total:
        raise QueryError(
            f"position {global_pos} outside the current RID space "
            f"[0, {total})"
        )
    shard_id = bisect.bisect_right(offsets, global_pos) - 1
    return shard_id, global_pos - offsets[shard_id]
