"""The shared result cache: one external store serving every shard.

The single-process engine keeps an :class:`~repro.engine.cache.\
LRUCache` per ``QueryEngine``; at cluster scale the cache must outlive
any one process, so this module defines the *abstraction* an external
store (memcached, Redis, a sidecar) would implement, plus an in-memory
reference implementation the tests and benchmarks run against.

Keys extend the engine's proven ``(column, version, lo, hi)`` scheme
with the shard's identity and the column's *epoch*:
``(column, epoch, shard_id, version, lo, hi)``.  The ``shard_id`` slot
holds the shard's stable *uid* (``ClusterEngine.shard_uids``), not its
position: positions shift when shards split or merge, uids never do.
The version is the shard-local column version; the epoch is a random
token stamped once per ``add_column``, so dropping a column and
re-adding one under the same name can never resurrect the old
incarnation's entries even though shard versions restart at zero — and
same-named columns of *different engines* (or processes) sharing one
store never collide.  Together they yield the cluster's invalidation
protocol:

* an update routed to shard ``s`` bumps only that shard's version, so
  only shard ``s``'s entries become unreachable — every other shard's
  cached results stay live and keep serving;
* a lifecycle operation (split/merge) retires the participating
  shards' uids and mints fresh ones for their replacements, so the
  retired entries can never be served again while sibling shards' hot
  entries survive the reshape — a *positional* key here would let a
  fresh shard alias a retired neighbor's entries;
* unreachability is the correctness mechanism; *eviction* is an
  optimization.  An external store that cannot enumerate keys may
  implement :meth:`SharedResultCache.invalidate` as a no-op and lean on
  TTLs — stale entries are dead weight, never wrong answers.

Values are plain sorted lists of shard-local positions (JSON/msgpack
friendly), translated to global RIDs by the gather phase.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

from ..engine.cache import LRUCache

#: Cache key: (column, epoch, shard_id, shard-local version, lo, hi).
SharedKey = tuple[str, str, int, int, int, int]


def shared_key(
    column: str,
    epoch: str,
    shard_id: int,
    version: int,
    char_lo: int,
    char_hi: int,
) -> SharedKey:
    """The canonical shared-cache key for one per-shard range query.

    ``shard_id`` is the shard's stable uid, which outlives positional
    reshuffles from shard splits and merges.
    """
    return (column, epoch, shard_id, version, char_lo, char_hi)


class SharedResultCache(ABC):
    """What the cluster requires of an external result cache."""

    @abstractmethod
    def get(self, key: SharedKey) -> list[int] | None:
        """The cached shard-local positions, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: SharedKey, positions: list[int]) -> None:
        """Store one shard-local answer."""

    def __contains__(self, key: SharedKey) -> bool:
        """Non-destructive presence probe (used by ``explain``).

        Purely informational, so the default for stores that cannot
        answer it cheaply is a pessimistic ``False`` — never a
        stats-skewing ``get``.
        """
        return False

    def invalidate(
        self, column: str | None = None, shard_id: int | None = None
    ) -> int:
        """Eagerly drop entries for a column (optionally one shard).

        Purely an optimization — version-carrying keys already make
        stale entries unreachable — so the default is a no-op, which is
        all a store without key enumeration can offer.
        """
        return 0


class InMemorySharedCache(SharedResultCache):
    """Reference implementation: the engine's LRU behind a lock.

    All replacement and accounting logic is the proven
    :class:`~repro.engine.cache.LRUCache`; this wrapper adds what a
    *shared* cache needs on top — a lock (scatter tasks run
    concurrently under the threaded executor), defensive value copies
    (callers offset-translate their lists in place), and key-scheme
    aware invalidation.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._lru = LRUCache(capacity)
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._lru.capacity

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def __contains__(self, key: SharedKey) -> bool:
        with self._lock:
            return key in self._lru

    def get(self, key: SharedKey) -> list[int] | None:
        with self._lock:
            positions = self._lru.get(key)
            # Hand out a copy: a shared cache cannot know what its
            # callers do with the list, and an aliased mutation would
            # corrupt every later hit (a real external store serializes
            # and so copies implicitly).
            return list(positions) if positions is not None else None

    def put(self, key: SharedKey, positions: list[int]) -> None:
        with self._lock:
            self._lru.put(key, list(positions))

    def invalidate(
        self, column: str | None = None, shard_id: int | None = None
    ) -> int:
        with self._lock:
            return self._lru.invalidate(
                lambda key: (column is None or key[0] == column)
                and (shard_id is None or key[2] == shard_id)
            )
