"""The shared result cache: one external store serving every shard.

The single-process engine keeps an :class:`~repro.engine.cache.\
LRUCache` per ``QueryEngine``; at cluster scale the cache must outlive
any one process, so this module defines the *abstraction* an external
store (memcached, Redis, a sidecar) would implement, plus in-memory
reference implementations the tests and benchmarks run against.

Keys extend the engine's proven ``(column, version, lo, hi)`` scheme
with the shard's identity and the column's *epoch*:
``(column, shard_id, epoch, version, lo, hi)``.  The ``shard_id`` slot
holds the shard's stable *uid* (``ClusterEngine.shard_uids``), not its
position: positions shift when shards split or merge, uids never do.
The slot order is deliberate — every invalidation the cluster performs
("this column", "this column on this shard") is a *key-prefix* drop,
which is the one bulk-eviction primitive real external stores can hope
to offer (Redis ``SCAN MATCH prefix*``, a namespace flush).  The
version is the shard-local column version; the epoch is a random token
stamped once per ``add_column``, so dropping a column and re-adding
one under the same name can never resurrect the old incarnation's
entries even though shard versions restart at zero — and same-named
columns of *different engines* (or processes) sharing one store never
collide.  Together they yield the cluster's invalidation protocol:

* an update routed to shard ``s`` bumps only that shard's version, so
  only shard ``s``'s entries become unreachable — every other shard's
  cached results stay live and keep serving;
* a lifecycle operation (split/merge) retires the participating
  shards' uids and mints fresh ones for their replacements, so the
  retired entries can never be served again while sibling shards' hot
  entries survive the reshape — a *positional* key here would let a
  fresh shard alias a retired neighbor's entries;
* unreachability is the correctness mechanism; *eviction* is an
  optimization.  A store that cannot enumerate keys implements
  :meth:`CacheStore.invalidate_prefix` as a no-op and leans on
  TTL-based expiry (:class:`TTLStore`) — stale entries are dead
  weight, never wrong answers.

Storage is split from policy: a :class:`CacheStore` is the minimal
get/put/invalidate-by-prefix contract an external store implements
(:class:`DictStore` — the original LRU dict — is the default;
:class:`TTLStore` models an expiry-only store), and
:class:`InMemorySharedCache` wraps any store with the lock and the
defensive copies a *shared* cache needs.

Values are plain sorted lists of shard-local positions (JSON/msgpack
friendly), translated to global RIDs by the gather phase.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod

from ..engine.cache import LRUCache
from ..errors import InvalidParameterError

#: Cache key: (column, shard uid, epoch, shard-local version, lo, hi).
SharedKey = tuple[str, int, str, int, int, int]


def shared_key(
    column: str,
    epoch: str,
    shard_id: int,
    version: int,
    char_lo: int,
    char_hi: int,
) -> SharedKey:
    """The canonical shared-cache key for one per-shard range query.

    ``shard_id`` is the shard's stable uid, which outlives positional
    reshuffles from shard splits and merges.  The tuple is laid out
    ``(column, shard_id, ...)`` so both invalidation granularities the
    cluster uses are key prefixes.
    """
    return (column, shard_id, epoch, version, char_lo, char_hi)


class CacheStore(ABC):
    """The minimal contract of a result-cache backing store.

    Three verbs: ``get``, ``put``, and ``invalidate_prefix`` — drop
    every key whose leading slots equal ``prefix``.  That last verb is
    *optional power*: versioned keys already make stale entries
    unreachable, so a store that cannot enumerate its keys (most
    memcached-style stores) may inherit the no-op default and bound
    staleness with TTLs instead.
    """

    @abstractmethod
    def get(self, key: SharedKey) -> list[int] | None:
        """The stored value, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: SharedKey, positions: list[int]) -> None:
        """Store one shard-local answer."""

    def invalidate_prefix(self, prefix: tuple) -> int:
        """Drop every key starting with ``prefix``; returns the count.

        Purely an optimization (see the module docstring); the default
        is the honest answer of a store without key enumeration.
        """
        return 0

    def __contains__(self, key: SharedKey) -> bool:
        """Non-destructive presence probe; pessimistic by default."""
        return False


class DictStore(CacheStore):
    """The original in-memory store: a bounded LRU dict.

    All replacement and accounting logic is the proven
    :class:`~repro.engine.cache.LRUCache`; key enumeration makes exact
    prefix invalidation possible.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._lru = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        return self._lru.capacity

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: SharedKey) -> bool:
        return key in self._lru

    def get(self, key: SharedKey) -> list[int] | None:
        return self._lru.get(key)

    def put(self, key: SharedKey, positions: list[int]) -> None:
        self._lru.put(key, positions)

    def invalidate_prefix(self, prefix: tuple) -> int:
        width = len(prefix)
        return self._lru.invalidate(lambda key: key[:width] == prefix)


class TTLStore(CacheStore):
    """An expiry-only store: no key enumeration, entries age out.

    Models the memcached-style deployment the protocol was designed to
    tolerate: ``invalidate_prefix`` inherits the no-op default (the
    store cannot find the keys), and every entry instead carries a
    time-to-live.  Correctness never depends on it — versioned keys
    make stale entries unreachable — the TTL merely bounds how long
    dead weight occupies the store.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.monotonic`).  Expired entries are dropped lazily on
    ``get`` and swept opportunistically on ``put``; ``len()`` counts
    only unexpired entries and ``expirations`` counts every entry
    that aged out, however it was discovered (lazy ``get``, periodic
    sweep, or overwrite of an already-dead entry).

    ``max_entries`` (optional) bounds the store: sustained
    unique-query traffic — the front-end's coalescing keys are
    effectively unique under an adversarial mix — would otherwise
    grow the TTL window without limit between sweeps.  When a put
    would exceed the bound, expired entries are reclaimed first;
    live entries are then evicted soonest-expiring first (insertion
    order equals expiry order because every put rewrites its slot),
    counted in ``evictions`` — distinct from ``expirations``.
    """

    _SWEEP_EVERY = 256

    def __init__(
        self, ttl_s: float, clock=None, max_entries: int | None = None
    ) -> None:
        if ttl_s <= 0:
            raise InvalidParameterError("ttl_s must be > 0")
        if max_entries is not None and max_entries <= 0:
            raise InvalidParameterError("max_entries must be > 0")
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._clock = clock if clock is not None else time.monotonic
        self._data: dict[SharedKey, tuple[float, list[int]]] = {}
        self._puts = 0
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        # Expired-but-unswept entries are invisible to get/contains,
        # so they must not be counted as live contents either.
        now = self._clock()
        return sum(1 for exp, _ in self._data.values() if exp > now)

    def __contains__(self, key: SharedKey) -> bool:
        entry = self._data.get(key)
        return entry is not None and entry[0] > self._clock()

    def get(self, key: SharedKey) -> list[int] | None:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires_at, positions = entry
        if expires_at <= self._clock():
            del self._data[key]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return positions

    def put(self, key: SharedKey, positions: list[int]) -> None:
        now = self._clock()
        # Overwriting an entry that already aged out is an expiration
        # the periodic sweep will never see — count it here, or the
        # stat undercounts entries that die between sweeps.
        prior = self._data.pop(key, None)
        if prior is not None and prior[0] <= now:
            self.expirations += 1
        # The pop-then-insert keeps dict iteration order equal to
        # expiry order (a monotonic clock plus one fixed TTL), which
        # is what lets the bound below evict soonest-expiring first
        # without scanning.
        self._data[key] = (now + self.ttl_s, positions)
        self._puts += 1
        if self._puts % self._SWEEP_EVERY == 0:
            self._sweep(now)
        if (
            self.max_entries is not None
            and len(self._data) > self.max_entries
        ):
            self._sweep(now)
            while len(self._data) > self.max_entries:
                del self._data[next(iter(self._data))]
                self.evictions += 1

    def _sweep(self, now: float) -> None:
        doomed = [k for k, (exp, _) in self._data.items() if exp <= now]
        for k in doomed:
            del self._data[k]
        self.expirations += len(doomed)


class SharedResultCache(ABC):
    """What the cluster requires of an external result cache."""

    @abstractmethod
    def get(self, key: SharedKey) -> list[int] | None:
        """The cached shard-local positions, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: SharedKey, positions: list[int]) -> None:
        """Store one shard-local answer."""

    def __contains__(self, key: SharedKey) -> bool:
        """Non-destructive presence probe (used by ``explain``).

        Purely informational, so the default for stores that cannot
        answer it cheaply is a pessimistic ``False`` — never a
        stats-skewing ``get``.
        """
        return False

    def invalidate(
        self, column: str | None = None, shard_id: int | None = None
    ) -> int:
        """Eagerly drop entries for a column (optionally one shard).

        Purely an optimization — version-carrying keys already make
        stale entries unreachable — so the default is a no-op, which is
        all a store without key enumeration can offer.
        """
        return 0


class InMemorySharedCache(SharedResultCache):
    """Reference implementation: a :class:`CacheStore` behind a lock.

    The store supplies replacement and accounting (the default
    :class:`DictStore` is the engine's proven LRU; a :class:`TTLStore`
    models expiry-only deployments); this wrapper adds what a *shared*
    cache needs on top — a lock (scatter tasks run concurrently under
    the threaded executor), defensive value copies (callers
    offset-translate their lists in place), and the key-scheme-aware
    mapping from the cluster's invalidation verbs onto prefix drops.
    """

    def __init__(
        self,
        capacity: int = 4096,
        store: CacheStore | None = None,
        metrics=None,
    ) -> None:
        self._store = store if store is not None else DictStore(capacity)
        self._lock = threading.Lock()
        #: Optional :class:`repro.obs.MetricsRegistry`: every ``get``
        #: reports into ``cache.shared.hits`` / ``cache.shared.misses``
        #: when attached.  ``None`` (the default) costs one attribute
        #: check.
        self.metrics = metrics

    @property
    def store(self) -> CacheStore:
        return self._store

    @property
    def capacity(self) -> int | None:
        return getattr(self._store, "capacity", None)

    @property
    def hits(self) -> int:
        return getattr(self._store, "hits", 0)

    @property
    def misses(self) -> int:
        return getattr(self._store, "misses", 0)

    @property
    def evictions(self) -> int:
        return getattr(self._store, "evictions", 0)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: SharedKey) -> bool:
        with self._lock:
            return key in self._store

    def get(self, key: SharedKey) -> list[int] | None:
        with self._lock:
            positions = self._store.get(key)
        if self.metrics is not None:
            self.metrics.inc(
                "cache.shared.hits"
                if positions is not None
                else "cache.shared.misses"
            )
        # Hand out a copy: a shared cache cannot know what its
        # callers do with the list, and an aliased mutation would
        # corrupt every later hit (a real external store serializes
        # and so copies implicitly).
        return list(positions) if positions is not None else None

    def put(self, key: SharedKey, positions: list[int]) -> None:
        with self._lock:
            self._store.put(key, list(positions))

    def invalidate(
        self, column: str | None = None, shard_id: int | None = None
    ) -> int:
        if column is None and shard_id is not None:
            raise InvalidParameterError(
                "shard-level invalidation requires the column"
            )
        if column is None:
            prefix: tuple = ()
        elif shard_id is None:
            prefix = (column,)
        else:
            prefix = (column, shard_id)
        with self._lock:
            return self._store.invalidate_prefix(prefix)
