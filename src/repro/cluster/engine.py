"""The sharded scatter-gather serving layer.

A :class:`ClusterEngine` partitions each column's codes into contiguous
RID-range shards and runs one :class:`~repro.engine.engine.QueryEngine`
per shard.  Because the advisor measures each shard's slice
independently, shards of the same column may land on *different*
backends when local entropy/cardinality differ — the per-partition
re-fitting that hierarchical/partitioned range indexes exploit.

Serving is scatter-gather: per-shard range queries execute through a
pluggable executor (:mod:`.executor`), each consulting the shared
result cache (:mod:`.cache`) before touching its shard's engine;
shard-local positions are offset-translated to global RIDs and merged
(shard order *is* global order, so the k-way merge of sorted disjoint
runs degenerates to concatenation).  Conjunctive ``select`` intersects
the per-dimension merged streams, exactly like the single-engine plan
of §1.

Updates route to one shard — appends to the last, changes/deletes by
live prefix sums — and bump only that shard's column version, so the
versioned shared-cache keys of every *other* shard stay valid.  Each
shard also counts its update traffic: past ``drift_window`` updates
the column's :class:`~repro.engine.advisor.WorkloadStats` are
re-measured (:meth:`~repro.engine.engine.EngineColumn.restat`) and, if
the advisor's verdict changed, the shard's index is rebuilt in place
behind the engine (online backend migration; also callable explicitly
via :meth:`ClusterEngine.migrate`).

Concurrency contract: scatter tasks may run in parallel (they touch
disjoint shard engines and the lock-protected shared cache), but the
cluster is single-writer — updates must not interleave with queries.
"""

from __future__ import annotations

import bisect
import uuid
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.interface import RangeResult
from ..engine.advisor import Advisor, CostModel
from ..engine.engine import (
    EngineColumn,
    QueryEngine,
    QueryPlan,
    conjunctive_select,
)
from ..engine.registry import DYNAMISM_LEVELS, IndexSpec, get_spec
from ..errors import InvalidParameterError, QueryError, UpdateError
from .cache import InMemorySharedCache, SharedResultCache, shared_key
from .executor import SerialExecutor
from .sharding import ShardPlan, locate, offsets_of, plan_shards


@dataclass
class ColumnMeta:
    """Cluster-level bookkeeping for one sharded column."""

    name: str
    sigma: int
    dynamism: str
    expected_selectivity: float
    require_exact: bool
    require_delete: bool
    backend: str | None  # explicit column-wide pin; disables auto-migration
    #: Per-shard pins from ``migrate(shard_id=..., backend=...)``;
    #: a pinned shard is exempt from drift auto-migration and keeps
    #: its backend until the pin is replaced or cleared.
    shard_pins: dict[int, str] = field(default_factory=dict)
    #: Incarnation stamp (random token): cache keys carry it so a
    #: re-added column never matches its predecessor's entries — nor
    #: another engine's same-named column when several engines (or
    #: processes) share one external result cache.
    epoch: str = ""
    updates_since_stat: dict[int, int] = field(default_factory=dict)
    #: Per-shard local alphabets (static columns only): the sorted
    #: distinct global codes a shard holds.  ``None`` means the shard
    #: stores global codes verbatim (all dynamic shards do — an update
    #: may route any character anywhere).
    domains: dict[int, list[int] | None] = field(default_factory=dict)


@dataclass(frozen=True)
class Migration:
    """One shard's backend change, as reported by ``migrate()``."""

    column: str
    shard_id: int
    old_backend: str
    new_backend: str

    @property
    def changed(self) -> bool:
        return self.old_backend != self.new_backend


class ClusterEngine:
    """Shards columns by RID range and serves them scatter-gather."""

    def __init__(
        self,
        num_shards: int | None = None,
        target_shard_rows: int | None = None,
        executor=None,
        shared_cache: SharedResultCache | None = None,
        advisor: Advisor | None = None,
        cost_model: CostModel | None = None,
        cache_size: int = 128,
        drift_window: int | None = 256,
    ) -> None:
        if advisor is not None and cost_model is not None:
            raise InvalidParameterError(
                "pass either an advisor or a cost_model, not both"
            )
        if drift_window is not None and drift_window <= 0:
            raise InvalidParameterError("drift_window must be >= 1 or None")
        self._num_shards = num_shards
        self._target_shard_rows = target_shard_rows
        self.executor = executor if executor is not None else SerialExecutor()
        self.shared_cache = (
            shared_cache if shared_cache is not None else InMemorySharedCache()
        )
        self.advisor = advisor if advisor is not None else Advisor(cost_model)
        self.cache_size = cache_size
        self.drift_window = drift_window
        self.plan_: ShardPlan | None = None
        self.shards: list[QueryEngine] = []
        self.columns: dict[str, ColumnMeta] = {}
        self.migrations: list[Migration] = []

    # ------------------------------------------------------------------
    # Column management
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def add_column(
        self,
        name: str,
        codes: Sequence[int],
        sigma: int | None = None,
        dynamism: str = "static",
        expected_selectivity: float = 0.1,
        require_exact: bool = True,
        require_delete: bool = False,
        backend: str | None = None,
    ) -> ColumnMeta:
        """Shard a column and build one index per shard.

        The first column fixes the shard plan (``num_shards`` /
        ``target_shard_rows`` from the constructor); later columns must
        arrive at the same build-time length, since shards partition
        one shared RID space.  ``sigma`` is the *global* alphabet; a
        static shard re-applies §1.1's dictionary trick locally — its
        slice is re-encoded onto the dense alphabet of the codes it
        actually holds, and global query ranges are translated (with
        floor/ceiling semantics) at scatter time — so a shard holding
        four distinct values gets four-bitmap directories and
        low-cardinality stats no matter how sparse its codes are
        globally.  Dynamic shards keep the global alphabet, because an
        update can route any character anywhere.  Either way each
        shard's stats are measured from its own slice, which is how
        different shards of one column end up on different backends.
        """
        if name in self.columns:
            raise InvalidParameterError(f"column {name!r} already exists")
        if not len(codes):
            raise InvalidParameterError(f"column {name!r} is empty")
        # Validate the global alphabet up front: static shards are
        # re-dictionaried onto local alphabets, which would otherwise
        # silently swallow an out-of-range code forever.
        lo_code, hi_code = min(codes), max(codes)
        if sigma is None:
            sigma = hi_code + 1
        if lo_code < 0 or hi_code >= sigma:
            raise InvalidParameterError(
                f"column {name!r} holds codes outside the declared "
                f"alphabet [0, {sigma})"
            )
        created_plan = self.plan_ is None
        if created_plan:
            self.plan_ = plan_shards(
                len(codes), self._num_shards, self._target_shard_rows
            )
            self.shards = [
                QueryEngine(advisor=self.advisor, cache_size=self.cache_size)
                for _ in range(self.plan_.num_shards)
            ]
        elif len(codes) != self.plan_.n:
            raise InvalidParameterError(
                f"column {name!r} has {len(codes)} rows; this cluster was "
                f"sharded for {self.plan_.n}"
            )
        domains: dict[int, list[int] | None] = {}
        built: list[int] = []
        try:
            for shard_id, (start, stop) in enumerate(self.plan_.slices()):
                piece = list(codes[start:stop])
                if dynamism == "static":
                    domain = sorted(set(piece))
                    local_of = {g: i for i, g in enumerate(domain)}
                    piece = [local_of[c] for c in piece]
                    shard_sigma = len(domain)
                    domains[shard_id] = domain
                else:
                    shard_sigma = sigma
                    domains[shard_id] = None
                self.shards[shard_id].add_column(
                    name,
                    piece,
                    shard_sigma,
                    dynamism=dynamism,
                    expected_selectivity=expected_selectivity,
                    require_exact=require_exact,
                    require_delete=require_delete,
                    backend=backend,
                )
                built.append(shard_id)
        except BaseException:
            # Unwind the shards that already built, so a failed
            # add_column neither bricks the name nor (for the very
            # first column) pins the cluster to the failed length.
            for shard_id in built:
                self.shards[shard_id].drop_column(name)
            if created_plan:
                self.plan_ = None
                self.shards = []
            raise
        meta = ColumnMeta(
            name=name,
            sigma=sigma,
            dynamism=dynamism,
            expected_selectivity=expected_selectivity,
            require_exact=require_exact,
            require_delete=require_delete,
            backend=backend,
            epoch=uuid.uuid4().hex,
            updates_since_stat={s: 0 for s in range(self.num_shards)},
            domains=domains,
        )
        self.columns[name] = meta
        return meta

    def _translate_range(
        self, meta: ColumnMeta, shard_id: int, char_lo: int, char_hi: int
    ) -> tuple[int, int] | None:
        """A global code range in one shard's local alphabet.

        ``None`` when the shard holds nothing in the range (the shard
        is pruned from the scatter entirely).  Dynamic shards store
        global codes, so translation is the identity.
        """
        domain = meta.domains.get(shard_id)
        if domain is None:
            return char_lo, char_hi
        lo = bisect.bisect_left(domain, char_lo)
        hi = bisect.bisect_right(domain, char_hi) - 1
        return (lo, hi) if lo <= hi else None

    def _meta(self, name: str) -> ColumnMeta:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(f"unknown column {name!r}") from None

    def _check_shard(self, shard_id: int) -> None:
        if shard_id < 0 or shard_id >= self.num_shards:
            raise InvalidParameterError(
                f"shard {shard_id} outside [0, {self.num_shards})"
            )

    def shard_column(self, name: str, shard_id: int) -> EngineColumn:
        """One shard's :class:`EngineColumn` for a cluster column."""
        self._meta(name)
        self._check_shard(shard_id)
        return self.shards[shard_id].column(name)

    def drop_column(self, name: str) -> None:
        self._meta(name)
        for shard in self.shards:
            shard.drop_column(name)
        self.shared_cache.invalidate(column=name)
        del self.columns[name]

    # ------------------------------------------------------------------
    # RID bookkeeping
    # ------------------------------------------------------------------

    def shard_lengths(self, name: str) -> list[int]:
        """Each shard's current (possibly hole-y) position-space size."""
        self._meta(name)
        return [shard.column(name).n for shard in self.shards]

    def total_rows(self, name: str) -> int:
        return sum(self.shard_lengths(name))

    def backends(self, name: str) -> list[str]:
        """The backend serving each shard, in shard order."""
        self._meta(name)
        return [shard.column(name).spec.name for shard in self.shards]

    # ------------------------------------------------------------------
    # Queries (scatter-gather)
    # ------------------------------------------------------------------

    def query(self, name: str, char_lo: int, char_hi: int) -> RangeResult:
        """One global alphabet range query: scatter, cache, gather."""
        meta = self._meta(name)
        if char_lo < 0 or char_hi >= meta.sigma or char_lo > char_hi:
            raise QueryError(
                f"invalid character range [{char_lo}, {char_hi}] for "
                f"alphabet of size {meta.sigma}"
            )
        lengths = self.shard_lengths(name)
        offsets = offsets_of(lengths)
        cache = self.shared_cache

        def shard_task(shard_id: int) -> list[int]:
            # Static shards carry a dense local alphabet; translating
            # into it canonicalizes the cache key and prunes shards
            # the range cannot touch at all.
            local = self._translate_range(meta, shard_id, char_lo, char_hi)
            if local is None:
                return []
            lo, hi = local
            column = self.shards[shard_id].column(name)
            key = shared_key(
                name, meta.epoch, shard_id, column.version, lo, hi
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
            positions = self.shards[shard_id].query(name, lo, hi).positions()
            cache.put(key, positions)
            return positions

        per_shard = self.executor.map(shard_task, range(self.num_shards))
        # Gather: shard i's global RIDs all precede shard i+1's, so the
        # k-way merge of these sorted disjoint runs is a concatenation.
        merged: list[int] = []
        for shard_id, positions in enumerate(per_shard):
            offset = offsets[shard_id]
            merged.extend(offset + p for p in positions)
        return RangeResult(merged, sum(lengths))

    def select(self, conditions: Mapping[str, tuple[int, int]]) -> list[int]:
        """Conjunctive range query over global RIDs.

        One scatter-gather per dimension (each per-shard sub-answer
        individually shared-cacheable), short-circuiting as soon as a
        dimension comes back empty, then a sorted intersection of the
        merged global streams — the §1 plan, distributed.
        """
        return conjunctive_select(self.query, conditions)

    def plan(
        self, name: str, char_lo: int, char_hi: int
    ) -> list[QueryPlan | None]:
        """Per-shard plans for one query, without executing it.

        ``None`` marks a shard the range cannot touch (its local
        alphabet has no code inside it): the scatter phase skips it
        entirely.
        """
        meta = self._meta(name)
        plans: list[QueryPlan | None] = []
        for shard_id, shard in enumerate(self.shards):
            local = self._translate_range(meta, shard_id, char_lo, char_hi)
            plans.append(
                shard.plan(name, *local) if local is not None else None
            )
        return plans

    def explain(
        self,
        name: str | None = None,
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> str:
        """Cluster-level report: one query, one column, or everything."""
        cache = self.shared_cache
        if name is not None and char_lo is not None and char_hi is not None:
            meta = self._meta(name)
            lines = [
                f"scatter-gather over {self.num_shards} shard(s), "
                f"merged by RID offset:"
            ]
            for shard_id, plan in enumerate(self.plan(name, char_lo, char_hi)):
                if plan is None:
                    lines.append(
                        f"  shard {shard_id}: pruned (no local code "
                        "in the range)"
                    )
                    continue
                column = self.shards[shard_id].column(name)
                key = shared_key(
                    name, meta.epoch, shard_id, column.version,
                    plan.char_lo, plan.char_hi,
                )
                shared = "shared-cache" if key in cache else "miss"
                lines.append(
                    f"  shard {shard_id}: {plan.describe()} [{shared}]"
                )
            return "\n".join(lines)
        if name is not None:
            meta = self._meta(name)
            lines = [
                f"column {name!r}: {self.num_shards} shard(s), "
                f"{self.total_rows(name)} rows, dynamism={meta.dynamism}"
            ]
            for shard_id, shard in enumerate(self.shards):
                column = shard.column(name)
                lines.append(
                    f"  shard {shard_id}: n={column.n} "
                    f"H0={column.stats.h0:.3f} -> {column.spec.name} "
                    f"[{column.spec.family}] v{column.version}"
                )
            return "\n".join(lines)
        hit_rate = getattr(cache, "hit_rate", None)
        cache_note = (
            f", shared cache hit rate {hit_rate:.1%}"
            if hit_rate is not None
            else ""
        )
        lines = [
            f"cluster: {self.num_shards} shard(s), "
            f"{len(self.columns)} column(s), "
            f"{len(self.migrations)} migration(s){cache_note}"
        ]
        for name_ in self.columns:
            lines.append(f"  {name_}: {' | '.join(self.backends(name_))}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Updates (routed to one shard; others' cache entries stay live)
    # ------------------------------------------------------------------

    def _check_updatable(self, name: str) -> None:
        # The cluster-level contract, not just the backends': after a
        # freeze (``migrate(dynamism="static")``) a shard may well keep
        # an update-capable backend the advisor re-picked — the column
        # is frozen all the same.
        if self.columns[name].dynamism == "static":
            raise UpdateError(
                f"column {name!r} is declared static; migrate it (or "
                "re-add it) with a dynamism level before updating"
            )

    def append(self, name: str, ch: int) -> None:
        """Append one row to a column (the last shard absorbs growth)."""
        self._meta(name)
        self._check_updatable(name)
        shard_id = self.num_shards - 1
        self.shards[shard_id].append(name, ch)
        self._after_update(name, shard_id)

    def change(self, name: str, global_pos: int, ch: int) -> None:
        self._meta(name)
        self._check_updatable(name)
        shard_id, local = self._route(name, global_pos)
        self.shards[shard_id].change(name, local, ch)
        self._after_update(name, shard_id)

    def delete(self, name: str, global_pos: int) -> None:
        self._meta(name)
        self._check_updatable(name)
        shard_id, local = self._route(name, global_pos)
        self.shards[shard_id].delete(name, local)
        self._after_update(name, shard_id)

    def _route(self, name: str, global_pos: int) -> tuple[int, int]:
        lengths = self.shard_lengths(name)
        return locate(offsets_of(lengths), sum(lengths), global_pos)

    def _after_update(self, name: str, shard_id: int) -> None:
        # The version bump already made this shard's keys unreachable;
        # eager eviction frees their capacity.  Other shards' entries
        # are untouched — that is the point of per-shard versioning.
        self.shared_cache.invalidate(column=name, shard_id=shard_id)
        meta = self.columns[name]
        meta.updates_since_stat[shard_id] = (
            meta.updates_since_stat.get(shard_id, 0) + 1
        )
        if (
            self.drift_window is not None
            and meta.backend is None
            and shard_id not in meta.shard_pins
            and meta.updates_since_stat[shard_id] >= self.drift_window
        ):
            self._maybe_migrate(name, shard_id)  # resets the counter

    # ------------------------------------------------------------------
    # Online backend migration
    # ------------------------------------------------------------------

    def _maybe_migrate(
        self, name: str, shard_id: int, spec: IndexSpec | None = None
    ) -> Migration:
        """Re-measure one shard and rebuild it if the verdict changed."""
        # The stats are fresh as of now, explicit call or drift
        # trigger: either way the drift clock restarts.
        self.columns[name].updates_since_stat[shard_id] = 0
        column = self.shards[shard_id].column(name)
        old = column.spec.name
        stats = column.restat()
        if spec is None:
            spec = self.advisor.pick(stats)
        if spec.name == old:
            return Migration(name, shard_id, old, old)
        column.rebuild(spec)
        # rebuild() bumped the version; evict the dead entries from
        # both tiers eagerly.
        self.shards[shard_id].cache.invalidate(lambda key: key[0] == name)
        self.shared_cache.invalidate(column=name, shard_id=shard_id)
        migration = Migration(name, shard_id, old, spec.name)
        self.migrations.append(migration)
        return migration

    def migrate(
        self,
        name: str,
        shard_id: int | None = None,
        backend: str | None = None,
        dynamism: str | None = None,
    ) -> list[Migration]:
        """Explicitly re-fit a column's shards to their current data.

        Each target shard re-measures its :class:`WorkloadStats` and
        rebuilds when the advisor's verdict (or the pinned ``backend``)
        differs from what is serving.  A ``backend`` given for the
        whole column becomes its pin — recorded in the metadata
        exactly like an ``add_column`` pin, so drift auto-migration
        will not silently revert the operator's choice — and a later
        ``migrate()`` *without* a backend honors the standing pin
        rather than handing the column back to the advisor.  With
        ``shard_id`` the pin is recorded for that shard only: the
        other shards keep auto-migrating, the pinned shard is exempt
        until :meth:`unpin` (or a new pin) releases it.

        ``dynamism`` re-declares the column's update contract first —
        e.g. freezing an append-heavy column that went cold to
        ``"static"`` lets the advisor re-open the whole static pool.
        The contract is column-wide, so it cannot be combined with
        ``shard_id``.  A column built static cannot be *upgraded*: its
        shards were re-encoded onto local alphabets, which cannot
        absorb arbitrary routed characters — re-add the column
        instead.  Rebuilding compacts any pending deleted slots,
        exactly like a backend's own global rebuild.

        All arguments are validated before any state changes; a
        rejected call leaves the column exactly as it was.
        """
        meta = self._meta(name)
        # Validate everything, then mutate: a rejected call must leave
        # the column untouched.
        if shard_id is not None:
            self._check_shard(shard_id)
        spec = get_spec(backend) if backend is not None else None
        if dynamism is not None:
            if shard_id is not None:
                raise InvalidParameterError(
                    "dynamism is a column-wide contract; it cannot be "
                    "re-declared for a single shard"
                )
            if dynamism not in DYNAMISM_LEVELS:
                raise InvalidParameterError(
                    f"dynamism must be one of {DYNAMISM_LEVELS}, "
                    f"got {dynamism!r}"
                )
            if dynamism != "static" and any(
                domain is not None for domain in meta.domains.values()
            ):
                raise InvalidParameterError(
                    f"column {name!r} was built static (shards carry "
                    "local alphabets); it cannot be migrated to "
                    f"dynamism={dynamism!r} — re-add it instead"
                )
        # While frozen, the delete requirement is suspended with the
        # rest of the update contract — _check_updatable blocks deletes
        # anyway, and keeping it would confine the advisor to
        # delete-capable backends on a column that can never see
        # another delete.  The *declared* contract (meta.require_delete)
        # survives the freeze, so unfreezing restores it.
        effective = dynamism if dynamism is not None else meta.dynamism
        effective_delete = meta.require_delete and effective != "static"
        standing = {meta.backend, *meta.shard_pins.values()} - {None}
        for pinned in (
            {spec.name} if spec is not None else standing
        ):
            pinned_spec = get_spec(pinned)
            if not pinned_spec.serves(effective, effective_delete):
                raise InvalidParameterError(
                    f"backend {pinned!r} cannot serve dynamism="
                    f"{effective!r} require_delete={effective_delete}"
                )
            if meta.require_exact and not pinned_spec.exact:
                raise InvalidParameterError(
                    f"backend {pinned!r} is approximate; column "
                    f"{name!r} declares require_exact=True"
                )
        if dynamism is not None:
            meta.dynamism = dynamism
        if backend is not None:
            if shard_id is None:
                meta.backend = backend
                meta.shard_pins.clear()
            else:
                meta.shard_pins[shard_id] = backend
        targets = (
            range(self.num_shards) if shard_id is None else [shard_id]
        )
        out = []
        for target in targets:
            column = self.shards[target].column(name)
            if dynamism is not None:
                column.stats = column.stats.with_(
                    dynamism=dynamism, require_delete=effective_delete
                )
            # Standing pins govern unless this call named a backend:
            # explicit argument > shard pin > column pin > advisor.
            pin = (
                backend
                or meta.shard_pins.get(target)
                or meta.backend
            )
            target_spec = get_spec(pin) if pin is not None else None
            out.append(self._maybe_migrate(name, target, spec=target_spec))
        return out

    def unpin(self, name: str, shard_id: int | None = None) -> None:
        """Release a backend pin, returning control to the advisor.

        With ``shard_id`` only that shard's pin is cleared; without,
        both the column-wide pin and every per-shard pin go.  The next
        drift window (or explicit :meth:`migrate`) re-advises.
        """
        meta = self._meta(name)
        if shard_id is None:
            meta.backend = None
            meta.shard_pins.clear()
        else:
            self._check_shard(shard_id)
            meta.shard_pins.pop(shard_id, None)
